"""Traced-query smoke: the CLI observability surface, end to end.

The CI observability bar: on the planner's walk-cache-pressured star
fixture, ``multi-way --explain analyze --trace-out --metrics-out`` must
(1) print per-edge predicted-vs-actual annotations sourced from a real
trace, (2) return answers bit-identical to the same query run untraced,
(3) write a trace file whose every line passes
:func:`repro.obs.trace.validate_trace_dict` and carries nonzero walk
work, and (4) write a metrics snapshot whose engine step counter
matches the work the trace recorded.

Run with::

    PYTHONPATH=src python examples/traced_query_smoke.py
"""

import json
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.graph.io import write_edge_list, write_node_sets
from repro.obs.trace import validate_trace_dict
from repro.planner import PlannerFixture


def main() -> None:
    fixture = PlannerFixture()
    spec = fixture.skewed_star_spec()

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        graph_path = tmp_path / "graph.tsv"
        sets_path = tmp_path / "sets.json"
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.jsonl"
        out_path = tmp_path / "out.json"

        write_edge_list(spec.graph, graph_path)
        names = [f"S{i}" for i in range(len(spec.node_sets))]
        write_node_sets(
            {name: list(nodes)
             for name, nodes in zip(names, spec.node_sets)},
            sets_path,
        )

        base_args = [
            "multi-way", str(graph_path), "--sets", str(sets_path),
            "--shape", "star", "--node-sets", *names,
            "-k", str(spec.k), "-m", "200", "--plan", "auto", "--json",
        ]

        # Untraced oracle arm.
        with open(out_path, "w", encoding="utf-8") as fh:
            import contextlib
            with contextlib.redirect_stdout(fh):
                assert cli_main(list(base_args)) == 0
        # Bare ``--json`` emits the answer rows as a list.
        untraced_rows = json.loads(out_path.read_text(encoding="utf-8"))

        # Traced explain-analyze arm.
        with open(out_path, "w", encoding="utf-8") as fh:
            import contextlib
            with contextlib.redirect_stdout(fh):
                assert cli_main(base_args + [
                    "--explain", "analyze",
                    "--trace-out", str(trace_path),
                    "--metrics-out", str(metrics_path),
                ]) == 0
        analyzed = json.loads(out_path.read_text(encoding="utf-8"))

        assert analyzed["results"] == untraced_rows, (
            "explain analyze changed the answers"
        )
        report = analyzed["plan"]  # AnalyzedPlan.to_json(): plan + actuals
        actuals = report["actuals"]
        assert len(actuals) == len(report["plan"]["build_order"])
        assert all(
            row["propagation_steps"] > 0 or row["walk_cache_hits"] > 0
            for row in actuals
        ), actuals
        traced_steps = sum(row["propagation_steps"] for row in actuals)
        assert traced_steps > 0, "trace recorded no walk work"

        # Every trace line is schema-valid and the root is the query.
        lines = trace_path.read_text(encoding="utf-8").splitlines()
        assert lines, "trace file is empty"
        for line in lines:
            payload = json.loads(line)
            problems = validate_trace_dict(payload)
            assert not problems, problems
            assert payload["span"]["kind"] == "query"

        # The metrics snapshot saw at least the steps the trace did.
        snapshot = json.loads(
            metrics_path.read_text(encoding="utf-8").splitlines()[-1]
        )
        metrics = {
            sample["name"]: sample["value"]
            for sample in snapshot["metrics"]
        }
        engine_steps = metrics["repro_engine_propagation_steps_total"]
        assert engine_steps >= traced_steps > 0, (engine_steps, traced_steps)

        print(
            f"traced-query smoke ok: {len(actuals)} edges analyzed, "
            f"{traced_steps:.0f} traced steps "
            f"(engine total {engine_steps:.0f}), {len(lines)} valid "
            "trace line(s), answers bit-identical"
        )


if __name__ == "__main__":
    main()
