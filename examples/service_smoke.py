"""Service smoke: 50 mixed queries through a 4-worker QueryService.

The CI service-smoke bar: on a small random graph, a seeded mix of
two-way DHT, two-way PPR, and fixed-plan chain multi-way requests must
come back with **nonzero cross-query cache hits** and **zero
non-flagged mismatches** — every exact answer bit-identical to the
single-caller oracle, every budget-flagged partial explicitly marked.

Run with::

    PYTHONPATH=src python examples/service_smoke.py
"""

import numpy as np

from repro import api
from repro.core.nway.query_graph import QueryGraph
from repro.exec.budget import QueryBudget
from repro.extensions.measures import measure_by_name
from repro.graph.builders import erdos_renyi
from repro.service import MultiWayRequest, QueryService, TwoWayRequest

QUERIES = 50
WORKERS = 4


def _rows(items):
    out = []
    for item in items:
        if hasattr(item, "nodes"):
            out.append((tuple(item.nodes), item.score, tuple(item.edge_scores)))
        else:
            out.append((item.left, item.right, item.score))
    return out


def _oracle_rows(graph, request):
    measure = (
        measure_by_name(request.measure) if request.measure else None
    )
    if isinstance(request, TwoWayRequest):
        return _rows(api.two_way_join(
            graph, list(request.left), list(request.right), request.k,
            algorithm=request.algorithm, measure=measure,
        ))
    return _rows(api.multi_way_join(
        graph,
        QueryGraph(len(request.node_sets), request.query_edges),
        [list(nodes) for nodes in request.node_sets],
        request.k,
        algorithm=request.algorithm,
        m=request.m,
        measure=measure,
        plan="fixed",
    ))


def main() -> None:
    rng = np.random.default_rng(7)
    graph = erdos_renyi(200, 0.04, rng, weighted=True)
    pools = [tuple(range(i * 6, (i + 1) * 6)) for i in range(4)]

    requests = []
    for _ in range(QUERIES):
        left = pools[int(rng.integers(len(pools)))]
        right = pools[int(rng.integers(len(pools)))]
        roll = int(rng.integers(10))
        if roll < 5:
            requests.append(TwoWayRequest(left, right, k=5))
        elif roll < 7:
            requests.append(TwoWayRequest(left, right, k=5, measure="ppr"))
        elif roll < 9:
            third = pools[int(rng.integers(len(pools)))]
            requests.append(MultiWayRequest(
                query_edges=((0, 1), (1, 2)),
                node_sets=(left, right, third),
                k=3,
                plan="fixed",
            ))
        else:
            requests.append(TwoWayRequest(
                left, right, k=5, budget=QueryBudget(step_budget=10)
            ))

    with QueryService(graph, workers=WORKERS, queue_depth=QUERIES) as service:
        tickets = [service.submit(request) for request in requests]
        responses = [ticket.result(timeout=300.0) for ticket in tickets]
        stats = service.stats()

    mismatches = 0
    flagged = 0
    for request, response in zip(requests, responses):
        assert response.ok, (response.status, response.error)
        result = response.result
        if not result.exact:
            flagged += 1  # explicitly marked partial: allowed, never silent
            continue
        if _rows(result.results) != _oracle_rows(graph, request):
            mismatches += 1

    assert stats.completed == QUERIES, stats
    assert stats.rejected == 0 and stats.errors == 0, stats
    assert stats.walk_cache_hits > 0, "cross-query sharing never fired"
    assert mismatches == 0, f"{mismatches} non-flagged mismatches"
    print(
        f"service smoke ok: {QUERIES} queries / {WORKERS} workers, "
        f"{stats.walk_cache_hits} cross-query walk hits "
        f"(rate {stats.walk_cache_hit_rate:.2f}), {flagged} flagged "
        f"partials, 0 mismatches, p50 {stats.p50_ms:.1f} ms / "
        f"p99 {stats.p99_ms:.1f} ms"
    )


if __name__ == "__main__":
    main()
