"""Quickstart: DHT scores, a 2-way join, and a 3-way join on a toy graph.

Run with::

    python examples/quickstart.py
"""

from repro import DHTParams, Graph, QueryGraph, multi_way_join, two_way_join


def main() -> None:
    # A small social network: two friend circles bridged by node 4.
    #
    #   0 - 1        5 - 6
    #   |   |    4   |   |
    #   2 - 3 -/  \- 7 - 8
    edges = [
        (0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0),
        (3, 4, 1.0), (4, 7, 1.0),
        (5, 6, 1.0), (5, 7, 1.0), (6, 8, 1.0), (7, 8, 1.0),
    ]
    graph = Graph.from_undirected_edges(9, edges, labels=[
        "ana", "ben", "cal", "dee", "eve", "fay", "gus", "hal", "ivy",
    ])

    # The paper's default configuration: DHT_lambda with lambda = 0.2,
    # truncated at d = 8 steps (epsilon = 1e-6 via Lemma 1).
    params = DHTParams.dht_lambda(0.2)
    print(f"DHT configuration: {params}")
    print(f"steps for epsilon=1e-6: d = {params.steps_for_epsilon(1e-6)}\n")

    # ------------------------------------------------------------------
    # 2-way join: who in the left circle is closest to the right circle?
    # ------------------------------------------------------------------
    left, right = [0, 1, 2, 3], [5, 6, 7, 8]
    pairs = two_way_join(graph, left, right, k=3)  # B-IDJ-Y by default
    print("Top-3 2-way join (left circle x right circle):")
    for rank, pair in enumerate(pairs, start=1):
        print(
            f"  {rank}. ({graph.label(pair.left)}, {graph.label(pair.right)})"
            f"  h_d = {pair.score:+.4f}"
        )

    # dee (3) and hal (7) sit on the bridge, so they should head the list.
    assert (pairs[0].left, pairs[0].right) == (3, 7)

    # ------------------------------------------------------------------
    # 3-way join: chain query  left -> bridge -> right  (Definition 4)
    # ------------------------------------------------------------------
    answers = multi_way_join(
        graph,
        QueryGraph.chain(3, names=["L", "bridge", "R"]),
        [left, [4], right],
        k=3,
        algorithm="pj-i",  # the paper's best algorithm
    )
    print("\nTop-3 3-way chain join (L -> bridge -> R, MIN aggregate):")
    for rank, answer in enumerate(answers, start=1):
        names = ", ".join(graph.label(u) for u in answer.nodes)
        print(f"  {rank}. ({names})  f = {answer.score:+.4f}")


if __name__ == "__main__":
    main()
