"""Multi-interest group formation with a star 6-way join (paper
Example 4, Fig. 2(c)).

Mary, a sports photographer, wants one hobbyist from each of five sports
groups, each close to the photography group at the centre of the star.
This is a 6-way join on a star query graph — the largest query shape the
paper evaluates (n up to 7 in Fig. 7(a)).

Run with::

    python examples/multi_interest_star.py
"""

from repro import QueryGraph, multi_way_join
from repro.datasets import generate_youtube

SPORTS = ["Photography", "Soccer", "Basketball", "Hockey", "Golf", "Tennis"]


def main() -> None:
    data = generate_youtube(num_users=6000, num_groups=12, seed=11)
    graph = data.graph
    # Group 1 plays the photography club; groups 2-6 are the sports.
    node_sets = [data.group(gid)[:40] for gid in range(1, 7)]
    for name, members in zip(SPORTS, node_sets):
        print(f"{name:<12} {len(members)} members")

    query = QueryGraph.star(5, names=SPORTS)
    print(f"\nQuery graph: star, {query.num_vertices} vertices, "
          f"{query.num_edges} directed edges")

    answers = multi_way_join(
        graph, query, node_sets, k=3, algorithm="pj-i", m=40
    )
    print("\nTop-3 multi-interest groups (MIN aggregate):")
    for rank, answer in enumerate(answers, start=1):
        print(f"  #{rank}  f = {answer.score:+.4f}")
        for name, member in zip(SPORTS, answer.nodes):
            print(f"      {name:<12} user {member}")


if __name__ == "__main__":
    main()
