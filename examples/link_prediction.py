"""Link prediction with 2-way DHT joins (paper Example 1 / Section
VII-B.2, Fig. 6).

We damage the Yeast-like PPI network by hiding half of the interactions
between its two largest protein classes, rank the missing pairs with a
2-way join on the damaged graph, and measure how well the ranking
recovers the hidden interactions (ROC / AUC).

Run with::

    python examples/link_prediction.py
"""

from repro import DHTParams, two_way_join
from repro.datasets import generate_yeast, remove_random_cross_edges
from repro.eval import evaluate_link_prediction
from repro.eval.roc import true_positive_rate_at


def main() -> None:
    data = generate_yeast(num_proteins=2400, seed=2014)
    graph = data.graph
    left, right = data.largest_pair
    print(
        f"Yeast substitute: {graph.num_nodes} proteins, "
        f"{graph.num_edges // 2} interactions; "
        f"|3-U| = {len(left)}, |8-D| = {len(right)}"
    )

    split = remove_random_cross_edges(graph, left, right, fraction=0.5, seed=42)
    print(f"Hidden interactions: {len(split.removed_pairs)}")

    result = evaluate_link_prediction(
        graph, split.test_graph, left, right,
        params=DHTParams.dht_lambda(0.2), epsilon=1e-6,
    )
    print(f"\nAUC = {result.auc:.4f}  (paper reports 0.9453 on real Yeast)")
    print(f"TPR at FPR=0.1: {true_positive_rate_at(result.roc, 0.1):.3f}")

    # The concrete suggestion list a biologist would read: the top-10
    # predicted (currently unobserved) interactions.
    top = two_way_join(split.test_graph, left, right, k=200)
    suggestions = [
        p for p in top if not split.test_graph.has_edge(p.left, p.right)
    ][:10]
    hidden = set(split.removed_pairs) | {
        (q, p) for p, q in split.removed_pairs
    }
    print("\nTop predicted interactions (* = actually hidden):")
    for rank, pair in enumerate(suggestions, start=1):
        marker = "*" if (pair.left, pair.right) in hidden else " "
        print(
            f"  {rank:>2}. protein {pair.left:>4} -- protein {pair.right:>4}"
            f"  h_d = {pair.score:+.4f} {marker}"
        )


if __name__ == "__main__":
    main()
