"""Expert finding on a bibliographic network (paper Examples 2 and
Table III).

A researcher assembling a cross-disciplinary lab runs a *triangle* 3-way
join over the DB, AI, and SYS author sets: the top answers are triples of
authors who are all close to each other in discounted-hitting-time terms.
A *chain* query (AI -> DB -> SYS) relaxes the requirement that AI and SYS
be directly close — the paper shows the two shapes give different answers.

Our DBLP substitute plants cross-area "labs" (heavy collaboration
cliques), so the triangle join has a recoverable ground truth.

Run with::

    python examples/expert_finding.py
"""

from repro import QueryGraph, multi_way_join
from repro.datasets import generate_dblp


def show(title, answers, graph):
    print(f"\n{title}")
    print(f"{'rank':>4}  {'DB':<22} {'AI':<22} {'SYS':<22} {'f':>9}")
    for rank, answer in enumerate(answers, start=1):
        names = [graph.label(u) for u in answer.nodes]
        print(
            f"{rank:>4}  {names[0]:<22} {names[1]:<22} {names[2]:<22}"
            f" {answer.score:>+9.4f}"
        )


def main() -> None:
    data = generate_dblp(authors_per_area=400, num_labs=5, seed=7)
    graph = data.graph

    # Section VII-B: the node sets are the 100 most prolific authors of
    # each area.
    db = data.top_authors("DB", 100)
    ai = data.top_authors("AI", 100)
    sys_ = data.top_authors("SYS", 100)

    triangle = multi_way_join(
        graph,
        QueryGraph.triangle(names=["DB", "AI", "SYS"]),
        [db, ai, sys_],
        k=5,
        algorithm="pj-i",
        m=50,
    )
    show("Top-5 triangle 3-way join (tight cross-area collaborators):",
         triangle, graph)

    chain = multi_way_join(
        graph,
        QueryGraph.chain(3, names=["AI", "DB", "SYS"]),
        [ai, db, sys_],
        k=5,
        algorithm="pj-i",
        m=50,
    )
    show("Top-5 chain 3-way join (AI -> DB -> SYS):", chain, graph)

    # Verify the planted ground truth: the top triangle answers should be
    # dominated by members of the planted labs.
    lab_members = {m for lab in data.labs for m in lab.members}
    hits = sum(
        1 for answer in triangle if lab_members.issuperset(answer.nodes)
    )
    print(f"\nPlanted-lab triples among top-5 triangle answers: {hits}/5")


if __name__ == "__main__":
    main()
