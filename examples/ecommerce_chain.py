"""E-commerce partner discovery with a chain 3-way join (paper
Example 3, Fig. 2(b)).

A retailer looks for manufacturer/customer pairs such that the
manufacturer is close to the retailer and the retailer is close to the
customer in a social network.  The query graph is the chain
``M -> R -> C``; the MIN aggregate makes an answer only as strong as its
weaker leg.

Run with::

    python examples/ecommerce_chain.py
"""

from repro import MIN, SUM, QueryGraph, multi_way_join
from repro.datasets import generate_youtube


def main() -> None:
    data = generate_youtube(num_users=8000, num_groups=12, seed=5)
    graph = data.graph
    manufacturers = data.group(1)
    retailers = data.group(2)
    customers = data.group(3)
    print(
        f"Social graph: {graph.num_nodes} users, {graph.num_edges // 2} "
        f"friendships; |M|={len(manufacturers)}, |R|={len(retailers)}, "
        f"|C|={len(customers)}"
    )

    query = QueryGraph.chain(3, names=["M", "R", "C"])
    for aggregate in (MIN, SUM):
        answers = multi_way_join(
            graph,
            query,
            [manufacturers, retailers, customers],
            k=5,
            aggregate=aggregate,
            algorithm="pj-i",
            m=50,
        )
        print(f"\nTop-5 M -> R -> C chains under {aggregate.name}:")
        for rank, answer in enumerate(answers, start=1):
            m, r, c = answer.nodes
            print(
                f"  {rank}. manufacturer {m:>5}  retailer {r:>5}  "
                f"customer {c:>5}   f = {answer.score:+.4f} "
                f"(legs: {answer.edge_scores[0]:+.4f}, "
                f"{answer.edge_scores[1]:+.4f})"
            )


if __name__ == "__main__":
    main()
