"""A star n-way join under Personalized PageRank (the measure layer).

The paper's future work (Section VIII) asks for n-way joins over
proximity measures beyond DHT.  This example runs the same star query
twice — once under DHT, once under PPR — through one entry point
(``multi_way_join(..., measure=...)``), and checks the PPR answers
against the per-target oracle.  Run with::

    python examples/ppr_star_join.py
"""

from repro import Graph, QueryGraph, multi_way_join
from repro.core.nway.spec import NWayJoinSpec
from repro.extensions import SeriesAllPairsJoin, TruncatedPPR


def main() -> None:
    # Two friend circles bridged by node 4 (the quickstart graph).
    #
    #   0 - 1        5 - 6
    #   |   |    4   |   |
    #   2 - 3 -/  \- 7 - 8
    edges = [
        (0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0),
        (3, 4, 1.0), (4, 7, 1.0),
        (5, 6, 1.0), (5, 7, 1.0), (6, 8, 1.0), (7, 8, 1.0),
    ]
    graph = Graph.from_undirected_edges(9, edges, labels=[
        "ana", "ben", "cal", "dee", "eve", "fay", "gus", "hal", "ivy",
    ])

    # Star query: who bridges both circles?  Centre = the bridge
    # candidates, spokes = one circle each.
    query = QueryGraph.star(2, names=["bridge", "L", "R"])
    sets = [[3, 4, 7], [0, 1, 2], [5, 6, 8]]

    for measure in ("dht", "ppr"):
        answers = multi_way_join(
            graph, query, sets, k=3, algorithm="pj", measure=measure
        )
        print(f"Top-3 star join under {measure.upper()}:")
        for rank, answer in enumerate(answers, start=1):
            names = ", ".join(graph.label(u) for u in answer.nodes)
            print(f"  {rank}. ({names})  f = {answer.score:+.4f}")
        print()
        # eve (4) sits on the bridge under either measure.
        assert answers[0].nodes[0] == 4

    # The measure-generic PJ answers equal the per-target AP oracle.
    ppr = TruncatedPPR()
    pj_answers = multi_way_join(
        graph, query, sets, k=3, algorithm="pj", measure=ppr
    )
    oracle_spec = NWayJoinSpec(
        graph=graph, query_graph=query, node_sets=[list(s) for s in sets],
        k=3, measure=TruncatedPPR(), share_walks=False, share_bounds=False,
    )
    oracle = SeriesAllPairsJoin(oracle_spec, block_size=1).run()
    assert [(a.nodes, round(a.score, 10)) for a in pj_answers] == [
        (a.nodes, round(a.score, 10)) for a in oracle
    ]
    print("PPR PJ answers match the per-target oracle.")


if __name__ == "__main__":
    main()
