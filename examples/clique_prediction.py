"""3-clique prediction with a triangle 3-way join (paper Section
VII-B.3 / Table IV).

We damage every cross-set 3-clique of a protein network by deleting one
of its edges, then ask a triangle 3-way join on the damaged graph to
point at the triples most likely to be cliques — and check that the
damaged cliques are the ones it surfaces.

Run with::

    python examples/clique_prediction.py
"""

from repro.datasets import generate_yeast, remove_edge_per_clique
from repro.datasets.splits import enumerate_cross_cliques
from repro.eval import evaluate_clique_prediction


def main() -> None:
    data = generate_yeast(num_proteins=1200, seed=8)
    graph = data.graph
    sets = (
        data.partitions["3-U"],
        data.partitions["5-F"],
        data.partitions["8-D"],
    )
    cliques = enumerate_cross_cliques(graph, *sets)
    print(
        f"PPI network: {graph.num_nodes} proteins, "
        f"{graph.num_edges // 2} interactions, "
        f"{len(cliques)} cross-set 3-cliques"
    )

    # Keep the nodes that participate in cliques so the truncated sets
    # still contain positives (set sizes drive the |P||Q||R| ranking).
    involved = [sorted({c[i] for c in cliques}) for i in range(3)]
    set_p, set_q, set_r = (
        (members + [u for u in full if u not in members])[:35]
        for members, full in zip(involved, sets)
    )

    split = remove_edge_per_clique(graph, set_p, set_q, set_r, seed=8)
    print(f"Removed one edge from each of {len(split.cliques)} cliques "
          f"({len(split.removed_pairs)} distinct edges)")

    result = evaluate_clique_prediction(
        graph, split.test_graph, set_p, set_q, set_r
    )
    print(
        f"\n3-clique prediction AUC = {result.auc:.4f} over "
        f"{result.num_candidates} candidate triples "
        f"({result.num_positives} positives)"
    )
    print("Paper Table IV reports 0.9536 on the real Yeast network.")


if __name__ == "__main__":
    main()
