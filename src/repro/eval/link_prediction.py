"""Link prediction with 2-way DHT joins (Section VII-B.2).

Protocol: run the 2-way join between node sets ``P`` and ``Q`` on the
*test* graph ``T``; every returned pair that is **not** already an edge
of ``T`` is a prediction, counted as a true positive when the *true*
graph ``G`` contains it.  Sweeping ``k`` yields the ROC curve; we rank
*all* candidate pairs (a full 2-way join via ``B-BJ``), which is the
complete sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.dht import DHTParams
from repro.core.two_way.backward import BackwardBasicJoin
from repro.core.two_way.base import ScoredPair, make_context
from repro.eval.roc import ROCResult, auc_from_scores, roc_curve
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError


@dataclass
class LinkPredictionResult:
    """Outcome of one link-prediction evaluation."""

    roc: ROCResult
    auc: float
    candidates: List[ScoredPair]
    labels: List[bool]

    @property
    def num_candidates(self) -> int:
        """Number of non-edge pairs that were ranked."""
        return len(self.candidates)


def rank_candidate_links(
    test_graph: Graph,
    left: Sequence[int],
    right: Sequence[int],
    params: Optional[DHTParams] = None,
    d: Optional[int] = None,
    epsilon: Optional[float] = None,
) -> List[ScoredPair]:
    """All non-edge ``(p, q)`` pairs ranked by DHT score on ``T``.

    Pairs already linked in ``T`` are not predictions and are skipped,
    per the paper's protocol.
    """
    context = make_context(test_graph, left, right, params=params, d=d, epsilon=epsilon)
    scored = BackwardBasicJoin(context).all_pairs()
    candidates = [
        pair for pair in scored if not test_graph.has_edge(pair.left, pair.right)
    ]
    candidates.sort(key=lambda sp: (-sp.score, sp.left, sp.right))
    return candidates


def evaluate_link_prediction(
    true_graph: Graph,
    test_graph: Graph,
    left: Sequence[int],
    right: Sequence[int],
    params: Optional[DHTParams] = None,
    d: Optional[int] = None,
    epsilon: Optional[float] = None,
) -> LinkPredictionResult:
    """Full ROC/AUC evaluation of 2-way-join link prediction.

    ``true_graph`` supplies the labels: a candidate ``(p, q)`` is a true
    positive iff ``G`` has the edge.
    """
    if true_graph.num_nodes != test_graph.num_nodes:
        raise GraphValidationError(
            "true and test graphs must share the node id space"
        )
    candidates = rank_candidate_links(
        test_graph, left, right, params=params, d=d, epsilon=epsilon
    )
    if not candidates:
        raise GraphValidationError("no candidate (non-edge) pairs to rank")
    labels = [true_graph.has_edge(p.left, p.right) for p in candidates]
    scores = [p.score for p in candidates]
    roc = roc_curve(scores, labels)
    return LinkPredictionResult(
        roc=roc, auc=auc_from_scores(scores, labels),
        candidates=candidates, labels=labels,
    )
