"""Effectiveness harness: ROC/AUC, link- and 3-clique prediction."""

from repro.eval.clique_prediction import (
    CliquePredictionResult,
    evaluate_clique_prediction,
)
from repro.eval.link_prediction import (
    LinkPredictionResult,
    evaluate_link_prediction,
    rank_candidate_links,
)
from repro.eval.roc import ROCResult, auc_from_scores, roc_curve

__all__ = [
    "CliquePredictionResult",
    "LinkPredictionResult",
    "ROCResult",
    "auc_from_scores",
    "evaluate_clique_prediction",
    "evaluate_link_prediction",
    "rank_candidate_links",
    "roc_curve",
]
