"""ROC curves and AUC (the paper's effectiveness metrics, Fig. 6 /
Table IV; see Fawcett [37]).

The paper sweeps the join's ``k`` and plots true-positive rate against
false-positive rate; sweeping ``k`` over a fixed ranking is equivalent to
thresholding the ranking at every position, which is how
:func:`roc_curve` computes the curve in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass
class ROCResult:
    """ROC points (including the (0,0) and (1,1) anchors) and the AUC."""

    fpr: np.ndarray
    tpr: np.ndarray
    auc: float
    num_positives: int
    num_negatives: int


def roc_curve(scores: Sequence[float], labels: Sequence[bool]) -> ROCResult:
    """ROC curve of a scored binary ranking.

    Parameters
    ----------
    scores:
        Ranking scores (higher = ranked earlier).
    labels:
        True for positives.

    Notes
    -----
    Ties in ``scores`` are handled by advancing over the whole tie group
    at once (the standard convention; gives the same AUC as the
    Mann-Whitney statistic, which :func:`auc_from_scores` computes
    independently as a cross-check).
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=bool)
    if scores.shape != labels.shape:
        raise ValueError(f"shape mismatch: {scores.shape} vs {labels.shape}")
    if scores.size == 0:
        raise ValueError("empty ranking")
    num_pos = int(labels.sum())
    num_neg = int(labels.size - num_pos)
    if num_pos == 0 or num_neg == 0:
        raise ValueError("ROC needs at least one positive and one negative")
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    tp = np.cumsum(sorted_labels)
    fp = np.cumsum(~sorted_labels)
    # Keep only the last point of every tie group.
    distinct = np.nonzero(np.diff(sorted_scores, append=np.nan))[0]
    tpr = np.concatenate(([0.0], tp[distinct] / num_pos))
    fpr = np.concatenate(([0.0], fp[distinct] / num_neg))
    area = float(np.trapezoid(tpr, fpr))
    return ROCResult(fpr=fpr, tpr=tpr, auc=area, num_positives=num_pos, num_negatives=num_neg)


def auc_from_scores(scores: Sequence[float], labels: Sequence[bool]) -> float:
    """AUC via the rank-sum (Mann-Whitney U) statistic.

    Independent of :func:`roc_curve`'s trapezoid integration — the test
    suite checks the two agree; ties contribute 1/2 per the statistic's
    definition.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=bool)
    pos = scores[labels]
    neg = scores[~labels]
    if pos.size == 0 or neg.size == 0:
        raise ValueError("AUC needs at least one positive and one negative")
    # Midranks over the pooled sample.
    pooled = np.concatenate([pos, neg])
    order = np.argsort(pooled, kind="stable")
    ranks = np.empty_like(pooled)
    sorted_vals = pooled[order]
    i = 0
    position = 1.0
    while i < sorted_vals.size:
        j = i
        while j + 1 < sorted_vals.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        midrank = (position + position + (j - i)) / 2.0
        ranks[order[i : j + 1]] = midrank
        position += j - i + 1
        i = j + 1
    rank_sum = float(ranks[: pos.size].sum())
    u_statistic = rank_sum - pos.size * (pos.size + 1) / 2.0
    return u_statistic / (pos.size * neg.size)


def true_positive_rate_at(result: ROCResult, fpr_level: float) -> float:
    """Interpolated TPR at a given FPR (the paper quotes "TPR > 0.7 at
    FPR around 0.1")."""
    if not (0.0 <= fpr_level <= 1.0):
        raise ValueError(f"fpr_level must be in [0, 1], got {fpr_level}")
    return float(np.interp(fpr_level, result.fpr, result.tpr))
