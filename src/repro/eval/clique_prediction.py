"""3-clique prediction with triangle 3-way joins (Section VII-B.3).

Protocol: damage each cross-set 3-clique of the true graph ``G`` by
removing one edge (:func:`repro.datasets.splits.remove_edge_per_clique`),
run a triangle 3-way join on the damaged graph ``T``, and check whether
the damaged cliques rank highest.  A candidate triple is a prediction
when it is *not* fully connected in ``T``; it is a true positive when it
*is* a 3-clique in ``G``.

We rank the complete candidate space (all ``|P| |Q| |R|`` triples) so the
ROC sweep over ``k`` is exact: per-edge score tables come from one
``B-BJ`` pass per query edge, and the triangle aggregate is assembled
directly — mathematically the same ranking the n-way join produces, for
any monotone aggregate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dht import DHTParams
from repro.core.nway.aggregates import MIN, Aggregate
from repro.core.two_way.backward import back_walk
from repro.core.two_way.base import make_context
from repro.eval.roc import ROCResult, auc_from_scores, roc_curve
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError

Triple = Tuple[int, int, int]


@dataclass
class CliquePredictionResult:
    """Outcome of one 3-clique-prediction evaluation."""

    roc: ROCResult
    auc: float
    num_candidates: int
    num_positives: int


def score_table(
    test_graph: Graph,
    left: Sequence[int],
    right: Sequence[int],
    params: Optional[DHTParams] = None,
    d: Optional[int] = None,
    epsilon: Optional[float] = None,
) -> Dict[Tuple[int, int], float]:
    """Dense ``h_d`` table for all ``(left, right)`` pairs via ``B-BJ``."""
    context = make_context(test_graph, left, right, params=params, d=d, epsilon=epsilon)
    table: Dict[Tuple[int, int], float] = {}
    for q in context.right:
        scores = back_walk(context, q, context.d)
        for p in context.left:
            if p != q:
                table[(p, q)] = float(scores[p])
    return table


def evaluate_clique_prediction(
    true_graph: Graph,
    test_graph: Graph,
    set_p: Sequence[int],
    set_q: Sequence[int],
    set_r: Sequence[int],
    aggregate: Aggregate = MIN,
    params: Optional[DHTParams] = None,
    d: Optional[int] = None,
    epsilon: Optional[float] = None,
) -> CliquePredictionResult:
    """Full ROC/AUC evaluation of triangle-join 3-clique prediction.

    The triangle query graph is bidirectional (footnote 2): each side of
    the triangle contributes both DHT directions to the aggregate.
    """
    if true_graph.num_nodes != test_graph.num_nodes:
        raise GraphValidationError(
            "true and test graphs must share the node id space"
        )
    tables = {
        ("P", "Q"): score_table(test_graph, set_p, set_q, params, d, epsilon),
        ("Q", "P"): score_table(test_graph, set_q, set_p, params, d, epsilon),
        ("Q", "R"): score_table(test_graph, set_q, set_r, params, d, epsilon),
        ("R", "Q"): score_table(test_graph, set_r, set_q, params, d, epsilon),
        ("P", "R"): score_table(test_graph, set_p, set_r, params, d, epsilon),
        ("R", "P"): score_table(test_graph, set_r, set_p, params, d, epsilon),
    }
    scores: List[float] = []
    labels: List[bool] = []
    for p, q, r in itertools.product(set_p, set_q, set_r):
        if p == q or q == r or p == r:
            continue
        if _is_clique(test_graph, p, q, r):
            continue  # already fully present in T: not a prediction
        edge_scores = (
            tables[("P", "Q")][(p, q)],
            tables[("Q", "P")][(q, p)],
            tables[("Q", "R")][(q, r)],
            tables[("R", "Q")][(r, q)],
            tables[("P", "R")][(p, r)],
            tables[("R", "P")][(r, p)],
        )
        scores.append(aggregate(edge_scores))
        labels.append(_is_clique(true_graph, p, q, r))
    if not scores:
        raise GraphValidationError("no candidate triples to rank")
    roc = roc_curve(scores, labels)
    return CliquePredictionResult(
        roc=roc,
        auc=auc_from_scores(scores, labels),
        num_candidates=len(scores),
        num_positives=int(np.sum(labels)),
    )


def _is_clique(graph: Graph, p: int, q: int, r: int) -> bool:
    return (
        graph.has_edge(p, q) and graph.has_edge(q, r) and graph.has_edge(p, r)
    )
