"""Timing and reporting utilities for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure: it runs the
relevant parameter sweep, collects :class:`SeriesResult` rows, and prints
them in the same layout the paper reports (series per algorithm, one row
per x value).  Absolute times are not comparable with the paper's C++
testbed; EXPERIMENTS.md records the *shape* comparison.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


@dataclass
class TimedRun:
    """One measured configuration."""

    x: object
    seconds: float
    extra: dict = field(default_factory=dict)


@dataclass
class SeriesResult:
    """A named series (one algorithm) over a sweep."""

    name: str
    runs: List[TimedRun] = field(default_factory=list)

    def add(self, x: object, seconds: float, **extra: object) -> None:
        """Append one measurement."""
        self.runs.append(TimedRun(x=x, seconds=seconds, extra=dict(extra)))

    def seconds_at(self, x: object) -> Optional[float]:
        """Time measured at sweep value ``x`` (``None`` if absent —
        e.g. NL marked infeasible)."""
        for run in self.runs:
            if run.x == x:
                return run.seconds
        return None


def time_call(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` runs.

    The paper averages 10 runs per data point; we default to a median of
    3 to keep the pure-Python reproduction tractable while damping
    scheduler noise.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def speedup(slow: Optional[float], fast: Optional[float]) -> Optional[float]:
    """``slow / fast``, or ``None`` when either side is missing."""
    if slow is None or fast is None or fast <= 0:
        return None
    return slow / fast


def write_json_report(path: str, payload: dict) -> None:
    """Write a machine-readable benchmark report.

    Trajectory benchmarks (``BENCH_*.json`` at the repo root) are diffed
    across PRs to catch performance regressions; keep payloads flat,
    JSON-serialisable, and stable in their key names.
    """
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def format_seconds(seconds: Optional[float]) -> str:
    """Human-oriented fixed-width time formatting (or ``--`` / ``inf``)."""
    if seconds is None:
        return "      --"
    if math.isinf(seconds):
        return "     inf"
    if seconds >= 100:
        return f"{seconds:8.1f}"
    if seconds >= 1:
        return f"{seconds:8.3f}"
    return f"{seconds:8.4f}"


def print_sweep_table(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Sequence[SeriesResult],
    note: str = "",
) -> str:
    """Render a paper-style sweep table; returns (and prints) the text."""
    lines = [f"== {title} =="]
    if note:
        lines.append(f"   {note}")
    header = f"{x_label:>10} | " + " | ".join(f"{s.name:>10}" for s in series)
    lines.append(header)
    lines.append("-" * len(header))
    for x in x_values:
        cells = []
        for s in series:
            cells.append(format_seconds(s.seconds_at(x)).rjust(10))
        lines.append(f"{str(x):>10} | " + " | ".join(cells))
    text = "\n".join(lines)
    print(text)
    return text


def print_kv_table(title: str, rows: Dict[str, object], note: str = "") -> str:
    """Render a simple key/value table (for AUC tables etc.)."""
    lines = [f"== {title} =="]
    if note:
        lines.append(f"   {note}")
    width = max(len(k) for k in rows) if rows else 1
    for key, value in rows.items():
        if isinstance(value, float):
            lines.append(f"{key:<{width}} : {value:.4f}")
        else:
            lines.append(f"{key:<{width}} : {value}")
    text = "\n".join(lines)
    print(text)
    return text
