"""Benchmark harness: timing, reporting, and shared workloads."""

from repro.bench.harness import (
    SeriesResult,
    format_seconds,
    print_kv_table,
    print_sweep_table,
    speedup,
    time_call,
)

__all__ = [
    "SeriesResult",
    "format_seconds",
    "print_kv_table",
    "print_sweep_table",
    "speedup",
    "time_call",
]
