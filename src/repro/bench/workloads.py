"""Shared benchmark workloads.

Centralises the dataset instances and query constructions so every
benchmark module (and EXPERIMENTS.md) uses identical inputs.  Datasets
are generated once per process and memoised.

Scale notes (see DESIGN.md section 4): the Yeast substitute runs at the
paper's true scale (2.4k nodes); the DBLP and YouTube substitutes are
scaled down for pure-Python benchmarking, which shrinks absolute times
but preserves the algorithm ranking the paper reports.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.nway.query_graph import QueryGraph
from repro.datasets.dblp import DBLPDataset, generate_dblp
from repro.datasets.yeast import YeastDataset, generate_yeast
from repro.datasets.youtube import YouTubeDataset, generate_youtube
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError


@lru_cache(maxsize=1)
def yeast() -> YeastDataset:
    """The Yeast substitute at the paper's scale (2.4k / ~7k edges)."""
    return generate_yeast(num_proteins=2400, seed=2014)


@lru_cache(maxsize=1)
def dblp() -> DBLPDataset:
    """The DBLP substitute (3 areas x 1000 authors by default)."""
    return generate_dblp(authors_per_area=1000, seed=2014)


@lru_cache(maxsize=1)
def dblp_small() -> DBLPDataset:
    """A smaller DBLP instance for the expensive baselines."""
    return generate_dblp(authors_per_area=300, seed=2014)


@lru_cache(maxsize=1)
def dblp_large() -> DBLPDataset:
    """A larger DBLP instance (12k authors) for the pruning study.

    The ``Y_l^+`` bound's pruning power depends on how much the walk
    mass from ``P`` dilutes across the graph (Fig. 10(b) was measured on
    the 188k-node real DBLP); this is the largest instance that keeps
    the benchmark session fast.
    """
    return generate_dblp(authors_per_area=4000, seed=2014)


@lru_cache(maxsize=1)
def youtube() -> YouTubeDataset:
    """The YouTube substitute (30k users)."""
    return generate_youtube(num_users=30_000, seed=2014)


@lru_cache(maxsize=1)
def youtube_small() -> YouTubeDataset:
    """A smaller YouTube instance for tests and quick benches."""
    return generate_youtube(num_users=5_000, num_groups=20, seed=2014)


def sample_node_sets(
    universe: Sequence[int],
    count: int,
    size: int,
    seed: int,
) -> List[List[int]]:
    """``count`` disjoint node sets of ``size`` nodes from ``universe``.

    The efficiency experiments (Section VII-C) join synthetic node sets;
    disjointness matches the paper's group semantics.
    """
    rng = np.random.default_rng(seed)
    universe = list(universe)
    if count * size > len(universe):
        raise GraphValidationError(
            f"cannot draw {count} x {size} disjoint nodes from {len(universe)}"
        )
    chosen = rng.choice(len(universe), size=count * size, replace=False)
    return [
        sorted(universe[int(i)] for i in chosen[c * size : (c + 1) * size])
        for c in range(count)
    ]


def yeast_node_sets(count: int, size: int = 50, seed: int = 7) -> List[List[int]]:
    """Disjoint node sets drawn from the Yeast graph."""
    data = yeast()
    return sample_node_sets(range(data.graph.num_nodes), count, size, seed)


def dblp_node_sets(count: int, size: int = 50, seed: int = 7) -> List[List[int]]:
    """Disjoint node sets drawn from the DBLP graph."""
    data = dblp()
    return sample_node_sets(range(data.graph.num_nodes), count, size, seed)


def query_graph_with_edges(num_edges: int) -> QueryGraph:
    """3-vertex query graphs with ``|E_Q| = 2 .. 6`` (Fig. 7(b)/8(b)).

    * 2: chain ``R1 -> R2 -> R3``
    * 3: directed 3-cycle
    * 4: cycle plus one reverse edge
    * 5: cycle plus two reverse edges
    * 6: fully bidirectional triangle
    """
    base = [(0, 1), (1, 2)]
    extras = [(2, 0), (1, 0), (2, 1), (0, 2)]
    if not (2 <= num_edges <= 6):
        raise GraphValidationError(f"|E_Q| must be in [2, 6], got {num_edges}")
    return QueryGraph(3, base + extras[: num_edges - 2])


def link_prediction_sets(
    dataset: str,
) -> Tuple[Graph, List[int], List[int]]:
    """The (graph, P, Q) the paper uses for link prediction per dataset.

    * DBLP: the DB and AI areas;
    * Yeast: partitions 3-U and 8-D (the two largest);
    * YouTube: groups 1 and 5.
    """
    name = dataset.lower()
    if name == "dblp":
        data = dblp()
        return data.graph, data.areas["DB"], data.areas["AI"]
    if name == "yeast":
        data = yeast()
        left, right = data.largest_pair
        return data.graph, left, right
    if name == "youtube":
        data = youtube_small()
        return data.graph, data.group(1), data.group(5)
    raise GraphValidationError(f"unknown dataset {dataset!r}")
