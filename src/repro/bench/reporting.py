"""Session-level report registry for the benchmark suite.

Benchmark modules register zero-arg reporter callables that print the
paper-style sweep tables; the pytest session fixture in
``benchmarks/conftest.py`` invokes :func:`print_all_reports` at the end
of the run.  Living inside the installed package (rather than in a
conftest) keeps the registry a singleton regardless of how pytest
imports the benchmark modules.
"""

from __future__ import annotations

from typing import Callable, List

_REPORTERS: List[Callable[[], None]] = []


def register_reporter(fn: Callable[[], None]) -> Callable[[], None]:
    """Register a reporter; returns it unchanged (decorator-friendly)."""
    _REPORTERS.append(fn)
    return fn


def print_all_reports() -> None:
    """Run every registered reporter (idempotent per registration)."""
    if not _REPORTERS:
        return
    print("\n")
    print("#" * 72)
    print("# Paper-reproduction sweep tables (recorded in EXPERIMENTS.md)")
    print("#" * 72)
    for reporter in _REPORTERS:
        print()
        reporter()


def clear_reporters() -> None:
    """Drop all registrations (used by unit tests of the harness)."""
    _REPORTERS.clear()
