"""Per-``(graph, measure)`` cache of bound and plan artifacts.

Three artifact kinds are cached, keyed by the node set that
parameterises them (empty for the data-independent ``X`` bound) plus
the walk depth ``d``:

* **Y bounds** (Theorem 1): the reach-mass suffix table built by
  :class:`repro.core.bounds.YBound` depends only on
  ``(graph, params, P, d)`` — not on the right set, not on ``k`` — so
  every query edge of an n-way join whose left set is ``P`` (every edge
  of a star spec, repeated sets of a clique spec) and every ``PJ``
  restart / ``PJ-i`` refinement over those edges can share one build.
  Each build costs a ``d``-step propagation over the whole edge set
  (``O(d |E_G|)``); sharing turns per-edge builds into one.
* **Restricted-tail plans** (:class:`repro.core.two_way.backward._RestrictedTail`):
  the row-sliced submatrix operators for the final walk steps depend
  only on ``(graph, rows, d)``.  ``B-BJ``'s *lean* scorer — the path
  taken when no walk cache is attached (``share_walks=False`` specs,
  standalone contexts) — reuses the plan across repeated ``all_pairs``
  calls and across edges with the same left set instead of re-slicing
  the transition matrix.  With a walk cache attached ``B-BJ`` scores
  through full resumable blocks it donates to the cache, which needs no
  tail plan, so those runs never touch this entry kind.
* **X bounds** (Lemma 2): the closed-form geometric tail depends only
  on ``(params, d)``, so it is keyed by the empty node set.  Cheap to
  build, but ``F-IDJ`` and ``B-IDJ-X`` used to rebuild it per join
  instance — under ``PJ``'s restart refills that is one rebuild per
  refill; the cache serves it once per depth, and the hits land in the
  engine stats like every other bound hit.

The same cache serves the measure-generic joins: a cache built for a
non-DHT measure (its ``params`` is the measure's cache identity, e.g. a
:class:`~repro.walks.kernels.PPRBlockKernel`) memoises that measure's
reach-mass tail bounds under the same ``("y", P, d)`` keys.  Because
every cache is private to one ``(graph, measure)`` pair — enforced by
the context/spec validation — DHT and PPR artifacts can never collide
even when their node-set-plus-depth keys coincide.

The cache is deliberately *generic*: artifacts are produced by caller
supplied zero-argument builders, so this module depends on neither
:mod:`repro.core.bounds` nor the join algorithms (no import cycles).
Capacity is a single LRU over all kinds; hit/build counts are mirrored
into :class:`repro.walks.engine.WalkEngineStats` (``bound_cache_hits``,
``plan_cache_hits``) so benchmarks read one counter source.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Tuple

from repro.graph.validation import GraphValidationError
from repro.walks.engine import WalkEngine

if TYPE_CHECKING:  # avoid a runtime cycle: core.dht imports repro.walks
    from repro.core.dht import DHTParams

Key = Tuple[str, Tuple[int, ...], int]


@dataclass
class BoundCacheStats:
    """Hit/build accounting, cumulative since the last reset."""

    y_hits: int = 0
    y_builds: int = 0
    plan_hits: int = 0
    plan_builds: int = 0
    x_hits: int = 0
    x_builds: int = 0
    evictions: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.y_hits = 0
        self.y_builds = 0
        self.plan_hits = 0
        self.plan_builds = 0
        self.x_hits = 0
        self.x_builds = 0
        self.evictions = 0


class BoundPlanCache:
    """LRU cache of Y-bound and tail-plan artifacts for one engine.

    Parameters
    ----------
    engine:
        The graph's walk engine; cached artifacts are only valid for its
        graph.
    params:
        The measure identity the bounds are folded with: DHT
        coefficients, a block kernel, or any hashable value object.
        Tail plans do not depend on ``params``, but keeping one cache
        per ``(engine, measure)`` pair mirrors
        :class:`repro.walks.cache.WalkCache` and keeps the validation
        (and cross-measure isolation) story uniform.
    max_entries:
        LRU bound over all artifact kinds together.  A Y bound costs
        ``O(d |V_G|)`` floats, a tail plan a few row-sliced sparse
        operators; the default keeps worst-case retention modest.
    """

    def __init__(
        self, engine: WalkEngine, params: "DHTParams | object", max_entries: int = 64
    ) -> None:
        if max_entries < 1:
            raise GraphValidationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self._engine = engine
        self._params = params
        self._max_entries = max_entries
        self._entries: "OrderedDict[Key, object]" = OrderedDict()
        # Shared across concurrent queries by the service tier: one
        # re-entrant lock serialises lookup-or-build and the LRU, so an
        # artifact is built at most once even under contention (a
        # governed build may checkpoint back into this cache, hence
        # re-entrant).
        self._lock = threading.RLock()
        self.stats = BoundCacheStats()

    @property
    def engine(self) -> WalkEngine:
        """The engine cached artifacts were built against."""
        return self._engine

    @property
    def params(self) -> "DHTParams | object":
        """The measure identity cached bounds were folded with."""
        return self._params

    @property
    def max_entries(self) -> int:
        """LRU capacity over all artifact kinds."""
        return self._max_entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every cached artifact (stats are kept)."""
        with self._lock:
            self._entries.clear()

    @staticmethod
    def node_set_key(nodes: Iterable[int]) -> Tuple[int, ...]:
        """Canonical hashable form of a node set (sorted, deduplicated).

        Validated node sets preserve first-seen order, so two joins over
        the same *set* may list it differently; sorting makes the cache
        key order-insensitive, matching the artifacts' semantics (both
        the reach-mass propagation and the tail plan see ``P`` as a set).
        """
        return tuple(sorted({int(u) for u in nodes}))

    # ------------------------------------------------------------------
    # Lookup / build
    # ------------------------------------------------------------------

    def y_bound(self, sources: Iterable[int], d: int, build: Callable[[], object]):
        """The ``Y_l^+(P, .)`` bound for ``P = sources``, built at most once.

        ``build`` must return a :class:`repro.core.bounds.YBound`
        constructed from exactly these sources and ``d`` on this cache's
        engine/params; it runs only on a miss.
        """
        return self._get(("y", self.node_set_key(sources), int(d)), build)

    def peek_y_bound(self, sources: Iterable[int], d: int):
        """Pure probe: the memoised ``Y`` bound for ``(sources, d)``, or
        ``None``.

        Unlike :meth:`y_bound` this never builds, never counts a hit,
        and never reorders the LRU — the planner uses it to read
        already-paid-for reach-mass tails without perturbing either the
        cache or the engine's accounting.
        """
        with self._lock:
            return self._entries.get(("y", self.node_set_key(sources), int(d)))

    def tail_plan(self, rows: Iterable[int], d: int, build: Callable[[], object]):
        """The restricted-tail plan for ``rows`` at depth ``d``.

        ``build`` must return the plan for exactly these rows; it runs
        only on a miss.
        """
        return self._get(("tail", self.node_set_key(rows), int(d)), build)

    def x_bound(self, d: int, build: Callable[[], object]):
        """The closed-form ``X_l^+`` bound at depth ``d``, built at most once.

        ``X`` depends only on this cache's params and ``d`` (Lemma 2 —
        no node set, no data), so the key carries the empty node set.
        ``build`` must return a :class:`repro.core.bounds.XBound` (or a
        measure's closed-form tail) for this cache's params; it runs
        only on a miss.
        """
        return self._get(("x", (), int(d)), build)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _get(self, key: Key, build: Callable[[], object]):
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is not None:
                self._entries.move_to_end(key)
                if key[0] == "y":
                    self.stats.y_hits += 1
                    self._engine.stats.add("bound_cache_hits", 1)
                elif key[0] == "x":
                    self.stats.x_hits += 1
                    self._engine.stats.add("bound_cache_hits", 1)
                else:
                    self.stats.plan_hits += 1
                    self._engine.stats.add("plan_cache_hits", 1)
                return artifact
            artifact = build()
            if key[0] == "y":
                self.stats.y_builds += 1
            elif key[0] == "x":
                self.stats.x_builds += 1
            else:
                self.stats.plan_builds += 1
            self._entries[key] = artifact
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return artifact
