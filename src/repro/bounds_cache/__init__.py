"""Shared bound/plan cache: reuse pruning artifacts across query edges.

PR 1 made the *walks* shared (:class:`repro.walks.cache.WalkCache`); this
package shares the other half of the paper's pruning machinery — the
``Y_l^+`` reach-mass bounds of Theorem 1 and the restricted-tail
propagation plans — across every 2-way context that agrees on the
``(graph, params)`` pair.  Star and clique :class:`NWayJoinSpec` query
graphs repeat the same left node set on many edges, and ``PJ``'s restart
refills re-materialise the same edges over and over; with a shared
:class:`BoundPlanCache` each ``(P, d)`` reach-mass propagation and each
``(rows, d)`` tail plan is built exactly once per join lifetime.
"""

from repro.bounds_cache.cache import BoundCacheStats, BoundPlanCache

__all__ = [
    "BoundCacheStats",
    "BoundPlanCache",
]
