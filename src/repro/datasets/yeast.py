"""Synthetic stand-in for the Yeast protein-protein interaction network.

The real dataset (Bu et al. [35], Section VII-A): 2,361 proteins, 7,182
undirected unweighted interactions, with nodes partitioned into 13
non-overlapping type classes; the paper names the three largest ``3-U``,
``8-D``, and ``5-F`` and uses them as join node sets.

:func:`generate_yeast` reproduces the *scale and topology class* exactly
(duplication-divergence growth, the standard PPI generative model) and
assigns 13 skewed type partitions with the paper's names for the three
it uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.graph.builders import duplication_divergence
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError

#: Partition names; index 2, 7, and 4 carry the paper's set names.
PARTITION_NAMES = (
    "1-A", "2-B", "3-U", "4-C", "5-F", "6-G", "7-H",
    "8-D", "9-I", "10-J", "11-K", "12-L", "13-M",
)

#: Relative partition sizes: "3-U" and "8-D" are the two largest
#: (the paper picks them for link prediction), "5-F" third.
_PARTITION_SHARES = (
    0.05, 0.05, 0.22, 0.05, 0.12, 0.05, 0.05,
    0.18, 0.05, 0.05, 0.05, 0.04, 0.04,
)


@dataclass
class YeastDataset:
    """The PPI-like graph and its 13 type partitions."""

    graph: Graph
    partitions: Dict[str, List[int]]

    @property
    def largest_pair(self):
        """The two node sets the paper joins for link prediction."""
        return self.partitions["3-U"], self.partitions["8-D"]


def generate_yeast(
    num_proteins: int = 2400,
    retention: float = 0.35,
    seed: int = 2014,
) -> YeastDataset:
    """Generate a Yeast-scale PPI network with 13 type partitions.

    ``retention`` tunes the duplication-divergence density; the default
    lands near the real graph's ~3 interactions per protein.
    """
    if num_proteins < 100:
        raise GraphValidationError("num_proteins must be >= 100")
    rng = np.random.default_rng(seed)
    graph = duplication_divergence(num_proteins, retention=retention, rng=rng)

    from repro.datasets.synthetic import partition_sizes

    sizes = partition_sizes(num_proteins, _PARTITION_SHARES)
    order = rng.permutation(num_proteins)
    partitions: Dict[str, List[int]] = {}
    start = 0
    for name, size in zip(PARTITION_NAMES, sizes):
        partitions[name] = sorted(int(u) for u in order[start : start + size])
        start += size
    return YeastDataset(graph=graph, partitions=partitions)
