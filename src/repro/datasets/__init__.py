"""Dataset substitutes for the paper's three evaluation graphs."""

from repro.datasets.dblp import DBLPDataset, generate_dblp
from repro.datasets.splits import (
    CliqueSplit,
    LinkSplit,
    remove_edge_per_clique,
    remove_random_cross_edges,
)
from repro.datasets.yeast import YeastDataset, generate_yeast
from repro.datasets.youtube import YouTubeDataset, generate_youtube

__all__ = [
    "CliqueSplit",
    "DBLPDataset",
    "LinkSplit",
    "YeastDataset",
    "YouTubeDataset",
    "generate_dblp",
    "generate_yeast",
    "generate_youtube",
    "remove_edge_per_clique",
    "remove_random_cross_edges",
]
