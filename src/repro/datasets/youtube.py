"""Synthetic stand-in for the YouTube social graph.

The real dataset (Mislove et al. [36], Section VII-A): 1.1M users, 3M
undirected unweighted friendship edges, with user-created interest
groups as node sets (the paper joins "groups with ids 1, 5, and 88").

:func:`generate_youtube` builds a preferential-attachment graph at a
configurable scale (default 30k nodes — 1.1M is not tractable for
repeated pure-Python benchmarking; the ~37x scale factor is recorded in
EXPERIMENTS.md) with the same edges-per-node ratio (~2.7), and plants
numbered interest groups grown by short random walks so each group is a
locally clustered community, like real interest groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.graph.builders import preferential_attachment
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError


@dataclass
class YouTubeDataset:
    """The social graph plus numbered interest groups."""

    graph: Graph
    groups: Dict[int, List[int]]

    def group(self, group_id: int) -> List[int]:
        """Members of group ``group_id`` (raises ``KeyError`` if absent)."""
        return self.groups[group_id]


def generate_youtube(
    num_users: int = 30_000,
    attachment: int = 3,
    num_groups: int = 100,
    group_size_mean: float = 60.0,
    closure_fraction: float = 0.5,
    seed: int = 2014,
) -> YouTubeDataset:
    """Generate a YouTube-like graph with planted interest groups.

    Pure preferential attachment has near-zero clustering, unlike real
    friendship graphs, so after growing the backbone we add
    ``closure_fraction * num_users`` triangle-closing edges (each
    connecting a random node to one of its 2-hop neighbours).  Groups
    are grown by restarting random walks from a seed user, producing
    connected, clustered memberships.  Group ids run ``1..num_groups``
    (the paper refers to groups by such ids).
    """
    if num_users < 1000:
        raise GraphValidationError("num_users must be >= 1000")
    if num_groups < 1:
        raise GraphValidationError("num_groups must be >= 1")
    rng = np.random.default_rng(seed)
    backbone = preferential_attachment(num_users, m=attachment, rng=rng)
    extra = _closure_edges(backbone, int(closure_fraction * num_users), rng)
    edges = [(u, v, w) for u, v, w in backbone.edges() if u < v] + extra
    graph = Graph.from_undirected_edges(num_users, edges)

    groups: Dict[int, List[int]] = {}
    for gid in range(1, num_groups + 1):
        target = max(5, int(rng.normal(group_size_mean, group_size_mean / 3.0)))
        groups[gid] = _grow_group(graph, target, rng)
    return YouTubeDataset(graph=graph, groups=groups)


def _closure_edges(graph: Graph, count: int, rng: np.random.Generator):
    """Triangle-closing edges: node -> a random friend-of-friend."""
    edges = []
    seen = set()
    attempts = 0
    while len(edges) < count and attempts < count * 10:
        attempts += 1
        u = int(rng.integers(0, graph.num_nodes))
        friends = list(graph.out_neighbors(u))
        if not friends:
            continue
        w = friends[int(rng.integers(0, len(friends)))]
        fof = list(graph.out_neighbors(w))
        if not fof:
            continue
        v = fof[int(rng.integers(0, len(fof)))]
        if v == u or graph.has_edge(u, v):
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        edges.append((key[0], key[1], 1.0))
    return edges


def _grow_group(graph: Graph, target_size: int, rng: np.random.Generator) -> List[int]:
    """Recruit ~``target_size`` members by a restarting random walk."""
    seed_node = int(rng.integers(0, graph.num_nodes))
    members = {seed_node}
    current = seed_node
    steps = 0
    max_steps = target_size * 60
    while len(members) < target_size and steps < max_steps:
        steps += 1
        neighbors = list(graph.out_neighbors(current))
        if not neighbors or rng.random() < 0.12:
            current = seed_node  # restart keeps the group local
            continue
        current = int(neighbors[int(rng.integers(0, len(neighbors)))])
        if rng.random() < 0.75:
            members.add(current)
    return sorted(members)
