"""Scalable building blocks for the dataset substitutes.

The paper's graphs are too large (DBLP: 188k nodes; YouTube: 1.1M) for
``O(n^2)`` Bernoulli sampling, so the community generator here samples a
*target number of edges* with activity-weighted endpoints — ``O(|E|)``
regardless of ``n`` — which preserves the two properties the join
algorithms are sensitive to: heavy-tailed degrees and community
structure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.graph.validation import GraphValidationError

UndirectedEdge = Tuple[int, int, float]


def pareto_activity(n: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Heavy-tailed per-node activity weights (normalised to sum 1).

    Drawn from a Pareto distribution; ``exponent`` around 1.5–2.5 gives
    realistic social/bibliographic degree skew.
    """
    if n < 1:
        raise GraphValidationError(f"need n >= 1, got {n}")
    if exponent <= 0:
        raise GraphValidationError(f"exponent must be > 0, got {exponent}")
    raw = rng.pareto(exponent, size=n) + 1.0
    return raw / raw.sum()


def sample_weighted_edges(
    members: Sequence[int],
    activity: np.ndarray,
    num_edges: int,
    rng: np.random.Generator,
    weight_mean: float = 1.0,
) -> List[UndirectedEdge]:
    """Sample ``num_edges`` distinct undirected edges within ``members``.

    Endpoints are drawn proportionally to ``activity`` (restricted to the
    member set); duplicate pairs and self-pairs are rejected.  Edge
    weights are ``1 + Geometric`` counts with the requested mean
    (mimicking per-pair paper counts).
    """
    members = list(members)
    if len(members) < 2:
        return []
    probs = activity[np.asarray(members)]
    probs = probs / probs.sum()
    member_array = np.asarray(members, dtype=np.int64)
    edges: List[UndirectedEdge] = []
    seen = set()
    attempts = 0
    max_attempts = max(num_edges * 20, 100)
    while len(edges) < num_edges and attempts < max_attempts:
        attempts += 1
        u, v = rng.choice(member_array, size=2, p=probs)
        if u == v:
            continue
        key = (min(int(u), int(v)), max(int(u), int(v)))
        if key in seen:
            continue
        seen.add(key)
        weight = 1.0
        if weight_mean > 1.0:
            weight += float(rng.geometric(1.0 / weight_mean) - 1)
        edges.append((key[0], key[1], weight))
    return edges


def community_graph_edges(
    communities: Sequence[Sequence[int]],
    activity: np.ndarray,
    within_degree: float,
    cross_degree: float,
    rng: np.random.Generator,
    weight_mean: float = 2.0,
) -> List[UndirectedEdge]:
    """Edges for a sparse community graph.

    Each community gets ``within_degree * size / 2`` internal edges;
    the whole graph gets ``cross_degree * n / 2`` cross-community edges
    whose endpoints land in different communities.
    """
    edges: List[UndirectedEdge] = []
    for members in communities:
        count = int(round(within_degree * len(members) / 2.0))
        edges.extend(
            sample_weighted_edges(members, activity, count, rng, weight_mean)
        )
    total = sum(len(c) for c in communities)
    membership: Dict[int, int] = {}
    for c, members in enumerate(communities):
        for u in members:
            membership[int(u)] = c
    all_nodes = np.asarray(sorted(membership), dtype=np.int64)
    probs = activity[all_nodes]
    probs = probs / probs.sum()
    target_cross = int(round(cross_degree * total / 2.0))
    seen = set()
    attempts = 0
    while len(seen) < target_cross and attempts < target_cross * 20:
        attempts += 1
        u, v = rng.choice(all_nodes, size=2, p=probs)
        u, v = int(u), int(v)
        if u == v or membership[u] == membership[v]:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        weight = 1.0
        if weight_mean > 1.0:
            weight += float(rng.geometric(1.0 / weight_mean) - 1)
        edges.append((key[0], key[1], weight))
    return edges


def partition_sizes(total: int, shares: Sequence[float]) -> List[int]:
    """Split ``total`` into integer partition sizes proportional to
    ``shares`` (largest-remainder rounding; sizes sum exactly)."""
    shares = np.asarray(shares, dtype=np.float64)
    if np.any(shares <= 0):
        raise GraphValidationError("shares must be positive")
    fractions = shares / shares.sum() * total
    sizes = np.floor(fractions).astype(int)
    remainder = total - int(sizes.sum())
    order = np.argsort(-(fractions - sizes))
    for i in range(remainder):
        sizes[order[i % len(sizes)]] += 1
    if np.any(sizes == 0):
        sizes[sizes == 0] = 1
        while sizes.sum() > total:
            sizes[int(np.argmax(sizes))] -= 1
    return [int(s) for s in sizes]
