"""Synthetic stand-in for the paper's DBLP co-authorship graph.

The real dataset (Section VII-A): 188k authors, 1,140k weighted edges
(edge weight = number of co-authored papers), node sets = research areas.
It is not downloadable in this environment, so :func:`generate_dblp`
builds a structurally equivalent graph:

* research areas as activity-weighted communities (heavy-tailed
  collaboration counts, strong intra-area clustering);
* integer "papers together" edge weights;
* a publication *year* per edge, enabling the paper's "graph as of
  1 January 2010" test snapshots (Section VII-B);
* planted cross-area **labs** — small groups of prolific authors from
  distinct areas with heavy mutual edges.  These give the Table III
  experiment a verifiable ground truth: a triangle 3-way join should
  surface lab members as its top answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.datasets.synthetic import community_graph_edges, pareto_activity
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError

DEFAULT_AREAS = ("DB", "AI", "SYS")

_FIRST = (
    "Alex", "Bram", "Chen", "Dana", "Elif", "Farid", "Grace", "Hiro",
    "Ines", "Jun", "Kira", "Lars", "Mei", "Nadia", "Omar", "Priya",
    "Quinn", "Rosa", "Sven", "Tara", "Uri", "Vera", "Wei", "Xiu",
    "Yuki", "Zara",
)
_LAST = (
    "Almeida", "Bauer", "Cheng", "Dorsey", "Endo", "Fischer", "Gupta",
    "Haddad", "Ivanov", "Jensen", "Kato", "Lindgren", "Moreau", "Novak",
    "Okafor", "Petrov", "Qureshi", "Rossi", "Sato", "Tanaka", "Ueda",
    "Vargas", "Weber", "Xu", "Yamamoto", "Zhou",
)


@dataclass
class Lab:
    """A planted cross-area collaboration clique (ground truth for
    Table III-style queries)."""

    members: Tuple[int, ...]
    areas: Tuple[str, ...]


@dataclass
class DBLPDataset:
    """The generated graph plus its area node sets and edge timestamps."""

    graph: Graph
    areas: Dict[str, List[int]]
    edge_years: Dict[Tuple[int, int], int]
    labs: List[Lab]

    def snapshot_before(self, year: int) -> Graph:
        """Co-authorship graph restricted to papers published before
        ``year`` — the paper's link-prediction test graph ``T``."""
        removed = [pair for pair, y in self.edge_years.items() if y >= year]
        return self.graph.without_edges(removed)

    def top_authors(self, area: str, count: int) -> List[int]:
        """The ``count`` most prolific authors of ``area`` (by total
        papers, i.e. weighted degree) — Section VII-B selects the top 100
        per area this way."""
        members = self.areas[area]
        graph = self.graph
        volume = {
            u: sum(graph.out_neighbors(u).values()) for u in members
        }
        ranked = sorted(members, key=lambda u: (-volume[u], u))
        return ranked[:count]


def generate_dblp(
    authors_per_area: int = 1000,
    area_names: Sequence[str] = DEFAULT_AREAS,
    mean_coauthors: float = 9.0,
    cross_area_degree: float = 1.2,
    num_labs: int = 6,
    lab_weight: float = 12.0,
    year_range: Tuple[int, int] = (2000, 2012),
    seed: int = 2014,
) -> DBLPDataset:
    """Generate a DBLP-like co-authorship graph.

    Parameters mirror the structural knobs of the real data: per-area
    sizes, mean collaboration degree within an area, cross-area
    collaboration rate, and the publication-year range used by snapshot
    splits.  Planted labs (``num_labs`` cliques spanning all areas, edge
    weight ``lab_weight`` papers) provide the recoverable ground truth
    for the qualitative Table III experiment.
    """
    if authors_per_area < 10:
        raise GraphValidationError("authors_per_area must be >= 10")
    rng = np.random.default_rng(seed)
    num_areas = len(area_names)
    n = authors_per_area * num_areas
    activity = pareto_activity(n, exponent=1.8, rng=rng)
    communities = [
        list(range(a * authors_per_area, (a + 1) * authors_per_area))
        for a in range(num_areas)
    ]
    edges = community_graph_edges(
        communities,
        activity,
        within_degree=mean_coauthors,
        cross_degree=0.0,  # cross edges are added by the closure process
        rng=rng,
        weight_mean=2.0,
    )
    edges.extend(
        _cross_area_edges(
            communities,
            activity,
            edges,
            target=int(round(cross_area_degree * n / 2.0)),
            rng=rng,
        )
    )

    # Plant labs: one prolific author per area, clique-connected with
    # heavy weights so their mutual DHT dominates area-level noise.
    labs: List[Lab] = []
    used: set = set()
    for _ in range(num_labs):
        members: List[int] = []
        for a in range(num_areas):
            pool = communities[a]
            probs = activity[np.asarray(pool)]
            probs = probs / probs.sum()
            while True:
                candidate = int(rng.choice(np.asarray(pool), p=probs))
                if candidate not in used:
                    used.add(candidate)
                    members.append(candidate)
                    break
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                edges.append((members[i], members[j], float(lab_weight)))
        labs.append(Lab(tuple(members), tuple(area_names)))

    labels = _author_names(n, rng)
    graph = Graph.from_undirected_edges(n, edges, labels=labels)

    edge_years = _assign_edge_years(graph, year_range, rng)
    areas = {name: communities[a] for a, name in enumerate(area_names)}
    return DBLPDataset(graph=graph, areas=areas, edge_years=edge_years, labs=labs)


def _cross_area_edges(
    communities,
    activity: np.ndarray,
    within_edges,
    target: int,
    rng: np.random.Generator,
    seed_fraction: float = 0.3,
):
    """Cross-area co-authorships grown by triadic closure.

    A seed fraction is activity-sampled (chance encounters between
    prolific authors); the rest extend an existing cross edge
    ``(u, v)`` by introducing a collaborator of ``u`` to ``v`` (or vice
    versa).  The closure wave embeds cross-area edges in shared
    neighbourhoods — the property that makes the paper's link-prediction
    experiment work on real DBLP, where new cross-area ties
    overwhelmingly appear between already-close authors.
    """
    membership = {}
    for c, members in enumerate(communities):
        for u in members:
            membership[u] = c
    neighbors = {u: set() for u in membership}
    for u, v, _w in within_edges:
        neighbors[u].add(v)
        neighbors[v].add(u)

    def weight() -> float:
        return 1.0 + float(rng.geometric(0.5) - 1)

    edges = []
    seen = set()

    def try_add(u: int, v: int) -> bool:
        if u == v or membership[u] == membership[v]:
            return False
        key = (min(u, v), max(u, v))
        if key in seen or v in neighbors[u]:
            return False
        seen.add(key)
        neighbors[u].add(v)
        neighbors[v].add(u)
        edges.append((key[0], key[1], weight()))
        return True

    all_nodes = np.asarray(sorted(membership), dtype=np.int64)
    probs = activity[all_nodes]
    probs = probs / probs.sum()
    num_seed = max(1, int(round(seed_fraction * target)))
    attempts = 0
    while len(edges) < num_seed and attempts < num_seed * 30:
        attempts += 1
        u, v = rng.choice(all_nodes, size=2, p=probs)
        try_add(int(u), int(v))
    attempts = 0
    while len(edges) < target and attempts < target * 30:
        attempts += 1
        u, v, _w = edges[int(rng.integers(0, len(edges)))]
        if rng.random() < 0.5:
            u, v = v, u
        # Introduce one of u's same-area collaborators to v.
        candidates = [
            x for x in neighbors[u] if membership[x] == membership[u]
        ]
        if not candidates:
            continue
        x = candidates[int(rng.integers(0, len(candidates)))]
        try_add(x, int(v))
    return edges


def _assign_edge_years(
    graph: Graph,
    year_range: Tuple[int, int],
    rng: np.random.Generator,
    late_fraction: float = 0.25,
) -> Dict[Tuple[int, int], int]:
    """Assign a first-publication year to every undirected edge.

    Real collaboration networks grow by *triadic closure*: new
    co-authorships appear preferentially between authors who already
    share collaborators.  We reproduce that by placing the late
    (post-snapshot) years preferentially on high-common-neighbour edges
    — this is what makes the paper's "predict post-2010 edges from the
    pre-2010 snapshot" experiment meaningful (uniformly random years
    would make the positives structurally indistinguishable noise).
    """
    year_lo, year_hi = year_range
    if year_lo > year_hi:
        raise GraphValidationError(f"bad year range {year_range}")
    pairs = [(u, v) for u, v, _w in graph.edges() if u < v]
    closure = np.empty(len(pairs), dtype=np.float64)
    neighbor_sets = [set(graph.out_neighbors(u)) for u in graph.nodes()]
    for i, (u, v) in enumerate(pairs):
        closure[i] = len(neighbor_sets[u] & neighbor_sets[v])
    # Late edges: sampled with probability proportional to (1 + cn)^2,
    # so well-embedded pairs collaborate last — and are recoverable.
    weights = (1.0 + closure) ** 2
    weights /= weights.sum()
    num_late = int(round(late_fraction * len(pairs)))
    late_idx = set(
        rng.choice(len(pairs), size=num_late, replace=False, p=weights).tolist()
    )
    cutoff = year_lo + max(1, int(0.75 * (year_hi - year_lo)))
    edge_years: Dict[Tuple[int, int], int] = {}
    for i, pair in enumerate(pairs):
        if i in late_idx:
            edge_years[pair] = int(rng.integers(cutoff, year_hi + 1))
        else:
            edge_years[pair] = int(rng.integers(year_lo, cutoff))
    return edge_years


def _author_names(n: int, rng: np.random.Generator) -> List[str]:
    """Distinct synthetic author names ("Grace Cheng-0042")."""
    names = []
    for i in range(n):
        first = _FIRST[int(rng.integers(0, len(_FIRST)))]
        last = _LAST[int(rng.integers(0, len(_LAST)))]
        names.append(f"{first} {last}-{i:04d}")
    return names
