"""Train/test graph derivation for the effectiveness experiments
(Section VII-B).

The paper distinguishes the *true* graph ``G`` from a *test* graph ``T``
on which joins are executed:

* **DBLP**: ``T`` keeps only pre-cutoff edges (handled by
  :meth:`repro.datasets.dblp.DBLPDataset.snapshot_before`);
* **Yeast / YouTube link prediction**: ``T`` removes a random half of the
  edges between the two query node sets;
* **3-clique prediction**: ``T`` removes one random edge from each
  cross-set 3-clique.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError

Pair = Tuple[int, int]
Triple = Tuple[int, int, int]


@dataclass
class LinkSplit:
    """A link-prediction split: test graph + the held-out cross pairs."""

    test_graph: Graph
    removed_pairs: List[Pair]


@dataclass
class CliqueSplit:
    """A 3-clique split: test graph, the cliques, and the edge removed
    from each."""

    test_graph: Graph
    cliques: List[Triple]
    removed_pairs: List[Pair]


def cross_edges(graph: Graph, left: Sequence[int], right: Sequence[int]) -> List[Pair]:
    """All undirected edges with one endpoint in each set (as
    ``(l, r)`` pairs; a pair appears once even though the graph stores
    both arcs)."""
    right_set = set(right)
    pairs = []
    for l in left:
        for neighbor in graph.out_neighbors(l):
            if neighbor in right_set and neighbor != l:
                pairs.append((l, neighbor))
    return pairs


def remove_random_cross_edges(
    graph: Graph,
    left: Sequence[int],
    right: Sequence[int],
    fraction: float = 0.5,
    seed: int = 0,
) -> LinkSplit:
    """Drop a random ``fraction`` of the ``(left, right)`` cross edges.

    This is the paper's Yeast/YouTube link-prediction protocol.  The
    removed pairs are the positives the join should re-discover.
    """
    if not (0.0 < fraction <= 1.0):
        raise GraphValidationError(f"fraction must be in (0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    pairs = cross_edges(graph, left, right)
    if not pairs:
        raise GraphValidationError("no cross edges between the given node sets")
    count = max(1, int(round(fraction * len(pairs))))
    chosen_idx = rng.choice(len(pairs), size=count, replace=False)
    removed = [pairs[i] for i in chosen_idx]
    return LinkSplit(test_graph=graph.without_edges(removed), removed_pairs=removed)


def enumerate_cross_cliques(
    graph: Graph,
    set_p: Sequence[int],
    set_q: Sequence[int],
    set_r: Sequence[int],
) -> List[Triple]:
    """All 3-cliques ``(p, q, r)`` with one node in each set.

    Assumes an undirected (symmetrised) graph.  A clique is reported once
    per ordered set-assignment — i.e. as ``(p, q, r)`` with ``p in P``
    etc. — which is the unit the 3-way join predicts.
    """
    q_set = set(set_q)
    r_set = set(set_r)
    cliques: List[Triple] = []
    for p in set_p:
        p_neighbors = set(graph.out_neighbors(p))
        q_candidates = p_neighbors & q_set
        r_candidates = p_neighbors & r_set
        for q in q_candidates:
            if q == p:
                continue
            q_neighbors = graph.out_neighbors(q)
            for r in r_candidates:
                if r == p or r == q:
                    continue
                if r in q_neighbors:
                    cliques.append((p, q, r))
    return cliques


def remove_edge_per_clique(
    graph: Graph,
    set_p: Sequence[int],
    set_q: Sequence[int],
    set_r: Sequence[int],
    seed: int = 0,
) -> CliqueSplit:
    """Remove one random edge from each cross-set 3-clique.

    The paper's 3-clique-prediction protocol: the damaged cliques are the
    positives a triangle 3-way join on ``T`` should rank highest.
    """
    rng = np.random.default_rng(seed)
    cliques = enumerate_cross_cliques(graph, set_p, set_q, set_r)
    if not cliques:
        raise GraphValidationError("no cross-set 3-cliques in the graph")
    removed: set = set()
    for p, q, r in cliques:
        edges = [(p, q), (q, r), (p, r)]
        u, v = edges[int(rng.integers(0, 3))]
        removed.add((min(u, v), max(u, v)))
    removed_pairs = sorted(removed)
    return CliqueSplit(
        test_graph=graph.without_edges(removed_pairs),
        cliques=cliques,
        removed_pairs=removed_pairs,
    )
