"""The Pull/Bound Rank Join driver (PBRJ [28], Algorithm 1's steps 5–14).

Generic over: the query graph shape, the monotone aggregate, and the
per-edge inputs (materialised for ``AP``, lazily extendable for
``PJ``/``PJ-i``).  The driver pulls pairs round-robin, expands each new
pair into candidate answers via the buffers (Fig. 4), maintains the
top-``k`` output queue ``O``, and stops once the corner bound ``tau``
certifies that no future answer can displace the current k-th best.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.nway.aggregates import Aggregate
from repro.core.nway.candidates import CandidateAnswer, CandidateGenerator
from repro.core.nway.query_graph import QueryGraph
from repro.graph.validation import GraphValidationError
from repro.rankjoin.hrjn import RoundRobinPuller, corner_bound
from repro.rankjoin.inputs import RankJoinInput


@dataclass
class RankJoinStats:
    """Instrumentation of one PBRJ run (used by benchmarks and tests)."""

    pulls: int = 0
    candidates_generated: int = 0
    refills: int = 0
    final_threshold: float = math.inf
    pulls_per_edge: List[int] = field(default_factory=list)


class PBRJ:
    """One rank-join execution over per-edge sorted inputs.

    Parameters
    ----------
    query_graph:
        The query shape; ``inputs[e]`` must stream the 2-way join of
        ``query_graph.edges[e]``.
    aggregate:
        Monotone aggregate ``f``.
    inputs:
        One :class:`~repro.rankjoin.inputs.RankJoinInput` per query edge.
    k:
        Number of answers to return.
    """

    def __init__(
        self,
        query_graph: QueryGraph,
        aggregate: Aggregate,
        inputs: Sequence[RankJoinInput],
        k: int,
    ) -> None:
        if len(inputs) != query_graph.num_edges:
            raise GraphValidationError(
                f"{len(inputs)} inputs for {query_graph.num_edges} query edges"
            )
        if k < 0:
            raise GraphValidationError(f"k must be >= 0, got {k}")
        self._query = query_graph
        self._aggregate = aggregate
        self._inputs = list(inputs)
        self._k = k
        self.stats = RankJoinStats()

    def run(self) -> List[CandidateAnswer]:
        """Execute the rank join and return the top-``k`` answers sorted
        by descending aggregate score (ties by node tuple)."""
        k = self._k
        if k == 0:
            return []
        generator = CandidateGenerator(self._query, self._aggregate)
        puller = RoundRobinPuller(len(self._inputs))
        # O: min-heap capped at k entries.  The heap key inverts the node
        # tuple so that eviction order matches the final sort order
        # (-score, nodes): on score ties the lexicographically smallest
        # tuple is preferred, exactly as in the NL baseline.
        output: List[Tuple[Tuple[float, Tuple[int, ...]], CandidateAnswer]] = []
        tau = math.inf

        def heap_key(answer: CandidateAnswer) -> Tuple[float, Tuple[int, ...]]:
            return (answer.score, tuple(-node for node in answer.nodes))

        def kth_best() -> float:
            return output[0][0][0] if len(output) >= k else -math.inf

        while len(output) < k or kth_best() < tau:
            edge = puller.next_input(self._inputs)
            if edge is None:
                break  # every input exhausted; return what we have
            before = self._inputs[edge].refill_calls
            pair = self._inputs[edge].pull()
            self.stats.refills += self._inputs[edge].refill_calls - before
            if pair is None:
                # This input just reported exhaustion; tau may now drop.
                tau = corner_bound(self._aggregate, self._inputs)
                continue
            self.stats.pulls += 1
            for answer in generator.on_new_pair(edge, pair):
                self.stats.candidates_generated += 1
                item = (heap_key(answer), answer)
                if len(output) < k:
                    heapq.heappush(output, item)
                elif item[0] > output[0][0]:
                    heapq.heapreplace(output, item)
            tau = corner_bound(self._aggregate, self._inputs)

        self.stats.final_threshold = tau
        self.stats.pulls_per_edge = [inp.pulled for inp in self._inputs]
        answers = [entry[1] for entry in output]
        answers.sort(key=lambda a: (-a.score, a.nodes))
        return answers
