"""The HRJN corner bound and pull strategy (Ilyas et al. [29]).

The Pull/Bound Rank Join framework (PBRJ [28]) is parameterised by a
*bounding scheme* and a *pull strategy*; the paper instantiates both from
HRJN: the **corner bound** as the stopping threshold ``tau`` and
round-robin pulling over the per-edge inputs (Algorithm 1, steps 7 and
14).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.core.nway.aggregates import Aggregate
from repro.rankjoin.inputs import RankJoinInput


def corner_bound(aggregate: Aggregate, inputs: Sequence[RankJoinInput]) -> float:
    """Upper bound ``tau`` on the score of any not-yet-generated result.

    Every future result must include at least one *future* pair from some
    non-exhausted input ``e`` (results whose pairs have all been pulled
    were generated at the time their last pair arrived).  A future pair
    on ``e`` scores at most ``last_e``; pairs on every other input score
    at most that input's first (maximum) score.  With ``f`` monotone:

    ``tau = max over non-exhausted e of
    f(first_1, ..., last_e, ..., first_n)``.

    Before every input has produced its first score the bound is
    ``+inf``; once every input is exhausted it is ``-inf``.
    """
    if all(inp.exhausted for inp in inputs):
        return -math.inf
    firsts: List[Optional[float]] = [inp.first_score for inp in inputs]
    if any(score is None for score in firsts):
        return math.inf
    tau = -math.inf
    corner = [float(score) for score in firsts]  # type: ignore[arg-type]
    for e, inp in enumerate(inputs):
        if inp.exhausted:
            continue
        saved = corner[e]
        corner[e] = float(inp.last_score)  # type: ignore[arg-type]
        tau = max(tau, aggregate(corner))
        corner[e] = saved
    return tau


class RoundRobinPuller:
    """Cycle over the inputs, skipping exhausted ones.

    Returns the index of the next input to pull from, or ``None`` when
    everything is exhausted.
    """

    def __init__(self, num_inputs: int) -> None:
        if num_inputs < 1:
            raise ValueError(f"need at least one input, got {num_inputs}")
        self._num_inputs = num_inputs
        self._cursor = -1

    def next_input(self, inputs: Sequence[RankJoinInput]) -> Optional[int]:
        """Index of the next non-exhausted input in round-robin order."""
        for _ in range(self._num_inputs):
            self._cursor = (self._cursor + 1) % self._num_inputs
            if not inputs[self._cursor].exhausted:
                return self._cursor
        return None
