"""Rank-join substrate: PBRJ driver with the HRJN corner bound."""

from repro.rankjoin.hrjn import RoundRobinPuller, corner_bound
from repro.rankjoin.inputs import LazyInput, MaterializedInput, RankJoinInput
from repro.rankjoin.pbrj import PBRJ

__all__ = [
    "PBRJ",
    "LazyInput",
    "MaterializedInput",
    "RankJoinInput",
    "RoundRobinPuller",
    "corner_bound",
]
