"""Pull-based sorted inputs for the rank-join driver.

A rank-join input is a stream of :class:`~repro.core.two_way.base.ScoredPair`
in non-increasing score order.  ``AP`` materialises the whole 2-way join
up front (:class:`MaterializedInput`); ``PJ``/``PJ-i`` expose a top-``m``
prefix plus a refill callback that produces the next pair on demand
(:class:`LazyInput` — the paper's ``getNextNodePair``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.two_way.base import ScoredPair
from repro.graph.validation import GraphValidationError

# Tolerance for the monotonicity guard: refills are computed by different
# code paths (bounded refinement vs batch join) and may differ by float
# rounding noise even though they are mathematically ordered.
_MONOTONICITY_SLACK = 1e-9

RefillFn = Callable[[], Optional[ScoredPair]]


class RankJoinInput:
    """A sorted, pull-based stream with first/last score bookkeeping.

    The HRJN corner bound needs, per input, the *first* (maximum) score
    ever pulled and the *last* (most recent, hence minimum) score pulled.
    """

    def __init__(
        self,
        initial: Sequence[ScoredPair],
        refill: Optional[RefillFn] = None,
        name: str = "input",
    ) -> None:
        self._buffer: List[ScoredPair] = list(initial)
        self._refill = refill
        self._name = name
        self._position = 0
        self._first_score: Optional[float] = None
        self._last_score: Optional[float] = None
        self._exhausted = False
        self._pulled = 0
        self.refill_calls = 0
        for i in range(1, len(self._buffer)):
            if self._buffer[i].score > self._buffer[i - 1].score + _MONOTONICITY_SLACK:
                raise GraphValidationError(
                    f"{name}: initial list not sorted by descending score"
                )

    @property
    def name(self) -> str:
        """Display name (usually the query-graph edge)."""
        return self._name

    @property
    def first_score(self) -> Optional[float]:
        """Highest score pulled so far (``None`` before the first pull)."""
        return self._first_score

    @property
    def last_score(self) -> Optional[float]:
        """Most recent score pulled (``None`` before the first pull)."""
        return self._last_score

    @property
    def exhausted(self) -> bool:
        """Whether the stream has reported end-of-input."""
        return self._exhausted

    @property
    def pulled(self) -> int:
        """Number of pairs pulled so far."""
        return self._pulled

    def pull(self) -> Optional[ScoredPair]:
        """Next pair in descending-score order, or ``None`` at the end."""
        if self._exhausted:
            return None
        if self._position >= len(self._buffer):
            if self._refill is None:
                self._exhausted = True
                return None
            self.refill_calls += 1
            item = self._refill()
            if item is None:
                self._exhausted = True
                return None
            self._buffer.append(item)
        item = self._buffer[self._position]
        self._position += 1
        if self._last_score is not None and item.score > self._last_score + _MONOTONICITY_SLACK:
            raise GraphValidationError(
                f"{self._name}: stream not monotone "
                f"({item.score} after {self._last_score})"
            )
        if self._first_score is None:
            self._first_score = item.score
        self._last_score = item.score
        self._pulled += 1
        return item


class MaterializedInput(RankJoinInput):
    """An input backed by a fully computed, sorted list (used by ``AP``)."""

    def __init__(self, pairs: Sequence[ScoredPair], name: str = "materialized") -> None:
        super().__init__(pairs, refill=None, name=name)


class LazyInput(RankJoinInput):
    """A top-``m`` prefix plus an on-demand refill (used by ``PJ``/``PJ-i``)."""

    def __init__(
        self,
        prefix: Sequence[ScoredPair],
        refill: RefillFn,
        name: str = "lazy",
    ) -> None:
        super().__init__(prefix, refill=refill, name=name)
