"""Directed, weighted graph store used by every other subsystem.

The paper (Section III-A) assumes a directed weighted graph ``G`` stored as
an adjacency list, so that the out-neighbours (and their transition
probabilities) of a node can be enumerated quickly.  :class:`Graph` keeps
that adjacency-list view and additionally exposes compressed sparse row
(CSR) transition matrices for the vectorised random-walk kernels in
:mod:`repro.walks`.

Nodes are dense integer ids ``0 .. num_nodes - 1``; an optional label table
maps ids to human-readable names (author names, protein ids, ...).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.validation import GraphValidationError, validate_edges

Edge = Tuple[int, int, float]


class Graph:
    """A directed, weighted graph with dense integer node ids.

    Parameters
    ----------
    num_nodes:
        Number of nodes; ids are ``0 .. num_nodes - 1``.
    edges:
        Iterable of ``(u, v, weight)`` triples.  Weights must be positive.
        Parallel edges are merged by summing their weights (the DBLP
        convention: the weight of a co-authorship edge is the number of
        joint papers).
    labels:
        Optional sequence of ``num_nodes`` display labels.

    Notes
    -----
    The transition probability of edge ``(u, v)`` is
    ``w_uv / sum_{v'} w_uv'`` (Section V-A).  Nodes with no out-edges have
    an all-zero transition row: a walker there is stuck and contributes
    nothing to any hitting probability, which is the conservative
    interpretation used throughout.
    """

    __slots__ = (
        "_num_nodes",
        "_out_adj",
        "_in_adj",
        "_out_weight_sum",
        "_labels",
        "_label_index",
        "_num_edges",
        "_csr_cache",
    )

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Edge],
        labels: Optional[Sequence[str]] = None,
    ) -> None:
        if num_nodes < 0:
            raise GraphValidationError(f"num_nodes must be >= 0, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        merged = validate_edges(self._num_nodes, edges)
        self._out_adj: List[Dict[int, float]] = [dict() for _ in range(self._num_nodes)]
        self._in_adj: List[Dict[int, float]] = [dict() for _ in range(self._num_nodes)]
        for (u, v), w in merged.items():
            self._out_adj[u][v] = w
            self._in_adj[v][u] = w
        self._num_edges = len(merged)
        if merged:
            heads = np.fromiter(
                (uv[0] for uv in merged), dtype=np.int64, count=len(merged)
            )
            weights = np.fromiter(
                merged.values(), dtype=np.float64, count=len(merged)
            )
            self._out_weight_sum = np.bincount(
                heads, weights=weights, minlength=self._num_nodes
            )
        else:
            self._out_weight_sum = np.zeros(self._num_nodes, dtype=np.float64)
        if labels is not None:
            labels = list(labels)
            if len(labels) != self._num_nodes:
                raise GraphValidationError(
                    f"labels has {len(labels)} entries for {self._num_nodes} nodes"
                )
        self._labels: Optional[List[str]] = labels
        self._label_index: Optional[Dict[str, int]] = None
        self._csr_cache: dict = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_undirected_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int, float]],
        labels: Optional[Sequence[str]] = None,
    ) -> "Graph":
        """Build a graph where every undirected edge becomes two arcs.

        The paper's DBLP/Yeast/YouTube graphs are all undirected; DHT is
        computed on the symmetrised directed version.
        """
        directed: List[Edge] = []
        for u, v, w in edges:
            directed.append((u, v, w))
            if u != v:
                directed.append((v, u, w))
        return cls(num_nodes, directed, labels=labels)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of directed edges (after parallel-edge merging)."""
        return self._num_edges

    def nodes(self) -> range:
        """All node ids."""
        return range(self._num_nodes)

    def has_node(self, u: int) -> bool:
        """Whether ``u`` is a valid node id."""
        return 0 <= u < self._num_nodes

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``(u, v)`` exists."""
        return self.has_node(u) and v in self._out_adj[u]

    def edges(self) -> Iterator[Edge]:
        """Iterate over all ``(u, v, weight)`` arcs."""
        for u in range(self._num_nodes):
            for v, w in self._out_adj[u].items():
                yield (u, v, w)

    def out_neighbors(self, u: int) -> Dict[int, float]:
        """Out-neighbour map ``{v: weight}`` of ``u`` (``O_u`` in the paper)."""
        self._check_node(u)
        return self._out_adj[u]

    def in_neighbors(self, u: int) -> Dict[int, float]:
        """In-neighbour map ``{v: weight}`` of ``u`` (``I_u`` in the paper)."""
        self._check_node(u)
        return self._in_adj[u]

    def out_degree(self, u: int) -> int:
        """Number of out-neighbours of ``u``."""
        self._check_node(u)
        return len(self._out_adj[u])

    def in_degree(self, u: int) -> int:
        """Number of in-neighbours of ``u``."""
        self._check_node(u)
        return len(self._in_adj[u])

    def weight(self, u: int, v: int) -> float:
        """Weight ``w_uv`` of edge ``(u, v)``; raises ``KeyError`` if absent."""
        self._check_node(u)
        return self._out_adj[u][v]

    def transition_probability(self, u: int, v: int) -> float:
        """Transition probability ``p_uv = w_uv / sum_{v'} w_uv'``.

        Returns 0.0 when the edge does not exist.  Raises
        ``ZeroDivisionError``-free: dangling ``u`` simply yields 0.0.
        """
        self._check_node(u)
        self._check_node(v)
        w = self._out_adj[u].get(v)
        if w is None:
            return 0.0
        total = self._out_weight_sum[u]
        return w / total if total > 0 else 0.0

    def is_dangling(self, u: int) -> bool:
        """Whether ``u`` has no out-edges (walker gets stuck there)."""
        self._check_node(u)
        return not self._out_adj[u]

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------

    @property
    def has_labels(self) -> bool:
        """Whether a label table is attached."""
        return self._labels is not None

    def label(self, u: int) -> str:
        """Display label of node ``u`` (falls back to ``str(u)``)."""
        self._check_node(u)
        if self._labels is None:
            return str(u)
        return self._labels[u]

    def node_by_label(self, label: str) -> int:
        """Node id for ``label``; raises ``KeyError`` if unknown."""
        if self._labels is None:
            raise KeyError(f"graph has no labels (looked up {label!r})")
        if self._label_index is None:
            self._label_index = {name: i for i, name in enumerate(self._labels)}
        return self._label_index[label]

    # ------------------------------------------------------------------
    # Matrix views (built lazily, cached)
    # ------------------------------------------------------------------

    def transition_matrix(self):
        """Row-stochastic transition matrix ``T`` as ``scipy.sparse.csr_matrix``.

        ``T[u, v] = p_uv``.  Rows of dangling nodes are all zero.
        """
        cached = self._csr_cache.get("T")
        if cached is None:
            from repro.graph.csr import build_transition_matrix

            cached = build_transition_matrix(self)
            self._csr_cache["T"] = cached
        return cached

    def transition_matrix_transpose(self):
        """``T^T`` as CSR, used by forward propagation kernels."""
        cached = self._csr_cache.get("T_t")
        if cached is None:
            cached = self.transition_matrix().transpose().tocsr()
            self._csr_cache["T_t"] = cached
        return cached

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def subgraph(self, keep: Sequence[int]) -> Tuple["Graph", Dict[int, int]]:
        """Induced subgraph on ``keep``.

        Returns the new graph (nodes re-indexed densely in the order of
        ``keep``) and the old-id -> new-id mapping.
        """
        keep = list(dict.fromkeys(keep))  # dedupe, preserve order
        mapping = {old: new for new, old in enumerate(keep)}
        edges = [
            (mapping[u], mapping[v], w)
            for u in keep
            for v, w in self._out_adj[u].items()
            if v in mapping
        ]
        labels = [self.label(u) for u in keep] if self._labels is not None else None
        return Graph(len(keep), edges, labels=labels), mapping

    def without_edges(self, removed: Iterable[Tuple[int, int]]) -> "Graph":
        """Copy of the graph with the given *undirected* pairs removed.

        Used to derive link-prediction test graphs (Section VII-B): both
        arcs ``(u, v)`` and ``(v, u)`` are dropped.
        """
        removed_set = set()
        for u, v in removed:
            removed_set.add((u, v))
            removed_set.add((v, u))
        edges = [(u, v, w) for u, v, w in self.edges() if (u, v) not in removed_set]
        return Graph(self._num_nodes, edges, labels=self._labels)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def degree_statistics(self) -> Dict[str, float]:
        """Summary statistics used by dataset generators and docs."""
        out_degrees = np.array([len(a) for a in self._out_adj], dtype=np.float64)
        return {
            "num_nodes": float(self._num_nodes),
            "num_edges": float(self._num_edges),
            "mean_out_degree": float(out_degrees.mean()) if self._num_nodes else 0.0,
            "max_out_degree": float(out_degrees.max()) if self._num_nodes else 0.0,
            "dangling_nodes": float((out_degrees == 0).sum()),
        }

    def _check_node(self, u: int) -> None:
        if not (0 <= u < self._num_nodes):
            raise GraphValidationError(
                f"node id {u} out of range [0, {self._num_nodes})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(num_nodes={self._num_nodes}, num_edges={self._num_edges})"
