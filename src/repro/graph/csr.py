"""Compressed-sparse-row views of a graph.

The random-walk kernels in :mod:`repro.walks` advance probability mass one
step at a time; each step is a sparse matrix-vector product with the
row-stochastic transition matrix ``T`` (backward propagation, Eq. 5 of the
paper) or its transpose (forward propagation).  This module builds those
matrices once per graph; :class:`repro.graph.digraph.Graph` caches them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
from scipy import sparse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.graph.digraph import Graph


def build_transition_matrix(graph: "Graph") -> sparse.csr_matrix:
    """Row-stochastic transition matrix ``T[u, v] = p_uv`` as CSR.

    ``p_uv = w_uv / sum_{v'} w_uv'`` per Section V-A.  Rows of dangling
    nodes (no out-edges) are all zero, so walk mass parked there simply
    disappears from subsequent steps — it can never hit the target.
    """
    n = graph.num_nodes
    rows = np.empty(graph.num_edges, dtype=np.int64)
    cols = np.empty(graph.num_edges, dtype=np.int64)
    vals = np.empty(graph.num_edges, dtype=np.float64)
    idx = 0
    for u in graph.nodes():
        neighbors = graph.out_neighbors(u)
        if not neighbors:
            continue
        total = sum(neighbors.values())
        for v, w in neighbors.items():
            rows[idx] = u
            cols[idx] = v
            vals[idx] = w / total
            idx += 1
    matrix = sparse.csr_matrix(
        (vals[:idx], (rows[:idx], cols[:idx])), shape=(n, n), dtype=np.float64
    )
    matrix.sum_duplicates()
    return matrix


def row_sums(matrix: sparse.csr_matrix) -> np.ndarray:
    """Row sums of a CSR matrix as a flat float64 vector."""
    return np.asarray(matrix.sum(axis=1), dtype=np.float64).ravel()


def indicator_vector(n: int, nodes, value: float = 1.0) -> np.ndarray:
    """Dense float64 vector with ``value`` at each id in ``nodes``."""
    vec = np.zeros(n, dtype=np.float64)
    vec[np.asarray(list(nodes), dtype=np.int64)] = value
    return vec
