"""Structural graph metrics.

Used by the dataset generators' validation (the substitutes must match
the real datasets' degree skew and clustering — DESIGN.md §4) and by
the stats CLI.  Everything here treats the graph's undirected skeleton:
an edge counts once regardless of arc direction.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

import numpy as np

from repro.graph.digraph import Graph


def undirected_neighbor_sets(graph: Graph) -> List[set]:
    """Per-node neighbour sets of the undirected skeleton."""
    neighbors: List[set] = [set() for _ in range(graph.num_nodes)]
    for u, v, _w in graph.edges():
        neighbors[u].add(v)
        neighbors[v].add(u)
    return neighbors


def degree_histogram(graph: Graph) -> np.ndarray:
    """``hist[d]`` = number of nodes with undirected degree ``d``."""
    neighbors = undirected_neighbor_sets(graph)
    degrees = np.array([len(s) for s in neighbors], dtype=np.int64)
    if degrees.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees)


def average_clustering_coefficient(graph: Graph, sample: int = 0,
                                   seed: int = 0) -> float:
    """Mean local clustering coefficient (undirected skeleton).

    ``sample > 0`` estimates from that many random nodes — exact
    computation is quadratic in hub degrees and needless for validation.
    Degree-<2 nodes contribute 0, the usual convention.
    """
    neighbors = undirected_neighbor_sets(graph)
    nodes = list(range(graph.num_nodes))
    if sample and sample < len(nodes):
        rng = np.random.default_rng(seed)
        nodes = [int(u) for u in rng.choice(len(nodes), size=sample, replace=False)]
    if not nodes:
        return 0.0
    total = 0.0
    for u in nodes:
        adjacent = neighbors[u]
        k = len(adjacent)
        if k < 2:
            continue
        links = 0
        for v in adjacent:
            links += len(neighbors[v] & adjacent)
        total += links / (k * (k - 1))  # each triangle counted twice; so is k(k-1)
    return total / len(nodes)


def connected_components(graph: Graph) -> List[List[int]]:
    """Connected components of the undirected skeleton (BFS),
    largest first."""
    neighbors = undirected_neighbor_sets(graph)
    seen = [False] * graph.num_nodes
    components: List[List[int]] = []
    for start in graph.nodes():
        if seen[start]:
            continue
        queue = deque([start])
        seen[start] = True
        component = []
        while queue:
            u = queue.popleft()
            component.append(u)
            for v in neighbors[u]:
                if not seen[v]:
                    seen[v] = True
                    queue.append(v)
        components.append(sorted(component))
    components.sort(key=len, reverse=True)
    return components


def summarize(graph: Graph, clustering_sample: int = 500) -> Dict[str, float]:
    """One-call structural summary used by dataset validation."""
    hist = degree_histogram(graph)
    degrees = np.repeat(np.arange(hist.size), hist)
    components = connected_components(graph)
    return {
        "num_nodes": float(graph.num_nodes),
        "num_undirected_edges": float(degrees.sum() / 2.0),
        "mean_degree": float(degrees.mean()) if degrees.size else 0.0,
        "max_degree": float(degrees.max()) if degrees.size else 0.0,
        "clustering": average_clustering_coefficient(graph, sample=clustering_sample),
        "num_components": float(len(components)),
        "largest_component": float(len(components[0])) if components else 0.0,
    }
