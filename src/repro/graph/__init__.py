"""Graph substrate: storage, validation, builders, and serialisation."""

from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError, validate_node_set

__all__ = ["Graph", "GraphValidationError", "validate_node_set"]
