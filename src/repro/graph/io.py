"""Reading and writing graphs and node sets.

Formats are deliberately plain so that generated datasets can be inspected
and re-used outside this library:

* **Edge list** (TSV): ``u<TAB>v<TAB>weight`` per line, ``#`` comments,
  with a mandatory ``# nodes: N`` header so isolated nodes survive a
  round trip.
* **Node sets** (JSON): ``{"set name": [node ids...]}``.
* **Labels** (TSV): ``id<TAB>label``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError

PathLike = Union[str, Path]

_NODES_HEADER = "# nodes:"


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write the graph as a TSV edge list with a node-count header."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"{_NODES_HEADER} {graph.num_nodes}\n")
        for u, v, w in graph.edges():
            fh.write(f"{u}\t{v}\t{w!r}\n")


def read_edge_list(path: PathLike, labels: Optional[Sequence[str]] = None) -> Graph:
    """Read a graph written by :func:`write_edge_list`.

    Raises
    ------
    GraphValidationError
        If the node-count header is missing or a line is malformed.
    """
    path = Path(path)
    num_nodes: Optional[int] = None
    edges = []
    with path.open("r", encoding="utf-8") as fh:
        for line_no, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(_NODES_HEADER):
                num_nodes = int(line[len(_NODES_HEADER) :].strip())
                continue
            if line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) not in (2, 3):
                raise GraphValidationError(
                    f"{path}:{line_no}: expected 'u<TAB>v[<TAB>w]', got {line!r}"
                )
            u, v = int(parts[0]), int(parts[1])
            w = float(parts[2]) if len(parts) == 3 else 1.0
            edges.append((u, v, w))
    if num_nodes is None:
        raise GraphValidationError(f"{path}: missing '{_NODES_HEADER} N' header")
    return Graph(num_nodes, edges, labels=labels)


def write_node_sets(node_sets: Dict[str, Sequence[int]], path: PathLike) -> None:
    """Write named node sets as JSON."""
    path = Path(path)
    serialisable = {name: [int(u) for u in nodes] for name, nodes in node_sets.items()}
    path.write_text(json.dumps(serialisable, indent=2), encoding="utf-8")


def read_node_sets(path: PathLike) -> Dict[str, List[int]]:
    """Read node sets written by :func:`write_node_sets`."""
    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise GraphValidationError(f"{path}: expected a JSON object of node sets")
    return {str(name): [int(u) for u in nodes] for name, nodes in data.items()}


def write_labels(labels: Sequence[str], path: PathLike) -> None:
    """Write node labels as ``id<TAB>label`` lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for i, label in enumerate(labels):
            fh.write(f"{i}\t{label}\n")


def read_labels(path: PathLike) -> List[str]:
    """Read labels written by :func:`write_labels` (ids must be dense)."""
    path = Path(path)
    entries: Dict[int, str] = {}
    with path.open("r", encoding="utf-8") as fh:
        for line_no, raw in enumerate(fh, start=1):
            line = raw.rstrip("\n")
            if not line:
                continue
            idx, _, label = line.partition("\t")
            entries[int(idx)] = label
    if set(entries) != set(range(len(entries))):
        raise GraphValidationError(f"{path}: label ids are not dense 0..n-1")
    return [entries[i] for i in range(len(entries))]
