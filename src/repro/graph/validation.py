"""Input validation for graph construction.

Centralises the failure modes the test suite injects: out-of-range node
ids, non-positive or non-finite weights, self-loops, and parallel edges
(which are merged, not rejected).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Tuple


class GraphValidationError(ValueError):
    """Raised when a graph, node set, or query input is malformed."""


def validate_edges(
    num_nodes: int,
    edges: Iterable[Tuple[int, int, float]],
    allow_self_loops: bool = False,
) -> Dict[Tuple[int, int], float]:
    """Validate an edge iterable and merge parallel edges.

    Returns a dict ``{(u, v): weight}`` with parallel edge weights summed.

    Raises
    ------
    GraphValidationError
        On out-of-range endpoints, non-finite or non-positive weights, or
        (by default) self-loops.  Self-loops are meaningless for hitting
        times — a walker standing on ``v`` has already hit ``v`` — so the
        paper's model excludes them.
    """
    merged: Dict[Tuple[int, int], float] = {}
    for item in edges:
        try:
            u, v, w = item
        except (TypeError, ValueError) as exc:
            raise GraphValidationError(f"edge {item!r} is not a (u, v, w) triple") from exc
        u = int(u)
        v = int(v)
        w = float(w)
        if not (0 <= u < num_nodes) or not (0 <= v < num_nodes):
            raise GraphValidationError(
                f"edge ({u}, {v}) out of node range [0, {num_nodes})"
            )
        if u == v and not allow_self_loops:
            raise GraphValidationError(f"self-loop on node {u} is not allowed")
        if not math.isfinite(w) or w <= 0:
            raise GraphValidationError(
                f"edge ({u}, {v}) has invalid weight {w}; weights must be finite and > 0"
            )
        key = (u, v)
        merged[key] = merged.get(key, 0.0) + w
    return merged


def validate_node_set(graph_num_nodes: int, nodes: Iterable[int], name: str = "node set"):
    """Validate a query node set: in range, non-empty, duplicates removed.

    Returns the node ids as a list preserving first-seen order.
    """
    seen = []
    seen_set = set()
    for u in nodes:
        u = int(u)
        if not (0 <= u < graph_num_nodes):
            raise GraphValidationError(
                f"{name} contains node {u} outside [0, {graph_num_nodes})"
            )
        if u not in seen_set:
            seen_set.add(u)
            seen.append(u)
    if not seen:
        raise GraphValidationError(f"{name} is empty")
    return seen
