"""Graph constructors: deterministic fixtures and random generative models.

The deterministic builders (paths, cycles, stars, grids, cliques) are used
heavily by the test suite, where hand-computable hitting probabilities are
needed.  The random models are the building blocks of the dataset
substitutes in :mod:`repro.datasets`:

* Erdos-Renyi ``G(n, p)`` — unstructured baseline.
* Configuration-style power-law graphs — degree skew (DBLP, YouTube).
* Preferential attachment (Barabasi-Albert) — social-network topology.
* Duplication-divergence — protein-interaction topology (Yeast).
* Planted-partition — community structure (research areas, interest
  groups).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError

UndirectedEdge = Tuple[int, int, float]


# ----------------------------------------------------------------------
# Deterministic fixtures
# ----------------------------------------------------------------------


def path_graph(n: int, weight: float = 1.0) -> Graph:
    """Undirected path ``0 - 1 - ... - n-1``."""
    return Graph.from_undirected_edges(
        n, [(i, i + 1, weight) for i in range(n - 1)]
    )


def cycle_graph(n: int, weight: float = 1.0) -> Graph:
    """Undirected cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise GraphValidationError(f"cycle needs >= 3 nodes, got {n}")
    edges = [(i, (i + 1) % n, weight) for i in range(n)]
    return Graph.from_undirected_edges(n, edges)


def star_graph(n_leaves: int, weight: float = 1.0) -> Graph:
    """Star with centre 0 and leaves ``1 .. n_leaves``."""
    edges = [(0, i, weight) for i in range(1, n_leaves + 1)]
    return Graph.from_undirected_edges(n_leaves + 1, edges)


def complete_graph(n: int, weight: float = 1.0) -> Graph:
    """Undirected clique on ``n`` nodes."""
    edges = [(i, j, weight) for i in range(n) for j in range(i + 1, n)]
    return Graph.from_undirected_edges(n, edges)


def grid_graph(rows: int, cols: int, weight: float = 1.0) -> Graph:
    """4-connected grid; node ``(r, c)`` has id ``r * cols + c``."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                edges.append((u, u + 1, weight))
            if r + 1 < rows:
                edges.append((u, u + cols, weight))
    return Graph.from_undirected_edges(rows * cols, edges)


def directed_cycle(n: int, weight: float = 1.0) -> Graph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0`` (asymmetric DHT tests)."""
    if n < 2:
        raise GraphValidationError(f"directed cycle needs >= 2 nodes, got {n}")
    return Graph(n, [(i, (i + 1) % n, weight) for i in range(n)])


# ----------------------------------------------------------------------
# Random models
# ----------------------------------------------------------------------


def erdos_renyi(
    n: int,
    p: float,
    rng: np.random.Generator,
    weighted: bool = False,
    max_weight: int = 5,
) -> Graph:
    """Undirected ``G(n, p)`` graph.

    When ``weighted``, integer weights are drawn uniformly from
    ``1 .. max_weight`` (mimicking paper-count weights).
    """
    if not (0.0 <= p <= 1.0):
        raise GraphValidationError(f"p must be in [0, 1], got {p}")
    edges: List[UndirectedEdge] = []
    for u in range(n):
        draws = rng.random(n - u - 1)
        for offset in np.nonzero(draws < p)[0]:
            v = u + 1 + int(offset)
            w = float(rng.integers(1, max_weight + 1)) if weighted else 1.0
            edges.append((u, v, w))
    return Graph.from_undirected_edges(n, edges)


def preferential_attachment(
    n: int,
    m: int,
    rng: np.random.Generator,
) -> Graph:
    """Barabasi-Albert graph: each new node attaches to ``m`` targets.

    Produces the heavy-tailed degree distribution of social graphs
    (YouTube).  Uses the standard repeated-endpoint sampling trick so that
    attachment probability is proportional to degree.
    """
    if n < m + 1:
        raise GraphValidationError(f"need n > m, got n={n}, m={m}")
    edges: List[UndirectedEdge] = []
    # Seed: a small clique over the first m+1 nodes.
    repeated: List[int] = []
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            edges.append((u, v, 1.0))
            repeated.extend((u, v))
    for u in range(m + 1, n):
        targets = set()
        while len(targets) < m:
            targets.add(repeated[int(rng.integers(0, len(repeated)))])
        for v in targets:
            edges.append((u, v, 1.0))
            repeated.extend((u, v))
    return Graph.from_undirected_edges(n, edges)


def duplication_divergence(
    n: int,
    retention: float,
    rng: np.random.Generator,
    seed_size: int = 5,
) -> Graph:
    """Duplication-divergence model for protein-interaction networks.

    Each new protein copies a random existing one, retains each of its
    interactions with probability ``retention``, and always links back to
    its ancestor.  This reproduces the sparse, locally clustered topology
    of the Yeast PPI graph.
    """
    if not (0.0 < retention <= 1.0):
        raise GraphValidationError(f"retention must be in (0, 1], got {retention}")
    if n < seed_size:
        raise GraphValidationError(f"need n >= seed_size, got n={n}")
    adj: List[set] = [set() for _ in range(n)]
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            adj[u].add(v)
            adj[v].add(u)
    for u in range(seed_size, n):
        ancestor = int(rng.integers(0, u))
        for v in list(adj[ancestor]):
            if rng.random() < retention:
                adj[u].add(v)
                adj[v].add(u)
        adj[u].add(ancestor)
        adj[ancestor].add(u)
    edges = [(u, v, 1.0) for u in range(n) for v in adj[u] if u < v]
    return Graph.from_undirected_edges(n, edges)


def planted_partition(
    community_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    rng: np.random.Generator,
    weighted: bool = False,
    max_weight: int = 8,
) -> Tuple[Graph, List[List[int]]]:
    """Planted-partition (stochastic block) graph.

    Returns the graph and the list of communities (lists of node ids).
    Within-community edges appear with probability ``p_in``,
    cross-community edges with ``p_out``.  This is the backbone of the
    DBLP substitute: communities play the role of research areas.
    """
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise GraphValidationError(
            f"need 0 <= p_out <= p_in <= 1, got p_in={p_in}, p_out={p_out}"
        )
    n = int(sum(community_sizes))
    membership = np.empty(n, dtype=np.int64)
    communities: List[List[int]] = []
    start = 0
    for c, size in enumerate(community_sizes):
        communities.append(list(range(start, start + size)))
        membership[start : start + size] = c
        start += size
    edges: List[UndirectedEdge] = []
    for u in range(n):
        draws = rng.random(n - u - 1)
        for offset in range(n - u - 1):
            v = u + 1 + offset
            p = p_in if membership[u] == membership[v] else p_out
            if draws[offset] < p:
                w = float(rng.integers(1, max_weight + 1)) if weighted else 1.0
                edges.append((u, v, w))
    return Graph.from_undirected_edges(n, edges), communities


def random_directed(
    n: int,
    p: float,
    rng: np.random.Generator,
    max_weight: int = 4,
) -> Graph:
    """Random directed weighted graph (asymmetric-DHT property tests)."""
    edges = []
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                edges.append((u, v, float(rng.integers(1, max_weight + 1))))
    return Graph(n, edges)
