"""Query budgets and partial-result containers for governed execution.

A :class:`QueryBudget` caps a single join invocation along three axes:
wall-clock time (``deadline_ms``), propagation work (``step_budget``,
counted in the engine's batching-invariant column-steps), and transient
block memory (``max_bytes``).  The :class:`~repro.exec.governor.ExecutionGovernor`
enforces the budget at cooperative checkpoints threaded through the walk
engine and the join loops; exhaustion surfaces as
:class:`BudgetExhaustedError` and — under the default
``on_budget="partial"`` policy — is converted by the governed entry
points into a :class:`PartialResult` whose per-result score intervals
come from the join's own X/Y-bound threshold state.

This module is import-pure (no ``repro`` dependencies) so that the walk
and join layers can raise/handle these types without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

#: Valid ``reason`` strings carried by budget stops and partial results.
BUDGET_REASONS = ("deadline", "steps", "bytes")

#: Valid ``on_budget`` policies for governed entry points.
ON_BUDGET_POLICIES = ("partial", "error")


class BudgetExhaustedError(Exception):
    """Raised at a checkpoint when the :class:`QueryBudget` is exhausted.

    ``reason`` is one of :data:`BUDGET_REASONS`.  Under the
    ``on_budget="partial"`` policy the governed entry points catch this
    and return a flagged :class:`PartialResult` instead.
    """

    def __init__(self, reason: str, message: Optional[str] = None) -> None:
        if reason not in BUDGET_REASONS:
            raise ValueError(
                f"unknown budget reason {reason!r}; expected one of {BUDGET_REASONS}"
            )
        self.reason = reason
        super().__init__(message or f"query budget exhausted ({reason})")


class MemoryBudgetExceeded(BudgetExhaustedError):
    """A block would overshoot ``QueryBudget.max_bytes``.

    Recoverable: :class:`~repro.walks.rounds.DeepeningRounds` catches it
    and halves the column window (a counted backoff).  If even a single
    column cannot fit, it propagates and becomes a ``reason="bytes"``
    partial result.
    """

    def __init__(self, nbytes: int, ceiling: int) -> None:
        self.nbytes = int(nbytes)
        self.ceiling = int(ceiling)
        super().__init__(
            "bytes",
            f"block of {nbytes} bytes exceeds the query byte budget of "
            f"{ceiling} bytes",
        )


class CorruptedWalkError(Exception):
    """Non-finite walk mass detected at a validation checkpoint.

    Raised *before* the poisoned vectors can reach a cache or a result
    list; the deepening rounds and the walk cache respond by discarding
    the block and re-walking it fresh (a counted degradation).
    """


@dataclass(frozen=True)
class QueryBudget:
    """Per-query resource ceiling; any subset of the axes may be set.

    ``deadline_ms``
        Wall-clock deadline in milliseconds, measured from governor
        installation.
    ``step_budget``
        Maximum propagation column-steps (the engine's
        ``stats.propagation_steps`` delta) the query may spend.
    ``max_bytes``
        Ceiling on any single transient walk block.  Unlike the static
        per-context ``max_block_bytes`` knob this is enforced at run
        time and triggers the adaptive window backoff.
    """

    deadline_ms: Optional[float] = None
    step_budget: Optional[int] = None
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive when set")
        if self.step_budget is not None and self.step_budget < 1:
            raise ValueError("step_budget must be at least 1 when set")
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ValueError("max_bytes must be at least 1 when set")

    @property
    def unlimited(self) -> bool:
        """True when no axis is constrained."""
        return (
            self.deadline_ms is None
            and self.step_budget is None
            and self.max_bytes is None
        )


@dataclass
class PartialResult:
    """Outcome of a governed join: exact, or best-effort with intervals.

    ``results`` holds :class:`~repro.core.two_way.base.ScoredPair` (two-way)
    or :class:`~repro.core.nway.candidates.CandidateAnswer` (n-way) entries
    in best-first order.  ``bounds[i]`` is a ``(lower, upper)`` interval
    guaranteed to contain result ``i``'s exact score: degenerate
    ``(score, score)`` when the score was fully resolved, or the join's
    ``[h_l, h_l + tail_l]`` snapshot interval when deepening was cut
    short.  ``exact`` is True only when the join ran to completion, in
    which case ``reason`` is ``None``; otherwise ``reason`` is one of
    :data:`BUDGET_REASONS`.
    """

    results: List = field(default_factory=list)
    bounds: List[Tuple[float, float]] = field(default_factory=list)
    exact: bool = True
    reason: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.results) != len(self.bounds):
            raise ValueError("results and bounds must be parallel lists")
        if self.exact and self.reason is not None:
            raise ValueError("exact results carry no exhaustion reason")
        if not self.exact and self.reason not in BUDGET_REASONS:
            raise ValueError(
                f"partial results need a reason from {BUDGET_REASONS}"
            )

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator:
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]


def exact_result(results: Sequence) -> PartialResult:
    """Wrap a completed join's output with degenerate bounds."""
    items = list(results)
    return PartialResult(
        results=items,
        bounds=[(item.score, item.score) for item in items],
        exact=True,
        reason=None,
    )
