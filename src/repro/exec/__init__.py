"""Budget-governed execution: deadlines, degradation, partial results.

Layer map (see ``docs/ALGORITHMS.md`` for the handbook section):

- :mod:`repro.exec.budget` — :class:`QueryBudget`, the exception
  hierarchy, and :class:`PartialResult` (import-pure; safe for the walk
  layer to depend on).
- :mod:`repro.exec.governor` — :class:`ExecutionGovernor`, which
  enforces a budget at the cooperative checkpoints threaded through the
  engine and join loops.
- :mod:`repro.exec.faults` — the deterministic seeded
  :class:`FaultInjector` used by the robustness test matrix.
- :mod:`repro.exec.governed` — governed join entry points that convert
  exhaustion into flagged partial results.  Imported lazily (it depends
  on the join layers, which depend on this package).
"""

from repro.exec.budget import (
    BUDGET_REASONS,
    ON_BUDGET_POLICIES,
    BudgetExhaustedError,
    CorruptedWalkError,
    MemoryBudgetExceeded,
    PartialResult,
    QueryBudget,
    exact_result,
)
from repro.exec.faults import FAULT_KINDS, FaultInjector, InjectedAllocationError
from repro.exec.governor import ExecutionGovernor

__all__ = [
    "BUDGET_REASONS",
    "ON_BUDGET_POLICIES",
    "BudgetExhaustedError",
    "CorruptedWalkError",
    "MemoryBudgetExceeded",
    "PartialResult",
    "QueryBudget",
    "exact_result",
    "FAULT_KINDS",
    "FaultInjector",
    "InjectedAllocationError",
    "ExecutionGovernor",
]
