"""Governed entry points: budgets in, exact-or-flagged-partial out.

This module wraps the join layers under an installed
:class:`~repro.exec.governor.ExecutionGovernor`.  The contract every
wrapper upholds — and the fault-injection matrix asserts — is:

* a join that runs to completion returns an ``exact`` result with
  degenerate ``(score, score)`` bounds;
* a budget stop (deadline / steps / bytes) never raises under the
  default ``on_budget="partial"`` policy: the wrapper converts the
  join's own threshold state into a :class:`~repro.exec.budget.PartialResult`
  whose per-result intervals are guaranteed to contain the exact scores;
* ``on_budget="error"`` re-raises the
  :class:`~repro.exec.budget.BudgetExhaustedError` instead, after
  counting the stop.

The partial-result intervals come from two sources, in preference
order:

``budget_snapshot``
    The iterative-deepening joins (``B-IDJ`` and ``Series-IDJ``) record
    the last *completed* round — every then-active target's gathered
    left-row scores ``h_l(p, q)`` plus that round's tail bound.  By
    monotonicity ``h_l`` is a lower bound on ``h_d`` and
    ``h_l + tail_l`` a sound upper bound, so
    ``[h_l, h_l + tail_l]`` contains the oracle score.  Targets pruned
    at earlier rounds were proved unable to reach the top-``k`` by the
    same bound, so excluding them keeps the best-effort ranking sound.
``partial_pairs``
    The basic joins score pairs exhaustively; the pairs finished before
    the stop carry exact scores (degenerate intervals) — the result is
    partial only in *coverage*, never in per-pair accuracy.

The n-way wrapper aggregates per-edge intervals componentwise: for a
monotone aggregate ``f``, ``[f(lo_1..lo_n), f(hi_1..hi_n)]`` contains
``f(exact_1..exact_n)`` whenever each ``[lo_e, hi_e]`` contains
``exact_e``.

This module imports the join layers, so it is deliberately *not*
re-exported from :mod:`repro.exec`'s ``__init__`` — import it directly
(``from repro.exec.governed import run_governed_top_k``) to keep the
walk layer's ``repro.exec.budget`` dependency cycle-free.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.nway.partial_join import _RestartProvider, two_way_algorithm_by_name
from repro.core.nway.spec import NWayJoinSpec
from repro.core.two_way.backward import BackwardBasicJoin
from repro.core.two_way.base import ScoredPair
from repro.exec.budget import (
    ON_BUDGET_POLICIES,
    BudgetExhaustedError,
    PartialResult,
    exact_result,
)
from repro.exec.governor import ExecutionGovernor
from repro.extensions.series_join import (
    SeriesBackwardJoin,
    SeriesIDJ,
    _SeriesRestartProvider,
)
from repro.graph.validation import GraphValidationError
from repro.rankjoin.inputs import LazyInput, MaterializedInput
from repro.rankjoin.pbrj import PBRJ

Interval = Tuple[float, float]


def _check_policy(on_budget: str) -> None:
    if on_budget not in ON_BUDGET_POLICIES:
        raise GraphValidationError(
            f"unknown on_budget policy {on_budget!r}; "
            f"choose from {ON_BUDGET_POLICIES}"
        )


def _snapshot_partial(join, k: int, reason: str) -> PartialResult:
    """Best-effort top-``k`` from a stopped join's threshold state."""
    snapshot = getattr(join, "budget_snapshot", None)
    if snapshot is not None:
        left_scores = snapshot["left_scores"]
        tails = snapshot["tails"]
        entries: List[Tuple[ScoredPair, Interval]] = []
        for j, q in enumerate(snapshot["targets"]):
            tail = float(tails[j])
            for i, p in enumerate(snapshot["left"]):
                if p == q:
                    continue
                lower = float(left_scores[i, j])
                entries.append((ScoredPair(p, q, lower), (lower, lower + tail)))
        entries.sort(key=lambda e: (-e[0].score, e[0].left, e[0].right))
        entries = entries[:k]
        return PartialResult(
            results=[pair for pair, _ in entries],
            bounds=[interval for _, interval in entries],
            exact=False,
            reason=reason,
        )
    prefix = getattr(join, "partial_pairs", None)
    if prefix:
        pairs = sorted(prefix, key=lambda sp: (-sp.score, sp.left, sp.right))[:k]
        return PartialResult(
            results=pairs,
            bounds=[(pair.score, pair.score) for pair in pairs],
            exact=False,
            reason=reason,
        )
    return PartialResult(results=[], bounds=[], exact=False, reason=reason)


def run_governed_top_k(
    join,
    k: int,
    governor: ExecutionGovernor,
    on_budget: str = "partial",
) -> PartialResult:
    """``join.top_k(k)`` under the governor's budget.

    Returns an exact :class:`PartialResult` when the join completes, a
    flagged-partial one on exhaustion (``on_budget="partial"``), or
    re-raises the :class:`BudgetExhaustedError` (``on_budget="error"``).
    A genuine :class:`MemoryError` that survived the adaptive backoff is
    treated as ``reason="bytes"`` exhaustion.
    """
    _check_policy(on_budget)
    try:
        return exact_result(join.top_k(k))
    except BudgetExhaustedError as exc:
        governor.count_budget_stop()
        if on_budget == "error":
            raise
        return _snapshot_partial(join, k, exc.reason)
    except MemoryError as exc:
        governor.count_budget_stop()
        if on_budget == "error":
            raise BudgetExhaustedError(
                "bytes", "allocation failed below the minimum window"
            ) from exc
        return _snapshot_partial(join, k, "bytes")


def run_governed_all_pairs(
    join,
    governor: ExecutionGovernor,
    on_budget: str = "partial",
) -> PartialResult:
    """``join.all_pairs()`` under the budget, sorted best-first.

    The prefix scored before a stop carries exact scores, so the
    partial result's intervals are degenerate — partial in coverage
    only.
    """
    _check_policy(on_budget)
    try:
        pairs = sorted(
            join.all_pairs(), key=lambda sp: (-sp.score, sp.left, sp.right)
        )
        return exact_result(pairs)
    except BudgetExhaustedError as exc:
        governor.count_budget_stop()
        if on_budget == "error":
            raise
        return _snapshot_partial(join, len(join.partial_pairs or []), exc.reason)
    except MemoryError as exc:
        governor.count_budget_stop()
        if on_budget == "error":
            raise BudgetExhaustedError(
                "bytes", "allocation failed below the minimum window"
            ) from exc
        return _snapshot_partial(join, len(join.partial_pairs or []), "bytes")


def _edge_join(spec: NWayJoinSpec, context, algorithm: str, deepening: bool):
    """The per-edge 2-way join object for a governed n-way strategy."""
    if spec.measure is not None:
        if deepening and algorithm != "basic":
            return SeriesIDJ.from_context(context)
        return SeriesBackwardJoin.from_context(context)
    if deepening:
        return two_way_algorithm_by_name(algorithm)(context)
    return BackwardBasicJoin(context)


def run_governed_multi_way(
    spec: NWayJoinSpec,
    governor: ExecutionGovernor,
    algorithm: str = "pj",
    m: int = 50,
    two_way: str = "b-idj-y",
    on_budget: str = "partial",
    plan=None,
) -> PartialResult:
    """A budgeted n-way join: ``PJ``-style prefixes or ``AP``.

    ``algorithm`` is ``"pj"``/``"pj-i"`` (top-``m`` prefixes with
    governed restart refills) or ``"ap"`` (governed full
    materialisation); ``"nl"`` has no incremental state to snapshot and
    is rejected under a budget.  Per-edge exhaustion never aborts the
    join under ``on_budget="partial"``: the stopped edge contributes its
    snapshot prefix (with intervals), its refills are disabled, and the
    final answers are flagged partial with componentwise-aggregated
    bounds.

    ``plan`` (or ``spec.plan``) chooses edge build order — and, for the
    ``PJ`` strategies, per-edge operators.  Plans only reorder which
    walks the budget is spent on: soundness of the flagged intervals is
    per-edge, so it holds under every build order (the planner
    interaction tests pin this).
    """
    _check_policy(on_budget)
    name = algorithm.lower()
    if name == "nl":
        raise GraphValidationError(
            "the NL strategy scores answers one tuple at a time and has no "
            "resumable threshold state; use 'pj', 'pj-i', or 'ap' under a "
            "query budget"
        )
    if name not in ("pj", "pj-i", "ap"):
        raise GraphValidationError(
            f"unknown n-way algorithm {algorithm!r}; "
            f"choose from ('pj', 'pj-i', 'ap', 'nl')"
        )
    if spec.k == 0:
        return PartialResult(results=[], bounds=[], exact=True)

    if name == "ap":
        default_operator = "basic" if spec.measure is not None else "b-bj"
    elif spec.measure is not None:
        default_operator = "idj"
    else:
        default_operator = two_way.lower()
    edge_plan = spec.resolve_plan(
        "ap" if name == "ap" else "pj",
        plan=plan,
        default_operator=default_operator,
        m=m,
    )

    reasons: List[str] = []
    intervals = {}  # (edge, left, right) -> (lower, upper)
    inputs = [None] * spec.query_graph.num_edges
    for e in edge_plan.build_order:
        edge_name = spec.query_graph.edge_name(e)
        operator = edge_plan.edges[e].operator
        with spec.trace_edge_span(e, operator):
            try:
                context = spec.edge_context(e)
            except BudgetExhaustedError as exc:
                # The budget died before this edge even started: it
                # contributes an empty stream (sound — no fabricated
                # pairs).
                governor.count_budget_stop()
                reasons.append(exc.reason)
                inputs[e] = MaterializedInput([], name=edge_name)
                continue
            if name == "ap":
                # The governed AP materialisers stay the
                # snapshot-capable backward pair regardless of the plan
                # operator — the plan contributes the build order.
                join = _edge_join(spec, context, operator, deepening=False)
                partial = run_governed_all_pairs(
                    join, governor, on_budget="partial"
                )
                if not partial.exact:
                    reasons.append(partial.reason)
                for pair, interval in zip(partial.results, partial.bounds):
                    intervals[(e, pair.left, pair.right)] = interval
                inputs[e] = MaterializedInput(partial.results, name=edge_name)
                continue
            if spec.measure is not None:
                provider = _SeriesRestartProvider(
                    context,
                    m,
                    join_cls=(
                        SeriesBackwardJoin if operator == "basic" else SeriesIDJ
                    ),
                )
            else:
                provider = _RestartProvider(
                    context, two_way_algorithm_by_name(operator), m
                )
            join = _edge_join(spec, context, operator, deepening=True)
            partial = run_governed_top_k(join, m, governor, on_budget="partial")
            for pair, interval in zip(partial.results, partial.bounds):
                intervals[(e, pair.left, pair.right)] = interval
        if partial.exact:
            def refill(provider=provider, e=e, operator=operator):
                # A restart refill that hits the budget exhausts this
                # input instead of erroring the whole rank join.
                try:
                    with spec.trace_edge_span(e, operator, kind="refill"):
                        pair = provider.next_pair()
                except BudgetExhaustedError as exc:
                    governor.count_budget_stop()
                    reasons.append(exc.reason)
                    return None
                except MemoryError:
                    governor.count_budget_stop()
                    reasons.append("bytes")
                    return None
                if pair is not None:
                    intervals[(e, pair.left, pair.right)] = (pair.score, pair.score)
                return pair
            inputs[e] = LazyInput(partial.results, refill=refill, name=edge_name)
        else:
            # A snapshot prefix is ranked by lower bounds; a restart
            # refill could emit a pair the prefix already contains,
            # violating PBRJ's sorted-stream contract — so the stopped
            # edge's stream ends at its prefix.
            reasons.append(partial.reason)
            inputs[e] = MaterializedInput(partial.results, name=edge_name)

    driver = PBRJ(spec.query_graph, spec.aggregate, inputs, spec.k)
    try:
        with spec.engine.trace_span("rankjoin", name):
            answers = driver.run()
    except BudgetExhaustedError as exc:
        # Checkpoints inside cached-walk lookups can still fire during
        # candidate expansion; the buffered answers so far are sound.
        governor.count_budget_stop()
        reasons.append(exc.reason)
        answers = []

    exact = not reasons
    if not exact and on_budget == "error":
        raise BudgetExhaustedError(reasons[0])

    edges = spec.query_graph.edges
    bounds: List[Interval] = []
    for answer in answers:
        lows: List[float] = []
        highs: List[float] = []
        for e, (i, j) in enumerate(edges):
            pair_key = (e, answer.nodes[i], answer.nodes[j])
            lower, upper = intervals.get(
                pair_key, (answer.edge_scores[e], answer.edge_scores[e])
            )
            lows.append(lower)
            highs.append(upper)
        bounds.append((spec.aggregate(lows), spec.aggregate(highs)))
    return PartialResult(
        results=list(answers),
        bounds=bounds,
        exact=exact,
        reason=None if exact else reasons[0],
    )
