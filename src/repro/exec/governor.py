"""The execution governor: budget enforcement at cooperative checkpoints.

An :class:`ExecutionGovernor` is installed on a
:class:`~repro.walks.engine.WalkEngine` for the duration of one governed
query.  The engine (and the join loops above it) call
``engine.checkpoint(site, ...)`` at the natural unit-of-work boundaries:

``"step"``
    One propagation step of a series loop in the engine.
``"block"``
    Entry of a batched block step, with the in-flight block attached
    (the fault injector's poisoning point).
``"alloc"``
    Just before a :class:`~repro.walks.state.WalkState` materialises its
    buffers, with the predicted allocation size — the byte ceiling is
    enforced *before* the memory is committed.
``"round"``
    Top of an iterative-deepening round (and each matrix-measure gather
    group, which performs no engine steps).
``"edge"``
    Entry of :meth:`~repro.core.nway.spec.NWayJoinSpec.edge_context` —
    the funnel every n-way strategy passes through per query edge.
``"cache"``
    Each :meth:`~repro.walks.cache.WalkCache.scores` call and each
    iteration of a cache-triage loop (``peek`` probes), so a query whose
    targets are all warm in the cache still honours deadlines and fault
    schedules — the linter's RL002 *ungoverned-loop* rule
    (``docs/INVARIANTS.md``) mechanically enforces this one.

Each checkpoint increments ``stats.checkpoints``, gives the optional
:class:`~repro.exec.faults.FaultInjector` a chance to fire, and checks
the three budget axes, raising
:class:`~repro.exec.budget.BudgetExhaustedError` (or its recoverable
subclass :class:`~repro.exec.budget.MemoryBudgetExceeded` for
over-ceiling blocks) on exhaustion.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.exec.budget import (
    BudgetExhaustedError,
    MemoryBudgetExceeded,
    QueryBudget,
)


class ExecutionGovernor:
    """Enforces a :class:`QueryBudget` and hosts the fault injector.

    ``clock`` is injectable for deterministic deadline tests; the
    ``"clock"`` fault advances :meth:`jump_clock` rather than sleeping.
    ``validate_walks`` turns on the NaN walk-mass validation in
    :class:`~repro.walks.state.WalkState`; it defaults to on whenever a
    fault injector is present (validation is one ``isfinite`` reduction
    per advanced block).
    """

    def __init__(
        self,
        budget: Optional[QueryBudget] = None,
        clock: Callable[[], float] = time.monotonic,
        fault_injector=None,
        validate_walks: Optional[bool] = None,
    ) -> None:
        self.budget = budget if budget is not None else QueryBudget()
        self._clock = clock
        self._offset = 0.0
        self.fault_injector = fault_injector
        self.validate_walks = (
            validate_walks if validate_walks is not None else fault_injector is not None
        )
        self._engine = None
        self.walk_cache = None
        self._deadline: Optional[float] = None
        self._step_base = 0

    # ------------------------------------------------------------------
    # Installation

    def install(self, engine, walk_cache=None) -> "ExecutionGovernor":
        """Attach to ``engine`` and start the deadline/step baselines.

        The step baseline is the *calling thread's* shard of
        ``propagation_steps``, so a per-query step budget on an engine
        shared by concurrent service workers only meters this query's
        own walking (`engine.governor` is likewise thread-local).
        """
        engine.governor = self
        self._engine = engine
        self.walk_cache = walk_cache
        self._step_base = engine.stats.local("propagation_steps")
        if self.budget.deadline_ms is not None:
            self._deadline = self.now() + self.budget.deadline_ms / 1000.0
        return self

    def uninstall(self) -> None:
        """Detach from the engine (subsequent runs are ungoverned)."""
        if self._engine is not None and self._engine.governor is self:
            self._engine.governor = None

    @property
    def engine(self):
        """The engine this governor is installed on (``None`` before install)."""
        return self._engine

    @property
    def stats(self):
        """The installed engine's stats block."""
        return self._engine.stats

    # ------------------------------------------------------------------
    # Clock

    def now(self) -> float:
        """Current governed time (base clock plus injected jumps)."""
        return self._clock() + self._offset

    def jump_clock(self, seconds: float) -> None:
        """Advance the governed clock (used by the ``"clock"`` fault)."""
        self._offset += float(seconds)

    # ------------------------------------------------------------------
    # Accounting

    def steps_used(self) -> int:
        """Propagation column-steps this thread spent since installation."""
        return self._engine.stats.local("propagation_steps") - self._step_base

    def count_budget_stop(self) -> None:
        """Record that a governed entry point stopped on exhaustion."""
        self._engine.stats.add("budget_stops", 1)

    # ------------------------------------------------------------------
    # The checkpoint

    def checkpoint(self, site: str, block=None, nbytes: Optional[int] = None) -> None:
        """One cooperative checkpoint; raises on exhaustion.

        ``block`` is the in-flight walk block (poisoning target) when
        the site has one; ``nbytes`` is the predicted size of an
        allocation about to happen, checked against ``max_bytes``
        *before* the buffers are committed.
        """
        self._engine.stats.add("checkpoints", 1)
        if self.fault_injector is not None:
            self.fault_injector.fire(site, self, block=block)
        budget = self.budget
        if (
            nbytes is not None
            and budget.max_bytes is not None
            and nbytes > budget.max_bytes
        ):
            raise MemoryBudgetExceeded(nbytes, budget.max_bytes)
        if (
            budget.step_budget is not None
            and self.steps_used() >= budget.step_budget
        ):
            raise BudgetExhaustedError(
                "steps",
                f"propagation-step budget of {budget.step_budget} exhausted",
            )
        if self._deadline is not None and self.now() >= self._deadline:
            raise BudgetExhaustedError(
                "deadline",
                f"deadline of {budget.deadline_ms} ms exceeded",
            )
