"""Deterministic, seeded fault injection at governor checkpoints.

The :class:`FaultInjector` plugs into an
:class:`~repro.exec.governor.ExecutionGovernor` and fires synthetic
faults at the cooperative checkpoint sites the governor already visits:

``"alloc"``
    Raise :class:`InjectedAllocationError` (a ``MemoryError``) — the
    deepening rounds respond with the adaptive window backoff.
``"nan"``
    Poison one entry of the in-flight walk block with ``NaN`` — the
    walk-state validation detects the corruption before the block can
    reach a cache or a result and triggers a fresh re-walk.
``"evict"``
    Clear the governor's walk cache (an eviction storm) — subsequent
    rounds must re-walk instead of resuming, with unchanged output.
``"clock"``
    Jump the governor's clock forward — a query with a deadline stops
    with a flagged partial result.

All randomness comes from one seeded generator, so a run with the same
seed, faults, and workload fires the same faults at the same checkpoints
and produces bit-identical results — the property the fault-matrix tests
assert.  The injector is bounded by ``max_fires``; recovery paths retry
a bounded number of times, so an injector configured to fire unboundedly
at every checkpoint models a permanently broken environment and is
allowed to surface its error.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

FAULT_KINDS = ("alloc", "nan", "evict", "clock")


class InjectedAllocationError(MemoryError):
    """A synthetic allocation failure raised by the injector."""


class FaultInjector:
    """Fires seeded faults at governor checkpoints.

    Parameters
    ----------
    seed:
        Seed for the internal generator; identical seeds replay
        identical fault schedules on identical workloads.
    faults:
        Subset of :data:`FAULT_KINDS` to draw from.
    rate:
        Probability of firing at each armed checkpoint.
    start_after:
        Number of initial checkpoints to leave untouched, so faults land
        mid-query rather than before any work happened.
    max_fires:
        Cap on the total number of fired faults (``None`` = unbounded).
    sites:
        Optional restriction to specific checkpoint sites
        (``"block"``/``"alloc"``/``"step"``/``"round"``/``"edge"``).
    clock_jump:
        Seconds added to the governor clock by a ``"clock"`` fault.
    """

    def __init__(
        self,
        seed: int,
        faults: Sequence[str] = FAULT_KINDS,
        rate: float = 0.05,
        start_after: int = 0,
        max_fires: Optional[int] = 1,
        sites: Optional[Sequence[str]] = None,
        clock_jump: float = 3600.0,
    ) -> None:
        self._faults = tuple(faults)
        unknown = set(self._faults) - set(FAULT_KINDS)
        if not self._faults or unknown:
            raise ValueError(
                f"faults must be a non-empty subset of {FAULT_KINDS}; got {faults!r}"
            )
        if not 0.0 < rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        self._rng = np.random.default_rng(seed)
        self._rate = float(rate)
        self._start_after = int(start_after)
        self._max_fires = max_fires
        self._sites = tuple(sites) if sites is not None else None
        self._clock_jump = float(clock_jump)
        self._seen = 0
        #: Log of fired faults as ``(checkpoint_index, site, fault)``;
        #: compared across runs by the determinism tests.
        self.fired: List[Tuple[int, str, str]] = []

    @property
    def checkpoints_seen(self) -> int:
        """Total checkpoints observed (fired or not)."""
        return self._seen

    def fire(self, site: str, governor, block=None) -> None:
        """Possibly fire one fault at this checkpoint.

        ``block`` is the in-flight walk block when the site has one
        (``"nan"`` faults need something to poison and otherwise pass).
        """
        self._seen += 1
        if self._seen <= self._start_after:
            return
        if self._max_fires is not None and len(self.fired) >= self._max_fires:
            return
        if self._sites is not None and site not in self._sites:
            return
        if float(self._rng.random()) >= self._rate:
            return
        fault = self._faults[int(self._rng.integers(len(self._faults)))]
        if fault == "nan" and block is None:
            return  # nothing to poison at this site
        self.fired.append((self._seen, site, fault))
        if fault == "alloc":
            raise InjectedAllocationError(
                f"injected allocation failure at checkpoint {self._seen} ({site})"
            )
        if fault == "nan":
            block[block.shape[0] // 2, 0] = np.nan
        elif fault == "evict":
            cache = governor.walk_cache
            if cache is not None:
                cache.clear()
        elif fault == "clock":
            governor.jump_clock(self._clock_jump)
