"""Degree/skew-aware cost-based planner for n-way join specs.

The planner chooses, per query graph: (a) the edge evaluation order,
(b) the per-edge two-way operator, and (c) tuning knobs (block width),
from cheap graph statistics (:mod:`repro.planner.stats`), a
step-denominated cost model (:mod:`repro.planner.cost`), and a greedy
search over an LRU simulation of the shared walk cache
(:mod:`repro.planner.plan`).  Executors consume the resulting
:class:`ExplainedPlan` via ``NWayJoinSpec.resolve_plan``; the old
fixed behaviour survives as ``plan="fixed"`` and doubles as the
bit-identity oracle for the planner-decision test harness
(:mod:`repro.planner.fixture`).
"""

from repro.planner.cost import COST_MODEL_VERSION, CostModel, EdgeCostEstimate
from repro.planner.fixture import PlannerFixture
from repro.planner.plan import (
    EdgePlan,
    ExplainedPlan,
    choose_plan,
    plan_with_order,
    resolve_spec_plan,
)
from repro.planner.stats import GraphStats, NodeSetStats

__all__ = [
    "COST_MODEL_VERSION",
    "CostModel",
    "EdgeCostEstimate",
    "EdgePlan",
    "ExplainedPlan",
    "GraphStats",
    "NodeSetStats",
    "PlannerFixture",
    "choose_plan",
    "plan_with_order",
    "resolve_spec_plan",
]
