"""The planner's cost model, denominated in propagation steps.

Every estimate is expressed in the repo's one perf currency —
batching-invariant *column-steps* (``WalkEngineStats.propagation_steps``)
— so planner predictions and engine measurements live on the same
axis and the bench section can score them against each other.

Per-operator formulas for one query edge ``(P, Q)`` at depth ``d``
(``p = |P|``, ``q = |Q|``):

==============  =====================================================
operator kind   estimated column-steps
==============  =====================================================
``basic``       ``d * q`` — every right target walks the full depth
``idj-y``       ``q * (1 + sigma * (d - 1)) + (d if Y unbuilt)`` —
                level 1 always walks; survivors (fraction ``sigma``)
                pay the remaining depth; the reach-mass ``Y`` table
                costs one ``d``-step aggregated propagation unless the
                bound cache already holds it
``idj-x``       like ``idj-y`` with a weaker (closed-form) tail:
                pruning power is discounted, the bound is free
``f-bj``        ``d * p * q`` — one absorbing walk per *pair*
``f-idj``       ``p * q * (1 + sigma_x * (d - 1))``
==============  =====================================================

``sigma = 1 - rho`` is the survivor fraction after the first pruning
round; the pruning power ``rho`` is driven by the degree-skew signals
(hub fraction of the left set, the graph's out-degree coefficient of
variation) — skewed reach mass concentrates score on few pairs, so the
``Y`` threshold bites early (the Section VII observation that ``B-IDJ``
wins big exactly on hub-heavy graphs).  When a memoised ``Y`` table is
available, its actual tail decay refines ``rho`` with measured data.

Backward operators additionally earn a *cache credit*: targets of
``Q`` predicted resident in the shared walk cache at build time are
walks the edge will not pay again (``d`` steps each).  The credit is
scaled by the observed resume rate from optional
:class:`~repro.walks.engine.WalkEngineStats` feedback — a prior run
that resumed most of its walks earns full credit, a cold engine only
half, so a bad prior never flips a sign, only a margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.planner.stats import GraphStats, NodeSetStats

# Bump whenever a formula or coefficient below changes: the golden
# decision tests pin this version, so a cost-model edit that flips a
# plan choice fails CI until the goldens are regenerated deliberately.
COST_MODEL_VERSION = 1

# Pruning power never reaches 1: some survivors always walk full depth.
RHO_MAX = 0.9
# Skew-signal weights in rho = 1 - exp(-(HUB_W * hub_frac + CV_W * cv')).
_HUB_WEIGHT = 1.25
_CV_WEIGHT = 1.5
# The closed-form X tail is data-independent and prunes roughly half as
# well as the reach-mass Y table on the bench topologies.
_X_DISCOUNT = 0.5

_BACKWARD_KINDS = ("basic", "idj-y", "idj-x")
_KINDS = _BACKWARD_KINDS + ("f-bj", "f-idj")


@dataclass(frozen=True)
class EdgeCostEstimate:
    """One operator's predicted cost for one query edge."""

    kind: str
    steps: float
    walk_steps: float
    bound_steps: float
    credit: float
    survivor_fraction: float
    reasons: Tuple[str, ...]


class CostModel:
    """Degree/skew-aware per-edge cost estimates.

    Parameters
    ----------
    stats:
        The graph's degree statistics.
    d:
        The spec's truncation depth.
    feedback:
        Optional :class:`~repro.walks.engine.WalkEngineStats` from a
        prior run on the same engine; its resume rate scales the
        walk-cache credit (see :meth:`credit_scale`).
    """

    def __init__(self, stats: GraphStats, d: int, feedback=None) -> None:
        self._stats = stats
        self._d = int(d)
        self.credit_scale = self._feedback_credit_scale(feedback)

    @property
    def d(self) -> int:
        return self._d

    @staticmethod
    def _feedback_credit_scale(feedback) -> float:
        """Resume-rate-scaled credit in ``[0.5, 1.0]``.

        ``steps_saved / (propagation_steps + steps_saved)`` is the share
        of walk work a prior run served from resumable cache state; a
        cold engine (no feedback, or no walks yet) earns the
        conservative floor.
        """
        if feedback is None:
            return 0.75
        walked = float(getattr(feedback, "propagation_steps", 0))
        saved = float(getattr(feedback, "steps_saved", 0))
        total = walked + saved
        if total <= 0:
            return 0.75
        return 0.5 + 0.5 * min(1.0, saved / total)

    def pruning_power(
        self,
        left: NodeSetStats,
        tail_ratio: Optional[float] = None,
    ) -> float:
        """``rho`` in ``[0, RHO_MAX]``: predicted fraction pruned early.

        Monotone increasing in the left set's hub fraction and in the
        graph's out-degree coefficient of variation — more skew, more
        early pruning.  A measured ``tail_ratio`` (the memoised ``Y``
        table's mid-depth/level-1 tail quotient; small = fast decay)
        can only sharpen the prediction upward, never soften it.
        """
        cv = self._stats.cv_out_degree
        cv_norm = cv / (1.0 + cv)
        rho = 1.0 - math.exp(
            -(_HUB_WEIGHT * left.hub_fraction + _CV_WEIGHT * cv_norm)
        )
        if tail_ratio is not None:
            rho = max(rho, 1.0 - max(0.0, min(1.0, tail_ratio)))
        return min(RHO_MAX, max(0.0, rho))

    def estimate(
        self,
        kind: str,
        left: NodeSetStats,
        right: NodeSetStats,
        resident_overlap: int = 0,
        y_bound_cached: bool = False,
        tail_ratio: Optional[float] = None,
    ) -> EdgeCostEstimate:
        """Predicted column-steps of one operator on edge ``(P, Q)``.

        ``resident_overlap`` is the number of right-set targets the
        LRU simulation predicts resident in the shared walk cache when
        this edge builds; ``y_bound_cached`` says the ``(P, d)``
        reach-mass table is already memoised (by the bound cache or by
        an earlier edge of this very plan).
        """
        if kind not in _KINDS:
            raise ValueError(f"unknown operator kind {kind!r}; choose from {_KINDS}")
        d, p, q = float(self._d), float(left.size), float(right.size)
        reasons = []
        rho = self.pruning_power(left, tail_ratio=tail_ratio)
        bound_steps = 0.0
        credit = 0.0
        if kind == "basic":
            walk_steps = d * q
            survivor = 1.0
        elif kind == "f-bj":
            walk_steps = d * p * q
            survivor = 1.0
            reasons.append("per-pair forward walks")
        elif kind == "f-idj":
            survivor = 1.0 - rho * _X_DISCOUNT
            walk_steps = p * q * (1.0 + survivor * (d - 1.0))
            reasons.append(f"closed-form tail, rho={rho:.2f}")
        elif kind == "idj-x":
            survivor = 1.0 - rho * _X_DISCOUNT
            walk_steps = q * (1.0 + survivor * (d - 1.0))
            reasons.append(f"closed-form tail, rho={rho:.2f}")
        else:  # idj-y
            survivor = 1.0 - rho
            walk_steps = q * (1.0 + survivor * (d - 1.0))
            if y_bound_cached:
                reasons.append(f"rho={rho:.2f}, Y cached")
            else:
                bound_steps = d
                reasons.append(f"rho={rho:.2f}, Y build {d:.0f}")
            if tail_ratio is not None:
                reasons.append(f"measured tail ratio {tail_ratio:.2f}")
        if kind in _BACKWARD_KINDS and resident_overlap > 0:
            # Resident targets resume from the cache instead of
            # re-walking full depth.
            credit = min(
                walk_steps, self.credit_scale * d * float(resident_overlap)
            )
            reasons.append(f"{resident_overlap} targets resident")
        return EdgeCostEstimate(
            kind=kind,
            steps=walk_steps + bound_steps - credit,
            walk_steps=walk_steps,
            bound_steps=bound_steps,
            credit=credit,
            survivor_fraction=survivor,
            reasons=tuple(reasons),
        )
