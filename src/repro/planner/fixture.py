"""Planner-decision test fixtures: small graphs with controlled skew.

Every planner test and the planner bench section build their specs
here, so the *mechanism under test* is stated once: edge order changes
``propagation_steps`` only under walk-cache LRU pressure (a byte
budget on the shared :class:`~repro.walks.cache.WalkCache`), and the
win comes from grouping edges that share right sets and building
cheap (low-fanout) edges first.  Without a byte budget the resumable
cache makes every order cost the same — the fixtures therefore set
``walk_cache_bytes`` tight enough that the star's interleaved natural
order thrashes while the grouped order stays resident.

``m`` is large relative to ``k`` so PJ's rank join never refills:
build-phase walk costs, the thing the planner orders, dominate the
counter instead of being swamped by restart re-materialisations.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.nway.query_graph import QueryGraph
from repro.core.nway.spec import NWayJoinSpec
from repro.graph.builders import erdos_renyi, preferential_attachment
from repro.graph.digraph import Graph

DEFAULT_SEED = 2014


class PlannerFixture:
    """Builds the three controlled-skew planner scenarios.

    ``skewed_star_spec`` — hub centre, leaf satellites on a power-law
    graph: the canonical order-sensitive case (the centre's right set
    is shared by every in-edge).  ``chain_spec`` — hub middle set on
    the same topology.  ``uniform_er_spec`` — equal-degree sets on an
    Erdos-Renyi graph: the no-skew control where plans barely differ.
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self.seed = seed

    # -- graphs --------------------------------------------------------

    def power_law_graph(self, n: int = 2000, m: int = 4) -> Graph:
        """Preferential-attachment graph with heavy-tailed degrees."""
        return preferential_attachment(n, m, np.random.default_rng(self.seed))

    def uniform_graph(self, n: int = 2000, expected_degree: float = 4.0) -> Graph:
        """Erdos-Renyi graph: all degrees concentrate at the mean."""
        return erdos_renyi(
            n, expected_degree / n, np.random.default_rng(self.seed), weighted=True
        )

    # -- node-set helpers ----------------------------------------------

    @staticmethod
    def degree_order(graph: Graph) -> List[int]:
        """Node ids sorted by descending out-degree."""
        n = graph.num_nodes
        deg = np.fromiter(
            (graph.out_degree(v) for v in range(n)), dtype=np.int64, count=n
        )
        return [int(v) for v in np.argsort(-deg)]

    def hub_and_leaf_sets(
        self,
        graph: Graph,
        hub_size: int,
        leaf_size: int,
        num_leaf_sets: int,
    ) -> Tuple[List[int], List[List[int]]]:
        """One hub set from the degree head, disjoint leaf sets from
        the tail half."""
        order = self.degree_order(graph)
        hubs = order[:hub_size]
        tail = order[len(order) // 2:]
        if num_leaf_sets * leaf_size > len(tail):
            raise ValueError(
                f"graph too small: need {num_leaf_sets * leaf_size} tail "
                f"nodes, have {len(tail)}"
            )
        leaves = [
            tail[i * leaf_size:(i + 1) * leaf_size] for i in range(num_leaf_sets)
        ]
        return hubs, leaves

    # -- walk-cache pressure -------------------------------------------

    @staticmethod
    def pressure_bytes(
        graph: Graph, resident_targets: int, d: int = 5
    ) -> int:
        """A walk-cache byte budget holding about ``resident_targets``
        cached targets — enough for one edge's right set to stay
        resident, not enough for an interleaved schedule's union."""
        import math

        levels = 1 + max(0, int(math.floor(math.log2(max(1, d)))))
        per_target = 8 * graph.num_nodes * (levels + 2)
        return per_target * max(1, resident_targets)

    # -- specs ---------------------------------------------------------

    @staticmethod
    def _spec_depth(d: int, spec_kwargs: dict):
        """``d`` for the spec — ``None`` under a measure (the measure
        fixes its own depth; the ``d`` argument still sizes the
        walk-cache pressure estimate)."""
        return None if spec_kwargs.get("measure") is not None else d

    def skewed_star_spec(
        self,
        n: int = 2000,
        spokes: int = 3,
        hub_size: int = 48,
        leaf_size: int = 96,
        k: int = 20,
        d: int = 5,
        walk_cache_bytes: Optional[int] = "auto",
        graph: Optional[Graph] = None,
        **spec_kwargs,
    ) -> NWayJoinSpec:
        """Bidirectional star, hub centre, leaf satellites, power law.

        The natural edge order ``(0,1),(1,0),(0,2),(2,0),...`` maximally
        interleaves the shared centre right set with the leaf right
        sets; the planner should instead group the low-fanout in-edges
        (right set = hub centre) first.
        """
        graph = graph if graph is not None else self.power_law_graph(n)
        hubs, leaves = self.hub_and_leaf_sets(graph, hub_size, leaf_size, spokes)
        if walk_cache_bytes == "auto":
            # Holds the hub right set with headroom; a hub+leaf union
            # (what an interleaved order keeps alternating between)
            # does not fit, so grouping is what avoids re-walks.
            walk_cache_bytes = self.pressure_bytes(
                graph, hub_size + leaf_size // 6, d
            )
        return NWayJoinSpec(
            graph=graph,
            query_graph=QueryGraph.star(spokes, bidirectional=True),
            node_sets=[hubs] + leaves,
            k=k,
            d=self._spec_depth(d, spec_kwargs),
            walk_cache_bytes=walk_cache_bytes,
            **spec_kwargs,
        )

    def chain_spec(
        self,
        n: int = 2000,
        length: int = 3,
        hub_size: int = 48,
        leaf_size: int = 96,
        k: int = 20,
        d: int = 5,
        walk_cache_bytes: Optional[int] = "auto",
        graph: Optional[Graph] = None,
        **spec_kwargs,
    ) -> NWayJoinSpec:
        """Bidirectional chain with the hub set in the middle."""
        graph = graph if graph is not None else self.power_law_graph(n)
        hubs, leaves = self.hub_and_leaf_sets(graph, hub_size, leaf_size, length - 1)
        middle = length // 2
        node_sets = leaves[:middle] + [hubs] + leaves[middle:]
        if walk_cache_bytes == "auto":
            walk_cache_bytes = self.pressure_bytes(
                graph, hub_size + leaf_size // 6, d
            )
        return NWayJoinSpec(
            graph=graph,
            query_graph=QueryGraph.chain(length, bidirectional=True),
            node_sets=node_sets,
            k=k,
            d=self._spec_depth(d, spec_kwargs),
            walk_cache_bytes=walk_cache_bytes,
            **spec_kwargs,
        )

    def uniform_er_spec(
        self,
        n: int = 2000,
        length: int = 3,
        set_size: int = 64,
        k: int = 20,
        d: int = 5,
        graph: Optional[Graph] = None,
        **spec_kwargs,
    ) -> NWayJoinSpec:
        """Directed chain over equal-sized sets on an ER graph — the
        no-skew control (no walk-cache budget: order barely matters)."""
        graph = graph if graph is not None else self.uniform_graph(n)
        rng = np.random.default_rng(self.seed + 1)
        nodes = rng.permutation(graph.num_nodes)
        node_sets = [
            [int(v) for v in nodes[i * set_size:(i + 1) * set_size]]
            for i in range(length)
        ]
        return NWayJoinSpec(
            graph=graph,
            query_graph=QueryGraph.chain(length, bidirectional=False),
            node_sets=node_sets,
            k=k,
            d=self._spec_depth(d, spec_kwargs),
            **spec_kwargs,
        )

    # -- order helpers -------------------------------------------------

    @staticmethod
    def worst_interleaved_order(spec: NWayJoinSpec) -> List[int]:
        """An order that maximally alternates distinct right sets.

        Greedy anti-grouping: at each step, take an edge whose right
        vertex differs from the previous edge's (preferring the vertex
        with most edges left), so consecutive edges never share a right
        set unless forced — the cache-thrashing tier for a
        byte-budgeted walk cache.  On a bidirectional star this yields
        ``[1, 0, 3, 2, 5, 4]``: centre/leaf right sets strictly
        alternate.
        """
        buckets: dict = {}
        for e, (_, j) in enumerate(spec.query_graph.edges):
            buckets.setdefault(j, []).append(e)
        order: List[int] = []
        previous = None
        while any(buckets.values()):
            candidates = [j for j, b in buckets.items() if b and j != previous]
            if not candidates:
                candidates = [j for j, b in buckets.items() if b]
            j = max(candidates, key=lambda v: (len(buckets[v]), -v))
            order.append(buckets[j].pop(0))
            previous = j
        return order

    @staticmethod
    def all_build_orders(
        spec: NWayJoinSpec, limit: int = 24
    ) -> Iterator[Tuple[int, ...]]:
        """Every edge permutation, for exhaustive bit-identity checks.

        Guarded by ``limit``: the harness only enumerates graphs small
        enough (``E! <= limit``) to check exhaustively.
        """
        num_edges = spec.query_graph.num_edges
        perms = itertools.permutations(range(num_edges))
        for count, perm in enumerate(perms):
            if count >= limit:
                raise ValueError(
                    f"{num_edges}! orders exceed the exhaustive limit {limit}"
                )
            yield perm
