"""Plan choice: edge order + per-edge operator + knobs, explained.

The planner sits between :class:`~repro.core.nway.spec.NWayJoinSpec`
and the two-way contexts.  Executors never decide anything themselves
any more: they call :meth:`NWayJoinSpec.resolve_plan` (which lands in
:func:`resolve_spec_plan` here) and get back an :class:`ExplainedPlan`
— a build order over the query edges plus one :class:`EdgePlan`
(operator name, block width, cost breakdown) per edge.  Operator names,
not classes, cross the boundary, so the core layer keeps its
no-``extensions``-imports rule and each executor maps names to the
classes it owns.

Two modes:

``"fixed"``
    The pre-planner behaviour, kept as the bit-identity oracle: edges
    build in index order with the executor's default operator.  The
    plan still carries cost estimates, so ``--explain`` works either
    way.
``"auto"``
    Greedy cost-based ordering.  Each step picks the unplanned edge
    (and its cheapest operator) with minimal marginal cost under an
    LRU simulation of the shared walk cache's resident set — edges
    whose right sets are predicted resident get a cache credit, so
    edges sharing right sets group together and cheap (low-fanout)
    edges go first.  That is exactly the order that avoids thrashing a
    byte-budgeted walk cache: interleaving edges that share targets
    re-walks them after eviction, grouping recovers the unbudgeted
    cost.

Auto and fixed plans are *answer-equivalent by construction*: the
rank-join driver consumes per-edge streams positionally
(``inputs[e]``), so the build order changes which walks are cached
when — never which pairs an edge yields — and every candidate operator
produces the same sorted prefixes.  The planner-decision test harness
(:mod:`tests.test_planner`) asserts this bit-identity against every
fixed-order permutation.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.two_way.backward import DEFAULT_BLOCK_SIZE
from repro.graph.validation import GraphValidationError
from repro.planner.cost import COST_MODEL_VERSION, CostModel, EdgeCostEstimate
from repro.planner.stats import GraphStats
from repro.walks.rounds import columns_for_budget

PLAN_MODES = ("fixed", "auto")
PLAN_STRATEGIES = ("pj", "pj-i", "ap")

# Operator candidates per strategy, best-guess first (ties in estimated
# cost resolve toward the front of the tuple).  DHT names are the
# paper's; series names are the measure-generic pair.
_DHT_CANDIDATES = {
    "pj": ("b-idj-y", "b-idj-x", "b-bj", "f-idj"),
    "ap": ("b-bj", "f-bj"),
}
_SERIES_CANDIDATES = {
    "pj": ("idj", "basic"),
    "ap": ("basic",),
}
_DHT_DEFAULTS = {"pj": "b-idj-y", "pj-i": "b-idj-y", "ap": "f-bj"}
_SERIES_DEFAULTS = {"pj": "idj", "pj-i": "idj", "ap": "basic"}

# Operator name -> cost-model kind.  "idj" resolves per measure (a
# tail_weight measure gets the reach-mass Y cost, SimRank the X form).
_OPERATOR_KINDS = {
    "b-bj": "basic",
    "basic": "basic",
    "b-idj-y": "idj-y",
    "b-idj-x": "idj-x",
    "f-bj": "f-bj",
    "f-idj": "f-idj",
}
_Y_BOUND_OPERATORS = ("b-idj-y",)  # plus "idj" under a tail_weight measure
_BLOCK_OPERATORS = ("b-bj", "basic")  # operators with a block-width knob


@dataclass(frozen=True)
class EdgePlan:
    """The planner's decision for one query edge."""

    edge_index: int
    edge_name: str
    operator: str
    block_size: Optional[int]
    estimated_steps: float
    walk_steps: float
    bound_steps: float
    credit: float
    survivor_fraction: float
    cached_targets: int
    reasons: Tuple[str, ...] = ()

    def to_json(self) -> dict:
        return {
            "edge_index": self.edge_index,
            "edge_name": self.edge_name,
            "operator": self.operator,
            "block_size": self.block_size,
            "estimated_steps": round(self.estimated_steps, 3),
            "walk_steps": round(self.walk_steps, 3),
            "bound_steps": round(self.bound_steps, 3),
            "credit": round(self.credit, 3),
            "survivor_fraction": round(self.survivor_fraction, 4),
            "cached_targets": self.cached_targets,
            "reasons": list(self.reasons),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "EdgePlan":
        return cls(
            edge_index=int(payload["edge_index"]),
            edge_name=str(payload["edge_name"]),
            operator=str(payload["operator"]),
            block_size=(
                None if payload.get("block_size") is None
                else int(payload["block_size"])
            ),
            estimated_steps=float(payload["estimated_steps"]),
            walk_steps=float(payload["walk_steps"]),
            bound_steps=float(payload["bound_steps"]),
            credit=float(payload["credit"]),
            survivor_fraction=float(payload["survivor_fraction"]),
            cached_targets=int(payload["cached_targets"]),
            reasons=tuple(payload.get("reasons", ())),
        )


@dataclass(frozen=True)
class ExplainedPlan:
    """A complete, printable plan for one n-way spec.

    ``edges`` is indexed by *edge index* (``edges[e]`` plans query edge
    ``e``); ``build_order`` is the evaluation order over those indices.
    The plan is a value object: executors read it, the CLI prints it
    (:meth:`format`), goldens pin it (:meth:`decisions`), and
    ``to_json``/``from_json`` round-trip it losslessly enough to replay.
    """

    mode: str
    strategy: str
    cost_model_version: int
    build_order: Tuple[int, ...]
    edges: Tuple[EdgePlan, ...]
    signals: dict = field(default_factory=dict)
    total_estimated_steps: float = 0.0

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def operators(self) -> Tuple[str, ...]:
        """Per-edge operator names, indexed by edge index."""
        return tuple(ep.operator for ep in self.edges)

    def edge_plan(self, edge_index: int) -> EdgePlan:
        return self.edges[edge_index]

    def decisions(self) -> dict:
        """The golden-file fingerprint: everything that changes
        execution, nothing that merely explains it."""
        return {
            "cost_model_version": self.cost_model_version,
            "mode": self.mode,
            "strategy": self.strategy,
            "build_order": list(self.build_order),
            "operators": list(self.operators),
            "block_sizes": [ep.block_size for ep in self.edges],
        }

    def to_json(self) -> dict:
        return {
            "mode": self.mode,
            "strategy": self.strategy,
            "cost_model_version": self.cost_model_version,
            "build_order": list(self.build_order),
            "total_estimated_steps": round(self.total_estimated_steps, 3),
            "signals": self.signals,
            "edges": [ep.to_json() for ep in self.edges],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ExplainedPlan":
        edges = tuple(EdgePlan.from_json(e) for e in payload["edges"])
        return cls(
            mode=str(payload["mode"]),
            strategy=str(payload["strategy"]),
            cost_model_version=int(payload["cost_model_version"]),
            build_order=tuple(int(e) for e in payload["build_order"]),
            edges=edges,
            signals=dict(payload.get("signals", {})),
            total_estimated_steps=float(payload.get("total_estimated_steps", 0.0)),
        )

    def format(self) -> str:
        """Human-readable multi-line rendering (the ``--explain`` text)."""
        sig = self.signals.get("graph", {})
        lines = [
            f"plan[{self.mode}] strategy={self.strategy} "
            f"cost-model=v{self.cost_model_version} "
            f"est-steps={self.total_estimated_steps:.0f}",
        ]
        if sig:
            lines.append(
                "signals: "
                f"n={sig.get('num_nodes')} "
                f"mean-out={sig.get('mean_out_degree')} "
                f"cv-out={sig.get('cv_out_degree')} "
                f"heavy={sig.get('heavy_count')} "
                f"({100.0 * sig.get('heavy_fraction', 0.0):.1f}%) "
                f"credit-scale={self.signals.get('credit_scale', '?')}"
            )
        for position, e in enumerate(self.build_order, start=1):
            ep = self.edges[e]
            knob = f" block={ep.block_size}" if ep.block_size is not None else ""
            why = f"  [{'; '.join(ep.reasons)}]" if ep.reasons else ""
            lines.append(
                f"{position:>3}. edge {e} {ep.edge_name:<12} "
                f"op={ep.operator:<8}{knob} "
                f"est={ep.estimated_steps:.0f} "
                f"(walk {ep.walk_steps:.0f} + bound {ep.bound_steps:.0f}"
                f" - credit {ep.credit:.0f})"
                f"{why}"
            )
        return "\n".join(lines)


class _ResidentSetModel:
    """LRU simulation of the shared walk cache's resident target set.

    Capacity mirrors the real :class:`~repro.walks.cache.WalkCache`
    budgets (``max_targets`` always, ``max_bytes`` when set); the
    per-target byte estimate counts the retained doubling-level vectors
    plus the resumable buffers, the dominant terms of
    ``WalkCache.current_bytes``.  The model only has to *rank* orders,
    not reproduce eviction byte-exactly.
    """

    def __init__(self, num_nodes: int, d: int, walk_cache) -> None:
        self._enabled = walk_cache is not None
        if not self._enabled:
            self.max_targets = 0
            self.bytes_per_target = 0
            self.max_bytes = None
            self._resident: "OrderedDict[int, None]" = OrderedDict()
            return
        levels = 1 + max(0, int(math.floor(math.log2(max(1, d)))))
        # Retained level vectors + resumable current/accumulator pair.
        self.bytes_per_target = 8 * num_nodes * (levels + 2)
        self.max_targets = walk_cache.max_targets
        self.max_bytes = walk_cache.max_bytes
        self._resident = OrderedDict()

    @property
    def capacity_targets(self) -> int:
        """How many targets fit, under both budgets."""
        if not self._enabled:
            return 0
        cap = self.max_targets
        if self.max_bytes is not None and self.bytes_per_target > 0:
            cap = min(cap, max(1, self.max_bytes // self.bytes_per_target))
        return cap

    def overlap(self, targets: Sequence[int]) -> int:
        """How many of ``targets`` are predicted resident right now."""
        if not self._enabled:
            return 0
        return sum(1 for q in targets if q in self._resident)

    def admit(self, targets: Sequence[int]) -> None:
        """Touch ``targets`` (most-recent last) and evict LRU overflow."""
        if not self._enabled:
            return
        for q in targets:
            if q in self._resident:
                self._resident.move_to_end(q)
            else:
                self._resident[q] = None
        cap = self.capacity_targets
        while len(self._resident) > cap:
            self._resident.popitem(last=False)


def _strategy_defaults(strategy: str, measure) -> str:
    table = _SERIES_DEFAULTS if measure is not None else _DHT_DEFAULTS
    return table[strategy]


def _candidates(strategy: str, measure, default: str, mode: str) -> Tuple[str, ...]:
    if mode == "fixed" or strategy == "pj-i":
        # Fixed mode keeps the executor's default; PJ-i's incremental
        # F-structure is its own operator — the planner only orders it.
        return (default,)
    table = _SERIES_CANDIDATES if measure is not None else _DHT_CANDIDATES
    candidates = table[strategy]
    if default in candidates:
        return (default,) + tuple(c for c in candidates if c != default)
    return candidates


def _operator_kind(operator: str, measure) -> str:
    if operator == "idj":
        has_tail = getattr(measure, "tail_weight", None) is not None
        return "idj-y" if has_tail else "idj-x"
    try:
        return _OPERATOR_KINDS[operator]
    except KeyError:
        raise GraphValidationError(
            f"unknown plan operator {operator!r}; "
            f"choose from {sorted(_OPERATOR_KINDS) + ['idj']}"
        ) from None


def _uses_y_bound(operator: str, measure) -> bool:
    if operator in _Y_BOUND_OPERATORS:
        return True
    return operator == "idj" and getattr(measure, "tail_weight", None) is not None


def _block_knob(spec, operator: str) -> Optional[int]:
    """The block-width knob for block-propagating operators."""
    if operator not in _BLOCK_OPERATORS:
        return None
    width = DEFAULT_BLOCK_SIZE
    if spec.max_block_bytes is not None:
        width = min(
            width, columns_for_budget(spec.max_block_bytes, spec.graph.num_nodes)
        )
    return width


def _tail_ratio(spec, left: Sequence[int], right: Sequence[int]) -> Optional[float]:
    """Measured tail decay from an already-memoised ``Y`` table.

    Pure probe: only a table the bound cache already holds is consulted
    (``peek_y_bound``), so planning never triggers a bound build.  The
    quotient ``tail(d/2) / tail(1)`` averaged over a small right-set
    sample is the table's measured decay — small means reach mass dies
    fast and pruning will bite.
    """
    cache = getattr(spec, "bound_cache", None)
    if cache is None:
        return None
    bound = cache.peek_y_bound(left, spec.d)
    if bound is None:
        return None
    mid = max(1, spec.d // 2)
    heads, mids = [], []
    for q in list(right)[:8]:
        try:
            heads.append(float(bound.tail(1, q)))
            mids.append(float(bound.tail(mid, q)))
        except (ValueError, IndexError):  # pragma: no cover - defensive
            return None
    total_head = sum(heads)
    if total_head <= 0:
        return None
    return sum(mids) / total_head


def _estimate_edge(
    spec,
    model: CostModel,
    edge_sets: Sequence[Tuple[Sequence[int], Sequence[int]]],
    set_stats,
    e: int,
    candidates: Tuple[str, ...],
    resident: _ResidentSetModel,
    built_y: set,
) -> Tuple[str, EdgeCostEstimate, int]:
    """The cheapest candidate operator for edge ``e`` right now."""
    left, right = edge_sets[e]
    i, j = spec.query_graph.edges[e]
    left_stats, right_stats = set_stats[i], set_stats[j]
    overlap = resident.overlap(right)
    best = None
    for operator in candidates:
        kind = _operator_kind(operator, spec.measure)
        y_cached = False
        tail_ratio = None
        if _uses_y_bound(operator, spec.measure):
            from repro.bounds_cache import BoundPlanCache

            key = BoundPlanCache.node_set_key(left)
            cache = getattr(spec, "bound_cache", None)
            y_cached = key in built_y or (
                cache is not None and cache.peek_y_bound(left, spec.d) is not None
            )
            tail_ratio = _tail_ratio(spec, left, right)
        est = model.estimate(
            kind,
            left_stats,
            right_stats,
            resident_overlap=overlap if kind in ("basic", "idj-y", "idj-x") else 0,
            y_bound_cached=y_cached,
            tail_ratio=tail_ratio,
        )
        if best is None or est.steps < best[1].steps:
            best = (operator, est)
    return best[0], best[1], overlap


def _commit_edge(
    spec,
    edge_sets,
    e: int,
    operator: str,
    resident: _ResidentSetModel,
    built_y: set,
) -> None:
    """Update the planning state after scheduling edge ``e``."""
    left, right = edge_sets[e]
    kind = _operator_kind(operator, spec.measure)
    if kind in ("basic", "idj-y", "idj-x"):
        resident.admit(right)
    if _uses_y_bound(operator, spec.measure) and getattr(spec, "bound_cache", None) is not None:
        from repro.bounds_cache import BoundPlanCache

        built_y.add(BoundPlanCache.node_set_key(left))


def _build_plan(
    spec,
    strategy: str,
    mode: str,
    order: Optional[Sequence[int]],
    default_operator: Optional[str],
    feedback,
) -> ExplainedPlan:
    num_edges = spec.query_graph.num_edges
    stats = GraphStats(spec.graph)
    if feedback is None:
        engine_stats = spec.engine.stats
        if getattr(engine_stats, "propagation_steps", 0) > 0:
            # A reused engine's counters are prior-run feedback.
            feedback = engine_stats
    model = CostModel(stats, spec.d, feedback=feedback)
    default = (default_operator or _strategy_defaults(strategy, spec.measure)).lower()
    candidates = _candidates(strategy, spec.measure, default, mode)

    edge_sets = [spec.edge_node_sets(e) for e in range(num_edges)]
    set_stats = [stats.node_set(nodes) for nodes in spec.node_sets]
    resident = _ResidentSetModel(spec.graph.num_nodes, spec.d, spec.walk_cache)
    built_y: set = set()
    plans: Dict[int, EdgePlan] = {}

    if order is not None or mode == "fixed":
        schedule = list(order) if order is not None else list(range(num_edges))
        build_order = []
        for e in schedule:
            operator, est, overlap = _estimate_edge(
                spec, model, edge_sets, set_stats, e,
                (default,), resident, built_y,
            )
            plans[e] = _edge_plan(spec, e, operator, est, overlap)
            _commit_edge(spec, edge_sets, e, operator, resident, built_y)
            build_order.append(e)
    else:
        remaining = list(range(num_edges))
        build_order = []
        while remaining:
            scored = []
            for e in remaining:
                operator, est, overlap = _estimate_edge(
                    spec, model, edge_sets, set_stats, e,
                    candidates, resident, built_y,
                )
                scored.append((est.steps, e, operator, est, overlap))
            scored.sort(key=lambda item: (item[0], item[1]))
            _, e, operator, est, overlap = scored[0]
            plans[e] = _edge_plan(spec, e, operator, est, overlap)
            _commit_edge(spec, edge_sets, e, operator, resident, built_y)
            build_order.append(e)
            remaining.remove(e)

    edges = tuple(plans[e] for e in range(num_edges))
    signals = {
        "graph": stats.summary(),
        "credit_scale": round(model.credit_scale, 3),
        "walk_cache_capacity_targets": resident.capacity_targets,
        "d": int(spec.d),
        "measure": getattr(spec.measure, "name", None) or "dht",
    }
    return ExplainedPlan(
        mode=mode,
        strategy=strategy,
        cost_model_version=COST_MODEL_VERSION,
        build_order=tuple(build_order),
        edges=edges,
        signals=signals,
        total_estimated_steps=float(sum(ep.estimated_steps for ep in edges)),
    )


def _edge_plan(spec, e: int, operator: str, est: EdgeCostEstimate, overlap: int) -> EdgePlan:
    return EdgePlan(
        edge_index=e,
        edge_name=spec.query_graph.edge_name(e),
        operator=operator,
        block_size=_block_knob(spec, operator),
        estimated_steps=est.steps,
        walk_steps=est.walk_steps,
        bound_steps=est.bound_steps,
        credit=est.credit,
        survivor_fraction=est.survivor_fraction,
        cached_targets=overlap,
        reasons=est.reasons,
    )


def _check_strategy(strategy: str) -> str:
    strategy = strategy.lower()
    if strategy == "nl":
        raise GraphValidationError(
            "the NL strategy scores answers one tuple at a time; it has no "
            "per-edge build order or operator choice to plan — use 'ap', "
            "'pj', or 'pj-i' with plan='auto'"
        )
    if strategy not in PLAN_STRATEGIES:
        raise GraphValidationError(
            f"unknown plan strategy {strategy!r}; choose from {PLAN_STRATEGIES}"
        )
    return strategy


def choose_plan(
    spec,
    strategy: str,
    mode: str = "auto",
    default_operator: Optional[str] = None,
    m: int = 50,
    feedback=None,
) -> ExplainedPlan:
    """Plan ``spec`` for ``strategy`` (``"pj"``/``"pj-i"``/``"ap"``).

    ``mode="fixed"`` reproduces the pre-planner behaviour (index order,
    default operator) with cost annotations; ``mode="auto"`` runs the
    greedy cost-based search.  ``feedback`` is optional
    :class:`~repro.walks.engine.WalkEngineStats`; omitted, a reused
    engine's own counters serve as prior-run feedback.  ``m`` is
    accepted for signature stability (prefix length does not currently
    move any decision: it scales every edge's rank-join pull cost
    equally).
    """
    strategy = _check_strategy(strategy)
    mode = mode.lower()
    if mode not in PLAN_MODES:
        raise GraphValidationError(
            f"unknown plan mode {mode!r}; choose from {PLAN_MODES}"
        )
    return _build_plan(spec, strategy, mode, None, default_operator, feedback)


def plan_with_order(
    spec,
    strategy: str,
    order: Sequence[int],
    default_operator: Optional[str] = None,
    m: int = 50,
) -> ExplainedPlan:
    """A fixed plan with an *explicit* build order (bench worst-order
    arms, the equivalence harness's exhaustive permutations)."""
    strategy = _check_strategy(strategy)
    num_edges = spec.query_graph.num_edges
    if sorted(order) != list(range(num_edges)):
        raise GraphValidationError(
            f"order {list(order)!r} is not a permutation of the "
            f"{num_edges} query edges"
        )
    return _build_plan(spec, strategy, "fixed", list(order), default_operator, None)


def validate_plan_for(plan: ExplainedPlan, spec, strategy: str) -> ExplainedPlan:
    """Check a caller-supplied :class:`ExplainedPlan` against a spec."""
    strategy = _check_strategy(strategy)
    num_edges = spec.query_graph.num_edges
    if plan.num_edges != num_edges:
        raise GraphValidationError(
            f"plan covers {plan.num_edges} edges but the query graph has "
            f"{num_edges}"
        )
    if sorted(plan.build_order) != list(range(num_edges)):
        raise GraphValidationError(
            f"plan build order {list(plan.build_order)!r} is not a "
            f"permutation of the {num_edges} query edges"
        )
    compatible = plan.strategy == strategy or {plan.strategy, strategy} <= {
        "pj", "pj-i"
    }
    if not compatible:
        raise GraphValidationError(
            f"plan was built for strategy {plan.strategy!r}, "
            f"not {strategy!r}"
        )
    return plan


def resolve_spec_plan(
    spec,
    strategy: str,
    plan=None,
    default_operator: Optional[str] = None,
    m: int = 50,
    feedback=None,
) -> ExplainedPlan:
    """The executor entry point behind ``NWayJoinSpec.resolve_plan``.

    ``plan`` overrides the spec's own ``plan`` field when given: a mode
    string (``"fixed"``/``"auto"``) plans afresh, an
    :class:`ExplainedPlan` is validated and used as-is.
    """
    if plan is None:
        plan = getattr(spec, "plan", "fixed")
    if isinstance(plan, ExplainedPlan):
        return validate_plan_for(plan, spec, strategy)
    if isinstance(plan, str):
        return choose_plan(
            spec, strategy, mode=plan,
            default_operator=default_operator, m=m, feedback=feedback,
        )
    raise GraphValidationError(
        f"plan must be 'fixed', 'auto', or an ExplainedPlan; got {plan!r}"
    )
