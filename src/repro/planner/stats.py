"""Cheap planning signals: degree moments, skew, heavy hitters.

Everything the cost model consumes from the data graph is computed
here, once per :func:`~repro.planner.plan.choose_plan` call, from the
degree arrays alone — ``O(|V_G|)`` numpy work, no walks.  The theory
ground (Joglekar & Re "It's all a matter of degree", Ngo/Re/Rudra
"Skew Strikes Back") says degree distributions and heavy/light splits
are exactly the statistics a join planner should see; heavier signals
(reach-mass tails, engine feedback) are layered on top by
:mod:`repro.planner.cost` when they happen to be memoised already,
never computed eagerly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.graph.digraph import Graph


@dataclass(frozen=True)
class NodeSetStats:
    """Degree profile of one query-vertex node set.

    ``hub_fraction`` — the share of the set's members above the graph's
    heavy-hitter threshold — is the planner's per-set skew signal: a
    set drawn from the hubs of a power-law graph prunes differently
    (and walks more expensively) than a same-sized set of leaves.
    """

    size: int
    degree_mass: int
    mean_out_degree: float
    max_out_degree: int
    heavy_count: int
    hub_fraction: float


class GraphStats:
    """One-pass degree statistics of a data graph.

    Parameters
    ----------
    graph:
        The data graph ``G``.  Degree arrays are materialised once
        (per-node ``O(1)`` lookups into the adjacency dicts) and all
        moments derive from them.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        n = graph.num_nodes
        self.out_degrees = np.fromiter(
            (graph.out_degree(v) for v in range(n)), dtype=np.int64, count=n
        )
        self.in_degrees = np.fromiter(
            (graph.in_degree(v) for v in range(n)), dtype=np.int64, count=n
        )
        out = self.out_degrees.astype(np.float64)
        self.mean_out_degree = float(out.mean()) if n else 0.0
        self.std_out_degree = float(out.std()) if n else 0.0
        self.cv_out_degree = (
            self.std_out_degree / self.mean_out_degree
            if self.mean_out_degree > 0
            else 0.0
        )
        if self.std_out_degree > 0:
            centred = (out - self.mean_out_degree) / self.std_out_degree
            self.skewness_out = float(np.mean(centred**3))
        else:
            self.skewness_out = 0.0
        # Heavy hitters a la the heavy/light split: nodes whose
        # out-degree sits two standard deviations above the mean.
        self.heavy_threshold = self.mean_out_degree + 2.0 * self.std_out_degree
        self.heavy_mask = self.out_degrees > self.heavy_threshold
        self.heavy_count = int(self.heavy_mask.sum())
        self.heavy_fraction = self.heavy_count / n if n else 0.0

    @property
    def graph(self) -> Graph:
        """The graph the statistics were collected from."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        return self._graph.num_nodes

    def node_set(self, nodes: Iterable[int]) -> NodeSetStats:
        """The degree profile of one node set."""
        idx = np.asarray(list(nodes), dtype=np.int64)
        if idx.size == 0:
            return NodeSetStats(0, 0, 0.0, 0, 0, 0.0)
        degrees = self.out_degrees[idx]
        heavy = int(self.heavy_mask[idx].sum())
        return NodeSetStats(
            size=int(idx.size),
            degree_mass=int(degrees.sum()),
            mean_out_degree=float(degrees.mean()),
            max_out_degree=int(degrees.max()),
            heavy_count=heavy,
            hub_fraction=heavy / float(idx.size),
        )

    def summary(self) -> dict:
        """JSON-safe signal block for :class:`ExplainedPlan.signals`."""
        return {
            "num_nodes": int(self.num_nodes),
            "num_edges": int(self._graph.num_edges),
            "mean_out_degree": round(self.mean_out_degree, 4),
            "cv_out_degree": round(self.cv_out_degree, 4),
            "skewness_out": round(self.skewness_out, 4),
            "heavy_threshold": round(self.heavy_threshold, 4),
            "heavy_count": int(self.heavy_count),
            "heavy_fraction": round(self.heavy_fraction, 6),
        }
