"""Resumable backward-walk state (the heart of batched iterative deepening).

Backward propagation is a Markov recurrence: the step-``l+1 .. 2l``
masses depend on the past only through the walker mass after step
``l``.  :class:`WalkState` snapshots exactly that — the ``(n, B)`` mass
block for ``B`` targets plus the accumulated score prefix
``sum_{i <= l} w_i M_i`` — so a level-``2l`` walk *extends* a
level-``l`` walk instead of restarting it.  ``B-IDJ``'s doubling
schedule ``1, 2, 4, ..., d`` therefore costs ``d`` column-steps per
surviving target instead of the ``1 + 2 + 4 + ... + d (~2d)`` the
restart-per-level seed implementation paid.

The state is measure-generic: everything specific to one measure — the
step weights ``w_i``, whether the propagation is absorbing (DHT's
first-hit Eq. 5) or plain (PPR's every-visit ``S_i``), and how the
prefix folds into scores — lives in a
:class:`~repro.walks.kernels.BlockKernel`.  Passing a
:class:`~repro.core.dht.DHTParams` selects the DHT kernel, preserving
the original behaviour of every DHT call site.

The score prefix is accumulated step-by-step (``acc += w_i M_i``), so
extending a state and walking fresh to the same depth produce
bit-identical scores — every batched/cached/resumable path in the repo
shares this accumulation order.

A state's buffers cost 16 bytes per node per column (two ``(n, B)``
float64 blocks); :meth:`WalkState.advance_to` reports each
materialisation to ``engine.stats.peak_block_bytes``, the counter a
``max_block_bytes`` ceiling (the deepening joins' chunked rounds) is
audited against.  :meth:`WalkState.select` narrows a block to surviving
columns, :meth:`WalkState.extract_column` copies one out (cache
adoption — including the bounded rounds' spill of overflow survivors),
and :meth:`WalkState.concat` re-packs same-level blocks — together they
let :class:`~repro.walks.rounds.DeepeningRounds` keep the resumable
window of ``B-IDJ`` *and* ``Series-IDJ`` under a byte budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.exec.budget import CorruptedWalkError
from repro.graph.validation import GraphValidationError
from repro.walks.engine import WalkEngine
from repro.walks.kernels import BlockKernel, as_block_kernel

if TYPE_CHECKING:  # avoid a runtime cycle: core.dht imports repro.walks
    from repro.core.dht import DHTParams


class WalkState:
    """Resumable backward walk over a block of targets.

    Parameters
    ----------
    engine:
        Walk engine of the graph being walked.
    params:
        A :class:`~repro.core.dht.DHTParams` (selects the first-hit DHT
        kernel) or any :class:`~repro.walks.kernels.BlockKernel`
        (e.g. the PPR kernel), used to fold step masses into scores.
    targets:
        Target node ids, one per block column.  Duplicates are allowed
        (columns propagate independently).

    Notes
    -----
    A fresh state sits at ``level = 0``; :meth:`advance_to` runs
    propagation steps for all columns at once (one CSR sparse-dense
    product per step).  :meth:`scores_matrix` / :meth:`score_column`
    convert the accumulated prefix into truncated scores
    ``h_level(u, target)``.  Memory: two ``(n, B)`` float64 blocks.
    """

    __slots__ = ("_engine", "_params", "_kernel", "_targets", "_level", "_mass", "_acc")

    def __init__(
        self, engine: WalkEngine, params: "DHTParams | BlockKernel", targets: Sequence[int]
    ) -> None:
        self._engine = engine
        self._params = params
        self._kernel = as_block_kernel(params)
        self._targets = engine._check_target_block(targets)
        self._level = 0
        # The level-0 blocks (one-hot mass, zero prefix) are implicit;
        # buffers materialise on the first advance_to() step.
        self._mass: Optional[np.ndarray] = None
        self._acc: Optional[np.ndarray] = None

    @classmethod
    def _restore(
        cls,
        engine: WalkEngine,
        params: DHTParams,
        targets: np.ndarray,
        level: int,
        mass: np.ndarray,
        acc: np.ndarray,
    ) -> "WalkState":
        state = cls.__new__(cls)
        state._engine = engine
        state._params = params
        state._kernel = as_block_kernel(params)
        state._targets = targets
        state._level = level
        state._mass = mass
        state._acc = acc
        return state

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def engine(self) -> WalkEngine:
        """The engine this state walks on."""
        return self._engine

    @property
    def params(self) -> "DHTParams | BlockKernel":
        """The params/kernel object the state was created with."""
        return self._params

    @property
    def kernel(self) -> BlockKernel:
        """The block kernel the score prefix is accumulated with."""
        return self._kernel

    @property
    def targets(self) -> np.ndarray:
        """Target ids, one per column (do not mutate)."""
        return self._targets

    @property
    def level(self) -> int:
        """Number of Eq. 5 steps walked so far."""
        return self._level

    @property
    def width(self) -> int:
        """Number of block columns ``B``."""
        return self._targets.shape[0]

    @property
    def nbytes(self) -> int:
        """Bytes held by the materialised buffers (0 at level 0)."""
        if self._mass is None:
            return 0
        return self._mass.nbytes + self._acc.nbytes

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def advance_to(self, level: int) -> "WalkState":
        """Extend the walk to ``level`` steps (no-op if already there).

        A state can only move forward — the propagation recurrence
        cannot be run backwards — so ``level`` below the current one
        raises.  Returns ``self`` for chaining.
        """
        if level < self._level:
            raise GraphValidationError(
                f"cannot rewind a walk state from level {self._level} to {level}"
            )
        if level > self._level and self._mass is None:
            # Cold materialisation is about to commit two (n, B) float64
            # blocks; let the governor veto the allocation *before* the
            # memory exists (16 bytes per node per column).
            self._engine.checkpoint(
                "alloc", nbytes=16 * self._engine.num_nodes * self.width
            )
        while self._level < level:
            i = self._level + 1
            if i == 1:
                # One-hot start: step 1 is a column gather of T.
                self._mass = self._engine.backward_onehot_step(self._targets)
                self._acc = self._kernel.weight(1) * self._mass
            else:
                # Absorbing kernels (DHT first hits) zero each column's
                # target entry before propagating; plain kernels (PPR)
                # skip the zeroing, which `first=True` selects.
                self._mass = self._engine.backward_block_step(
                    self._mass, self._targets, first=not self._kernel.absorbing
                )
                self._acc += self._kernel.weight(i) * self._mass
            self._level = i
        if self._mass is not None:
            self._engine.stats.record_block_bytes(
                self._mass.nbytes + self._acc.nbytes
            )
            governor = self._engine.governor
            if governor is not None and governor.validate_walks:
                # Detect poisoned mass *before* the block's scores can be
                # consumed, donated to a cache, or folded into results.
                if not (
                    np.isfinite(self._mass).all() and np.isfinite(self._acc).all()
                ):
                    raise CorruptedWalkError(
                        f"non-finite walk mass at level {self._level} for "
                        f"targets {self._targets.tolist()}"
                    )
        return self

    def extend(self, steps: int) -> "WalkState":
        """Walk ``steps`` further steps; returns ``self``."""
        if steps < 0:
            raise GraphValidationError(f"steps must be >= 0, got {steps}")
        return self.advance_to(self._level + steps)

    # ------------------------------------------------------------------
    # Scores
    # ------------------------------------------------------------------

    def scores_matrix(self) -> np.ndarray:
        """Truncated scores ``h_level(u, target_j)`` as an ``(n, B)`` array.

        Freshly allocated; the kernel owns the reflexive-entry
        convention (DHT leaves the return-walk artefact, which callers
        ignore; PPR folds in the self-visit term).  At level 0 every
        score is the kernel's empty-sum floor.
        """
        if self._acc is None:
            return self._kernel.empty_scores(self._engine.num_nodes, self._targets)
        return self._kernel.finalize(self._acc, self._targets)

    def score_column(self, j: int) -> np.ndarray:
        """Scores of column ``j`` as a fresh length-``n`` vector."""
        if self._acc is None:
            return self._kernel.empty_scores(
                self._engine.num_nodes, self._targets[j : j + 1]
            )[:, 0]
        return self._kernel.finalize_column(self._acc[:, j], int(self._targets[j]))

    # ------------------------------------------------------------------
    # Restructuring
    # ------------------------------------------------------------------

    def select(self, indices: Sequence[int]) -> "WalkState":
        """A new state narrowed to the given column indices.

        Used by ``B-IDJ`` to drop pruned targets between deepening
        rounds; the returned state owns copies of the selected columns.
        """
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        return WalkState._restore(
            self._engine,
            self._params,
            self._targets[indices].copy(),
            self._level,
            None if self._mass is None else np.ascontiguousarray(self._mass[:, indices]),
            None if self._acc is None else np.ascontiguousarray(self._acc[:, indices]),
        )

    def extract_column(self, j: int) -> "WalkState":
        """A single-column copy of column ``j`` (for cache adoption)."""
        return self.select([j])

    @staticmethod
    def concat(states: Sequence["WalkState"]) -> "WalkState":
        """Pack same-level states into one block (columns concatenated).

        All states must share the engine, params, and level — Eq. 5
        columns propagate independently, so re-packing changes nothing
        about future steps.  ``B-IDJ``'s bounded-memory rounds use this
        to fold the survivors of this round's throwaway chunks into the
        retained resumable window.  The result owns fresh buffers.
        """
        if not states:
            raise GraphValidationError("concat needs at least one state")
        first = states[0]
        for state in states[1:]:
            if state._engine is not first._engine:
                raise GraphValidationError(
                    "concat needs states bound to the same engine"
                )
            if state._kernel != first._kernel:
                raise GraphValidationError(
                    "concat needs states with identical measure kernels"
                )
            if state._level != first._level:
                raise GraphValidationError(
                    f"concat needs states at one level, got "
                    f"{state._level} != {first._level}"
                )
        if len(states) == 1:
            return first.select(np.arange(first.width))
        targets = np.concatenate([s._targets for s in states])
        if first._mass is None:
            mass = acc = None
        else:
            mass = np.hstack([s._mass for s in states])
            acc = np.hstack([s._acc for s in states])
        return WalkState._restore(
            first._engine, first._params, targets, first._level, mass, acc
        )
