"""Random-walk kernels: sparse production engine and test oracles."""

from repro.walks.engine import WalkEngine

__all__ = ["WalkEngine"]
