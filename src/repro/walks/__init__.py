"""Random-walk kernels: sparse production engine and test oracles.

Layered as: per-target Eq. 5 kernels (:class:`WalkEngine`, the
equivalence oracle), batched block propagation
(:meth:`WalkEngine.backward_first_hit_block`), resumable walk state
(:class:`WalkState`), the cross-join :class:`WalkCache`, and the
deepening-round machinery (:class:`DeepeningRounds`: bounded-memory
windows + walk-cache spill, shared by ``B-IDJ`` and ``Series-IDJ``).
"""

from repro.walks.cache import WalkCache, WalkCacheStats
from repro.walks.engine import WalkEngine, WalkEngineStats
from repro.walks.kernels import (
    BlockKernel,
    DHTBlockKernel,
    PPRBlockKernel,
    as_block_kernel,
)
from repro.walks.rounds import DeepeningRounds
from repro.walks.state import WalkState

__all__ = [
    "BlockKernel",
    "DHTBlockKernel",
    "DeepeningRounds",
    "PPRBlockKernel",
    "WalkCache",
    "WalkCacheStats",
    "WalkEngine",
    "WalkEngineStats",
    "WalkState",
    "as_block_kernel",
]
