"""Random-walk kernels: sparse production engine and test oracles.

Layered as: per-target Eq. 5 kernels (:class:`WalkEngine`, the
equivalence oracle), batched block propagation
(:meth:`WalkEngine.backward_first_hit_block`), resumable walk state
(:class:`WalkState`), and the cross-join :class:`WalkCache`.
"""

from repro.walks.cache import WalkCache, WalkCacheStats
from repro.walks.engine import WalkEngine, WalkEngineStats
from repro.walks.kernels import (
    BlockKernel,
    DHTBlockKernel,
    PPRBlockKernel,
    as_block_kernel,
)
from repro.walks.state import WalkState

__all__ = [
    "BlockKernel",
    "DHTBlockKernel",
    "PPRBlockKernel",
    "WalkCache",
    "WalkCacheStats",
    "WalkEngine",
    "WalkEngineStats",
    "WalkState",
    "as_block_kernel",
]
