"""Block kernels: the per-step algebra batched walks are generic over.

:class:`repro.walks.state.WalkState` propagates an ``(n, B)`` column
block one step at a time and folds each step's mass into a score
prefix.  Everything measure-specific about that loop is captured here as
a *block kernel*:

* ``absorbing`` — whether each column's target entry is zeroed between
  steps.  DHT counts **first** hits (Eq. 5: a walker must not pass
  through the target), so its kernel is absorbing; Personalized PageRank
  counts *every* visit (Jeh & Widom), so its kernel propagates plainly.
* ``weight(i)`` — the coefficient on the step-``i`` mass in the score
  prefix (``lambda^i`` for DHT, ``(1-c) c^i`` for PPR).
* ``finalize(acc, targets)`` — turns the accumulated prefix into scores
  (DHT's affine ``alpha * acc + beta``; PPR adds the ``i = 0``
  self-visit term to each column's target entry).

Kernels are small frozen dataclasses, so they double as the *cache
identity* of a measure: a :class:`~repro.walks.cache.WalkCache` or
:class:`~repro.bounds_cache.BoundPlanCache` built for one kernel
compares unequal to any other kernel (and to any other measure family),
which is what keeps DHT and PPR entries from ever colliding on the same
graph — see :func:`as_block_kernel` and the context validation in
:class:`repro.core.two_way.base.TwoWayContext`.

Measures with no single-propagation backward kernel (SimRank's
pairwise-recursive fixed point) have no block kernel; they implement the
:class:`repro.extensions.measures.SeriesMeasure` block contract directly
and use only the score-vector half of the walk cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Protocol, runtime_checkable

import numpy as np

from repro.graph.validation import GraphValidationError


@runtime_checkable
class BlockKernel(Protocol):
    """Per-step algebra of one decayed-series measure.

    Implementations must be hashable value objects (frozen dataclasses):
    two kernels compare equal exactly when every score they would ever
    produce is identical, because kernel equality is what the walk and
    bound caches validate against.
    """

    absorbing: bool

    def weight(self, i: int) -> float:
        """Coefficient on the step-``i`` mass in the score prefix."""
        ...

    def finalize(self, acc: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Scores from an accumulated ``(n, B)`` prefix (fresh array)."""
        ...

    def finalize_column(self, acc_column: np.ndarray, target: int) -> np.ndarray:
        """Scores of one column from its length-``n`` prefix (fresh array)."""
        ...

    def empty_scores(self, num_nodes: int, targets: np.ndarray) -> np.ndarray:
        """Level-0 scores (the empty-sum floor) as an ``(n, B)`` array."""
        ...


@dataclass(frozen=True)
class DHTBlockKernel:
    """First-hit propagation folded with ``alpha * sum lambda^i P_i + beta``.

    The kernel :class:`~repro.core.dht.DHTParams` maps to; reflexive
    entries carry the return-walk artefact and are ignored by all
    callers, exactly as in the per-target Eq. 5 kernel.
    """

    alpha: float
    beta: float
    decay: float

    absorbing: ClassVar[bool] = True

    @classmethod
    def from_params(cls, params) -> "DHTBlockKernel":
        """Adapt a :class:`~repro.core.dht.DHTParams` (duck-typed to
        avoid a runtime import cycle: ``core.dht`` imports ``walks``)."""
        return cls(alpha=params.alpha, beta=params.beta, decay=params.decay)

    def weight(self, i: int) -> float:
        return self.decay ** i

    def finalize(self, acc: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return self.alpha * acc + self.beta

    def finalize_column(self, acc_column: np.ndarray, target: int) -> np.ndarray:
        return self.alpha * acc_column + self.beta

    def empty_scores(self, num_nodes: int, targets: np.ndarray) -> np.ndarray:
        return np.full((num_nodes, targets.shape[0]), self.beta, dtype=np.float64)


@dataclass(frozen=True)
class PPRBlockKernel:
    """Plain (every-visit) propagation folded with ``(1-c) sum c^i S_i``.

    The kernel of :class:`repro.extensions.measures.TruncatedPPR`.  Not
    absorbing — a PPR walker may revisit the target — and ``finalize``
    adds the ``i = 0`` self-visit term ``(1-c)`` to each column's target
    entry, so a finalized column equals the measure's per-target
    ``backward_scores`` vector at *every* node, target included.
    """

    damping: float

    absorbing: ClassVar[bool] = False

    def __post_init__(self) -> None:
        if not (0.0 < self.damping < 1.0):
            raise GraphValidationError(
                f"damping must be in (0, 1), got {self.damping}"
            )

    def weight(self, i: int) -> float:
        return (1.0 - self.damping) * self.damping ** i

    def finalize(self, acc: np.ndarray, targets: np.ndarray) -> np.ndarray:
        scores = acc.copy()
        scores[targets, np.arange(targets.shape[0])] += 1.0 - self.damping
        return scores

    def finalize_column(self, acc_column: np.ndarray, target: int) -> np.ndarray:
        scores = acc_column.copy()
        scores[target] += 1.0 - self.damping
        return scores

    def empty_scores(self, num_nodes: int, targets: np.ndarray) -> np.ndarray:
        scores = np.zeros((num_nodes, targets.shape[0]), dtype=np.float64)
        scores[targets, np.arange(targets.shape[0])] = 1.0 - self.damping
        return scores


def as_block_kernel(params) -> BlockKernel:
    """Normalise ``params`` to a :class:`BlockKernel`.

    Accepts a kernel (returned as-is) or a
    :class:`~repro.core.dht.DHTParams`-shaped object (wrapped in a
    :class:`DHTBlockKernel`, preserving the pre-measure-generic
    behaviour of every DHT call site).  Anything else — e.g. the cache
    identity of a matrix-backed measure like SimRank, which has no
    single-propagation kernel — is rejected, so a resumable walk can
    never silently run under the wrong algebra.
    """
    if (
        hasattr(params, "absorbing")
        and hasattr(params, "weight")
        and hasattr(params, "finalize")
    ):
        return params
    if hasattr(params, "alpha") and hasattr(params, "beta") and hasattr(params, "decay"):
        return DHTBlockKernel.from_params(params)
    raise GraphValidationError(
        f"{params!r} defines no block propagation kernel; resumable walks "
        "need DHT params or a BlockKernel"
    )
