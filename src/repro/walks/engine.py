"""Vectorised random-walk kernels.

Every DHT computation in the paper reduces to propagating probability mass
along graph edges, one step per iteration, with the *target* node made
absorbing so only first hits are counted:

* **Backward propagation** (Eq. 5, used by ``backWalk`` / all ``B-*``
  algorithms): one propagation from the target ``q`` yields the first-hit
  probabilities ``P_i(u, q)`` for *every* start node ``u`` simultaneously.
* **Forward propagation** (used by ``F-BJ`` / ``F-IDJ``): one propagation
  from the start ``p``, with ``q`` absorbing, yields ``P_i(p, q)`` for a
  *single* target ``q``.
* **Reach mass** (used by the ``Y_l^+`` bound, Theorem 1): an unrestricted
  propagation from the whole set ``P`` at once; by linearity the mass at
  ``v`` after ``i`` steps is ``sum_p S_i(p, v)``.

Each step is a sparse mat-vec costing ``O(|E_G|)``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError


class WalkEngine:
    """Random-walk kernels bound to one graph.

    The engine caches the transition matrix ``T`` and its transpose; create
    one per graph and share it across joins.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._transition = graph.transition_matrix()
        self._transition_t = graph.transition_matrix_transpose()
        self._n = graph.num_nodes

    @property
    def graph(self) -> Graph:
        """The graph this engine walks on."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the bound graph."""
        return self._n

    # ------------------------------------------------------------------
    # Backward propagation (Eq. 5)
    # ------------------------------------------------------------------

    def backward_first_hit_series(self, target: int, steps: int) -> np.ndarray:
        """First-hit probabilities ``P_i(u, target)`` for all ``u``.

        Implements Eq. 5: initialise ``backProb = e_target``; the first
        step uses all edges; later steps zero the target entry first so a
        walk that has already hit the target is not extended (first-hit
        semantics).

        Parameters
        ----------
        target:
            The hit node ``q``.
        steps:
            Number of steps ``d >= 1``.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(steps, num_nodes)``; row ``i-1`` holds
            ``P_i(u, target)``.  The ``u == target`` column is the return
            probability and is ignored by all callers.
        """
        self._check_target(target)
        self._check_steps(steps)
        series = np.empty((steps, self._n), dtype=np.float64)
        back_prob = np.zeros(self._n, dtype=np.float64)
        back_prob[target] = 1.0
        for i in range(steps):
            if i > 0:
                # A walker must not pass *through* the target: zero the
                # mass that already arrived before propagating further.
                back_prob = back_prob.copy()
                back_prob[target] = 0.0
            back_prob = self._transition.dot(back_prob)
            series[i] = back_prob
        return series

    # ------------------------------------------------------------------
    # Forward propagation
    # ------------------------------------------------------------------

    def forward_first_hit_series(self, source: int, target: int, steps: int) -> np.ndarray:
        """First-hit probabilities ``P_i(source, target)`` for one pair.

        Propagates walker mass forward from ``source`` with ``target``
        absorbing: before each step the mass sitting on ``target`` is
        removed (those walkers stopped), and the mass flowing *into*
        ``target`` at step ``i`` is exactly ``P_i(source, target)``.

        Returns
        -------
        numpy.ndarray
            Vector of length ``steps``; entry ``i-1`` is
            ``P_i(source, target)``.
        """
        self._check_target(source)
        self._check_target(target)
        self._check_steps(steps)
        if source == target:
            raise GraphValidationError(
                f"first-hit from a node to itself is undefined (node {source})"
            )
        hits = np.empty(steps, dtype=np.float64)
        mass = np.zeros(self._n, dtype=np.float64)
        mass[source] = 1.0
        for i in range(steps):
            mass[target] = 0.0
            mass = self._transition_t.dot(mass)
            hits[i] = mass[target]
        return hits

    # ------------------------------------------------------------------
    # Unrestricted reach mass (for the Y bound)
    # ------------------------------------------------------------------

    def reach_mass_series(self, sources: Sequence[int], steps: int) -> np.ndarray:
        """Aggregated reach probabilities ``sum_p S_i(p, v)``.

        ``S_i(p, v)`` is the probability that a walker from ``p`` is at
        ``v`` after ``i`` steps, *not necessarily for the first time*
        (Lemma 3).  The propagation has no absorbing node.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(steps, num_nodes)``; row ``i-1``, column
            ``v`` is ``sum_{p in sources} S_i(p, v)``.
        """
        self._check_steps(steps)
        mass = np.zeros(self._n, dtype=np.float64)
        for p in sources:
            self._check_target(int(p))
            mass[int(p)] += 1.0
        if not mass.any():
            raise GraphValidationError("reach_mass_series needs at least one source")
        series = np.empty((steps, self._n), dtype=np.float64)
        for i in range(steps):
            mass = self._transition_t.dot(mass)
            series[i] = mass
        return series

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------

    def _check_target(self, node: int) -> None:
        if not (0 <= node < self._n):
            raise GraphValidationError(f"node {node} out of range [0, {self._n})")

    @staticmethod
    def _check_steps(steps: int) -> None:
        if steps < 1:
            raise GraphValidationError(f"steps must be >= 1, got {steps}")
