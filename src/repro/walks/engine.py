"""Vectorised random-walk kernels.

Every DHT computation in the paper reduces to propagating probability mass
along graph edges, one step per iteration, with the *target* node made
absorbing so only first hits are counted:

* **Backward propagation** (Eq. 5, used by ``backWalk`` / all ``B-*``
  algorithms): one propagation from the target ``q`` yields the first-hit
  probabilities ``P_i(u, q)`` for *every* start node ``u`` simultaneously.
* **Forward propagation** (used by ``F-BJ`` / ``F-IDJ``): one propagation
  from the start ``p``, with ``q`` absorbing, yields ``P_i(p, q)`` for a
  *single* target ``q``.
* **Reach mass** (used by the ``Y_l^+`` bound, Theorem 1): an unrestricted
  propagation from the whole set ``P`` at once; by linearity the mass at
  ``v`` after ``i`` steps is ``sum_p S_i(p, v)``.

Each step is a sparse mat-vec costing ``O(|E_G|)``.

Two batched refinements on top of the per-target Eq. 5 kernel:

* :meth:`WalkEngine.backward_first_hit_block` propagates an ``(n, B)``
  column block for ``B`` targets with one CSR sparse-dense product per
  step — the per-column recurrence is identical to Eq. 5, so column
  ``j`` of the block equals ``backward_first_hit_series(targets[j])``
  exactly, but the per-step sparse traversal and its Python overhead are
  amortised over the whole block.
* :class:`repro.walks.state.WalkState` keeps the block's walker mass
  between calls so an ``l``-step walk can be *extended* to ``2l`` steps
  instead of restarted — Eq. 5 is a Markov recurrence, so the extension
  produces the same probabilities as a fresh deeper walk.

Every kernel reports its work through :attr:`WalkEngine.stats`
(column-steps and sparse products), which the benchmarks use to prove
the resumable paths do strictly less propagation.  The same stats object
carries the bound-layer counters (``bound_builds`` / ``bound_cache_hits``
for ``Y_l^+`` reach-mass tables, ``plan_builds`` / ``plan_cache_hits``
for restricted-tail plans, ``peak_block_bytes`` for the resumable-block
memory high-water mark) so one counter source is the perf currency for
the whole walk-and-bound stack — ``BENCH_walks.json`` is built from it.
"""

from __future__ import annotations

import threading
from typing import Dict, Sequence

import numpy as np

from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError

#: Additive counter fields of :class:`WalkEngineStats` (reads sum the
#: per-thread shards).
STAT_COUNTERS = (
    "propagation_steps",
    "sparse_products",
    "bound_builds",
    "bound_cache_hits",
    "plan_builds",
    "plan_cache_hits",
    "extensions",
    "steps_saved",
    "checkpoints",
    "budget_stops",
    "degradations",
    "alloc_retries",
)

#: High-water-mark fields (reads take the max over the per-thread shards).
STAT_PEAKS = ("peak_block_bytes",)

_STAT_FIELDS = STAT_COUNTERS + STAT_PEAKS


class _NullSpan:
    """The disabled-tracer span: every operation is a no-op.

    Defined here (not in :mod:`repro.obs.trace`, which re-exports it)
    so the engine's trace hooks need no import from the observability
    layer — ``walks`` stays at the bottom of the dependency order.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


#: Shared no-op span returned by every trace hook when tracing is off.
NULL_SPAN = _NullSpan()


class WalkEngineStats:
    """Propagation-work counters, cumulative since the last reset.

    ``propagation_steps`` counts *column-steps*: one unit per target per
    step, so a ``B``-wide block step adds ``B``.  The unit is invariant
    under batching — batched and per-target runs of the same walk plan
    report the same count — which makes it the right currency for
    checking that *resumable* walks (which skip re-walked prefixes) do
    strictly less work.  ``sparse_products`` counts CSR mat-vec /
    mat-mat calls and therefore *does* drop under batching.

    The bound-layer counters mirror the same philosophy for the pruning
    machinery: ``bound_builds`` counts ``Y_l^+`` reach-mass constructions
    (one ``O(d |E_G|)`` propagation each, incremented by
    :class:`repro.core.bounds.YBound` itself so every build is counted
    regardless of the code path), ``bound_cache_hits`` counts Y bounds
    served from a :class:`repro.bounds_cache.BoundPlanCache` without
    building, and ``plan_builds`` / ``plan_cache_hits`` do the same for
    restricted-tail propagation plans.  ``peak_block_bytes`` is the
    high-water mark of any single resumable walk block's buffers
    (walker mass + score prefix, 16 bytes per node per column) — the
    number a ``max_block_bytes`` ceiling on the iterative-deepening
    joins is checked against.

    ``extensions`` / ``steps_saved`` mirror the walk cache's resume
    counters into the engine currency: one extension per request served
    by resuming a retained or spilled :class:`~repro.walks.state.WalkState`
    (instead of restarting from level 0), and the column-steps that
    resume skipped.  The bounded-memory joins' spill policy — overflow
    survivors donate their single-column states to the walk cache and
    are resumed from it at the next deepening level — shows up here:
    steps the drop-and-re-walk policy would have restarted become
    ``steps_saved``.

    The governed-execution counters make every degradation observable:
    ``checkpoints`` counts cooperative governor checkpoints visited,
    ``budget_stops`` counts joins that stopped on budget exhaustion and
    returned a partial result, ``degradations`` counts every graceful
    fallback (window backoffs, corrupted-block re-walks), and
    ``alloc_retries`` counts the subset of degradations that were
    allocation-failure retries of the adaptive window backoff.

    The counters are safe to increment from concurrent worker threads
    sharing one engine (the :class:`repro.service.QueryService` setup):
    each thread writes to a private shard via :meth:`add` /
    :meth:`record_block_bytes`, and attribute reads merge the shards
    (sum for counters, max for ``peak_block_bytes``) — so no increment
    is ever lost to a torn read-modify-write, and the merged totals
    equal what a serial run would have counted.  :meth:`local` reads one
    thread's own shard, which is how a per-query
    :class:`~repro.exec.governor.ExecutionGovernor` meters its step
    budget without being charged for other queries' walks.
    """

    __slots__ = ("_lock", "_local", "_shards")

    def __init__(self) -> None:
        object.__setattr__(self, "_lock", threading.Lock())
        object.__setattr__(self, "_local", threading.local())
        object.__setattr__(self, "_shards", [])

    def _shard(self) -> Dict[str, int]:
        """This thread's private shard (created and registered lazily)."""
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = {name: 0 for name in _STAT_FIELDS}
            with self._lock:
                self._shards.append(shard)
            self._local.shard = shard
        return shard

    def add(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (lock-free: thread shard)."""
        self._shard()[name] += amount

    def local(self, name: str) -> int:
        """This thread's own contribution to field ``name``."""
        shard = getattr(self._local, "shard", None)
        return 0 if shard is None else shard[name]

    def __getattr__(self, name: str) -> int:
        if name in STAT_COUNTERS:
            with self._lock:
                return sum(shard[name] for shard in self._shards)
        if name in STAT_PEAKS:
            with self._lock:
                return max(
                    (shard[name] for shard in self._shards), default=0
                )
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        # Direct assignment keeps its single-threaded meaning (the
        # merged value becomes exactly ``value``): zero the field in
        # every shard, then store the value in this thread's shard.
        if name in _STAT_FIELDS:
            shard = self._shard()
            with self._lock:
                for other in self._shards:
                    other[name] = 0
                shard[name] = int(value)
            return
        object.__setattr__(self, name, value)

    def record_block_bytes(self, nbytes: int) -> None:
        """Raise the resumable-block high-water mark to ``nbytes``."""
        shard = self._shard()
        if nbytes > shard["peak_block_bytes"]:
            shard["peak_block_bytes"] = nbytes

    def snapshot(self) -> Dict[str, int]:
        """All merged counters as a plain dict (one consistent pass)."""
        with self._lock:
            merged = {
                name: sum(shard[name] for shard in self._shards)
                for name in STAT_COUNTERS
            }
            for name in STAT_PEAKS:
                merged[name] = max(
                    (shard[name] for shard in self._shards), default=0
                )
        return merged

    def reset(self) -> None:
        """Zero all counters (every thread's shard)."""
        with self._lock:
            for shard in self._shards:
                for name in _STAT_FIELDS:
                    shard[name] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"WalkEngineStats({fields})"


class WalkEngine:
    """Random-walk kernels bound to one graph.

    The engine caches the transition matrix ``T`` and its transpose; create
    one per graph and share it across joins.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._transition = graph.transition_matrix()
        self._transition_t = graph.transition_matrix_transpose()
        self._n = graph.num_nodes
        self._transition_csc = None
        self._in_degrees = None
        self._derived_lock = threading.Lock()
        self.stats = WalkEngineStats()
        # Governor slot, installed by repro.exec.ExecutionGovernor for
        # governed queries; None means every checkpoint() is a no-op.
        # Thread-local, so concurrent queries on one shared engine each
        # see only their own governor (service workers install one per
        # request without clobbering each other's budgets).
        self._governor_local = threading.local()
        # Tracer slot, same shape and same reasons: a
        # repro.obs.QueryTracer installed for one traced query on this
        # thread; None keeps every hook a single attribute read.
        self._tracer_local = threading.local()

    @property
    def governor(self):
        """This thread's installed governor, or ``None``."""
        return getattr(self._governor_local, "governor", None)

    @governor.setter
    def governor(self, value) -> None:
        self._governor_local.governor = value

    @property
    def tracer(self):
        """This thread's installed query tracer, or ``None``."""
        return getattr(self._tracer_local, "tracer", None)

    @tracer.setter
    def tracer(self, value) -> None:
        self._tracer_local.tracer = value

    def trace_span(self, kind: str, name: str = "", **attrs):
        """A trace span bound to this engine's stats (no-op when off).

        The returned context manager records this thread's
        propagation/cache counter deltas and checkpoint-site events for
        the enclosed work; with no tracer installed it is the shared
        :data:`NULL_SPAN` singleton.
        """
        tracer = self.tracer
        if tracer is None:
            return NULL_SPAN
        return tracer.span(kind, name, stats=self.stats, **attrs)

    @property
    def graph(self) -> Graph:
        """The graph this engine walks on."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the bound graph."""
        return self._n

    def checkpoint(self, site: str, block=None, nbytes=None) -> None:
        """Cooperative budget/fault checkpoint (no-op without a governor).

        ``site`` names the unit-of-work boundary (see
        :mod:`repro.exec.governor`); ``block`` is an in-flight walk
        block the fault injector may poison; ``nbytes`` is a predicted
        allocation size checked against the byte budget before the
        buffers are committed.

        A traced query records the same sites as span events (the event
        lands before the governor runs, so a budget stop at this
        checkpoint is still visible in the trace).
        """
        tracer = self.tracer
        if tracer is not None:
            tracer.event(site, nbytes=nbytes)
        if self.governor is not None:
            self.governor.checkpoint(site, block=block, nbytes=nbytes)

    # ------------------------------------------------------------------
    # Backward propagation (Eq. 5)
    # ------------------------------------------------------------------

    def backward_first_hit_series(self, target: int, steps: int) -> np.ndarray:
        """First-hit probabilities ``P_i(u, target)`` for all ``u``.

        Implements Eq. 5: initialise ``backProb = e_target``; the first
        step uses all edges; later steps zero the target entry first so a
        walk that has already hit the target is not extended (first-hit
        semantics).

        Parameters
        ----------
        target:
            The hit node ``q``.
        steps:
            Number of steps ``d >= 1``.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(steps, num_nodes)``; row ``i-1`` holds
            ``P_i(u, target)``.  The ``u == target`` column is the return
            probability and is ignored by all callers.
        """
        self._check_target(target)
        self._check_steps(steps)
        series = np.empty((steps, self._n), dtype=np.float64)
        back_prob = np.zeros(self._n, dtype=np.float64)
        back_prob[target] = 1.0
        for i in range(steps):
            self.checkpoint("step")
            if i > 0:
                # A walker must not pass *through* the target: zero the
                # mass that already arrived before propagating further.
                # In-place is safe: `series[i - 1] = back_prob` copied the
                # values out, and the dot below allocates a fresh vector.
                back_prob[target] = 0.0
            back_prob = self._transition.dot(back_prob)
            series[i] = back_prob
        self.stats.add("propagation_steps", steps)
        self.stats.add("sparse_products", steps)
        return series

    def backward_first_hit_block(
        self, targets: Sequence[int], steps: int
    ) -> np.ndarray:
        """Batched Eq. 5: first-hit series for a block of targets.

        Propagates an ``(n, B)`` column block — column ``j`` carrying the
        walk towards ``targets[j]`` — with one CSR sparse-dense product
        per step instead of ``B`` separate mat-vecs.  Each column follows
        the exact per-target recurrence of
        :meth:`backward_first_hit_series` (first step uses all edges,
        later steps zero that column's target entry), so the results are
        bit-identical to ``B`` independent walks.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(steps, num_nodes, B)``; ``[i - 1, :, j]``
            holds ``P_i(u, targets[j])``.
        """
        targets = self._check_target_block(targets)
        self._check_steps(steps)
        width = targets.shape[0]
        series = np.empty((steps, self._n, width), dtype=np.float64)
        mass = self.backward_onehot_step(targets)
        series[0] = mass
        for i in range(1, steps):
            mass = self.backward_block_step(mass, targets, first=False)
            series[i] = mass
        return series

    def backward_onehot_step(self, targets: np.ndarray) -> np.ndarray:
        """The first Eq. 5 step for a block of one-hot columns.

        ``T @ e_t`` is column ``t`` of ``T``, so step 1 is a per-target
        column gather — ``O(sum indeg(t))`` instead of a full
        ``O(|E_G| B)`` product, and bit-identical to it (the skipped
        products are exact zeros).  Returns the dense ``(n, B)`` block
        ``P_1``.
        """
        targets = self._check_target_block(targets)
        self.checkpoint("block")
        mass = self._gather_columns(self.transition_columns(), targets)
        self.stats.add("propagation_steps", int(targets.shape[0]))
        self.stats.add("sparse_products", 1)
        return mass

    def backward_block_step(
        self, mass: np.ndarray, targets: np.ndarray, first: bool
    ) -> np.ndarray:
        """One Eq. 5 step for an ``(n, B)`` backward block.

        Zeroes each column's target entry **in place** (unless ``first``)
        and returns the freshly allocated propagated block.  This is the
        shared primitive behind :meth:`backward_first_hit_block` and
        :class:`repro.walks.state.WalkState`.
        """
        width = mass.shape[1]
        # Checkpoint before any mutation: a budget stop or injected
        # allocation failure here leaves the caller's state consistent
        # (the step has neither zeroed targets nor been counted).
        self.checkpoint("block", block=mass)
        if not first:
            mass[targets, np.arange(width)] = 0.0
        out = self._transition.dot(mass)
        self.stats.add("propagation_steps", int(width))
        self.stats.add("sparse_products", 1)
        return out

    # ------------------------------------------------------------------
    # Forward propagation
    # ------------------------------------------------------------------

    def forward_first_hit_series(self, source: int, target: int, steps: int) -> np.ndarray:
        """First-hit probabilities ``P_i(source, target)`` for one pair.

        Propagates walker mass forward from ``source`` with ``target``
        absorbing: before each step the mass sitting on ``target`` is
        removed (those walkers stopped), and the mass flowing *into*
        ``target`` at step ``i`` is exactly ``P_i(source, target)``.

        Returns
        -------
        numpy.ndarray
            Vector of length ``steps``; entry ``i-1`` is
            ``P_i(source, target)``.
        """
        self._check_target(source)
        self._check_target(target)
        self._check_steps(steps)
        if source == target:
            raise GraphValidationError(
                f"first-hit from a node to itself is undefined (node {source})"
            )
        hits = np.empty(steps, dtype=np.float64)
        mass = np.zeros(self._n, dtype=np.float64)
        mass[source] = 1.0
        for i in range(steps):
            self.checkpoint("step")
            mass[target] = 0.0
            mass = self._transition_t.dot(mass)
            hits[i] = mass[target]
        self.stats.add("propagation_steps", steps)
        self.stats.add("sparse_products", steps)
        return hits

    # ------------------------------------------------------------------
    # Unrestricted reach mass (for the Y bound)
    # ------------------------------------------------------------------

    def reach_mass_series(self, sources: Sequence[int], steps: int) -> np.ndarray:
        """Aggregated reach probabilities ``sum_p S_i(p, v)``.

        ``S_i(p, v)`` is the probability that a walker from ``p`` is at
        ``v`` after ``i`` steps, *not necessarily for the first time*
        (Lemma 3).  The propagation has no absorbing node.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(steps, num_nodes)``; row ``i-1``, column
            ``v`` is ``sum_{p in sources} S_i(p, v)``.
        """
        self._check_steps(steps)
        mass = np.zeros(self._n, dtype=np.float64)
        for p in sources:
            self._check_target(int(p))
            mass[int(p)] += 1.0
        if not mass.any():
            raise GraphValidationError("reach_mass_series needs at least one source")
        series = np.empty((steps, self._n), dtype=np.float64)
        for i in range(steps):
            self.checkpoint("step")
            mass = self._transition_t.dot(mass)
            series[i] = mass
        self.stats.add("propagation_steps", steps)
        self.stats.add("sparse_products", steps)
        return series

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------

    def _check_target(self, node: int) -> None:
        if not (0 <= node < self._n):
            raise GraphValidationError(f"node {node} out of range [0, {self._n})")

    def transition_columns(self):
        """``T`` in CSC form (zero-copy view of the cached ``T^T`` CSR).

        Column ``t`` is the step-1 backward mass for target ``t``; the
        sparse warm-up phases slice it directly.
        """
        with self._derived_lock:
            if self._transition_csc is None:
                from scipy.sparse import csc_matrix

                transpose = self._transition_t
                self._transition_csc = csc_matrix(
                    (transpose.data, transpose.indices, transpose.indptr),
                    shape=self._transition.shape,
                )
            return self._transition_csc

    def in_degree_array(self) -> np.ndarray:
        """Per-node in-degree (nnz of each ``T`` column), cached.

        An entry ``(v, j)`` of a propagating block spreads to
        ``in_degree[v]`` rows in the next step, so
        ``sum_v counts[v] * in_degree[v]`` bounds the next block's nnz —
        the sparse-phase gate computes this in O(n) per step.
        """
        # Resolved before taking the lock: _derived_lock is not
        # re-entrant and transition_columns() acquires it too.
        columns = self.transition_columns()
        with self._derived_lock:
            if self._in_degrees is None:
                self._in_degrees = np.diff(columns.indptr)
            return self._in_degrees

    @staticmethod
    def _gather_columns(csc, targets: np.ndarray) -> np.ndarray:
        """Densify the requested CSC columns into an ``(n, B)`` block."""
        mass = np.zeros((csc.shape[0], targets.shape[0]), dtype=np.float64)
        for j, target in enumerate(targets):
            start, end = csc.indptr[target], csc.indptr[target + 1]
            mass[csc.indices[start:end], j] = csc.data[start:end]
        return mass

    def _check_target_block(self, targets: Sequence[int]) -> np.ndarray:
        """Validate and normalise a block of target ids to int64."""
        targets = np.atleast_1d(np.asarray(targets, dtype=np.int64))
        if targets.ndim != 1 or targets.shape[0] == 0:
            raise GraphValidationError(
                "target block must be a non-empty 1-d sequence of node ids"
            )
        if targets.min() < 0 or targets.max() >= self._n:
            raise GraphValidationError(
                f"target block contains ids outside [0, {self._n})"
            )
        return targets

    @staticmethod
    def _check_steps(steps: int) -> None:
        if steps < 1:
            raise GraphValidationError(f"steps must be >= 1, got {steps}")
