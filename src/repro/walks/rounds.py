"""Shared deepening-round walk machinery for the iterative-deepening joins.

``B-IDJ`` (the DHT path) and ``Series-IDJ`` (the measure-generic path)
run the same walk plan: at each doubling level, feed every active
target's score vector to a pruning step, keeping one resumable
:class:`~repro.walks.state.WalkState` block so level ``2l`` extends
level ``l`` instead of restarting.  :class:`DeepeningRounds` is that
plan, factored out of both joins so the bounded-memory mode — and its
spill policy — exist exactly once.

**Unbounded mode** (``max_block_bytes is None``): one full-width
resumable block carries every walking target across levels; targets
that fall out of the block (served by the walk cache at an earlier
level, then missing) are resumed through the cache's single-column
path.

**Bounded mode**: the resumable *window* is capped at
``max_block_bytes`` (16 bytes per node per column: walker mass plus
score prefix).  Overflow targets are walked in throwaway chunks of the
same width, and the window is re-packed from this round's survivors
(:meth:`~repro.walks.state.WalkState.concat`) after each pruning step.
Survivors that do not fit the window are **spilled**: their
single-column states are donated into the walk cache via
:meth:`~repro.walks.cache.WalkCache.adopt` (under the cache's existing
LRU budget), and the next round *resumes* them from the cache instead
of re-walking from level 0 — the restart steps the old drop-and-re-walk
policy paid become ``extensions`` / ``steps_saved`` counters (mirrored
into :class:`~repro.walks.engine.WalkEngineStats`).  Without a cache
there is nowhere to spill, and overflow survivors restart per level as
before.

**Adaptive backoff** (the governed robustness layer): an allocation
failure (a real ``MemoryError`` or an injected one) or an over-ceiling
block flagged by the execution governor
(:class:`~repro.exec.budget.MemoryBudgetExceeded`) does not abort the
round.  The failing block is split in half, the window capacity is
halved for the rest of the query, and the halves retry — a bounded,
counted backoff (``alloc_retries`` / ``degradations`` in
:class:`~repro.walks.engine.WalkEngineStats`) that bottoms out at
single-column blocks, where a failure is genuine exhaustion and
propagates.  A block whose mass validation detects corruption
(:class:`~repro.exec.budget.CorruptedWalkError`, e.g. an injected NaN)
is discarded and re-walked fresh a bounded number of times.

Scores are bit-identical across all modes (Eq. 5 columns propagate
independently and the prefix accumulation order is fixed), so the
joins' top-``k`` outputs and pruning traces never depend on the memory
budget — only ``propagation_steps`` / ``peak_block_bytes`` /
``extensions`` do.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exec.budget import CorruptedWalkError, MemoryBudgetExceeded
from repro.walks.cache import WalkCache
from repro.walks.engine import WalkEngine
from repro.walks.state import WalkState

# Bounded attempts at re-walking a corrupted block before giving up; a
# walk that keeps producing non-finite mass is a broken environment, not
# a transient fault.
REWALK_ATTEMPTS = 3

# A resumable block costs two (n, B) float64 buffers: walker mass plus
# the accumulated score prefix.
BYTES_PER_COLUMN_NODE = 16

Consumer = Callable[[int, np.ndarray], None]


def columns_for_budget(max_block_bytes: int, num_nodes: int) -> int:
    """Widest block whose buffers fit ``max_block_bytes``.

    The single source of the block-layout cost model — every clamp in
    the join stack (window width, chunk width, ``B-BJ`` block width)
    derives from it, so a layout change cannot desynchronise them.
    A budget below one column's cost is infeasible: a single column is
    the smallest block the propagation can run, so pretending to honour
    a smaller ceiling would silently overshoot it.  The error names the
    minimum feasible budget so callers can fix their configuration.
    """
    minimum = BYTES_PER_COLUMN_NODE * num_nodes
    columns = max_block_bytes // minimum
    if columns < 1:
        raise ValueError(
            f"max_block_bytes={max_block_bytes} cannot fit a single walk "
            f"column: one column costs {BYTES_PER_COLUMN_NODE} bytes per "
            f"node x {num_nodes} nodes = {minimum} bytes, the minimum "
            f"feasible budget for this graph"
        )
    return columns


class DeepeningRounds:
    """Resumable walk rounds with an optional byte-ceilinged window.

    Parameters
    ----------
    engine:
        The graph's walk engine.
    params:
        A :class:`~repro.core.dht.DHTParams` or any
        :class:`~repro.walks.kernels.BlockKernel` — whatever
        :class:`~repro.walks.state.WalkState` accepts.
    cache:
        Optional :class:`~repro.walks.cache.WalkCache` bound to the same
        engine and measure.  Walked levels are donated (``put_scores``),
        and in bounded mode it doubles as the spill target for overflow
        survivors.
    max_block_bytes:
        Byte ceiling on any single resumable walk block (``None`` =
        unbounded full-width blocks).  A ceiling below one column's cost
        (16 bytes per node) is infeasible and raises ``ValueError``
        naming the minimum budget.
    """

    def __init__(
        self,
        engine: WalkEngine,
        params: object,
        cache: Optional[WalkCache],
        max_block_bytes: Optional[int],
    ) -> None:
        self._engine = engine
        self._params = params
        self._cache = cache
        self._max_cols: Optional[int] = None
        if max_block_bytes is not None:
            self._max_cols = columns_for_budget(max_block_bytes, engine.num_nodes)
        self._state: Optional[WalkState] = None  # retained resumable window
        self._state_cols: Dict[int, int] = {}
        # This round's repack candidates (window + a budgeted prefix of
        # the throwaway chunks), for prune-time cache donation and
        # survivor re-packing.
        self._round_chunks: List[Tuple[WalkState, List[int]]] = []
        self._walked: Dict[int, Tuple[WalkState, int]] = {}

    @property
    def max_cols(self) -> Optional[int]:
        """Window capacity in columns (``None`` = unbounded)."""
        return self._max_cols

    def walk_level(
        self, active: Sequence[int], level: int, consume: Consumer
    ) -> None:
        """Feed every active target's ``level`` score vector to
        ``consume(q, vector)`` — vectors are *not* retained here.

        Resolution order per target: cached vector (no walk), the
        retained resumable window (extended in batch), then the cache's
        single-column resume path — in unbounded mode for any target
        that fell out of the block, in bounded mode for targets whose
        spilled state can be extended (``0 < resumable_level <=
        level``).  Whatever remains is walked in throwaway chunks of at
        most ``max_cols`` columns; only the first ``max_cols`` columns'
        worth of chunks stay alive as repack candidates, the rest donate
        their columns to the cache (the spill) and are dropped as soon
        as their vectors are consumed, so the round's live walk blocks
        stay ``O(max_block_bytes)`` no matter how large the active set
        is.
        """
        with self._engine.trace_span(
            "walk_level", level=level, targets=len(active)
        ):
            self._walk_level(active, level, consume)

    def _walk_level(
        self, active: Sequence[int], level: int, consume: Consumer
    ) -> None:
        cache = self._cache
        self._round_chunks = []
        self._walked = {}
        resident: List[int] = []
        resume: List[int] = []
        pending: List[int] = []
        for q in active:
            # Site "cache": even a fully cache-served triage pass must
            # stay interruptible by deadlines and fault injection.
            self._engine.checkpoint("cache")
            if cache is not None:
                cached = cache.peek(q, level)
                if cached is not None:
                    consume(q, cached)
                    continue
            if self._state is not None and q in self._state_cols:
                resident.append(q)
            elif cache is not None and (
                (self._max_cols is None and self._state is not None)
                or 0 < cache.resumable_level(q) <= level
            ):
                resume.append(q)
            else:
                pending.append(q)
        if self._state is None and pending:
            # Cold start: the first walking round claims residency.
            claim = (
                pending if self._max_cols is None else pending[: self._max_cols]
            )
            pending = pending[len(claim):]
            self._state = WalkState(self._engine, self._params, claim)
            self._state_cols = {q: j for j, q in enumerate(claim)}
            resident = claim
        if self._state is not None:
            if resident:
                parts = self._advance_parts(self._state, level)
            else:
                parts = [(self._state, [int(t) for t in self._state.targets])]
            column_of: Dict[int, Tuple[WalkState, int]] = {}
            for part, part_targets in parts:
                self._round_chunks.append((part, part_targets))
                for j, q in enumerate(part_targets):
                    column_of[q] = (part, j)
            if len(parts) == 1:
                self._state = parts[0][0]
                self._state_cols = {q: j for j, q in enumerate(parts[0][1])}
            else:
                # The backoff split the window; repack() rebuilds it from
                # this round's chunks under the narrowed budget.
                self._state, self._state_cols = None, {}
            for q in resident:
                part, column = column_of[q]
                self._walked[q] = (part, column)
                vector = part.score_column(column)
                if cache is not None:
                    cache.put_scores(q, level, vector)
                consume(q, vector)
        for q in resume:
            # The peek above already recorded this miss; scores() resumes
            # the cache's single-column state (adopted spill or earlier
            # donation), paying only the missing steps.
            consume(q, cache.scores(q, level, count_stats=False))
        if pending:  # bounded-mode overflow (or cache-less cold targets)
            width = self._max_cols if self._max_cols is not None else len(pending)
            candidate_cols = 0
            queue = list(pending)
            while queue:
                group = queue[: max(width, 1)]
                queue = queue[len(group):]
                parts = self._advance_parts(
                    WalkState(self._engine, self._params, group), level
                )
                # A backoff may have narrowed the budget mid-loop.
                if self._max_cols is not None:
                    width = self._max_cols
                for chunk, chunk_targets in parts:
                    retain = (
                        self._max_cols is None or candidate_cols < self._max_cols
                    )
                    if retain:
                        candidate_cols += len(chunk_targets)
                        self._round_chunks.append((chunk, chunk_targets))
                    for j, q in enumerate(chunk_targets):
                        if retain:
                            self._walked[q] = (chunk, j)
                        vector = chunk.score_column(j)
                        if cache is not None:
                            cache.put_scores(q, level, vector)
                        consume(q, vector)
                    if not retain:
                        # Survivors of this chunk are not known until the
                        # pruning step, by which time the chunk is gone —
                        # spill every column now; pruned ones simply age
                        # out of the cache's LRU.
                        self._spill(chunk, range(len(chunk_targets)))

    def _advance_parts(
        self, state: WalkState, level: int
    ) -> List[Tuple[WalkState, List[int]]]:
        """Advance ``state`` to ``level``, degrading instead of aborting.

        An allocation failure or governor byte veto splits the block in
        half, narrows the window budget, and retries the halves (the
        adaptive backoff); a corrupted block is re-walked fresh.  Returns
        the advanced parts with their target lists — one part when
        nothing degraded, several after a split.
        """
        todo: List[WalkState] = [state]
        done: List[WalkState] = []
        while todo:
            part = todo.pop()
            try:
                part.advance_to(level)
            except (MemoryError, MemoryBudgetExceeded):
                if part.width == 1:
                    raise  # a single column is the floor; genuine exhaustion
                half = part.width // 2
                self._note_backoff(half)
                todo.append(part.select(list(range(half, part.width))))
                todo.append(part.select(list(range(half))))
                continue
            except CorruptedWalkError:
                part = self._rewalk(part, level)
            done.append(part)
        return [(part, [int(t) for t in part.targets]) for part in done]

    def _note_backoff(self, new_cols: int) -> None:
        """Record one allocation-backoff retry and narrow the window."""
        stats = self._engine.stats
        stats.add("alloc_retries", 1)
        stats.add("degradations", 1)
        new_cols = max(1, new_cols)
        if self._max_cols is None or new_cols < self._max_cols:
            self._max_cols = new_cols

    def _rewalk(self, state: WalkState, level: int) -> WalkState:
        """Replace a corrupted block with a fresh walk (bounded retries)."""
        targets = [int(t) for t in state.targets]
        for _ in range(REWALK_ATTEMPTS):
            self._engine.stats.add("degradations", 1)
            try:
                return WalkState(self._engine, self._params, targets).advance_to(
                    level
                )
            except CorruptedWalkError:
                continue
        raise CorruptedWalkError(
            f"re-walking targets {targets} kept producing non-finite mass "
            f"after {REWALK_ATTEMPTS} attempts"
        )

    def donate_pruned(self, pruned: Iterable[int]) -> None:
        """Donate pruned targets' walked columns to the cache, so later
        (deeper) joins resume them instead of restarting."""
        if self._cache is None:
            return
        for q in pruned:
            held = self._walked.get(q)
            if held is not None:
                holder, column = held
                self._cache.adopt(holder.extract_column(column))

    def repack(self, survivors: set, level: int) -> None:
        """Narrow this round's walked blocks and fold them into the next
        retained window.

        Unbounded mode has a single part (the full-width block):
        narrowing it in place preserves the original behaviour,
        including the no-copy fast path when nothing was pruned from the
        block.  Bounded mode packs survivor columns — window first, then
        this round's throwaway chunks — until the ``max_cols`` budget is
        full; the overflow survivors are spilled to the cache (resumed
        next level) or, cache-less, dropped and re-walked.  Only parts
        at this round's ``level`` are concatenated (the window can lag a
        round when all its targets were cache-served); a lagging window
        is kept only when nothing newer survived, and spilled otherwise.
        """
        narrowed: List[Tuple[WalkState, List[int]]] = []
        for st, targets in self._round_chunks:
            kept_cols = [j for j, q in enumerate(targets) if q in survivors]
            if not kept_cols:
                continue
            kept_targets = [targets[j] for j in kept_cols]
            if len(kept_cols) != st.width:
                st = st.select(kept_cols)
            narrowed.append((st, kept_targets))
        if not narrowed:
            self._state, self._state_cols = None, {}
            return
        current = [p for p in narrowed if p[0].level == level]
        if not current:
            current = narrowed[:1]
        current_ids = {id(p[0]) for p in current}
        pieces: List[WalkState] = []
        packed: List[int] = []
        for st, targs in current:
            if self._max_cols is not None:
                room = self._max_cols - len(packed)
                if room <= 0:
                    self._spill(st, range(st.width))
                    continue
                if len(targs) > room:
                    self._spill(st, range(room, st.width))
                    st = st.select(list(range(room)))
                    targs = targs[:room]
            pieces.append(st)
            packed.extend(targs)
        for st, _ in narrowed:  # lagging parts superseded by newer chunks
            if id(st) not in current_ids:
                self._spill(st, range(st.width))
        self._state = pieces[0] if len(pieces) == 1 else WalkState.concat(pieces)
        self._state_cols = {q: j for j, q in enumerate(packed)}

    def _spill(self, state: WalkState, columns: Iterable[int]) -> None:
        """Donate the given columns' resumable states to the cache."""
        if self._cache is None:
            return
        for j in columns:
            self._cache.adopt(state.extract_column(j))
