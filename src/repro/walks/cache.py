"""Cross-join walk cache: share backward walks between query edges.

A backward walk from target ``q`` depends only on the graph and the
measure's coefficients — not on the join's left set — so its full-graph
score vector ``h_level(., q)`` can be reused by *any* join on the same
``(graph, measure)`` pair.  N-way joins whose node sets overlap (star
and clique query specs, ``PJ``'s restart refills, ``PJ-i``'s F-structure
refinements) repeatedly ask for the same ``(target, level)`` walks; the
cache answers those from memory instead of re-propagating.

The cache is measure-generic: build it with
:class:`~repro.core.dht.DHTParams` (the DHT first-hit kernel), any
:class:`~repro.walks.kernels.BlockKernel` (e.g. PPR), or — for
matrix-backed measures with no propagation kernel, like SimRank — any
hashable cache identity, in which case only the score-vector layer is
usable (``peek`` / ``put_scores``; the resumable layer needs a kernel).
One cache per ``(graph, measure)``: entries of different measures never
share a cache, which :class:`repro.core.two_way.base.TwoWayContext`
validates and :meth:`WalkCache.adopt` enforces for donated states.

Two layers per target, bounded by an LRU over targets (and, when
``max_bytes`` is set, by a strict byte-denominated LRU budget over the
retained vectors and resumable buffers):

* finished score vectors keyed by walk level — exact repeats are O(n)
  copies;
* one resumable :class:`~repro.walks.state.WalkState` at the deepest
  level walked so far — a *deeper* request extends it (paying only the
  missing steps) instead of restarting from level 0.

Algorithms that batch their own walks (``B-BJ``, ``B-IDJ``) donate their
results via :meth:`WalkCache.put_scores` / :meth:`WalkCache.adopt` so
later joins and refinements resume where they left off.

This cache covers the *walk* half of the sharing story; the bound half —
``Y_l^+`` reach-mass tables and restricted-tail plans, which likewise
depend only on ``(graph, params)`` plus a node set — lives in the
sibling :class:`repro.bounds_cache.BoundPlanCache`.  N-way specs create
one of each and pass both to every query-edge context.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.exec.budget import CorruptedWalkError
from repro.graph.validation import GraphValidationError
from repro.walks.engine import WalkEngine
from repro.walks.kernels import as_block_kernel
from repro.walks.state import WalkState

if TYPE_CHECKING:  # avoid a runtime cycle: core.dht imports repro.walks
    from repro.core.dht import DHTParams


@dataclass
class WalkCacheStats:
    """Hit/miss accounting, cumulative since the last reset."""

    hits: int = 0
    misses: int = 0
    extensions: int = 0  # misses served by extending a resumable state
    steps_saved: int = 0  # column-steps skipped thanks to resumed prefixes
    evictions: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.extensions = 0
        self.steps_saved = 0
        self.evictions = 0


class _TargetEntry:
    """Cached walks of one target: score vectors per level + deepest state."""

    __slots__ = ("scores", "state")

    def __init__(self) -> None:
        self.scores: Dict[int, np.ndarray] = {}
        self.state: Optional[WalkState] = None


class WalkCache:
    """Per-``(graph, measure)`` cache of backward-walk score vectors.

    Parameters
    ----------
    engine:
        The graph's walk engine; all cached walks run on it.
    params:
        The measure identity: DHT coefficients, a block kernel, or any
        hashable value object.  Cached vectors are only valid for this
        exact configuration — build one cache per ``(graph, measure)``
        pair.
    max_targets:
        LRU bound on the number of distinct targets retained (each
        target costs a few length-``n`` float64 vectors).
    max_bytes:
        Optional byte-denominated LRU budget over everything the cache
        retains (score vectors plus resumable-state buffers).  The bound
        is strict: least-recent targets are evicted until the total fits,
        and an entry that alone exceeds the budget is dropped outright —
        ``current_bytes <= max_bytes`` always holds, which makes the
        bounded joins' spill policy and the governor's byte ceiling
        end-to-end true.

    The cache is safe to share across concurrent queries (the
    :class:`repro.service.QueryService` tier): every public method runs
    under one re-entrant lock, so LRU order, byte accounting, in-place
    :class:`~repro.walks.state.WalkState` extension, and the cache's own
    hit/miss stats never tear.  Re-entrant because a governed walk under
    :meth:`scores` may fire an ``"evict"`` fault that calls
    :meth:`clear` on this same cache from the same thread.  A cold miss
    walks while holding the lock — correctness over cold-path
    parallelism; warm traffic (the service's steady state) only pays a
    copy under the lock.
    """

    def __init__(
        self,
        engine: WalkEngine,
        params: "DHTParams | object",
        max_targets: int = 256,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_targets < 1:
            raise GraphValidationError(
                f"max_targets must be >= 1, got {max_targets}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise GraphValidationError(
                f"max_bytes must be >= 1 when set, got {max_bytes}"
            )
        self._engine = engine
        self._params = params
        self._max_targets = max_targets
        self._max_bytes = max_bytes
        self._entries: "OrderedDict[int, _TargetEntry]" = OrderedDict()
        self._entry_bytes: Dict[int, int] = {}
        self._total_bytes = 0
        self._lock = threading.RLock()
        self.stats = WalkCacheStats()

    @property
    def engine(self) -> WalkEngine:
        """The engine cached walks run on."""
        return self._engine

    @property
    def params(self) -> "DHTParams | object":
        """The measure identity cached scores were folded with."""
        return self._params

    @property
    def max_targets(self) -> int:
        """LRU capacity in distinct targets."""
        return self._max_targets

    @property
    def max_bytes(self) -> Optional[int]:
        """Byte-denominated LRU budget (``None`` = targets-only bound)."""
        return self._max_bytes

    @property
    def current_bytes(self) -> int:
        """Bytes currently retained (vectors + resumable buffers)."""
        with self._lock:
            return self._total_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, target: int) -> bool:
        with self._lock:
            return target in self._entries

    def clear(self) -> None:
        """Drop every cached walk (stats are kept)."""
        with self._lock:
            self._entries.clear()
            self._entry_bytes.clear()
            self._total_bytes = 0

    # ------------------------------------------------------------------
    # Lookup / compute
    # ------------------------------------------------------------------

    def peek(self, target: int, level: int) -> Optional[np.ndarray]:
        """Cached ``h_level(., target)`` or ``None`` — never walks.

        A hit refreshes the target's LRU position and returns a fresh
        copy (cached vectors are never handed out aliased).
        """
        with self._lock:
            entry = self._entries.get(target)
            if entry is not None:
                vector = entry.scores.get(level)
                if vector is not None:
                    self._entries.move_to_end(target)
                    self.stats.hits += 1
                    return vector.copy()
            self.stats.misses += 1
            return None

    def resumable_level(self, target: int) -> int:
        """Level of the retained resumable state for ``target`` (0 if none).

        A pure probe: touches neither the LRU order nor the hit/miss
        stats.  The bounded-memory joins use it to decide whether an
        overflow target has a spilled state worth resuming
        (``0 < resumable_level(q) <= level``) or should be re-walked in
        a fresh batched chunk.
        """
        with self._lock:
            entry = self._entries.get(target)
            if entry is None or entry.state is None:
                return 0
            return entry.state.level

    def scores(
        self, target: int, level: int, count_stats: bool = True
    ) -> np.ndarray:
        """``h_level(., target)``, walking only the uncached suffix.

        Cache hit: O(n) copy.  Miss with a resumable state at a lower
        level: extends it, paying ``level - state.level`` steps.  Cold
        miss: a fresh ``level``-step walk.  The result is always recorded
        for future hits.  Pass ``count_stats=False`` when the caller
        already recorded this lookup via :meth:`peek`, so one logical
        request is not double-counted.

        Always visits the governor (site ``"cache"``), even on a pure
        hit — deadlines and fault injection must reach loops that the
        warm cache would otherwise serve without a single walk step.
        """
        self._engine.checkpoint("cache")
        with self._lock:
            if count_stats:
                vector = self.peek(target, level)
                if vector is not None:
                    return vector
            else:
                entry = self._entries.get(target)
                vector = entry.scores.get(level) if entry is not None else None
                if vector is not None:
                    self._entries.move_to_end(target)
                    return vector.copy()
            entry = self._ensure_entry(target)
            state = entry.state
            resumed_from = 0
            if state is not None and state.level <= level:
                resumed_from = state.level
            else:
                state = WalkState(self._engine, self._params, [target])
            try:
                state.advance_to(level)
            except CorruptedWalkError:
                # Poisoned buffers cannot be trusted at *any* level: drop
                # the retained state and re-walk from scratch (a counted
                # degradation).  A second corruption propagates to the
                # rounds-layer retry.
                self._engine.stats.add("degradations", 1)
                entry.state = None
                self._account(target)
                resumed_from = 0
                state = WalkState(self._engine, self._params, [target])
                state.advance_to(level)
            if resumed_from > 0:
                self.stats.extensions += 1
                self.stats.steps_saved += resumed_from
                # Mirror the resume into the engine currency so spill
                # resumes are visible next to propagation_steps.
                self._engine.stats.add("extensions", 1)
                self._engine.stats.add("steps_saved", resumed_from)
            if entry.state is None or state.level >= entry.state.level:
                entry.state = state
            vector = state.score_column(0)
            entry.scores[level] = vector
            self._account(target)
            self._evict()
            return vector.copy()

    # ------------------------------------------------------------------
    # Donation (batched algorithms feed their walks back)
    # ------------------------------------------------------------------

    def put_scores(self, target: int, level: int, scores: np.ndarray) -> None:
        """Record an externally computed ``h_level(., target)`` vector.

        The vector must come from the step-accumulated score path (a
        :class:`WalkState` column) so cached and freshly walked scores
        stay bit-identical.  A private copy is stored.
        """
        with self._lock:
            entry = self._ensure_entry(target)
            entry.scores[level] = np.array(scores, dtype=np.float64, copy=True)
            self._account(target)
            self._evict()

    def adopt(self, state: WalkState) -> None:
        """Adopt a single-column resumable state (deepest wins).

        The iterative-deepening joins donate columns here on two
        occasions: a *pruned* target's column, so a later, deeper
        request for that target resumes instead of restarting, and — in
        bounded-memory mode — an overflow *survivor*'s column that no
        longer fits the resumable window (the spill policy), so the next
        deepening round resumes it from here rather than re-walking it
        from level 0.  The caller hands over ownership: the cache may
        extend the state in place.
        """
        if state.width != 1:
            raise GraphValidationError(
                f"adopt() takes a single-column state, got width {state.width}"
            )
        try:
            expected = as_block_kernel(self._params)
        except GraphValidationError:
            # Matrix-backed measures (e.g. SimRank) have no propagation
            # kernel, so there is nothing a donated state could ever be
            # resumed with — a distinct error from a kernel mismatch.
            raise GraphValidationError(
                "cannot adopt a resumable state: this cache's measure has "
                "no resumable walk layer (only score vectors are cached "
                "for matrix-backed measures)"
            ) from None
        if state.kernel != expected:
            raise GraphValidationError(
                "adopted state was walked under a different measure kernel "
                "than this cache"
            )
        target = int(state.targets[0])
        with self._lock:
            entry = self._ensure_entry(target)
            if entry.state is None or state.level > entry.state.level:
                entry.state = state
            self._account(target)
            self._evict()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _ensure_entry(self, target: int) -> _TargetEntry:
        entry = self._entries.get(target)
        if entry is None:
            entry = _TargetEntry()
            self._entries[target] = entry
        else:
            self._entries.move_to_end(target)
        return entry

    @staticmethod
    def _entry_nbytes(entry: _TargetEntry) -> int:
        total = sum(vector.nbytes for vector in entry.scores.values())
        if entry.state is not None:
            total += entry.state.nbytes
        return total

    def _account(self, target: int) -> None:
        """Refresh the byte bookkeeping for one (mutated) entry."""
        entry = self._entries.get(target)
        if entry is None:
            return
        nbytes = self._entry_nbytes(entry)
        self._total_bytes += nbytes - self._entry_bytes.get(target, 0)
        self._entry_bytes[target] = nbytes

    def _evict(self) -> None:
        while len(self._entries) > self._max_targets:
            self._pop_lru()
        if self._max_bytes is not None:
            # Strict byte bound: evict least-recent targets until the
            # total fits — including, if need be, the entry that was just
            # touched (one entry bigger than the whole budget must not
            # stay resident).
            while self._entries and self._total_bytes > self._max_bytes:
                self._pop_lru()

    def _pop_lru(self) -> None:
        target, _ = self._entries.popitem(last=False)
        self._total_bytes -= self._entry_bytes.pop(target, 0)
        self.stats.evictions += 1
