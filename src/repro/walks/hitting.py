"""Reference implementations of first-hit probabilities.

These are *oracles* for the test suite: a dense linear-algebra version and
a Monte-Carlo simulation.  Both are independent of the sparse production
kernels in :mod:`repro.walks.engine`, so agreement between the three is a
meaningful check.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError


def dense_transition_matrix(graph: Graph) -> np.ndarray:
    """Dense row-stochastic transition matrix (small graphs only)."""
    n = graph.num_nodes
    matrix = np.zeros((n, n), dtype=np.float64)
    for u in graph.nodes():
        neighbors = graph.out_neighbors(u)
        if not neighbors:
            continue
        total = sum(neighbors.values())
        for v, w in neighbors.items():
            matrix[u, v] = w / total
    return matrix


def exact_first_hit_series(graph: Graph, target: int, steps: int) -> np.ndarray:
    """``P_i(u, target)`` for all ``u`` by dense absorbing-chain powers.

    Let ``T_q`` be the transition matrix with *row* ``target`` zeroed
    (once at the target, the walk stops).  Then
    ``P_i(u, q) = (T_q^{i-1} T)[u, q]``: take ``i - 1`` steps avoiding a
    stop at ``q``... more precisely, the standard first-passage recursion
    ``P_1 = T e_q`` and ``P_i = T_{-q} P_{i-1}`` where ``T_{-q}`` is ``T``
    with *column* ``q`` zeroed (mirror of Eq. 5, evaluated densely).
    """
    if not (0 <= target < graph.num_nodes):
        raise GraphValidationError(f"target {target} out of range")
    dense = dense_transition_matrix(graph)
    n = graph.num_nodes
    series = np.empty((steps, n), dtype=np.float64)
    masked = dense.copy()
    masked[:, target] = 0.0
    current = dense[:, target].copy()  # P_1(u, q) = p_uq
    series[0] = current
    for i in range(1, steps):
        current = masked.dot(current)
        series[i] = current
    return series


def simulate_first_hit_series(
    graph: Graph,
    source: int,
    target: int,
    steps: int,
    num_walks: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Monte-Carlo estimate of ``P_i(source, target)``, ``i = 1..steps``.

    Runs ``num_walks`` independent random walks of at most ``steps``
    moves, recording the step at which each first reaches ``target``.
    Used only in tests as a model-independent sanity check.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    counts = np.zeros(steps, dtype=np.float64)
    # Pre-extract adjacency in array form for fast sampling.
    neighbor_ids = []
    neighbor_cdf = []
    for u in graph.nodes():
        adj = graph.out_neighbors(u)
        if adj:
            ids = np.fromiter(adj.keys(), dtype=np.int64, count=len(adj))
            weights = np.fromiter(adj.values(), dtype=np.float64, count=len(adj))
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
        else:
            ids = np.empty(0, dtype=np.int64)
            cdf = np.empty(0, dtype=np.float64)
        neighbor_ids.append(ids)
        neighbor_cdf.append(cdf)
    for _ in range(num_walks):
        node = source
        for step in range(1, steps + 1):
            ids = neighbor_ids[node]
            if ids.size == 0:
                break  # stuck at a dangling node
            node = int(ids[np.searchsorted(neighbor_cdf[node], rng.random())])
            if node == target:
                counts[step - 1] += 1.0
                break
    return counts / num_walks
