"""High-level convenience API.

Two entry points cover the paper's two query types:

* :func:`two_way_join` — top-``k`` node pairs between two node sets
  (Section V/VI), with the algorithm selectable by its paper name.
* :func:`multi_way_join` — top-``k`` n-tuples over a query graph
  (Definition 4), with ``NL`` / ``AP`` / ``PJ`` / ``PJ-i`` selectable.

Both default to the paper's experimental configuration: ``DHT_lambda``
with ``lambda = 0.2``, ``epsilon = 1e-6`` (hence ``d = 8``), ``MIN``
aggregate, and ``m = k = 50``.

Both accept a ``measure`` — a name (``"ppr"``, ``"simrank"``, or the
DHT family) or a :class:`repro.extensions.measures.SeriesMeasure`
instance — and route non-DHT measures to the measure-generic joins of
:mod:`repro.extensions.series_join`, which run the same batched /
resumable / cached walk-and-bound stack (Section VIII's future-work
plan).  DHT names keep the tuned core algorithms and the
``params``/``d``/``epsilon`` configuration.

Both also accept a :class:`repro.exec.budget.QueryBudget`.  With a
budget (or a fault injector) the query runs *governed*: an
:class:`~repro.exec.governor.ExecutionGovernor` enforces the budget at
cooperative checkpoints and the return type becomes a
:class:`~repro.exec.budget.PartialResult` — exact with degenerate
bounds when the join completed, flagged (``exact=False`` plus a
reason and per-result score intervals) when the budget ran out under
the default ``on_budget="partial"`` policy.  Without a budget the
plain list return types below are unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.bounds_cache import BoundPlanCache
from repro.core.dht import DHTParams
from repro.core.nway.aggregates import MIN, Aggregate
from repro.core.nway.all_pairs import AllPairsJoin
from repro.core.nway.candidates import CandidateAnswer
from repro.core.nway.nested_loop import NestedLoopJoin
from repro.core.nway.partial_join import PartialJoin, two_way_algorithm_by_name
from repro.core.nway.partial_join_inc import PartialJoinIncremental
from repro.core.nway.query_graph import QueryGraph
from repro.core.nway.spec import NWayJoinSpec
from repro.core.two_way.base import ScoredPair, make_context
from repro.exec.budget import PartialResult, QueryBudget
from repro.exec.governor import ExecutionGovernor
from repro.extensions.measures import measure_by_name
from repro.extensions.series_join import (
    SeriesBackwardJoin,
    SeriesIDJ,
    make_series_context,
    series_multi_way_join,
    series_two_way_join,
)
from repro.exec.governed import (
    run_governed_multi_way,
    run_governed_top_k,
)
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError
from repro.walks.cache import WalkCache
from repro.walks.engine import WalkEngine


def _resolve_measure(measure):
    """``None`` for the DHT family, a ``SeriesMeasure`` otherwise."""
    if measure is None or isinstance(measure, str):
        return measure_by_name(measure) if isinstance(measure, str) else None
    return measure


def _reject_dht_options_under_measure(resolved, **options) -> None:
    """Fail loudly when DHT-only options accompany a non-DHT measure.

    A measure fixes its own coefficients and truncation depth (configure
    it on the measure instance) — silently dropping these options would
    change results without warning.  ``max_block_bytes`` is *not* among
    them: the measure-generic deepening join runs the same
    bounded-memory chunked rounds as ``B-IDJ``, so the ceiling passes
    through to every measure path.
    """
    passed = [name for name, value in options.items() if value is not None]
    if passed:
        raise GraphValidationError(
            f"{', '.join(sorted(passed))} are DHT-only options; measure "
            f"{resolved.name} fixes its own configuration (construct the "
            "measure instance with the desired parameters instead)"
        )


def _governed_multi_way(
    spec: NWayJoinSpec,
    algorithm: str,
    m: int,
    budget: Optional[QueryBudget],
    on_budget: str,
    fault_injector,
) -> PartialResult:
    """Install a governor on the spec's engine and run the budgeted join."""
    governor = ExecutionGovernor(
        budget, fault_injector=fault_injector
    ).install(spec.engine, spec.walk_cache)
    try:
        return run_governed_multi_way(
            spec, governor, algorithm=algorithm, m=m, on_budget=on_budget
        )
    finally:
        governor.uninstall()


# The core 2-way names have measure-generic counterparts where the
# algorithmic idea carries over; forward processing does not (it relies
# on per-pair absorbing walks, a DHT-specific kernel).
_SERIES_TWO_WAY = {
    "b-bj": "basic",
    "b-idj-x": "idj",
    "b-idj-y": "idj",
    "basic": "basic",
    "idj": "idj",
}


def two_way_join(
    graph: Graph,
    left: Sequence[int],
    right: Sequence[int],
    k: int,
    algorithm: str = "b-idj-y",
    params: Optional[DHTParams] = None,
    d: Optional[int] = None,
    epsilon: Optional[float] = None,
    engine: Optional[WalkEngine] = None,
    walk_cache: Optional[WalkCache] = None,
    bound_cache: Optional[BoundPlanCache] = None,
    max_block_bytes: Optional[int] = None,
    measure: Optional[Union[str, object]] = None,
    budget: Optional[QueryBudget] = None,
    on_budget: str = "partial",
    fault_injector=None,
    tracer=None,
) -> Union[List[ScoredPair], PartialResult]:
    """Top-``k`` 2-way join between node sets ``left`` and ``right``.

    Parameters
    ----------
    algorithm:
        One of ``"f-bj"``, ``"f-idj"``, ``"b-bj"``, ``"b-idj-x"``,
        ``"b-idj-y"`` (default — the paper's fastest).  Under a non-DHT
        measure the backward names map to their measure-generic
        counterparts (``b-bj`` -> basic, ``b-idj-*`` -> iterative
        deepening); the forward algorithms are DHT-only.
    params / d / epsilon:
        DHT configuration; see :class:`repro.core.dht.DHTParams`.
        Rejected under a non-DHT measure — the measure instance fixes
        its own coefficients and depth.
    measure:
        ``None`` / a DHT name for the core DHT path, or ``"ppr"`` /
        ``"simrank"`` / a :class:`~repro.extensions.measures.SeriesMeasure`
        instance for the measure-generic path.  String names use the
        measure's default parameters; pass an instance to configure.
    walk_cache:
        Optional :class:`~repro.walks.cache.WalkCache` (must be bound to
        the same engine and params).  Pass one cache to a sequence of
        joins on the same graph to reuse backward walks across them.
    bound_cache:
        Optional :class:`~repro.bounds_cache.BoundPlanCache` (same
        binding rule).  Pass one cache to a sequence of joins to reuse
        ``Y`` bounds and restricted-tail plans across them; omitted, a
        private per-join cache is created.
    max_block_bytes:
        Optional byte ceiling on the deepening join's resumable walk
        block (``B-IDJ`` and ``Series-IDJ`` alike); see
        :class:`~repro.core.two_way.base.TwoWayContext`.
    budget / on_budget / fault_injector:
        A :class:`~repro.exec.budget.QueryBudget` (deadline, step
        budget, byte ceiling) switches the call to governed execution
        and a :class:`~repro.exec.budget.PartialResult` return type.
        ``on_budget`` chooses what exhaustion does: ``"partial"``
        (default) returns best-effort results with score intervals,
        ``"error"`` raises :class:`~repro.exec.budget.BudgetExhaustedError`.
        ``fault_injector`` installs a seeded
        :class:`~repro.exec.faults.FaultInjector` (also governed, even
        without a budget).
    tracer:
        Optional :class:`~repro.obs.QueryTracer`.  The query runs under
        a root ``query`` span (installed on the engine for the call,
        uninstalled in a ``finally``); results are unchanged — spans
        only observe.

    Returns
    -------
    list of ScoredPair
        At most ``k`` pairs in descending score order — or, governed, a
        :class:`~repro.exec.budget.PartialResult` wrapping them.
    """
    if tracer is not None:
        if engine is None:
            engine = WalkEngine(graph)
        engine.tracer = tracer
        try:
            with tracer.span(
                "query", "two-way", stats=engine.stats,
                algorithm=algorithm.lower(), k=k,
            ):
                return two_way_join(
                    graph, left, right, k, algorithm=algorithm,
                    params=params, d=d, epsilon=epsilon, engine=engine,
                    walk_cache=walk_cache, bound_cache=bound_cache,
                    max_block_bytes=max_block_bytes, measure=measure,
                    budget=budget, on_budget=on_budget,
                    fault_injector=fault_injector,
                )
        finally:
            engine.tracer = None
    resolved = _resolve_measure(measure)
    governed = budget is not None or fault_injector is not None
    if resolved is not None:
        name = algorithm.lower()
        if name not in _SERIES_TWO_WAY:
            raise GraphValidationError(
                f"algorithm {algorithm!r} is DHT-only; under measure "
                f"{resolved.name} choose from {sorted(_SERIES_TWO_WAY)}"
            )
        _reject_dht_options_under_measure(
            resolved, params=params, d=d, epsilon=epsilon,
        )
        if governed:
            context = make_series_context(
                graph, resolved, left, right, engine=engine,
                walk_cache=walk_cache, bound_cache=bound_cache,
                max_block_bytes=max_block_bytes,
            )
            cls = (
                SeriesBackwardJoin
                if _SERIES_TWO_WAY[name] == "basic"
                else SeriesIDJ
            )
            join = cls.from_context(context)
            governor = ExecutionGovernor(
                budget, fault_injector=fault_injector
            ).install(context.engine, context.walk_cache)
            try:
                return run_governed_top_k(join, k, governor, on_budget)
            finally:
                governor.uninstall()
        return series_two_way_join(
            graph, left, right, k,
            measure=resolved,
            algorithm=_SERIES_TWO_WAY[name],
            engine=engine,
            walk_cache=walk_cache,
            bound_cache=bound_cache,
            max_block_bytes=max_block_bytes,
        )
    context = make_context(
        graph, left, right, params=params, d=d, epsilon=epsilon, engine=engine,
        walk_cache=walk_cache, bound_cache=bound_cache,
        max_block_bytes=max_block_bytes,
    )
    algorithm_cls = two_way_algorithm_by_name(algorithm)
    join = algorithm_cls(context)
    if governed:
        governor = ExecutionGovernor(
            budget, fault_injector=fault_injector
        ).install(context.engine, context.walk_cache)
        try:
            return run_governed_top_k(join, k, governor, on_budget)
        finally:
            governor.uninstall()
    return join.top_k(k)


_NWAY_ALGORITHMS = ("nl", "ap", "pj", "pj-i")


def multi_way_join(
    graph: Graph,
    query_graph: QueryGraph,
    node_sets: Sequence[Sequence[int]],
    k: int,
    algorithm: str = "pj-i",
    aggregate: Aggregate = MIN,
    m: int = 50,
    params: Optional[DHTParams] = None,
    d: Optional[int] = None,
    epsilon: Optional[float] = None,
    engine: Optional[WalkEngine] = None,
    walk_cache: Optional[WalkCache] = None,
    share_walks: bool = True,
    bound_cache: Optional[BoundPlanCache] = None,
    share_bounds: bool = True,
    max_block_bytes: Optional[int] = None,
    walk_cache_bytes: Optional[int] = None,
    measure: Optional[Union[str, object]] = None,
    plan: object = "fixed",
    budget: Optional[QueryBudget] = None,
    on_budget: str = "partial",
    fault_injector=None,
    tracer=None,
) -> Union[List[CandidateAnswer], PartialResult]:
    """Top-``k`` n-way join over ``query_graph`` (Definition 4).

    Parameters
    ----------
    algorithm:
        ``"nl"``, ``"ap"``, ``"pj"``, or ``"pj-i"`` (default — the
        paper's best).  Under a non-DHT measure, ``"ap"`` and ``"pj"``
        map to the measure-generic strategies and ``"pj-i"`` falls back
        to ``"pj"`` (incremental refinement is DHT-specific); ``"nl"``
        is DHT-only.
    measure:
        ``None`` / a DHT name for the core DHT path, or ``"ppr"`` /
        ``"simrank"`` / a :class:`~repro.extensions.measures.SeriesMeasure`
        instance for the measure-generic path (shared walks and bounds
        across all query edges, exactly as for DHT).  The DHT-only
        options ``params``/``d``/``epsilon`` are rejected alongside a
        non-DHT measure; ``max_block_bytes`` applies to every measure.
    aggregate:
        Monotone ``f`` over per-edge DHT scores (default ``MIN``).
    m:
        Prefix length for ``PJ``/``PJ-i`` (ignored by ``NL``/``AP``).
    walk_cache / share_walks:
        ``share_walks`` (default) shares one walk cache across all query
        edges, so overlapping node sets never walk the same target
        twice; disable to reproduce the seed's per-edge walk costs.
        Pass an explicit ``walk_cache`` (bound to the same engine and
        measure identity) to share it across *calls* as well — hot
        targets from one query warm the next, which is how the
        :class:`repro.service.QueryService` tier amortises walks across
        users.
    bound_cache / share_bounds:
        ``share_bounds`` (default) shares one bound/plan cache across
        all query edges, so edges that agree on the left node set build
        each ``Y`` bound and restricted-tail plan once; disable to
        reproduce the per-edge build costs.  An explicit ``bound_cache``
        is shared across calls like ``walk_cache``.
    max_block_bytes:
        Optional byte ceiling on each edge's resumable walk block; see
        :class:`~repro.core.two_way.base.TwoWayContext`.
    walk_cache_bytes:
        Optional byte budget for the shared walk cache (strict
        least-recently-used eviction over retained vectors and
        resumable buffers); see :class:`~repro.walks.cache.WalkCache`.
    plan:
        ``"fixed"`` (default — index edge order, the executor's default
        operator, the pre-planner behaviour), ``"auto"`` (the
        cost-based planner of :mod:`repro.planner` chooses edge order,
        per-edge operators, and block knobs from degree/skew
        statistics), or an :class:`~repro.planner.plan.ExplainedPlan`
        (replayed verbatim — pair with :func:`explain_multi_way_plan`
        to inspect before running).  Plans never change answers, only
        cost; ``"nl"`` has no per-edge structure and rejects
        ``"auto"``.
    budget / on_budget / fault_injector:
        Same semantics as :func:`two_way_join`: a budget (or injector)
        switches to governed execution and a
        :class:`~repro.exec.budget.PartialResult` return type whose
        per-answer bounds aggregate the per-edge score intervals.
        Governed ``"pj-i"`` runs the governed ``PJ`` restart path
        (incremental refinement keeps no snapshot state); ``"nl"`` is
        rejected under a budget.
    tracer:
        Optional :class:`~repro.obs.QueryTracer`.  The query runs under
        a root ``query`` span with nested ``plan``/``edge``/``refill``/
        ``join``/``level`` spans from every layer it passes through;
        results are unchanged — spans only observe.

    Returns
    -------
    list of CandidateAnswer
        At most ``k`` answers in descending aggregate-score order; each
        carries its node tuple and per-edge scores — or, governed, a
        :class:`~repro.exec.budget.PartialResult` wrapping them.
    """
    if tracer is not None:
        if engine is None:
            engine = WalkEngine(graph)
        engine.tracer = tracer
        try:
            with tracer.span(
                "query", "multi-way", stats=engine.stats,
                algorithm=algorithm.lower(), k=k,
            ):
                return multi_way_join(
                    graph, query_graph, node_sets, k, algorithm=algorithm,
                    aggregate=aggregate, m=m, params=params, d=d,
                    epsilon=epsilon, engine=engine, walk_cache=walk_cache,
                    share_walks=share_walks, bound_cache=bound_cache,
                    share_bounds=share_bounds,
                    max_block_bytes=max_block_bytes,
                    walk_cache_bytes=walk_cache_bytes, measure=measure,
                    plan=plan, budget=budget, on_budget=on_budget,
                    fault_injector=fault_injector,
                )
        finally:
            engine.tracer = None
    resolved = _resolve_measure(measure)
    governed = budget is not None or fault_injector is not None
    if resolved is not None:
        name = algorithm.lower()
        if name not in ("ap", "pj", "pj-i"):
            raise GraphValidationError(
                f"algorithm {algorithm!r} is DHT-only; under measure "
                f"{resolved.name} choose from ['ap', 'pj', 'pj-i']"
            )
        _reject_dht_options_under_measure(
            resolved, params=params, d=d, epsilon=epsilon,
        )
        if governed:
            spec = NWayJoinSpec(
                graph=graph,
                query_graph=query_graph,
                node_sets=[list(nodes) for nodes in node_sets],
                k=k,
                aggregate=aggregate,
                engine=engine,
                measure=resolved,
                walk_cache=walk_cache,
                share_walks=share_walks,
                bound_cache=bound_cache,
                share_bounds=share_bounds,
                max_block_bytes=max_block_bytes,
                walk_cache_bytes=walk_cache_bytes,
                plan=plan,
            )
            return _governed_multi_way(
                spec, name, m, budget, on_budget, fault_injector
            )
        return series_multi_way_join(
            graph, query_graph, node_sets, k,
            measure=resolved,
            aggregate=aggregate,
            engine=engine,
            algorithm=name,
            m=m,
            walk_cache=walk_cache,
            share_walks=share_walks,
            bound_cache=bound_cache,
            share_bounds=share_bounds,
            max_block_bytes=max_block_bytes,
            walk_cache_bytes=walk_cache_bytes,
            plan=plan,
        )
    name = algorithm.lower()
    if name == "nl" and plan != "fixed":
        raise GraphValidationError(
            "the NL strategy scores answers one tuple at a time; it has no "
            "per-edge build order or operator choice to plan — use 'ap', "
            "'pj', or 'pj-i' with plan='auto'"
        )
    spec = NWayJoinSpec(
        graph=graph,
        query_graph=query_graph,
        node_sets=[list(nodes) for nodes in node_sets],
        k=k,
        aggregate=aggregate,
        params=params,
        d=d,
        epsilon=epsilon,
        engine=engine,
        walk_cache=walk_cache,
        share_walks=share_walks,
        bound_cache=bound_cache,
        share_bounds=share_bounds,
        max_block_bytes=max_block_bytes,
        walk_cache_bytes=walk_cache_bytes,
        plan=plan,
    )
    if governed:
        return _governed_multi_way(
            spec, name, m, budget, on_budget, fault_injector
        )
    if name == "nl":
        return NestedLoopJoin(spec).run()
    if name == "ap":
        return AllPairsJoin(spec).run()
    if name == "pj":
        return PartialJoin(spec, m=m).run()
    if name == "pj-i":
        return PartialJoinIncremental(spec, m=m).run()
    raise GraphValidationError(
        f"unknown n-way algorithm {algorithm!r}; choose from {_NWAY_ALGORITHMS}"
    )


def serve(graph: Graph, **config) -> "object":
    """A running :class:`~repro.service.QueryService` over ``graph``.

    The service loads the graph once (one engine, one transition
    matrix), keeps one shared walk/bound cache pair per measure
    identity so hot targets from one user's query warm the next
    user's, and executes :class:`~repro.service.TwoWayRequest` /
    :class:`~repro.service.MultiWayRequest` /
    :class:`~repro.service.ExplainRequest` values on a pool of worker
    threads with admission control (``workers``, ``queue_depth``,
    ``max_in_flight``, ``default_budget`` — see
    :class:`~repro.service.QueryService` for every knob).

    Use as a context manager (or call ``close()``)::

        with serve(graph, workers=4) as service:
            response = service.query(TwoWayRequest(left, right, k=10))

    The service package is imported lazily so the one-shot API keeps
    zero serving-layer overhead.
    """
    from repro.service import QueryService

    return QueryService(graph, **config)


def explain_multi_way_plan(
    graph: Graph,
    query_graph: QueryGraph,
    node_sets: Sequence[Sequence[int]],
    k: int,
    algorithm: str = "pj-i",
    aggregate: Aggregate = MIN,
    m: int = 50,
    params: Optional[DHTParams] = None,
    d: Optional[int] = None,
    epsilon: Optional[float] = None,
    engine: Optional[WalkEngine] = None,
    walk_cache: Optional[WalkCache] = None,
    share_walks: bool = True,
    bound_cache: Optional[BoundPlanCache] = None,
    share_bounds: bool = True,
    max_block_bytes: Optional[int] = None,
    walk_cache_bytes: Optional[int] = None,
    measure: Optional[Union[str, object]] = None,
    plan: object = "auto",
    analyze: bool = False,
):
    """The :class:`~repro.planner.plan.ExplainedPlan` that
    :func:`multi_way_join` would execute — without running the join.

    Mirrors :func:`multi_way_join`'s spec construction exactly, so the
    returned plan can be passed back via its ``plan=`` parameter to run
    precisely what was explained (the CLI's ``--explain`` does this).
    Planning reads cheap degree statistics and probes the shared caches
    without building anything, so explaining is walk-free.

    With ``analyze=True`` the resolved plan *is* executed, under a
    private :class:`~repro.obs.QueryTracer`, and the return type becomes
    an :class:`~repro.obs.AnalyzedPlan`: the plan annotated with
    per-edge actuals (propagation steps, cache hits, peak block bytes,
    refill counts) sourced from the trace, plus the answers the traced
    run produced — bit-identical to an untraced :func:`multi_way_join`
    with the same plan (the CLI's ``--explain analyze`` prints it).
    """
    resolved = _resolve_measure(measure)
    name = algorithm.lower()
    if resolved is not None:
        if name not in ("ap", "pj", "pj-i"):
            raise GraphValidationError(
                f"algorithm {algorithm!r} is DHT-only; under measure "
                f"{resolved.name} choose from ['ap', 'pj', 'pj-i']"
            )
        _reject_dht_options_under_measure(
            resolved, params=params, d=d, epsilon=epsilon,
        )
        spec = NWayJoinSpec(
            graph=graph,
            query_graph=query_graph,
            node_sets=[list(nodes) for nodes in node_sets],
            k=k,
            aggregate=aggregate,
            engine=engine,
            measure=resolved,
            walk_cache=walk_cache,
            share_walks=share_walks,
            bound_cache=bound_cache,
            share_bounds=share_bounds,
            max_block_bytes=max_block_bytes,
            walk_cache_bytes=walk_cache_bytes,
            plan=plan,
        )
        # The measure path has no incremental PJ-i; it runs PJ.
        strategy = "ap" if name == "ap" else "pj"
        resolved_plan = spec.resolve_plan(strategy, m=m)
        if not analyze:
            return resolved_plan
        return _analyze_plan(spec, strategy, resolved_plan, m)
    if name == "nl":
        raise GraphValidationError(
            "the NL strategy scores answers one tuple at a time; it has no "
            "per-edge build order or operator choice to plan — use 'ap', "
            "'pj', or 'pj-i'"
        )
    if name not in ("ap", "pj", "pj-i"):
        raise GraphValidationError(
            f"unknown n-way algorithm {algorithm!r}; "
            f"choose from {_NWAY_ALGORITHMS}"
        )
    spec = NWayJoinSpec(
        graph=graph,
        query_graph=query_graph,
        node_sets=[list(nodes) for nodes in node_sets],
        k=k,
        aggregate=aggregate,
        params=params,
        d=d,
        epsilon=epsilon,
        engine=engine,
        walk_cache=walk_cache,
        share_walks=share_walks,
        bound_cache=bound_cache,
        share_bounds=share_bounds,
        max_block_bytes=max_block_bytes,
        walk_cache_bytes=walk_cache_bytes,
        plan=plan,
    )
    resolved_plan = spec.resolve_plan(name, m=m)
    if not analyze:
        return resolved_plan
    return _analyze_plan(spec, name, resolved_plan, m)


def _run_planned(spec: NWayJoinSpec, strategy: str, resolved_plan, m: int):
    """Execute ``resolved_plan`` verbatim through its matching executor."""
    if spec.measure is not None:
        from repro.extensions.series_join import (
            SeriesAllPairsJoin,
            SeriesPartialJoin,
        )

        if strategy == "ap":
            return SeriesAllPairsJoin(spec, plan=resolved_plan).run()
        return SeriesPartialJoin(spec, m=m, plan=resolved_plan).run()
    if strategy == "ap":
        return AllPairsJoin(spec, plan=resolved_plan).run()
    if strategy == "pj":
        return PartialJoin(spec, m=m, plan=resolved_plan).run()
    return PartialJoinIncremental(spec, m=m, plan=resolved_plan).run()


def _analyze_plan(spec: NWayJoinSpec, strategy: str, resolved_plan, m: int):
    """Run the plan under a private tracer; annotate it with actuals."""
    import time

    from repro.obs import AnalyzedPlan, QueryTracer, edge_actuals_from_trace

    tracer = QueryTracer()
    spec.engine.tracer = tracer
    t_start = time.perf_counter()
    try:
        with tracer.span(
            "query", "explain-analyze", stats=spec.engine.stats,
            algorithm=strategy, k=spec.k,
        ):
            answers = _run_planned(spec, strategy, resolved_plan, m)
    finally:
        spec.engine.tracer = None
    elapsed = time.perf_counter() - t_start
    root = tracer.traces[-1]
    return AnalyzedPlan(
        plan=resolved_plan,
        actuals=edge_actuals_from_trace(root, resolved_plan),
        answers=tuple(answers),
        elapsed_s=elapsed,
        trace=root,
    )
