"""Service-level observability: one consistent snapshot per call.

:class:`ServiceStats` is a frozen value object produced by
:meth:`repro.service.QueryService.stats`; the service's internal
accumulator tracks counts and completed-request latencies under a lock
and folds in the shared cache tiers' hit counters at snapshot time, so
one call answers the operational questions: how fast (QPS, p50/p99),
how warm (cross-query cache-hit rates), and how often degraded
(rejected / partial / error counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence (0 if empty)."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rank = max(0, min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time service health snapshot.

    ``qps`` is completed requests over the submit-to-now wall window
    (0 before the first completion).  ``walk_cache_hit_rate`` is
    hits / (hits + misses) summed over every shared cache tier — the
    cross-query sharing signal: a request mix replayed against a warm
    service must show a strictly higher rate than the same mix on a
    cold one (the bench's ``service`` section asserts exactly that).
    ``partial`` counts completed-but-flagged results (budget stops,
    including deadline expiry while still queued); ``rejected`` counts
    clean admission refusals; neither is ever silent.
    """

    submitted: int
    completed: int
    exact: int
    partial: int
    rejected: int
    errors: int
    in_flight: int
    qps: float
    p50_ms: float
    p99_ms: float
    walk_cache_hits: int
    walk_cache_misses: int
    walk_cache_hit_rate: float
    bound_cache_hits: int
    plan_cache_hits: int
    budget_stops: int


class StatsAccumulator:
    """Mutable counters behind :class:`ServiceStats` (lock owned by caller).

    The service records each response exactly once; latencies are kept
    for completed (``status == "ok"``) requests only, so percentiles
    measure served answers, not rejections.
    """

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.exact = 0
        self.partial = 0
        self.rejected = 0
        self.errors = 0
        self.latencies_ms: List[float] = []
        self.first_submit: float = 0.0
        self.last_complete: float = 0.0

    def record_submit(self, now: float) -> None:
        if self.submitted == 0:
            self.first_submit = now
        self.submitted += 1

    def record_response(self, response, now: float) -> None:
        if response.status == "rejected":
            self.rejected += 1
            return
        if response.status == "error":
            self.errors += 1
            return
        self.completed += 1
        self.last_complete = now
        self.latencies_ms.append(response.latency_ms)
        result = response.result
        if getattr(result, "exact", True):
            self.exact += 1
        else:
            self.partial += 1
