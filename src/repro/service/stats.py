"""Service-level observability: one consistent snapshot per call.

:class:`ServiceStats` is a frozen value object produced by
:meth:`repro.service.QueryService.stats`; the service's internal
accumulator tracks counts and completed-request latencies under a lock
and folds in the shared cache tiers' hit counters at snapshot time, so
one call answers the operational questions: how fast (QPS, p50/p99),
how warm (cross-query cache-hit rates), and how often degraded
(rejected / partial / error counts).

Two bounded structures keep a long-lived service's accounting flat:

* latencies live in a fixed :data:`LATENCY_WINDOW`-slot ring (the old
  accumulator appended every completed request's latency forever, so a
  service that served millions of queries leaked a float per query and
  re-sorted an ever-growing list on every snapshot) — percentiles are
  computed over the most recent window;
* the worst-latency completed requests are kept in a
  :data:`SLOW_QUERY_RING`-entry min-heap of summaries, dumped via
  :meth:`ServiceStats.slow_queries` — the slow-query log.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Completed-request latencies retained for the p50/p99 percentiles —
#: a fixed-size ring, so snapshot cost and memory stay flat no matter
#: how long the service runs.
LATENCY_WINDOW = 2048

#: Worst-latency request summaries retained for the slow-query log.
SLOW_QUERY_RING = 16


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence (0 if empty)."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rank = max(0, min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time service health snapshot.

    ``qps`` is completed requests over the submit-to-now wall window
    (0 before the first completion).  ``walk_cache_hit_rate`` is
    hits / (hits + misses) summed over every shared cache tier — the
    cross-query sharing signal: a request mix replayed against a warm
    service must show a strictly higher rate than the same mix on a
    cold one (the bench's ``service`` section asserts exactly that).
    ``partial`` counts completed-but-flagged results (budget stops,
    including deadline expiry while still queued); ``rejected`` counts
    clean admission refusals; neither is ever silent.

    ``p50_ms`` / ``p99_ms`` are computed over the most recent
    :data:`LATENCY_WINDOW` completed requests, not the full history.
    """

    submitted: int
    completed: int
    exact: int
    partial: int
    rejected: int
    errors: int
    in_flight: int
    qps: float
    p50_ms: float
    p99_ms: float
    walk_cache_hits: int
    walk_cache_misses: int
    walk_cache_hit_rate: float
    bound_cache_hits: int
    plan_cache_hits: int
    budget_stops: int

    def slow_queries(self) -> Tuple[dict, ...]:
        """Worst-latency completed requests, slowest first.

        Each entry is a summary dict (``latency_ms``, ``queued_ms``,
        ``request``, ``exact``) from the bounded slow-query ring.
        Deliberately *not* a dataclass field: ``dataclasses.asdict``
        snapshots (the CLI's ``serve`` printout, the metrics registry)
        stay purely numeric.
        """
        return getattr(self, "_slow_queries", ())


class StatsAccumulator:
    """Mutable counters behind :class:`ServiceStats` (lock owned by caller).

    The service records each response exactly once; latencies are kept
    for completed (``status == "ok"``) requests only, so percentiles
    measure served answers, not rejections.  Both the latency ring and
    the slow-query heap are bounded — recording is O(1) amortised and
    the accumulator's memory does not grow with service lifetime.
    """

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.exact = 0
        self.partial = 0
        self.rejected = 0
        self.errors = 0
        self.first_submit: float = 0.0
        self.last_complete: float = 0.0
        self._latency_ring: List[float] = []
        self._latency_pos = 0
        # Min-heap of (latency_ms, seq, summary): the root is the
        # fastest of the retained worst, evicted when a slower request
        # completes.  ``seq`` breaks latency ties without comparing
        # dicts.
        self._slow_heap: List[Tuple[float, int, dict]] = []
        self._slow_seq = 0

    def record_submit(self, now: float) -> None:
        if self.submitted == 0:
            self.first_submit = now
        self.submitted += 1

    def record_response(self, response, now: float) -> None:
        if response.status == "rejected":
            self.rejected += 1
            return
        if response.status == "error":
            self.errors += 1
            return
        self.completed += 1
        self.last_complete = now
        self._record_latency(response.latency_ms)
        self._record_slow(response)
        result = response.result
        if getattr(result, "exact", True):
            self.exact += 1
        else:
            self.partial += 1

    def latency_window(self) -> List[float]:
        """The retained (most recent) completed-request latencies."""
        return list(self._latency_ring)

    def slow_queries(self) -> Tuple[dict, ...]:
        """Retained worst-latency summaries, slowest first."""
        return tuple(
            summary
            for _, _, summary in sorted(
                self._slow_heap, key=lambda item: (-item[0], item[1])
            )
        )

    def _record_latency(self, latency_ms: float) -> None:
        if len(self._latency_ring) < LATENCY_WINDOW:
            self._latency_ring.append(latency_ms)
            return
        self._latency_ring[self._latency_pos] = latency_ms
        self._latency_pos = (self._latency_pos + 1) % LATENCY_WINDOW

    def _record_slow(self, response) -> None:
        entry = (
            float(response.latency_ms),
            self._slow_seq,
            {
                "latency_ms": float(response.latency_ms),
                "queued_ms": float(response.queued_ms),
                "request": type(response.request).__name__,
                "exact": bool(getattr(response.result, "exact", True)),
            },
        )
        self._slow_seq += 1
        if len(self._slow_heap) < SLOW_QUERY_RING:
            heapq.heappush(self._slow_heap, entry)
        elif entry[0] > self._slow_heap[0][0]:
            heapq.heapreplace(self._slow_heap, entry)
