"""The concurrent serving layer: load a graph once, serve many users.

See :class:`QueryService` for the worker-pool front,
:mod:`repro.service.requests` for the request/response value objects,
and :class:`~repro.service.stats.ServiceStats` for the observability
snapshot.  :func:`repro.api.serve` is the one-call constructor.
"""

from repro.service.requests import (
    RESPONSE_STATUSES,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    ExplainRequest,
    MultiWayRequest,
    QueryResponse,
    TwoWayRequest,
)
from repro.service.service import QueryService, Ticket
from repro.service.stats import ServiceStats

__all__ = [
    "ExplainRequest",
    "MultiWayRequest",
    "QueryResponse",
    "QueryService",
    "RESPONSE_STATUSES",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_REJECTED",
    "ServiceStats",
    "Ticket",
    "TwoWayRequest",
]
