"""Request and response value objects for the query service.

Requests are frozen dataclasses so a seeded workload generator can build
a deterministic mix once and replay it bit-identically — the concurrency
battery's oracle comparisons depend on requests being immutable values.
Node sets are stored as tuples for the same reason.

Every completed request — exact, budget-flagged, or expired while
queued — is answered with a :class:`QueryResponse` whose ``result`` is a
:class:`~repro.exec.budget.PartialResult` (joins) or an
:class:`~repro.planner.plan.ExplainedPlan` (explains).  Admission
failures are *clean rejections*: ``status == "rejected"``, no result,
and the reason in ``error`` — never an exception out of the worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exec.budget import QueryBudget

#: Response statuses: the request ran (``result`` holds its outcome),
#: was turned away at admission, or hit an unexpected execution error.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_ERROR = "error"

RESPONSE_STATUSES = (STATUS_OK, STATUS_REJECTED, STATUS_ERROR)


@dataclass(frozen=True)
class TwoWayRequest:
    """One 2-way top-``k`` join (:func:`repro.api.two_way_join`).

    ``measure`` is a name (``None``/DHT names for the core DHT path,
    ``"ppr"`` / ``"simrank"`` otherwise) or a
    :class:`~repro.extensions.measures.SeriesMeasure` instance; the
    service resolves names to a fresh instance per execution, so request
    values stay immutable and measure-internal memos are never shared
    across worker threads.  ``budget`` overrides the service's default
    :class:`~repro.exec.budget.QueryBudget` for this request only.
    """

    left: Tuple[int, ...]
    right: Tuple[int, ...]
    k: int
    algorithm: str = "b-idj-y"
    measure: Optional[object] = None
    budget: Optional[QueryBudget] = None
    max_block_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "left", tuple(int(u) for u in self.left))
        object.__setattr__(self, "right", tuple(int(u) for u in self.right))


@dataclass(frozen=True)
class MultiWayRequest:
    """One n-way top-``k`` join (:func:`repro.api.multi_way_join`).

    ``query_edges`` are directed query-graph edges over
    ``len(node_sets)`` vertices; ``plan`` is ``"fixed"`` (the
    bit-identity oracle order) or ``"auto"`` (cost-based planner).
    """

    query_edges: Tuple[Tuple[int, int], ...]
    node_sets: Tuple[Tuple[int, ...], ...]
    k: int
    algorithm: str = "pj-i"
    m: int = 50
    measure: Optional[object] = None
    plan: str = "fixed"
    budget: Optional[QueryBudget] = None
    max_block_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "query_edges",
            tuple((int(i), int(j)) for i, j in self.query_edges),
        )
        object.__setattr__(
            self,
            "node_sets",
            tuple(tuple(int(u) for u in nodes) for nodes in self.node_sets),
        )


@dataclass(frozen=True)
class ExplainRequest:
    """Plan-only request (:func:`repro.api.explain_multi_way_plan`).

    Returns the :class:`~repro.planner.plan.ExplainedPlan` the matching
    :class:`MultiWayRequest` would execute, without walking.  Explains
    are never budget-governed (planning is walk-free) but still pass
    through admission control like any request.
    """

    query_edges: Tuple[Tuple[int, int], ...]
    node_sets: Tuple[Tuple[int, ...], ...]
    k: int
    algorithm: str = "pj-i"
    m: int = 50
    measure: Optional[object] = None
    plan: str = "auto"

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "query_edges",
            tuple((int(i), int(j)) for i, j in self.query_edges),
        )
        object.__setattr__(
            self,
            "node_sets",
            tuple(tuple(int(u) for u in nodes) for nodes in self.node_sets),
        )


@dataclass
class QueryResponse:
    """What the service hands back for one request.

    ``status``
        ``"ok"`` — the request ran; ``result`` is its outcome (for
        joins always a :class:`~repro.exec.budget.PartialResult`,
        ``exact`` or flagged).  ``"rejected"`` — admission control
        turned the request away (queue full / too many in flight);
        ``error`` says why and ``result`` is ``None``.  ``"error"`` —
        the request failed validation or execution; ``error`` carries
        the message.
    ``queued_ms`` / ``latency_ms``
        Time spent waiting for a worker, and total submit-to-answer
        wall time (``latency_ms`` includes ``queued_ms``).
    """

    request: object
    status: str
    result: Optional[object] = None
    error: Optional[str] = None
    queued_ms: float = 0.0
    latency_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.status not in RESPONSE_STATUSES:
            raise ValueError(
                f"status must be one of {RESPONSE_STATUSES}, got {self.status!r}"
            )

    @property
    def ok(self) -> bool:
        """True when the request ran (its result may still be partial)."""
        return self.status == STATUS_OK

    @property
    def rejected(self) -> bool:
        """True when admission control turned the request away."""
        return self.status == STATUS_REJECTED
