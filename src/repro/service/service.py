"""A long-lived, concurrent query service with cross-query cache sharing.

:class:`QueryService` is the serving front the ROADMAP's item 2 asks
for: it loads a graph **once** (one :class:`~repro.walks.engine.WalkEngine`,
one transition matrix), keeps one shared
:class:`~repro.walks.cache.WalkCache` / :class:`~repro.bounds_cache.BoundPlanCache`
pair per measure identity, and serves
:class:`~repro.service.requests.TwoWayRequest` /
:class:`~repro.service.requests.MultiWayRequest` /
:class:`~repro.service.requests.ExplainRequest` values from a pool of
worker threads — so one user's hot targets warm the next user's query.

Correctness under concurrency rests on three properties built in
earlier layers:

* the caches serialise every public method under a re-entrant lock and
  are keyed by ``(graph, measure identity)``, so concurrent queries of
  the same measure share artifacts without tearing and different
  measures never mix;
* :class:`~repro.walks.engine.WalkEngineStats` counters are per-thread
  shards merged on read, so no increment is lost and per-query step
  budgets meter only their own thread's walking;
* ``engine.governor`` is thread-local, so each worker installs its own
  :class:`~repro.exec.governor.ExecutionGovernor` on the shared engine.

Admission control keeps overload from becoming a pile-up: at most
``queue_depth`` requests wait and ``max_in_flight`` are admitted overall;
beyond that, :meth:`QueryService.submit` answers a *clean rejection*
(``status == "rejected"``) instead of queueing unboundedly.  A request
whose deadline expires while it is still **queued** is not run at all:
the worker answers a flagged empty
:class:`~repro.exec.budget.PartialResult` (``reason="deadline"``) and
counts a ``budget_stops``, exactly as if the governor had stopped it —
queueing time is part of the query's deadline, so the remaining budget
is reduced by the time spent waiting before execution starts.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro import api
from repro.bounds_cache import BoundPlanCache
from repro.core.dht import DHTParams
from repro.core.nway.aggregates import MIN, Aggregate
from repro.core.nway.query_graph import QueryGraph
from repro.exec.budget import PartialResult, QueryBudget, exact_result
from repro.extensions.measures import measure_by_name
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError
from repro.service.requests import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    ExplainRequest,
    MultiWayRequest,
    QueryResponse,
    TwoWayRequest,
)
from repro.service.stats import ServiceStats, StatsAccumulator, percentile
from repro.walks.cache import WalkCache
from repro.walks.engine import WalkEngine

_SHUTDOWN = object()


class Ticket:
    """Handle for one submitted request; resolves to a :class:`QueryResponse`.

    Rejected requests resolve immediately; admitted ones resolve when a
    worker finishes (or the service is closed, which drains the queue
    with rejections so no caller blocks forever).
    """

    __slots__ = ("request", "submitted_at", "_done", "_response")

    def __init__(self, request: object, submitted_at: float) -> None:
        self.request = request
        self.submitted_at = submitted_at
        self._done = threading.Event()
        self._response: Optional[QueryResponse] = None

    def done(self) -> bool:
        """True once a response is available."""
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResponse:
        """Block until the response is ready (raises ``TimeoutError``)."""
        if not self._done.wait(timeout):
            raise TimeoutError("query has not completed yet")
        assert self._response is not None
        return self._response

    def _complete(self, response: QueryResponse) -> None:
        self._response = response
        self._done.set()


class QueryService:
    """Thread-pool query front over one shared walk-and-bound substrate.

    Parameters
    ----------
    graph:
        The data graph, loaded once; every request runs on its engine.
    workers:
        Worker threads executing admitted requests concurrently.
    queue_depth:
        Maximum requests *waiting* for a worker; a full queue rejects.
    max_in_flight:
        Ceiling on admitted-but-unfinished requests (queued + running).
        Defaults to ``workers + queue_depth``; lower it to shed load
        earlier.
    default_budget:
        :class:`~repro.exec.budget.QueryBudget` applied to every join
        request that does not carry its own (``None`` = ungoverned by
        default).  Requests run governed whenever an effective budget
        exists, so their results are always
        :class:`~repro.exec.budget.PartialResult`-wrapped either way.
    params / d / epsilon:
        Service-wide DHT configuration (requests cannot override it —
        cache identity must stay fixed for sharing to be sound).
    walk_cache_targets / walk_cache_bytes / bound_cache_entries:
        Capacity knobs for each measure tier's shared caches.
    clock:
        Injectable monotonic clock (seconds) for deterministic tests.
    tracer:
        Optional :class:`~repro.obs.QueryTracer` shared by every
        worker: each executed request runs under a ``service`` root
        span (queue wait recorded as ``queued_ms``) with the full
        query-span tree nested inside, and admission outcomes count as
        tracer counters (``admitted`` / ``rejected``).  Span stacks
        are per-thread, so concurrent workers never interleave spans.

    Use as a context manager, or call :meth:`close` — worker threads are
    non-daemonic between those points.
    """

    def __init__(
        self,
        graph: Graph,
        workers: int = 4,
        queue_depth: int = 32,
        max_in_flight: Optional[int] = None,
        default_budget: Optional[QueryBudget] = None,
        params: Optional[DHTParams] = None,
        d: Optional[int] = None,
        epsilon: Optional[float] = None,
        aggregate: Aggregate = MIN,
        walk_cache_targets: int = 256,
        walk_cache_bytes: Optional[int] = None,
        bound_cache_entries: int = 64,
        clock=time.monotonic,
        tracer=None,
    ) -> None:
        if workers < 1:
            raise GraphValidationError(f"workers must be >= 1, got {workers}")
        if queue_depth < 1:
            raise GraphValidationError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        self._graph = graph
        self._engine = WalkEngine(graph)
        self._params = params if params is not None else DHTParams.dht_lambda(0.2)
        if d is not None and epsilon is not None:
            raise GraphValidationError("pass either d or epsilon, not both")
        if d is None:
            d = self._params.steps_for_epsilon(
                epsilon if epsilon is not None else 1e-6
            )
        self._d = d
        self._aggregate = aggregate
        self._default_budget = default_budget
        self._walk_cache_targets = walk_cache_targets
        self._walk_cache_bytes = walk_cache_bytes
        self._bound_cache_entries = bound_cache_entries
        self._clock = clock
        self._tracer = tracer
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self._queue_depth = queue_depth
        self._max_in_flight = (
            max_in_flight if max_in_flight is not None else workers + queue_depth
        )
        if self._max_in_flight < 1:
            raise GraphValidationError(
                f"max_in_flight must be >= 1, got {self._max_in_flight}"
            )
        self._admission = threading.Lock()
        self._in_flight = 0
        self._closed = False
        self._stats_lock = threading.Lock()
        self._acc = StatsAccumulator()
        # One (WalkCache, BoundPlanCache) pair per measure identity —
        # DHTParams for the core path, measure.cache_key() otherwise.
        # Identities are value objects, so every request naming the same
        # measure configuration lands in the same shared tier.
        self._tiers: Dict[object, Tuple[WalkCache, BoundPlanCache]] = {}
        self._tiers_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-svc-worker-{i}"
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The served data graph."""
        return self._graph

    @property
    def engine(self) -> WalkEngine:
        """The single shared walk engine (one transition matrix)."""
        return self._engine

    @property
    def workers(self) -> int:
        """Worker-thread count."""
        return len(self._workers)

    def cache_tier(self, measure: Optional[object] = None) -> Tuple[WalkCache, BoundPlanCache]:
        """The shared ``(walk_cache, bound_cache)`` pair for ``measure``.

        ``measure`` is a name, a measure instance, or ``None`` for the
        DHT tier; the tier is created on first use.  Tests and the bench
        read cache stats through this.
        """
        resolved = self._resolve_measure(measure)
        return self._tier_for(resolved)

    @property
    def tracer(self):
        """The installed :class:`~repro.obs.QueryTracer`, if any."""
        return self._tracer

    def stats(self) -> ServiceStats:
        """One consistent :class:`~repro.service.stats.ServiceStats` snapshot."""
        with self._stats_lock:
            acc = self._acc
            latencies = sorted(acc.latency_window())
            slow = acc.slow_queries()
            completed = acc.completed
            elapsed = 0.0
            if completed and acc.last_complete > acc.first_submit:
                elapsed = acc.last_complete - acc.first_submit
            snapshot = dict(
                submitted=acc.submitted,
                completed=completed,
                exact=acc.exact,
                partial=acc.partial,
                rejected=acc.rejected,
                errors=acc.errors,
                qps=(completed / elapsed) if elapsed > 0 else 0.0,
                p50_ms=percentile(latencies, 0.50),
                p99_ms=percentile(latencies, 0.99),
            )
        with self._admission:
            snapshot["in_flight"] = self._in_flight
        walk_hits = walk_misses = bound_hits = plan_hits = 0
        with self._tiers_lock:
            tiers = list(self._tiers.values())
        for walk_cache, bound_cache in tiers:
            walk_hits += walk_cache.stats.hits
            walk_misses += walk_cache.stats.misses
            bound_hits += bound_cache.stats.y_hits + bound_cache.stats.x_hits
            plan_hits += bound_cache.stats.plan_hits
        lookups = walk_hits + walk_misses
        stats = ServiceStats(
            walk_cache_hits=walk_hits,
            walk_cache_misses=walk_misses,
            walk_cache_hit_rate=(walk_hits / lookups) if lookups else 0.0,
            bound_cache_hits=bound_hits,
            plan_cache_hits=plan_hits,
            budget_stops=self._engine.stats.budget_stops,
            **snapshot,
        )
        # The slow-query log rides along outside the dataclass fields,
        # keeping ``asdict`` snapshots purely numeric (the CLI formats
        # every field with ``:g``).
        object.__setattr__(stats, "_slow_queries", slow)
        return stats

    def metrics_registry(self):
        """A :class:`~repro.obs.MetricsRegistry` over this service.

        Registers the engine counters, the service snapshot, and — via
        a dynamic source, because tiers are created lazily on first use
        — every measure tier's walk/bound cache counters, labeled
        ``tier=<index>`` in creation order.
        """
        from repro.obs import MetricsRegistry
        from repro.obs.metrics import (
            BOUND_CACHE_FIELDS,
            WALK_CACHE_FIELDS,
            MetricSample,
        )

        registry = MetricsRegistry()
        registry.register_engine(self._engine.stats)
        registry.register_service(self)

        def tier_source():
            with self._tiers_lock:
                tiers = list(self._tiers.values())
            samples = []
            for index, (walk_cache, bound_cache) in enumerate(tiers):
                labels = (("tier", str(index)),)
                walk = walk_cache.stats
                samples.extend(
                    MetricSample(
                        f"repro_walk_cache_{field}_total",
                        float(getattr(walk, field)),
                        labels,
                    )
                    for field in WALK_CACHE_FIELDS
                )
                bound = bound_cache.stats
                samples.extend(
                    MetricSample(
                        f"repro_bound_cache_{field}_total",
                        float(getattr(bound, field)),
                        labels,
                    )
                    for field in BOUND_CACHE_FIELDS
                )
            return samples

        registry.register_source(tier_source)
        return registry

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting work, finish admitted requests, join workers."""
        with self._admission:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(_SHUTDOWN)
        for thread in self._workers:
            thread.join()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, request: object) -> Ticket:
        """Admit ``request`` (or reject cleanly); never blocks on the queue."""
        now = self._clock()
        ticket = Ticket(request, now)
        with self._stats_lock:
            self._acc.record_submit(now)
        with self._admission:
            if self._closed:
                return self._reject(ticket, "service is closed")
            if self._in_flight >= self._max_in_flight:
                return self._reject(
                    ticket,
                    f"too many requests in flight (max {self._max_in_flight})",
                )
            try:
                self._queue.put_nowait(ticket)
            except queue.Full:
                return self._reject(
                    ticket, f"request queue is full (depth {self._queue_depth})"
                )
            self._in_flight += 1
        if self._tracer is not None:
            self._tracer.count("admitted")
        return ticket

    def query(self, request: object, timeout: Optional[float] = None) -> QueryResponse:
        """Submit and wait: the synchronous convenience wrapper."""
        return self.submit(request).result(timeout)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _reject(self, ticket: Ticket, why: str) -> Ticket:
        response = QueryResponse(
            request=ticket.request,
            status=STATUS_REJECTED,
            error=why,
            queued_ms=0.0,
            latency_ms=(self._clock() - ticket.submitted_at) * 1000.0,
        )
        with self._stats_lock:
            self._acc.record_response(response, self._clock())
        if self._tracer is not None:
            self._tracer.count("rejected")
        ticket._complete(response)
        return ticket

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._queue.task_done()
                return
            ticket: Ticket = item
            try:
                response = self._execute(ticket)
            except BaseException as exc:  # workers must never die
                response = QueryResponse(
                    request=ticket.request,
                    status=STATUS_ERROR,
                    error=f"{type(exc).__name__}: {exc}",
                    latency_ms=(self._clock() - ticket.submitted_at) * 1000.0,
                )
            with self._admission:
                self._in_flight -= 1
            with self._stats_lock:
                self._acc.record_response(response, self._clock())
            ticket._complete(response)
            self._queue.task_done()

    def _execute(self, ticket: Ticket) -> QueryResponse:
        request = ticket.request
        started = self._clock()
        queued_ms = (started - ticket.submitted_at) * 1000.0

        def respond(status: str, result=None, error=None) -> QueryResponse:
            return QueryResponse(
                request=request,
                status=status,
                result=result,
                error=error,
                queued_ms=queued_ms,
                latency_ms=(self._clock() - ticket.submitted_at) * 1000.0,
            )

        budget = getattr(request, "budget", None) or self._default_budget
        if budget is not None and budget.deadline_ms is not None:
            remaining = budget.deadline_ms - queued_ms
            if remaining <= 0.0:
                # The deadline ran out while the request sat in the
                # queue: a flagged budget stop at the admission
                # boundary, counted like any governor stop — the query
                # never runs, so the answer is an empty partial.
                self._engine.stats.add("budget_stops", 1)
                return respond(
                    STATUS_OK,
                    result=PartialResult(
                        results=[], bounds=[], exact=False, reason="deadline"
                    ),
                )
            # Queueing time is part of the query's wall budget.
            budget = replace(budget, deadline_ms=remaining)
        tracer = self._tracer
        engine = self._engine
        if tracer is not None:
            # Per-request install on the engine's *thread-local* tracer
            # slot: concurrent workers each trace their own request
            # without any lock; uninstall keeps the slot clean for
            # untraced work on the same thread.
            engine.tracer = tracer
        try:
            if tracer is not None:
                with tracer.span(
                    "service", type(request).__name__,
                    stats=engine.stats, queued_ms=queued_ms,
                ):
                    result = self._dispatch(request, budget)
            else:
                result = self._dispatch(request, budget)
        except GraphValidationError as exc:
            return respond(STATUS_ERROR, error=str(exc))
        finally:
            if tracer is not None:
                engine.tracer = None
        return respond(STATUS_OK, result=result)

    def _dispatch(self, request: object, budget: Optional[QueryBudget]):
        if isinstance(request, TwoWayRequest):
            return self._run_two_way(request, budget)
        if isinstance(request, MultiWayRequest):
            return self._run_multi_way(request, budget)
        if isinstance(request, ExplainRequest):
            return self._run_explain(request)
        raise GraphValidationError(
            f"unknown request type {type(request).__name__}; expected "
            "TwoWayRequest, MultiWayRequest, or ExplainRequest"
        )

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------

    def _resolve_measure(self, measure: Optional[object]):
        """``None`` for the DHT tier; a fresh measure instance otherwise."""
        if measure is None:
            return None
        if isinstance(measure, str):
            return measure_by_name(measure)
        return measure

    def _tier_for(self, resolved) -> Tuple[WalkCache, BoundPlanCache]:
        key = resolved.cache_key() if resolved is not None else self._params
        with self._tiers_lock:
            tier = self._tiers.get(key)
            if tier is None:
                tier = (
                    WalkCache(
                        self._engine,
                        key,
                        max_targets=self._walk_cache_targets,
                        max_bytes=self._walk_cache_bytes,
                    ),
                    BoundPlanCache(
                        self._engine, key, max_entries=self._bound_cache_entries
                    ),
                )
                self._tiers[key] = tier
            return tier

    def _run_two_way(
        self, request: TwoWayRequest, budget: Optional[QueryBudget]
    ) -> PartialResult:
        resolved = self._resolve_measure(request.measure)
        walk_cache, bound_cache = self._tier_for(resolved)
        dht = resolved is None
        result = api.two_way_join(
            self._graph,
            list(request.left),
            list(request.right),
            request.k,
            algorithm=request.algorithm,
            params=self._params if dht else None,
            d=self._d if dht else None,
            engine=self._engine,
            walk_cache=walk_cache,
            bound_cache=bound_cache,
            max_block_bytes=request.max_block_bytes,
            measure=resolved,
            budget=budget,
        )
        if isinstance(result, PartialResult):
            return result
        return exact_result(result)

    def _run_multi_way(
        self, request: MultiWayRequest, budget: Optional[QueryBudget]
    ) -> PartialResult:
        resolved = self._resolve_measure(request.measure)
        walk_cache, bound_cache = self._tier_for(resolved)
        dht = resolved is None
        query_graph = QueryGraph(len(request.node_sets), request.query_edges)
        result = api.multi_way_join(
            self._graph,
            query_graph,
            [list(nodes) for nodes in request.node_sets],
            request.k,
            algorithm=request.algorithm,
            aggregate=self._aggregate,
            m=request.m,
            params=self._params if dht else None,
            d=self._d if dht else None,
            engine=self._engine,
            walk_cache=walk_cache,
            bound_cache=bound_cache,
            max_block_bytes=request.max_block_bytes,
            measure=resolved,
            plan=request.plan,
            budget=budget,
        )
        if isinstance(result, PartialResult):
            return result
        return exact_result(result)

    def _run_explain(self, request: ExplainRequest):
        resolved = self._resolve_measure(request.measure)
        walk_cache, bound_cache = self._tier_for(resolved)
        dht = resolved is None
        query_graph = QueryGraph(len(request.node_sets), request.query_edges)
        return api.explain_multi_way_plan(
            self._graph,
            query_graph,
            [list(nodes) for nodes in request.node_sets],
            request.k,
            algorithm=request.algorithm,
            aggregate=self._aggregate,
            m=request.m,
            params=self._params if dht else None,
            d=self._d if dht else None,
            engine=self._engine,
            walk_cache=walk_cache,
            bound_cache=bound_cache,
            measure=resolved,
            plan=request.plan,
        )
