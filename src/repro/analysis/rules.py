"""The invariant-rule registry and the AST checkers behind it.

Each rule mechanises one contract the concurrent substrate (PR 6–8)
relies on.  Rules are registered in :data:`RULES` keyed by their ID;
``docs/INVARIANTS.md`` documents the same IDs and
``tests/test_docs_consistency.py`` pins the two together.

The checkers reason *locally* and *syntactically* on purpose: a loop
must either call a self-checkpointing primitive directly or carry its
own ``engine.checkpoint(...)``; a method must hold the lock in its own
body, not via a helper.  That keeps every report explainable from the
flagged lines alone, at the cost of requiring the occasional explicit
``# repro-lint: disable=`` where an invariant is discharged
non-locally (each such site is a documented decision, which is the
point).
"""

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, List

from repro.analysis.findings import Finding
from repro.walks.engine import STAT_COUNTERS, STAT_PEAKS


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file handed to every rule checker."""

    path: str  # repo-relative posix path
    tree: ast.Module


@dataclass(frozen=True)
class Rule:
    rule_id: str
    name: str
    summary: str
    checker: Callable[[ModuleInfo], Iterable[Finding]] = field(compare=False)


RULES = {}


def _register(rule_id, name, summary):
    def decorate(checker):
        RULES[rule_id] = Rule(rule_id, name, summary, checker)
        return checker

    return decorate


# --------------------------------------------------------------------------
# shared AST helpers
# --------------------------------------------------------------------------

def _dotted(node):
    """Render ``a.b.c`` chains; None for anything non-dotted."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


_LOCK_CTORS = {"Lock", "RLock"}


def _ctor_name(node):
    """Name of a zero-or-more-arg constructor call, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _self_attr_targets(node):
    """Yield ``(attr_name, value)`` for ``self.X = ...`` style bindings,
    including the slots-safe ``object.__setattr__(self, "X", ...)``."""
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                yield target.attr, node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        target = node.target
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            yield target.attr, node.value
    elif isinstance(node, ast.Call):
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
                and len(node.args) == 3
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "self"
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)):
            yield node.args[1].value, node.args[2]


def _self_root_attr(node):
    """For an access rooted at ``self`` (``self.X``, ``self.X.Y[i]``,
    ``self.X.append``), return ``X``; else None."""
    prev = None
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        prev = node
        node = node.value
    if (isinstance(node, ast.Name) and node.id == "self"
            and isinstance(prev, ast.Attribute)):
        return prev.attr
    return None


def _methods(class_node):
    for item in class_node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield item


def _has_self(method):
    args = method.args.posonlyargs + method.args.args
    return bool(args) and args[0].arg == "self"


def _iter_scoped(tree, node_types):
    """Yield ``(scope_name, node)`` for every node of the given types,
    where scope is the innermost enclosing function's qualified name
    (``Class.method``, ``Class.method.inner``) — each node exactly once."""
    results = []

    def walk(node, class_name, func_name):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                walk(child, child.name, func_name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if func_name:
                    qualified = f"{func_name}.{child.name}"
                elif class_name:
                    qualified = f"{class_name}.{child.name}"
                else:
                    qualified = child.name
                walk(child, class_name, qualified)
            else:
                if isinstance(child, node_types):
                    results.append((func_name or "<module>", child))
                walk(child, class_name, func_name)

    walk(tree, None, None)
    return results


# --------------------------------------------------------------------------
# RL001 unguarded-shared-state
# --------------------------------------------------------------------------

_MUTATORS = {
    "add", "append", "clear", "discard", "extend", "insert", "move_to_end",
    "pop", "popitem", "remove", "reverse", "setdefault", "sort", "update",
}
_RL001_SKIP_METHODS = {"__init__", "__post_init__", "__repr__", "__del__"}
_RL001_DUNDER_OK = {
    "__call__", "__contains__", "__enter__", "__exit__", "__getitem__",
    "__iter__", "__len__", "__next__",
}


def _rl001_class_profile(class_node):
    """Classify a class's attributes: locks, thread-locals, and the
    attributes any method mutates after ``__init__``."""
    lock_attrs, local_attrs, mutated = set(), set(), set()
    for method in _methods(class_node):
        in_init = method.name in ("__init__", "__post_init__")
        for node in ast.walk(method):
            for attr, value in _self_attr_targets(node):
                ctor = _ctor_name(value)
                if ctor in _LOCK_CTORS:
                    lock_attrs.add(attr)
                elif ctor == "local":
                    local_attrs.add(attr)
                elif not in_init:
                    mutated.add(attr)
            if in_init:
                continue
            if isinstance(node, ast.AugAssign):
                root = _self_root_attr(node.target)
                if root:
                    mutated.add(root)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    root = _self_root_attr(target)
                    if root:
                        mutated.add(root)
            elif isinstance(node, (ast.Delete,)):
                for target in node.targets:
                    root = _self_root_attr(target)
                    if root:
                        mutated.add(root)
            elif isinstance(node, ast.Call):
                # Only direct `self.X.<mutator>()` counts as mutating X:
                # deeper chains (`self._engine.stats.add(...)`) are calls
                # *through* X, and `self.stats.add(...)` is the sharded
                # counter API (thread-safe by design, policed by RL004),
                # not a container mutation.
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _MUTATORS
                        and isinstance(func.value, ast.Attribute)
                        and isinstance(func.value.value, ast.Name)
                        and func.value.value.id == "self"
                        and not (func.value.attr == "stats"
                                 and func.attr == "add")):
                    mutated.add(func.value.attr)
    return lock_attrs, local_attrs, mutated


class _GuardVisitor(ast.NodeVisitor):
    """Find unguarded accesses to shared attrs within one method."""

    def __init__(self, lock_attrs, shared_attrs):
        self.lock_attrs = lock_attrs
        self.shared_attrs = shared_attrs
        self.guard_depth = 0
        self.hits = {}  # attr -> first line

    def _is_lock_expr(self, expr):
        return (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in self.lock_attrs)

    def visit_With(self, node):
        guarded = any(self._is_lock_expr(item.context_expr)
                      for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if guarded:
            self.guard_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if guarded:
            self.guard_depth -= 1

    visit_AsyncWith = visit_With

    def visit_Attribute(self, node):
        if (self.guard_depth == 0
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.shared_attrs):
            self.hits.setdefault(node.attr, node.lineno)
        self.generic_visit(node)


@_register(
    "RL001",
    "unguarded-shared-state",
    "public methods of lock-bearing classes must touch mutable "
    "attributes only inside `with self.<lock>:`",
)
def _check_rl001(module):
    findings = []
    for class_node in ast.walk(module.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        lock_attrs, local_attrs, mutated = _rl001_class_profile(class_node)
        if not lock_attrs:
            continue
        shared = mutated - lock_attrs - local_attrs
        if not shared:
            continue
        for method in _methods(class_node):
            if not _has_self(method):
                continue
            name = method.name
            if name in _RL001_SKIP_METHODS:
                continue
            if name.startswith("_") and name not in _RL001_DUNDER_OK:
                continue
            visitor = _GuardVisitor(lock_attrs, shared)
            for stmt in method.body:
                visitor.visit(stmt)
            for attr, line in sorted(visitor.hits.items()):
                findings.append(Finding(
                    module.path, line, "RL001",
                    f"{class_node.name}.{name}", attr,
                    f"'{class_node.name}.{name}' touches mutable attribute "
                    f"'self.{attr}' outside `with self."
                    f"{sorted(lock_attrs)[0]}:` (class declares lock(s) "
                    f"{sorted(lock_attrs)})",
                ))
    return findings


# --------------------------------------------------------------------------
# RL002 ungoverned-loop
# --------------------------------------------------------------------------

# Primitives that advance or consult block propagation / deepening.
# A loop calling any of these must visit the governor each iteration.
_RL002_REQUIRING = {
    "advance_by", "advance_to", "backward_block_step",
    "backward_first_hit_block", "backward_first_hit_series",
    "backward_onehot_step", "backward_scores", "backward_scores_block",
    "forward_first_hit_series", "peek", "reach_mass_series", "scores",
    "walk_level",
}
# Primitives whose own body visits the governor; `peek` is the one pure
# probe that never checkpoints, so it cannot discharge the obligation.
_RL002_SATISFYING = (_RL002_REQUIRING - {"peek"}) | {
    "checkpoint", "edge_context",
}
_RL002_DIRS = {"walks", "core", "extensions", "lint_fixtures"}


def _rl002_applies(path):
    return bool(_RL002_DIRS.intersection(path.split("/")))


def _call_names(nodes):
    """Call names in the given statements, not descending into nested
    function/class definitions (they may never run per iteration)."""
    names = set()
    stack = list(nodes)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                names.add(func.attr)
            elif isinstance(func, ast.Name):
                names.add(func.id)
        stack.extend(ast.iter_child_nodes(node))
    return names


@_register(
    "RL002",
    "ungoverned-loop",
    "loops over propagation/deepening primitives must reach "
    "`engine.checkpoint(...)` every iteration",
)
def _check_rl002(module):
    if not _rl002_applies(module.path):
        return []
    findings = []
    for scope, node in _iter_scoped(
        module.tree, (ast.For, ast.AsyncFor, ast.While)
    ):
        names = _call_names(list(node.body))
        requiring = sorted(names & _RL002_REQUIRING)
        if not requiring or names & _RL002_SATISFYING:
            continue
        findings.append(Finding(
            module.path, node.lineno, "RL002", scope, requiring[0],
            f"loop calls {requiring} but no `engine.checkpoint(...)` "
            "or self-checkpointing primitive is reachable in its "
            "body — budgets and fault injection cannot interrupt it",
        ))
    return findings


# --------------------------------------------------------------------------
# RL003 cache-identity-hygiene
# --------------------------------------------------------------------------

_MUTABLE_TYPE_NAMES = {
    "DefaultDict", "Dict", "List", "MutableMapping", "MutableSequence",
    "MutableSet", "OrderedDict", "Set", "array", "bytearray", "defaultdict",
    "deque", "dict", "list", "ndarray", "set",
}


def _decorator_info(class_node):
    """Return (is_dataclass, frozen) from the decorator list."""
    for deco in class_node.decorator_list:
        call = deco if isinstance(deco, ast.Call) else None
        target = call.func if call else deco
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None)
        if name == "dataclass":
            frozen = False
            if call:
                for kw in call.keywords:
                    if (kw.arg == "frozen"
                            and isinstance(kw.value, ast.Constant)):
                        frozen = bool(kw.value.value)
            return True, frozen
    return False, False


def _annotation_names(node):
    out = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
    return out


def _identity_class_names(tree):
    """Names returned by any ``cache_key`` method — those classes are
    cache identities even if not named ``*Kernel``/``*Params``/``*Key``."""
    names = set()
    for node in ast.walk(tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == "cache_key"):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Return) and sub.value is not None:
                    values = (sub.value.elts
                              if isinstance(sub.value, ast.Tuple)
                              else [sub.value])
                    for value in values:
                        ctor = _ctor_name(value)
                        if ctor:
                            names.add(ctor)
    return names


@_register(
    "RL003",
    "cache-identity-hygiene",
    "cache-key dataclasses must be frozen and carry only "
    "hashable/immutable fields",
)
def _check_rl003(module):
    findings = []
    returned = _identity_class_names(module.tree)
    for class_node in ast.walk(module.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        is_dc, frozen = _decorator_info(class_node)
        if not is_dc:
            continue
        is_identity = (
            class_node.name.endswith(("Kernel", "Params", "Key"))
            or class_node.name in returned
        )
        if not is_identity:
            continue
        if not frozen:
            findings.append(Finding(
                module.path, class_node.lineno, "RL003",
                class_node.name, class_node.name,
                f"cache-identity dataclass '{class_node.name}' is not "
                "frozen=True — mutable identities break cache-key "
                "equality and cross-measure rejection",
            ))
        for item in class_node.body:
            if not isinstance(item, ast.AnnAssign):
                continue
            ann_names = _annotation_names(item.annotation)
            if "ClassVar" in ann_names:
                continue
            bad = sorted(ann_names & _MUTABLE_TYPE_NAMES)
            if (not bad and isinstance(item.value, ast.Call)
                    and _ctor_name(item.value) == "field"):
                for kw in item.value.keywords:
                    if kw.arg == "default_factory":
                        factory = _ctor_name(kw.value) or (
                            kw.value.id
                            if isinstance(kw.value, ast.Name) else None)
                        if factory in _MUTABLE_TYPE_NAMES:
                            bad = [factory]
            if bad:
                attr = (item.target.id
                        if isinstance(item.target, ast.Name) else "<field>")
                findings.append(Finding(
                    module.path, item.lineno, "RL003",
                    class_node.name, attr,
                    f"cache-identity field '{class_node.name}.{attr}' has "
                    f"mutable/unhashable type {bad} — identities must "
                    "hash stably",
                ))
    return findings


# --------------------------------------------------------------------------
# RL004 stats-discipline
# --------------------------------------------------------------------------

_ENGINE_COUNTERS = frozenset(STAT_COUNTERS) | frozenset(STAT_PEAKS)


def _rl004_exempt_classes(tree):
    """Classes whose ``self.stats`` is a *non-engine* stats object (e.g.
    ``WalkCacheStats``) — their field names may collide with engine
    counters but their object has ordinary attribute semantics."""
    exempt = set()
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        for method in _methods(class_node):
            if method.name != "__init__":
                continue
            for node in ast.walk(method):
                for attr, value in _self_attr_targets(node):
                    if attr != "stats":
                        continue
                    ctor = _ctor_name(value)
                    if ctor and ctor != "WalkEngineStats":
                        exempt.add(class_node.name)
    return exempt


@_register(
    "RL004",
    "stats-discipline",
    "engine counters go through the sharded WalkEngineStats "
    "`add`/`local` API, never `+=` or direct assignment",
)
def _check_rl004(module):
    findings = []
    exempt_classes = _rl004_exempt_classes(module.tree)

    class_stack = []

    def walk(node):
        if isinstance(node, ast.ClassDef):
            class_stack.append(node.name)
            for child in ast.iter_child_nodes(node):
                walk(child)
            class_stack.pop()
            return
        targets = []
        if isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Assign):
            targets = node.targets
        for target in targets:
            if not (isinstance(target, ast.Attribute)
                    and target.attr in _ENGINE_COUNTERS):
                continue
            receiver = target.value
            dotted = _dotted(receiver)
            is_stats = (
                dotted == "stats"
                or (dotted is not None and dotted.endswith(".stats"))
                or (isinstance(receiver, ast.Attribute)
                    and receiver.attr == "stats")
            )
            if not is_stats:
                continue
            if (dotted == "self.stats" and class_stack
                    and class_stack[-1] in exempt_classes):
                continue
            findings.append(Finding(
                module.path, node.lineno, "RL004",
                class_stack[-1] if class_stack else "<module>",
                target.attr,
                f"direct write to engine counter "
                f"'{dotted or '<expr>'}.{target.attr}' bypasses the "
                "sharded add()/local() API and loses updates under "
                "threads",
            ))
        for child in ast.iter_child_nodes(node):
            walk(child)

    walk(module.tree)
    return findings


# --------------------------------------------------------------------------
# RL005 swallowed-budget
# --------------------------------------------------------------------------

_BUDGET_EXC_NAMES = {
    "BudgetExceeded", "BudgetExhaustedError", "MemoryBudgetExceeded",
}


def _handler_exc_names(handler):
    node = handler.type
    if node is None:
        return set()
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    names = set()
    for elt in elts:
        if isinstance(elt, ast.Attribute):
            names.add(elt.attr)
        elif isinstance(elt, ast.Name):
            names.add(elt.id)
    return names


def _handler_converts(handler):
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        ident = None
        if isinstance(node, ast.Name):
            ident = node.id
        elif isinstance(node, ast.Attribute):
            ident = node.attr
        if ident is None:
            continue
        if ident in ("PartialResult", "SystemExit", "count_budget_stop",
                     "exit"):
            return True
        if "partial" in ident.lower():
            return True
    return False


@_register(
    "RL005",
    "swallowed-budget",
    "except clauses catching governor/budget exceptions must convert "
    "to a flagged PartialResult (or re-raise), never drop them",
)
def _check_rl005(module):
    findings = []
    for scope, node in _iter_scoped(module.tree, (ast.ExceptHandler,)):
        caught = sorted(_handler_exc_names(node) & _BUDGET_EXC_NAMES)
        if not caught or _handler_converts(node):
            continue
        findings.append(Finding(
            module.path, node.lineno, "RL005", scope, caught[0],
            f"handler catches {caught} but neither re-raises nor "
            "converts to a flagged PartialResult — the budget stop "
            "is silently swallowed",
        ))
    return findings


# --------------------------------------------------------------------------
# RL006 untraced-hook
# --------------------------------------------------------------------------

# Join-driving primitives: each call moves real query work (a two-way
# build, a deepening pass, or one lazy refill step).  A loop driving
# them must be observable — either through a cooperative hook in its own
# body or because the primitive hooks internally.
_RL006_REQUIRING = {"top_k", "all_pairs", "next_pair", "walk_level"}
# `top_k`, `all_pairs`, and `walk_level` open their own trace spans (and
# checkpoint) internally; `next_pair` is the one pure lazy probe that
# carries no internal hook, so a loop over it needs its own.
_RL006_SATISFYING = (_RL006_REQUIRING - {"next_pair"}) | {
    "checkpoint", "edge_context", "event", "trace_edge_span", "trace_span",
}
_RL006_DIRS = {"walks", "core", "extensions", "exec", "lint_fixtures"}


def _rl006_applies(path):
    return bool(_RL006_DIRS.intersection(path.split("/")))


@_register(
    "RL006",
    "untraced-hook",
    "loops driving join primitives must reach a governor checkpoint "
    "or trace hook every iteration, so their work shows up in traces",
)
def _check_rl006(module):
    if not _rl006_applies(module.path):
        return []
    findings = []
    for scope, node in _iter_scoped(
        module.tree, (ast.For, ast.AsyncFor, ast.While)
    ):
        names = _call_names(list(node.body))
        requiring = sorted(names & _RL006_REQUIRING)
        if not requiring or names & _RL006_SATISFYING:
            continue
        findings.append(Finding(
            module.path, node.lineno, "RL006", scope, requiring[0],
            f"loop drives {requiring} but no trace hook "
            "(`engine.trace_span`/`spec.trace_edge_span`) or governor "
            "checkpoint is reachable in its body — the work it does is "
            "invisible to traces and explain-analyze",
        ))
    return findings


def check_module(module):
    """Run every registered rule over one module."""
    findings: List[Finding] = []
    for rule in RULES.values():
        findings.extend(rule.checker(module))
    return findings
