"""The committed lint baseline: deliberate, justified exceptions.

Format — one entry per line, justification mandatory::

    # comment lines and blanks are ignored
    RL001:src/repro/foo.py:Class.method:attr  # why this one is deliberate

Keys are :attr:`repro.analysis.findings.Finding.key` values (no line
numbers, so entries survive unrelated edits).  An entry without a
``# justification`` trailer is a hard error: the whole point of the
baseline is that every suppressed finding carries its reason in the
diff that added it.
"""

from pathlib import Path

BASELINE_NAME = ".repro-lint-baseline"


class BaselineError(ValueError):
    """A malformed baseline file (bad key shape or missing reason)."""


def load_baseline(path):
    """Return {finding_key: justification}; {} if the file is absent."""
    path = Path(path)
    if not path.is_file():
        return {}
    entries = {}
    for number, raw in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        key, sep, reason = line.partition("#")
        key = key.strip()
        reason = reason.strip()
        if not sep or not reason:
            raise BaselineError(
                f"{path}:{number}: baseline entry '{key}' has no "
                "'# justification' — every deliberate exception must "
                "say why"
            )
        if key.count(":") != 3 or not key.startswith("RL"):
            raise BaselineError(
                f"{path}:{number}: malformed baseline key '{key}' "
                "(expected RULE:path:scope:symbol)"
            )
        entries[key] = reason
    return entries


def render_entry(finding, justification):
    return f"{finding.key}  # {justification}"
