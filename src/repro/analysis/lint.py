"""The invariant linter CLI: ``python -m repro.analysis.lint src tests``.

Discovery walks the given paths for ``*.py`` files, skipping
``__pycache__``, ``.git``, and ``lint_fixtures`` directories — the
fixture corpus under ``tests/lint_fixtures/`` exists to *violate* the
rules, so directory scans never see it, while explicitly passed file
paths are always linted (that is how ``tests/test_analysis_lint.py``
drives the fixtures).

Suppression is two-level:

* inline — ``# repro-lint: disable=RL002`` (comma-separate for several
  rules) on the flagged line silences that line;
* baseline — entries in ``.repro-lint-baseline`` (see
  :mod:`repro.analysis.baseline`) silence a finding repo-wide, with a
  mandatory one-line justification.

Exit codes: 0 clean, 1 findings, 2 usage/baseline error.  ``--strict``
is the CI mode: it additionally fails on *stale* baseline entries, so
the exception list can only shrink by being edited consciously.
"""

import argparse
import ast
import re
import sys
from pathlib import Path

from repro.analysis.baseline import (
    BASELINE_NAME, BaselineError, load_baseline,
)
from repro.analysis.rules import RULES, ModuleInfo, check_module

_SKIP_DIRS = {"__pycache__", ".git", "lint_fixtures", ".pytest_cache"}
_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Z0-9, ]+)"
)


def discover(paths):
    """Yield Path objects for every lintable ``*.py`` under ``paths``."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_file():
            yield entry  # explicit files are always linted
        elif entry.is_dir():
            for path in sorted(entry.rglob("*.py")):
                if _SKIP_DIRS.intersection(path.parts):
                    continue
                yield path
        else:
            raise FileNotFoundError(f"no such file or directory: {entry}")


def _parse_suppressions(source):
    """Return (line_no -> rule set, file-wide rule set)."""
    per_line, file_wide = {}, set()
    for number, line in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE.search(line)
        if not match:
            continue
        rules = {
            token.strip() for token in match.group(2).split(",")
            if token.strip()
        }
        if match.group(1) == "disable-file":
            file_wide |= rules
        else:
            per_line.setdefault(number, set()).update(rules)
    return per_line, file_wide


class LintRunner:
    """Programmatic entry point; the CLI and tests both go through it."""

    def __init__(self, root=None, baseline_path=None):
        self.root = Path(root) if root else Path.cwd()
        if baseline_path is None:
            baseline_path = self.root / BASELINE_NAME
        self.baseline = load_baseline(baseline_path)
        self.seen_keys = set()

    def _relpath(self, path):
        path = Path(path).resolve()
        try:
            return path.relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def lint_file(self, path):
        """All non-suppressed, non-baselined findings for one file."""
        source = Path(path).read_text(encoding="utf-8")
        relpath = self._relpath(path)
        try:
            tree = ast.parse(source, filename=relpath)
        except SyntaxError as exc:
            raise SystemExit(f"{relpath}: cannot parse: {exc}") from exc
        per_line, file_wide = _parse_suppressions(source)
        findings = []
        for finding in check_module(ModuleInfo(relpath, tree)):
            if finding.rule in file_wide:
                continue
            if finding.rule in per_line.get(finding.line, ()):
                continue
            self.seen_keys.add(finding.key)
            if finding.key in self.baseline:
                continue
            findings.append(finding)
        return findings

    def lint(self, paths):
        findings = []
        for path in discover(paths):
            findings.extend(self.lint_file(path))
        return sorted(findings)

    def stale_baseline_keys(self):
        """Baseline entries that matched nothing in the linted tree."""
        return sorted(set(self.baseline) - self.seen_keys)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST invariant linter for the repro concurrency and "
                    "cache-identity contracts (rules RL001-RL005; see "
                    "docs/INVARIANTS.md)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="CI mode: also fail on stale baseline entries",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: ./{BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline (show every finding)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.rule_id}  {rule.name}: {rule.summary}")
        return 0

    try:
        runner = LintRunner(
            baseline_path=(False if args.no_baseline else args.baseline)
            or None,
        )
        if args.no_baseline:
            runner.baseline = {}
        findings = runner.lint(args.paths)
    except BaselineError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    for finding in findings:
        print(finding.render())
    status = 0
    if findings:
        print(
            f"repro-lint: {len(findings)} finding(s) "
            f"(fix, `# repro-lint: disable=RULE`, or baseline with a "
            f"justification in {BASELINE_NAME})",
            file=sys.stderr,
        )
        status = 1
    if args.strict:
        stale = runner.stale_baseline_keys()
        if stale:
            for key in stale:
                print(f"repro-lint: stale baseline entry: {key}",
                      file=sys.stderr)
            status = status or 1
    return status


if __name__ == "__main__":
    sys.exit(main())
