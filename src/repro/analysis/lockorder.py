"""Runtime lock-order sanitizer: the dynamic half of ``repro.analysis``.

The linter proves methods hold *a* lock; it cannot prove the process
never holds two locks in conflicting orders.  This module can, for any
schedule a test actually runs: it wraps the ``threading.Lock``/``RLock``
objects owned by repro instances with tracing proxies, keeps a
per-thread stack of held locks, and records a directed edge
``A -> B`` every time a thread acquires ``B`` while holding ``A``.

Lock *identity* is the owning attribute's name (``"WalkCache._lock"``),
not the object — every instance of a class shares one node, so two
threads crossing two *different* ``WalkCache`` instances in opposite
orders still shows up, as a self-loop on ``WalkCache._lock``.
Re-entrant re-acquisition of the *same object* (the documented
``RLock`` pattern, e.g. an evict fault calling ``clear()`` from inside
``scores()``) records no edge.

A cycle in the name graph is a potential deadlock; a lock held while
calling into engine propagation outside the documented cold-path set is
a latency/deadlock hazard.  ``assert_clean()`` checks both.  The
``lock_sanitizer`` pytest fixture (``tests/conftest.py``) hands tests a
fresh instance; ``tests/test_service_concurrency.py`` asserts the
8-worker battery clean, and CI runs it with ``REPRO_LOCK_SANITIZER=1``.

This is intentionally *instance* instrumentation — globally patching
``threading.Lock`` would also trace the interpreter's own machinery
(queues, conditions) and drown the graph in stdlib noise.
"""

import threading

_LOCK_TYPES = (type(threading.Lock()), type(threading.RLock()))

#: Locks that are *documented* to be held across engine propagation:
#: both caches deliberately build a missing artifact under their lock so
#: each key is walked at most once per process (the cold-miss tradeoff
#: described in their class docstrings).
DEFAULT_PROPAGATION_ALLOWED = frozenset({
    "WalkCache._lock", "BoundPlanCache._lock",
})

#: Engine methods that constitute "propagation" for the held-across
#: check — the block/series kernels the governor meters.
PROPAGATION_METHODS = (
    "backward_block_step", "backward_onehot_step",
    "backward_first_hit_block", "backward_first_hit_series",
    "forward_first_hit_series", "reach_mass_series",
)


class LockOrderError(AssertionError):
    """The recorded schedule admits a deadlock or a disallowed hold."""


class _TracedLock:
    """Drop-in proxy for Lock/RLock that reports to the sanitizer."""

    __slots__ = ("inner", "name", "_sanitizer")

    def __init__(self, inner, name, sanitizer):
        self.inner = inner
        self.name = name
        self._sanitizer = sanitizer

    def acquire(self, blocking=True, timeout=-1):
        acquired = self.inner.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._note_acquire(self)
        return acquired

    def release(self):
        self._sanitizer._note_release(self)
        self.inner.release()

    def locked(self):
        return self.inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False

    def __repr__(self):
        return f"_TracedLock({self.name!r})"


class LockOrderSanitizer:
    """Records the lock-acquisition-order graph and judges it."""

    def __init__(self):
        self._held = threading.local()  # per-thread stack of _TracedLock
        self._graph_lock = threading.Lock()
        self._edges = {}  # (held_name, acquired_name) -> count
        self._propagation_holds = {}  # (lock_name, method) -> count

    # -- recording ---------------------------------------------------------

    def _stack(self):
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _note_acquire(self, traced):
        stack = self._stack()
        new_edges = [
            (held.name, traced.name)
            for held in stack if held.inner is not traced.inner
        ]
        stack.append(traced)
        if new_edges:
            with self._graph_lock:
                for edge in new_edges:
                    self._edges[edge] = self._edges.get(edge, 0) + 1

    def _note_release(self, traced):
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].inner is traced.inner:
                del stack[index]
                return

    def _note_propagation(self, method):
        names = self.held_names()
        if not names:
            return
        with self._graph_lock:
            for name in names:
                key = (name, method)
                self._propagation_holds[key] = (
                    self._propagation_holds.get(key, 0) + 1
                )

    # -- instrumentation ---------------------------------------------------

    def wrap(self, lock, name):
        """Wrap one lock object under the given identity."""
        if isinstance(lock, _TracedLock):
            return lock
        return _TracedLock(lock, name, self)

    def instrument(self, obj, name=None):
        """Replace every Lock/RLock attribute of ``obj`` (``__dict__``
        and ``__slots__`` alike) with a traced proxy; return the list of
        identities instrumented."""
        prefix = name or type(obj).__name__
        attrs = set(getattr(obj, "__dict__", ()) or ())
        for klass in type(obj).__mro__:
            attrs.update(getattr(klass, "__slots__", ()) or ())
        wrapped = []
        for attr in sorted(attrs):
            try:
                value = getattr(obj, attr)
            except AttributeError:
                continue
            if isinstance(value, _LOCK_TYPES):
                identity = f"{prefix}.{attr}"
                object.__setattr__(
                    obj, attr, self.wrap(value, identity)
                )
                wrapped.append(identity)
        return wrapped

    def instrument_engine(self, engine):
        """Instrument an engine's locks (and its stats object), and hook
        its propagation entry points so held-lock sets are recorded."""
        wrapped = self.instrument(engine)
        wrapped += self.instrument(engine.stats)
        for method_name in PROPAGATION_METHODS:
            original = getattr(engine, method_name, None)
            if original is None:
                continue

            def probe(*args, _original=original,
                      _method=method_name, **kwargs):
                self._note_propagation(_method)
                return _original(*args, **kwargs)

            setattr(engine, method_name, probe)
        return wrapped

    def instrument_service(self, service, measures=(None,)):
        """Instrument a QueryService: the service's own locks, its
        engine, and the cache tier of each given measure (tiers are
        created on first use, so naming them here pre-creates and
        instruments them before any worker runs)."""
        wrapped = self.instrument(service)
        wrapped += self.instrument_engine(service.engine)
        for measure in measures:
            walk_cache, bound_cache = service.cache_tier(measure)
            wrapped += self.instrument(walk_cache)
            wrapped += self.instrument(bound_cache)
        return wrapped

    # -- inspection --------------------------------------------------------

    def held_names(self):
        """Names of locks the *current thread* holds, outermost first."""
        return tuple(traced.name for traced in self._stack())

    def edges(self):
        with self._graph_lock:
            return dict(self._edges)

    def propagation_holds(self):
        with self._graph_lock:
            return dict(self._propagation_holds)

    def find_cycle(self):
        """A list of names forming a cycle in the order graph, or None.
        Self-loops (same identity, different objects) count."""
        with self._graph_lock:
            graph = {}
            for source, target in self._edges:
                graph.setdefault(source, set()).add(target)
        state = {}  # 0 visiting, 1 done
        path = []

        def visit(node):
            state[node] = 0
            path.append(node)
            for successor in sorted(graph.get(node, ())):
                if successor in state:
                    if state[successor] == 0:
                        return path[path.index(successor):] + [successor]
                    continue
                cycle = visit(successor)
                if cycle:
                    return cycle
            path.pop()
            state[node] = 1
            return None

        for node in sorted(graph):
            if node not in state:
                cycle = visit(node)
                if cycle:
                    return cycle
        return None

    def report(self):
        return {
            "edges": self.edges(),
            "cycle": self.find_cycle(),
            "propagation_holds": self.propagation_holds(),
        }

    def assert_clean(self, allowed=DEFAULT_PROPAGATION_ALLOWED):
        """Fail on any order cycle, or on a lock outside ``allowed``
        held across an engine propagation call."""
        cycle = self.find_cycle()
        if cycle:
            raise LockOrderError(
                "lock-order cycle (potential deadlock): "
                + " -> ".join(cycle)
            )
        offenders = sorted(
            f"{name} held across engine.{method} ({count}x)"
            for (name, method), count in self.propagation_holds().items()
            if name not in allowed
        )
        if offenders:
            raise LockOrderError(
                "locks held across engine propagation beyond the "
                "documented cold-path set: " + "; ".join(offenders)
            )
        return self.report()
