"""Correctness tooling: the invariant linter and the lock-order sanitizer.

PR 8 made the walk/bound substrate concurrent, and its safety rests on
conventions that no type checker sees: cache public methods hold their
re-entrant lock, engine counters go through the sharded
:class:`~repro.walks.engine.WalkEngineStats` API, every propagation loop
visits a governor checkpoint, cache identities are frozen hashable
dataclasses, and budget exceptions are converted — never swallowed.
This package turns those conventions into machine-checked contracts,
the same way the planner's cost model is pinned by decision goldens and
the bench schema by ``WALK_BENCH_SCHEMA_VERSION``:

* :mod:`repro.analysis.lint` — an AST linter with one rule per
  contract (RL001–RL005, registry in :mod:`repro.analysis.rules`),
  ``# repro-lint: disable=RULE`` suppressions, and a committed baseline
  (:mod:`repro.analysis.baseline`) for deliberate, justified exceptions.
  Run it as ``python -m repro.analysis.lint src tests --strict`` (or the
  ``repro-lint`` console script); CI fails on any non-baselined finding.
* :mod:`repro.analysis.lockorder` — a runtime sanitizer that wraps the
  repro classes' locks, records the per-thread acquisition-order graph
  while the concurrency battery runs, and fails on cycles (potential
  deadlocks) or on locks held across engine propagation beyond the
  documented cold-path exceptions.

``docs/INVARIANTS.md`` states each contract, why it exists, and how to
suppress; ``tests/test_docs_consistency.py`` pins the doc to the
registry so they cannot drift.
"""

__all__ = [
    "Finding",
    "LintRunner",
    "LockOrderError",
    "LockOrderSanitizer",
    "RULES",
    "Rule",
    "main",
]

_EXPORTS = {
    "Finding": ("repro.analysis.findings", "Finding"),
    "LintRunner": ("repro.analysis.lint", "LintRunner"),
    "LockOrderError": ("repro.analysis.lockorder", "LockOrderError"),
    "LockOrderSanitizer": ("repro.analysis.lockorder", "LockOrderSanitizer"),
    "RULES": ("repro.analysis.rules", "RULES"),
    "Rule": ("repro.analysis.rules", "Rule"),
    "main": ("repro.analysis.lint", "main"),
}


def __getattr__(name):
    # Lazy so `python -m repro.analysis.lint` does not import lint twice
    # (once as a package attribute, once as __main__ via runpy).
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
