"""Finding: one linter hit, with a stable identity for baselining.

A finding's :attr:`Finding.key` deliberately excludes the line number —
baselines keyed on ``RULE:path:scope:symbol`` survive unrelated edits
above the finding, so the committed baseline file does not churn every
time a docstring grows.  The line number is still carried for display.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one site."""

    path: str  # repo-relative, forward slashes
    line: int
    rule: str  # "RL001".."RL005"
    scope: str  # "Class.method", "function", or "<module>"
    symbol: str  # the attribute / primitive / class the rule anchors on
    message: str = field(compare=False)

    @property
    def key(self):
        """Stable identity used by baselines (no line number)."""
        return f"{self.rule}:{self.path}:{self.scope}:{self.symbol}"

    def render(self):
        return (
            f"{self.path}:{self.line}: {self.rule} [{self.scope}] "
            f"{self.message}"
        )
