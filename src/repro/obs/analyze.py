"""Explain-analyze: the planner's predictions vs. one traced execution.

The cost-based planner (PR 7) renders an
:class:`~repro.planner.plan.ExplainedPlan` with *estimated* per-edge
propagation steps.  ``analyze`` closes the loop ROADMAP item 1 names:
run the query under a :class:`~repro.obs.trace.QueryTracer`, then
attribute the trace's per-edge ``edge`` and ``refill`` spans back to the
plan rows — predicted vs. actual ``propagation_steps``, the cache hits
the estimate assumed vs. the hits that happened, and the per-edge
resumable-block byte high-water mark.

:class:`ExplainedPlan` is a frozen value object, so analyze wraps it:
:class:`AnalyzedPlan` pairs the plan with one :class:`EdgeActuals` row
per build-order position (sourced entirely from the trace, never from
re-instrumenting the joins) plus the answers the traced run produced —
callers can check bit-identity against an untraced run directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.obs.trace import TraceSpan


@dataclass(frozen=True)
class EdgeActuals:
    """Observed work for one query edge (initial build + all refills)."""

    edge_index: int
    propagation_steps: int
    walk_cache_hits: int
    walk_cache_misses: int
    bound_cache_hits: int
    peak_block_bytes: int
    refills: int
    elapsed_s: float


@dataclass(frozen=True)
class AnalyzedPlan:
    """An :class:`ExplainedPlan` annotated with traced actuals.

    ``actuals`` is ordered like ``plan.build_order``; ``answers`` are
    the traced run's results (the trace layer must never change them —
    the overhead bench asserts bit-identity against untraced runs).
    """

    plan: object  # repro.planner.plan.ExplainedPlan
    actuals: Tuple[EdgeActuals, ...]
    answers: tuple
    elapsed_s: float
    trace: Optional[TraceSpan] = None

    @property
    def total_actual_steps(self) -> int:
        """Propagation steps observed across every edge."""
        return sum(a.propagation_steps for a in self.actuals)

    def actuals_for(self, edge_index: int) -> EdgeActuals:
        """The actuals row for query edge ``edge_index``."""
        for row in self.actuals:
            if row.edge_index == edge_index:
                return row
        raise KeyError(f"no actuals for edge {edge_index}")

    def format(self) -> str:
        """The plan rendering interleaved with per-edge actuals."""
        plan = self.plan
        lines = plan.format().splitlines()
        out: List[str] = []
        by_edge = {row.edge_index: row for row in self.actuals}
        for line in lines:
            out.append(line)
            edge = _edge_of_plan_line(line, plan)
            if edge is None or edge not in by_edge:
                continue
            row = by_edge[edge]
            estimated = plan.edges[edge].estimated_steps
            ratio = (
                row.propagation_steps / estimated if estimated > 0
                else float("inf") if row.propagation_steps else 1.0
            )
            out.append(
                f"      actual: steps={row.propagation_steps} "
                f"(est {estimated:.0f}, {ratio:.2f}x) "
                f"walk_hits={row.walk_cache_hits} "
                f"bound_hits={row.bound_cache_hits} "
                f"peak_block_bytes={row.peak_block_bytes} "
                f"refills={row.refills} "
                f"elapsed={row.elapsed_s * 1e3:.1f}ms"
            )
        out.append(
            f"analyze: total actual steps={self.total_actual_steps} "
            f"(est {plan.total_estimated_steps:.0f}) "
            f"answers={len(self.answers)} "
            f"elapsed={self.elapsed_s:.3f}s"
        )
        return "\n".join(out)

    def to_json(self) -> dict:
        """Machine-readable form for ``--json`` CLI output."""
        return {
            "plan": self.plan.to_json(),
            "actuals": [
                {
                    "edge_index": row.edge_index,
                    "propagation_steps": row.propagation_steps,
                    "estimated_steps":
                        self.plan.edges[row.edge_index].estimated_steps,
                    "walk_cache_hits": row.walk_cache_hits,
                    "walk_cache_misses": row.walk_cache_misses,
                    "bound_cache_hits": row.bound_cache_hits,
                    "peak_block_bytes": row.peak_block_bytes,
                    "refills": row.refills,
                    "elapsed_s": row.elapsed_s,
                }
                for row in self.actuals
            ],
            "total_actual_steps": self.total_actual_steps,
            "elapsed_s": self.elapsed_s,
        }


def _edge_of_plan_line(line: str, plan) -> Optional[int]:
    """The edge index a ``format()`` row describes (None for headers)."""
    parts = line.split()
    # EdgePlan rows render as "  {pos}. edge {e} {name} ...".
    if len(parts) >= 3 and parts[0].endswith(".") and parts[1] == "edge":
        try:
            edge = int(parts[2])
        except ValueError:
            return None
        if 0 <= edge < len(plan.edges):
            return edge
    return None


def edge_actuals_from_trace(root: TraceSpan, plan) -> Tuple[EdgeActuals, ...]:
    """Attribute a traced run's work back to the plan's edges.

    For each edge in ``plan.build_order``, sums the ``edge`` span (the
    initial build) and every ``refill`` span carrying the same
    ``edge`` attribute.  Span counters are thread-local stat deltas, so
    nested work (rounds, cache triage) is included exactly once.
    """
    rows: List[EdgeActuals] = []
    for edge in plan.build_order:
        spans = root.find("edge", edge=edge)
        refills = root.find("refill", edge=edge)
        all_spans = spans + refills
        if not all_spans:
            rows.append(EdgeActuals(edge, 0, 0, 0, 0, 0, 0, 0.0))
            continue

        def total(counter: str) -> int:
            return sum(s.counters.get(counter, 0) for s in all_spans)

        rows.append(EdgeActuals(
            edge_index=edge,
            propagation_steps=total("propagation_steps"),
            walk_cache_hits=total("walk_cache_hits"),
            walk_cache_misses=total("walk_cache_misses"),
            bound_cache_hits=total("bound_cache_hits"),
            peak_block_bytes=max(
                s.subtree_peak_bytes() for s in all_spans
            ),
            refills=len(refills),
            elapsed_s=sum(s.elapsed_s for s in all_spans),
        ))
    return tuple(rows)
