"""Observability layer: query tracing, unified metrics, explain-analyze.

Three pieces (see ``docs/OBSERVABILITY.md`` for the full taxonomy):

* :class:`QueryTracer` / :class:`TraceSpan` — structured spans emitted
  from the cooperative hook points the governor already threads through
  the engine, rounds, joins, executors, and service; disabled tracing
  costs one thread-local attribute read per hook.
* :class:`MetricsRegistry` — one named, labeled snapshot surface over
  engine/cache/service counters, with JSON-lines and Prometheus-text
  exporters.
* :class:`AnalyzedPlan` — an :class:`~repro.planner.plan.ExplainedPlan`
  annotated with per-edge actuals sourced from a trace
  (``api.explain_multi_way_plan(..., analyze=True)`` /
  ``--explain analyze``).
"""

from repro.obs.analyze import (
    AnalyzedPlan,
    EdgeActuals,
    edge_actuals_from_trace,
)
from repro.obs.metrics import (
    METRIC_NAMES,
    MetricSample,
    MetricsRegistry,
    render_jsonl,
    render_prometheus,
)
from repro.obs.trace import (
    NULL_SPAN,
    SPAN_KINDS,
    TRACE_COUNTERS,
    TRACE_SCHEMA,
    QueryTracer,
    TraceSpan,
    validate_trace_dict,
    write_trace_jsonl,
)

__all__ = [
    "AnalyzedPlan",
    "EdgeActuals",
    "edge_actuals_from_trace",
    "METRIC_NAMES",
    "MetricSample",
    "MetricsRegistry",
    "render_jsonl",
    "render_prometheus",
    "NULL_SPAN",
    "SPAN_KINDS",
    "TRACE_COUNTERS",
    "TRACE_SCHEMA",
    "QueryTracer",
    "TraceSpan",
    "validate_trace_dict",
    "write_trace_jsonl",
]
