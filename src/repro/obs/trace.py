"""Structured query tracing: spans + event counters, near-zero when off.

One :class:`QueryTracer` instance is shared by every layer of a traced
query (engine, rounds, joins, executors, service workers).  The design
follows the governor's cooperative-checkpoint shape:

* **Spans** nest per thread (``query -> plan -> edge -> level ->
  walk_level`` …).  A span is opened through
  :meth:`~repro.walks.engine.WalkEngine.trace_span` (or
  :meth:`QueryTracer.span` directly) as a context manager; when an
  engine-stats object is attached, the span records this *thread's*
  delta of the propagation/cache counters between open and close — the
  same :meth:`~repro.walks.engine.WalkEngineStats.local` mechanism the
  governor's step metering uses, so a span's counters are never
  polluted by concurrent queries on a shared engine.
* **Events** are cheap per-site counters on the innermost open span:
  every ``engine.checkpoint(site)`` forwards one event when a tracer is
  installed, so the governor's checkpoint taxonomy (``step`` / ``block``
  / ``alloc`` / ``round`` / ``edge`` / ``cache``) doubles as the trace
  vocabulary.  ``alloc`` events carry the predicted block size, giving
  each span a per-span ``peak_block_bytes`` high-water mark.
* **Disabled cost**: without a tracer installed the only added work per
  hook is one thread-local attribute read (``engine.tracer is None``)
  plus, for span sites, returning the shared :data:`NULL_SPAN`
  singleton.  The bench ``observability`` section bounds this under 2%
  of the pressured-star runtime.
* **Isolation**: exporters never raise into query code —
  :meth:`QueryTracer.write_jsonl` catches everything and counts the
  failure in :attr:`QueryTracer.export_errors`.

Completed root spans accumulate in a bounded ring (newest kept), each
serialisable via :meth:`TraceSpan.to_dict` under
:data:`TRACE_SCHEMA` so the CI smoke step can validate traces
structurally.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional

from repro.walks.engine import NULL_SPAN

#: Schema tag stamped on every exported trace line.
TRACE_SCHEMA = "repro-trace-v1"

#: Engine-stat fields captured as per-span thread-local deltas.
TRACE_COUNTERS = (
    "propagation_steps",
    "sparse_products",
    "bound_cache_hits",
    "plan_cache_hits",
    "extensions",
    "steps_saved",
    "checkpoints",
    "budget_stops",
)

#: The span vocabulary, outermost to innermost.  ``service`` wraps one
#: worker-executed request (queue wait recorded as an attribute),
#: ``query`` one api-level join call, ``plan`` the plan resolution,
#: ``edge`` one query edge's initial build, ``refill`` one rank-join
#: refill against an edge, ``join`` one two-way algorithm run, ``level``
#: one iterative-deepening round, ``walk_level`` one rounds-layer pass,
#: ``rankjoin`` the PBRJ drive.
SPAN_KINDS = (
    "service", "query", "plan", "edge", "refill", "join", "level",
    "walk_level", "rankjoin",
)


# NULL_SPAN (the shared no-op span) is defined on the engine side —
# see repro.walks.engine — and re-exported here as the canonical name.


class TraceSpan:
    """One timed, counted unit of query work.

    Use as a context manager (via :meth:`QueryTracer.span`); nesting is
    per thread and enforced — closing a span that is not the innermost
    open one raises, and the tracer can assert every span was closed.
    """

    __slots__ = (
        "kind", "name", "attrs", "t_start", "elapsed_s", "events",
        "counters", "peak_block_bytes", "children",
        "_tracer", "_stats", "_base", "_extra", "_extra_base",
    )

    def __init__(self, tracer: "QueryTracer", kind: str, name: str,
                 attrs: dict, stats=None, extra=None) -> None:
        self.kind = kind
        self.name = name
        self.attrs = attrs
        self.t_start = 0.0
        self.elapsed_s = 0.0
        self.events: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}
        self.peak_block_bytes = 0
        self.children: List["TraceSpan"] = []
        self._tracer = tracer
        self._stats = stats
        self._base = None
        # ``extra`` is a callable returning a dict of additional counter
        # values to delta across the span (e.g. a walk cache's global
        # hit count; exact when the query is single-threaded, advisory
        # under concurrent sharing).
        self._extra = extra
        self._extra_base = None

    def __enter__(self) -> "TraceSpan":
        self._tracer._push(self)
        if self._stats is not None:
            local = self._stats.local
            self._base = tuple(local(c) for c in TRACE_COUNTERS)
        if self._extra is not None:
            self._extra_base = dict(self._extra())
        self.t_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed_s = time.perf_counter() - self.t_start
        if self._base is not None:
            local = self._stats.local
            self.counters = {
                c: local(c) - base
                for c, base in zip(TRACE_COUNTERS, self._base)
            }
        if self._extra_base is not None:
            for name, value in self._extra().items():
                self.counters[name] = value - self._extra_base.get(name, 0)
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)
        return False  # never swallow the query's exception

    def set(self, **attrs) -> None:
        """Attach attributes to an open (or just-closed) span."""
        self.attrs.update(attrs)

    # -- aggregation over the subtree ----------------------------------

    def walk(self):
        """Yield this span and every descendant (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def subtree_events(self) -> Dict[str, int]:
        """Event counts summed over this span and its descendants."""
        totals: Dict[str, int] = {}
        for span in self.walk():
            for site, count in span.events.items():
                totals[site] = totals.get(site, 0) + count
        return totals

    def subtree_peak_bytes(self) -> int:
        """Max per-span allocation high-water mark in the subtree."""
        return max(span.peak_block_bytes for span in self.walk())

    def find(self, kind: str, **attrs) -> List["TraceSpan"]:
        """All spans in the subtree with ``kind`` and matching attrs."""
        return [
            span for span in self.walk()
            if span.kind == kind
            and all(span.attrs.get(k) == v for k, v in attrs.items())
        ]

    def to_dict(self) -> dict:
        """JSON-serialisable form (the exported trace schema)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "attrs": dict(self.attrs),
            "t_start": self.t_start,
            "elapsed_s": self.elapsed_s,
            "events": dict(self.events),
            "counters": dict(self.counters),
            "peak_block_bytes": self.peak_block_bytes,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceSpan({self.kind!r}, {self.name!r}, "
            f"{self.elapsed_s * 1e3:.2f} ms, {len(self.children)} children)"
        )


class QueryTracer:
    """Collects spans and events for traced queries; thread-safe.

    One tracer may serve many threads concurrently (the service installs
    one per worker request): span stacks are per-thread, completed root
    spans land in a bounded shared ring, and the span-less counters
    (admissions, rejections) are lock-protected.
    """

    def __init__(self, max_traces: int = 256) -> None:
        if max_traces < 1:
            raise ValueError(f"max_traces must be >= 1, got {max_traces}")
        self._max_traces = max_traces
        self._lock = threading.Lock()
        self._local = threading.local()
        self._stacks: Dict[int, list] = {}
        self._traces: List[TraceSpan] = []
        self.dropped_traces = 0
        self.export_errors = 0
        self.counts: Dict[str, int] = {}

    # -- span lifecycle -------------------------------------------------

    def span(self, kind: str, name: str = "", stats=None, extra=None,
             **attrs) -> TraceSpan:
        """A new (not yet entered) span; use as a context manager."""
        return TraceSpan(self, kind, name, attrs, stats=stats, extra=extra)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
            with self._lock:
                self._stacks[threading.get_ident()] = stack
        return stack

    def _push(self, span: TraceSpan) -> None:
        self._stack().append(span)

    def _pop(self, span: TraceSpan) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise RuntimeError(
                f"trace span {span.kind}/{span.name} closed out of order"
            )
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._traces.append(span)
                if len(self._traces) > self._max_traces:
                    del self._traces[0]
                    self.dropped_traces += 1

    # -- hot-path hooks -------------------------------------------------

    def event(self, site: str, nbytes: Optional[int] = None) -> None:
        """One checkpoint-site event on the innermost open span."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return
        span = stack[-1]
        span.events[site] = span.events.get(site, 0) + 1
        if nbytes is not None and nbytes > span.peak_block_bytes:
            span.peak_block_bytes = nbytes

    def count(self, name: str, amount: int = 1) -> None:
        """Span-less tracer counter (admission outcomes etc.)."""
        with self._lock:
            self.counts[name] = self.counts.get(name, 0) + amount

    # -- inspection -----------------------------------------------------

    @property
    def traces(self) -> List[TraceSpan]:
        """Completed root spans, oldest first (bounded ring)."""
        with self._lock:
            return list(self._traces)

    def pop_traces(self) -> List[TraceSpan]:
        """Drain and return the completed root spans."""
        with self._lock:
            drained = list(self._traces)
            self._traces.clear()
        return drained

    def open_spans(self) -> int:
        """Spans currently open across every thread."""
        with self._lock:
            return sum(len(stack) for stack in self._stacks.values())

    def assert_all_closed(self) -> None:
        """Raise if any thread still has an open span."""
        open_count = self.open_spans()
        if open_count:
            raise AssertionError(f"{open_count} trace spans left open")

    # -- export (must never raise into query code) ----------------------

    def write_jsonl(self, path: str, drain: bool = True) -> int:
        """Append completed traces to ``path``, one JSON line each.

        Returns the number of traces written; on any export failure the
        queries are unaffected — the error is swallowed and counted in
        :attr:`export_errors`.
        """
        spans = self.pop_traces() if drain else self.traces
        written = write_trace_jsonl(path, spans)
        if written != len(spans):
            with self._lock:
                self.export_errors += 1
        return written


def write_trace_jsonl(path: str, spans) -> int:
    """Append root spans to ``path``, one schema-tagged JSON line each.

    Never raises (an unwritable trace file must not affect queries);
    returns the number of spans written — 0 on failure.
    """
    try:
        with open(path, "a", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(
                    {"schema": TRACE_SCHEMA, "span": span.to_dict()},
                    sort_keys=True,
                ))
                fh.write("\n")
    except Exception:
        return 0
    return len(spans)


def validate_trace_dict(payload: dict) -> List[str]:
    """Structural schema check for one exported trace line.

    Returns a list of problems (empty when valid) — the CI traced-query
    smoke step runs this over every ``--trace-out`` line.
    """
    problems: List[str] = []
    if payload.get("schema") != TRACE_SCHEMA:
        problems.append(f"schema != {TRACE_SCHEMA!r}")
        return problems

    def check(span: dict, path: str) -> None:
        for key in ("kind", "name", "attrs", "t_start", "elapsed_s",
                    "events", "counters", "peak_block_bytes", "children"):
            if key not in span:
                problems.append(f"{path}: missing {key!r}")
                return
        if span["kind"] not in SPAN_KINDS:
            problems.append(f"{path}: unknown kind {span['kind']!r}")
        if span["elapsed_s"] < 0:
            problems.append(f"{path}: negative elapsed_s")
        for name, value in span["events"].items():
            if not isinstance(value, int) or value < 0:
                problems.append(f"{path}: bad event count {name}={value!r}")
        for child in span["children"]:
            check(child, f"{path}/{child.get('kind', '?')}")

    span = payload.get("span")
    if not isinstance(span, dict):
        problems.append("span is not an object")
    else:
        check(span, span.get("kind", "?"))
    return problems
