"""The unified metrics registry: one named, labeled snapshot surface.

Telemetry was fragmented across four counter families —
:class:`~repro.walks.engine.WalkEngineStats` (sharded engine counters),
:class:`~repro.walks.cache.WalkCacheStats` /
:class:`~repro.bounds_cache.cache.BoundCacheStats` (per-tier cache
accounting), and the service's frozen
:class:`~repro.service.stats.ServiceStats`.  A
:class:`MetricsRegistry` registers live sources from any of them and
:meth:`~MetricsRegistry.collect` renders one consistent list of
:class:`MetricSample` rows, exportable as JSON lines
(:func:`render_jsonl`) or Prometheus text (:func:`render_prometheus`).

Metric names are *generated* from the underlying counter fields (so a
new engine counter or ``ServiceStats`` field becomes a metric in the
same diff) and frozen into :data:`METRIC_NAMES`;
``tests/test_docs_consistency.py`` asserts the names documented in
``docs/OBSERVABILITY.md`` are exactly this set, so docs and code cannot
drift.

Exporter failures never propagate into query code:
:meth:`MetricsRegistry.write_snapshot` swallows and counts them.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Callable, Dict, List, Tuple

from repro.walks.engine import STAT_COUNTERS, STAT_PEAKS

#: WalkCacheStats counter fields surfaced per registered walk cache.
WALK_CACHE_FIELDS = ("hits", "misses", "extensions", "steps_saved",
                     "evictions")

#: BoundCacheStats counter fields surfaced per registered bound cache.
BOUND_CACHE_FIELDS = ("y_hits", "y_builds", "plan_hits", "plan_builds",
                      "x_hits", "x_builds", "evictions")

#: ServiceStats fields that are point-in-time gauges (everything else
#: numeric is a monotone counter).
SERVICE_GAUGES = ("in_flight", "qps", "p50_ms", "p99_ms",
                  "walk_cache_hit_rate")

_SERVICE_FIELDS = (
    "submitted", "completed", "exact", "partial", "rejected", "errors",
    "in_flight", "qps", "p50_ms", "p99_ms", "walk_cache_hits",
    "walk_cache_misses", "walk_cache_hit_rate", "bound_cache_hits",
    "plan_cache_hits", "budget_stops",
)


def _engine_metric(field: str) -> str:
    suffix = "" if field in STAT_PEAKS else "_total"
    return f"repro_engine_{field}{suffix}"


#: Every metric name the registry can emit — the docs-drift contract.
METRIC_NAMES = frozenset(
    [_engine_metric(f) for f in STAT_COUNTERS + STAT_PEAKS]
    + [f"repro_walk_cache_{f}_total" for f in WALK_CACHE_FIELDS]
    + [f"repro_bound_cache_{f}_total" for f in BOUND_CACHE_FIELDS]
    + [
        f"repro_service_{f}" + ("" if f in SERVICE_GAUGES else "_total")
        for f in _SERVICE_FIELDS
    ]
)


@dataclasses.dataclass(frozen=True)
class MetricSample:
    """One named, labeled measurement at collection time."""

    name: str
    value: float
    labels: Tuple[Tuple[str, str], ...] = ()
    kind: str = "counter"  # "counter" (monotone) or "gauge"

    def label_dict(self) -> Dict[str, str]:
        """The labels as a plain dict."""
        return dict(self.labels)


def _label_tuple(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Live metric sources, snapshotted on demand.

    Sources are registered once and read at every :meth:`collect`; the
    registry holds references, never copies, so snapshots always show
    the current counters.  Collection is lock-free by design — each
    underlying stats object does its own consistent read (the engine
    snapshot merges shards under its lock; cache stats are plain ints).
    """

    def __init__(self) -> None:
        self._sources: List[Callable[[], List[MetricSample]]] = []
        self.export_errors = 0

    def register_source(
        self, source: Callable[[], List[MetricSample]]
    ) -> None:
        """Register a raw sample-producing callable."""
        self._sources.append(source)

    def register_engine(self, stats, **labels) -> None:
        """Surface a :class:`WalkEngineStats` (counters + peak gauge)."""
        label_t = _label_tuple(labels)

        def source() -> List[MetricSample]:
            merged = stats.snapshot()
            return [
                MetricSample(
                    _engine_metric(field),
                    float(merged[field]),
                    label_t,
                    kind="gauge" if field in STAT_PEAKS else "counter",
                )
                for field in STAT_COUNTERS + STAT_PEAKS
            ]

        self._sources.append(source)

    def register_walk_cache(self, cache, **labels) -> None:
        """Surface a :class:`WalkCache`'s hit/miss/spill counters."""
        label_t = _label_tuple(labels)

        def source() -> List[MetricSample]:
            stats = cache.stats
            return [
                MetricSample(
                    f"repro_walk_cache_{field}_total",
                    float(getattr(stats, field)),
                    label_t,
                )
                for field in WALK_CACHE_FIELDS
            ]

        self._sources.append(source)

    def register_bound_cache(self, cache, **labels) -> None:
        """Surface a :class:`BoundPlanCache`'s build/hit counters."""
        label_t = _label_tuple(labels)

        def source() -> List[MetricSample]:
            stats = cache.stats
            return [
                MetricSample(
                    f"repro_bound_cache_{field}_total",
                    float(getattr(stats, field)),
                    label_t,
                )
                for field in BOUND_CACHE_FIELDS
            ]

        self._sources.append(source)

    def register_service(self, service, **labels) -> None:
        """Surface a :class:`QueryService` via its ``stats()`` snapshot."""
        label_t = _label_tuple(labels)

        def source() -> List[MetricSample]:
            snapshot = service.stats()
            samples = []
            for field in _SERVICE_FIELDS:
                gauge = field in SERVICE_GAUGES
                samples.append(MetricSample(
                    f"repro_service_{field}" + ("" if gauge else "_total"),
                    float(getattr(snapshot, field)),
                    label_t,
                    kind="gauge" if gauge else "counter",
                ))
            return samples

        self._sources.append(source)

    def collect(self) -> List[MetricSample]:
        """One snapshot across every registered source."""
        samples: List[MetricSample] = []
        for source in self._sources:
            samples.extend(source())
        return samples

    def write_snapshot(self, path: str) -> bool:
        """Append one snapshot to ``path`` (never raises).

        The format follows the extension: ``.prom`` gets a full
        Prometheus text exposition (truncating, as scrape endpoints
        overwrite), anything else appends one JSON line.  Returns
        ``True`` on success; failures are counted in
        :attr:`export_errors` and swallowed — an unwritable metrics
        file must never change query results.
        """
        try:
            samples = self.collect()
            if path.endswith(".prom"):
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(render_prometheus(samples))
            else:
                with open(path, "a", encoding="utf-8") as fh:
                    fh.write(render_jsonl(samples))
                    fh.write("\n")
        except Exception:
            self.export_errors += 1
            return False
        return True


def render_jsonl(samples: List[MetricSample]) -> str:
    """One JSON object per snapshot: ``{"ts": ..., "metrics": [...]}``."""
    return json.dumps(
        {
            "ts": time.time(),
            "metrics": [
                {
                    "name": s.name,
                    "value": s.value,
                    "labels": s.label_dict(),
                    "kind": s.kind,
                }
                for s in samples
            ],
        },
        sort_keys=True,
    )


def render_prometheus(samples: List[MetricSample]) -> str:
    """Prometheus text exposition format (one ``# TYPE`` per name)."""
    lines: List[str] = []
    seen_types = set()
    for sample in samples:
        if sample.name not in seen_types:
            seen_types.add(sample.name)
            lines.append(f"# TYPE {sample.name} {sample.kind}")
        if sample.labels:
            label_text = ",".join(
                f'{k}="{v}"' for k, v in sample.labels
            )
            lines.append(f"{sample.name}{{{label_text}}} {sample.value:g}")
        else:
            lines.append(f"{sample.name} {sample.value:g}")
    return "\n".join(lines) + "\n"
