"""SimRank (Jeh & Widom [21]) and a SimRank 2-way join.

The second measure named in the paper's future-work list.  SimRank is
pairwise-recursive —

``s(a, b) = C / (|I_a| |I_b|) * sum_{x in I_a} sum_{y in I_b} s(x, y)``

with ``s(a, a) = 1`` — so unlike DHT/PPR there is no single-propagation
backward kernel; the standard computation iterates the full similarity
matrix to a fixed point.  We provide the dense iterative solver (small
graphs; the scale is quadratic by nature) plus a join wrapper with the
same result shape as the DHT joins, which is exactly what "extending
the n-way join to SimRank" needs as its scoring oracle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.nway.aggregates import MIN, Aggregate
from repro.core.nway.candidates import CandidateAnswer
from repro.core.nway.query_graph import QueryGraph
from repro.core.two_way.base import ScoredPair, sort_pairs, top_k_pairs
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError, validate_node_set
from repro.rankjoin.inputs import MaterializedInput
from repro.rankjoin.pbrj import PBRJ


def simrank_matrix(
    graph: Graph,
    decay: float = 0.8,
    iterations: int = 10,
    weighted: bool = True,
) -> np.ndarray:
    """All-pairs SimRank by fixed-point iteration (dense; small graphs).

    Uses the *evidence-weighted* in-neighbour formulation: with ``W``
    the column-normalised (in-edge) weight matrix,
    ``S <- decay * W^T S W`` with the diagonal reset to 1 each sweep.
    ``iterations`` sweeps give an additive error of at most
    ``decay^(iterations+1)`` (the standard geometric argument).
    """
    if not (0.0 < decay < 1.0):
        raise GraphValidationError(f"decay must be in (0, 1), got {decay}")
    if iterations < 1:
        raise GraphValidationError(f"iterations must be >= 1, got {iterations}")
    n = graph.num_nodes
    if n == 0:
        return np.zeros((0, 0))
    # Column-normalised in-neighbour weights: W[x, a] = w_xa / sum_in(a).
    w = np.zeros((n, n), dtype=np.float64)
    for a in graph.nodes():
        incoming = graph.in_neighbors(a)
        if not incoming:
            continue
        total = sum(incoming.values()) if weighted else float(len(incoming))
        for x, weight in incoming.items():
            w[x, a] = (weight if weighted else 1.0) / total
    similarity = np.eye(n)
    for _ in range(iterations):
        similarity = decay * (w.T @ similarity @ w)
        np.fill_diagonal(similarity, 1.0)
    return similarity


class SimRankJoin:
    """Top-``k`` 2-way join under SimRank scores."""

    name = "SimRank-join"

    def __init__(
        self,
        graph: Graph,
        left: Sequence[int],
        right: Sequence[int],
        decay: float = 0.8,
        iterations: int = 10,
        matrix: Optional[np.ndarray] = None,
    ) -> None:
        self._left = validate_node_set(graph.num_nodes, left, "left node set")
        self._right = validate_node_set(graph.num_nodes, right, "right node set")
        self._matrix = (
            matrix
            if matrix is not None
            else simrank_matrix(graph, decay=decay, iterations=iterations)
        )
        if self._matrix.shape != (graph.num_nodes, graph.num_nodes):
            raise GraphValidationError("similarity matrix shape mismatch")

    def all_pairs(self) -> List[ScoredPair]:
        """Score every candidate pair (unsorted)."""
        return [
            ScoredPair(p, q, float(self._matrix[p, q]))
            for p in self._left
            for q in self._right
            if p != q
        ]

    def top_k(self, k: int) -> List[ScoredPair]:
        """Top-``k`` pairs by SimRank."""
        if k == 0:
            return []
        return top_k_pairs(self.all_pairs(), k)


def simrank_multi_way_join(
    graph: Graph,
    query_graph: QueryGraph,
    node_sets: Sequence[Sequence[int]],
    k: int,
    decay: float = 0.8,
    iterations: int = 10,
    aggregate: Aggregate = MIN,
) -> List[CandidateAnswer]:
    """Top-``k`` n-way join under SimRank (AP strategy + PBRJ).

    The similarity matrix is computed once and shared by every query
    edge.
    """
    if len(node_sets) != query_graph.num_vertices:
        raise GraphValidationError(
            f"{len(node_sets)} node sets for {query_graph.num_vertices} vertices"
        )
    matrix = simrank_matrix(graph, decay=decay, iterations=iterations)
    inputs = []
    for e, (i, j) in enumerate(query_graph.edges):
        join = SimRankJoin(graph, node_sets[i], node_sets[j], matrix=matrix)
        inputs.append(
            MaterializedInput(
                sort_pairs(join.all_pairs()), name=query_graph.edge_name(e)
            )
        )
    return PBRJ(query_graph, aggregate, inputs, k).run()
