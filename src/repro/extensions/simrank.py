"""SimRank (Jeh & Widom [21]): solver, measure, and joins.

The second measure named in the paper's future-work list.  SimRank is
pairwise-recursive —

``s(a, b) = C / (|I_a| |I_b|) * sum_{x in I_a} sum_{y in I_b} s(x, y)``

with ``s(a, a) = 1`` — so unlike DHT/PPR there is no single-propagation
backward kernel; the standard computation iterates the full similarity
matrix to a fixed point.  We provide the dense iterative solver (small
graphs; the scale is quadratic by nature), a join wrapper with the same
result shape as the DHT joins (the scoring oracle), and
:class:`SimRankMeasure` — the
:class:`repro.extensions.measures.SeriesMeasure` instantiation that
plugs SimRank into the measure-generic 2-way and n-way joins of
:mod:`repro.extensions.series_join`.

The measure's "resumable walk state" is the matrix iterate itself: the
fixed-point sweep is a recurrence in the iteration count, so the
measure memoises iterates per level and *extends* the deepest one
instead of restarting — the matrix analogue of
:class:`~repro.walks.state.WalkState`, shared by every query edge that
scores through the same measure instance.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.nway.aggregates import MIN, Aggregate
from repro.core.nway.candidates import CandidateAnswer
from repro.core.nway.query_graph import QueryGraph
from repro.core.two_way.base import ScoredPair, sort_pairs, top_k_pairs
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError, validate_node_set
from repro.rankjoin.inputs import MaterializedInput
from repro.rankjoin.pbrj import PBRJ
from repro.walks.engine import WalkEngine


def _in_weight_matrix_reference(graph: Graph, weighted: bool) -> np.ndarray:
    """The seed per-entry dict loop building ``W[x, a] = w_xa / sum_in(a)``.

    Kept verbatim as the bit-identity oracle for the vectorised
    :func:`_in_weight_matrix` (see the regression test in
    ``tests/test_extensions.py``); production code never calls it.
    """
    n = graph.num_nodes
    w = np.zeros((n, n), dtype=np.float64)
    for a in graph.nodes():
        incoming = graph.in_neighbors(a)
        if not incoming:
            continue
        total = sum(incoming.values()) if weighted else float(len(incoming))
        for x, weight in incoming.items():
            w[x, a] = (weight if weighted else 1.0) / total
    return w


def _in_weight_matrix(graph: Graph, weighted: bool) -> np.ndarray:
    """Column-normalised in-neighbour weights: ``W[x, a] = w_xa / sum_in(a)``.

    Vectorised: one pass extracts the in-edge arrays **in each column's
    adjacency insertion order** — ``np.bincount`` then accumulates every
    column total in exactly the order the seed loop's running Python
    ``sum`` visited it, so the result is bit-identical on any graph, not
    just where summation order is benign — and NumPy does the
    normalising division and the dense scatter, replacing the seed's
    per-entry pure-Python dict loop
    (:func:`_in_weight_matrix_reference`, kept as the bit-identity
    oracle).  Shared by :func:`simrank_matrix` and
    :class:`SimRankMeasure` so the measure's iterates are bit-identical
    to the oracle solver's.
    """
    n = graph.num_nodes
    w = np.zeros((n, n), dtype=np.float64)
    m = graph.num_edges
    if n == 0 or m == 0:
        return w
    rows = np.empty(m, dtype=np.int64)
    cols = np.empty(m, dtype=np.int64)
    vals = np.empty(m, dtype=np.float64)
    i = 0
    for a in graph.nodes():
        for x, weight in graph.in_neighbors(a).items():
            rows[i], cols[i], vals[i] = x, a, weight
            i += 1
    if weighted:
        totals = np.bincount(cols, weights=vals, minlength=n)
        w[rows, cols] = vals / totals[cols]
    else:
        counts = np.bincount(cols, minlength=n).astype(np.float64)
        w[rows, cols] = 1.0 / counts[cols]
    return w


def _simrank_sweep(similarity: np.ndarray, w: np.ndarray, decay: float) -> np.ndarray:
    """One fixed-point sweep ``S <- decay * W^T S W`` with diagonal reset."""
    similarity = decay * (w.T @ similarity @ w)
    np.fill_diagonal(similarity, 1.0)
    return similarity


def simrank_matrix(
    graph: Graph,
    decay: float = 0.8,
    iterations: int = 10,
    weighted: bool = True,
) -> np.ndarray:
    """All-pairs SimRank by fixed-point iteration (dense; small graphs).

    Uses the *evidence-weighted* in-neighbour formulation: with ``W``
    the column-normalised (in-edge) weight matrix,
    ``S <- decay * W^T S W`` with the diagonal reset to 1 each sweep.
    ``iterations`` sweeps give an additive error of at most
    ``decay^(iterations+1)`` (the standard geometric argument), and the
    iterates converge to the fixed point *from below* (monotone
    non-decreasing in the sweep count), which is what makes truncated
    iterates admissible lower bounds for iterative deepening.
    """
    if not (0.0 < decay < 1.0):
        raise GraphValidationError(f"decay must be in (0, 1), got {decay}")
    if iterations < 1:
        raise GraphValidationError(f"iterations must be >= 1, got {iterations}")
    n = graph.num_nodes
    if n == 0:
        return np.zeros((0, 0))
    w = _in_weight_matrix(graph, weighted)
    similarity = np.eye(n)
    for _ in range(iterations):
        similarity = _simrank_sweep(similarity, w, decay)
    return similarity


@dataclass
class SimRankMeasureStats:
    """Iterate-cache accounting, cumulative since the last reset."""

    sweeps: int = 0  # fixed-point sweeps actually computed
    iterate_evictions: int = 0  # memoised iterates dropped by the LRU cap

    def reset(self) -> None:
        """Zero all counters."""
        self.sweeps = 0
        self.iterate_evictions = 0


class SimRankMeasure:
    """SimRank as a :class:`repro.extensions.measures.SeriesMeasure`.

    Level ``l`` of the generic joins maps to ``l`` fixed-point sweeps:
    the iterates grow monotonically towards the fixed point, so an
    ``l``-sweep score is an admissible lower bound and
    ``decay^(l+1)`` bounds everything the remaining sweeps can add
    (``tail_bound``).  ``d = iterations`` plays the truncation-depth
    role.

    There is no propagation kernel (``kernel()`` is ``None``): backward
    "walks" are column gathers from memoised matrix iterates, computed
    once per level per graph and *resumed* from the deepest cached
    iterate (the recurrence is deterministic, so resumed and fresh
    iterates are bit-identical).  Dense ``O(n^2)`` memory per iterate —
    small graphs only, like every SimRank computation here — so the
    memo is capped at ``max_cached_iterates`` matrices: the deepest
    iterate is always retained (it is what deeper requests resume
    from), shallower ones live in an LRU and are recomputed from the
    identity when evicted and needed again.  ``stats`` counts sweeps
    and evictions.
    """

    def __init__(
        self,
        decay: float = 0.8,
        iterations: int = 10,
        weighted: bool = True,
        max_cached_iterates: int = 4,
    ) -> None:
        if not (0.0 < decay < 1.0):
            raise GraphValidationError(f"decay must be in (0, 1), got {decay}")
        if iterations < 1:
            raise GraphValidationError(f"iterations must be >= 1, got {iterations}")
        if max_cached_iterates < 1:
            raise GraphValidationError(
                f"max_cached_iterates must be >= 1, got {max_cached_iterates}"
            )
        self.decay = decay
        self.d = iterations
        self.weighted = weighted
        self.max_cached_iterates = max_cached_iterates
        self.name = f"SimRank(C={decay})"
        self.stats = SimRankMeasureStats()
        self._graph: Optional[Graph] = None
        self._w: Optional[np.ndarray] = None
        self._iterates: "OrderedDict[int, np.ndarray]" = OrderedDict()

    @property
    def floor(self) -> float:
        """A structurally unrelated pair scores 0."""
        return 0.0

    def kernel(self) -> None:
        """No single-propagation kernel — SimRank is matrix-backed."""
        return None

    def cache_key(self) -> Tuple[str, float, int, bool]:
        """Value identity for walk/bound caches (score-vector layer only)."""
        return ("simrank", self.decay, self.d, self.weighted)

    def _iterate_to(self, graph: Graph, steps: int) -> np.ndarray:
        """The ``steps``-sweep iterate, resumed from the deepest cached
        one not past ``steps`` (the recurrence is deterministic, so the
        result is bit-identical however it was reached)."""
        if self._graph is not graph:
            # Bound to a new graph: drop the old graph's iterates.
            self._graph = graph
            self._w = _in_weight_matrix(graph, self.weighted)
            self._iterates = OrderedDict({0: np.eye(graph.num_nodes)})
        available = [l for l in self._iterates if l <= steps]
        if available:
            level = max(available)
            similarity = self._iterates[level]
            self._iterates.move_to_end(level)  # LRU refresh
        else:
            # Every shallow-enough iterate was evicted: level 0 is the
            # identity and always rebuildable.
            level, similarity = 0, np.eye(graph.num_nodes)
        while level < steps:
            similarity = _simrank_sweep(similarity, self._w, self.decay)
            level += 1
            self.stats.sweeps += 1
        if level not in self._iterates:
            self._iterates[level] = similarity
        else:
            self._iterates.move_to_end(level)
        self._evict_iterates()
        return similarity

    def _evict_iterates(self) -> None:
        """Cap the memo: keep the deepest iterate, LRU-evict shallower."""
        deepest = max(self._iterates)
        while len(self._iterates) > self.max_cached_iterates:
            for level in self._iterates:  # iteration order == LRU order
                if level != deepest:
                    del self._iterates[level]
                    self.stats.iterate_evictions += 1
                    break
            else:  # only the deepest is left; nothing evictable
                break

    def backward_scores(self, engine: WalkEngine, target: int, steps: int) -> np.ndarray:
        """``steps``-sweep SimRank of every node to ``target`` (a matrix
        column; reflexive entry is 1 by definition and excluded by all
        joins)."""
        return self._iterate_to(engine.graph, steps)[:, target].copy()

    def backward_scores_block(
        self, engine: WalkEngine, targets: Sequence[int], steps: int
    ) -> np.ndarray:
        """Batched column gather from the (memoised) ``steps``-sweep iterate."""
        idx = np.asarray(targets, dtype=np.int64)
        return self._iterate_to(engine.graph, steps)[:, idx].copy()

    def tail_bound(self, level: int) -> float:
        """``decay^(level+1)``: each further sweep adds terms weighted by
        one more factor of ``decay``, and scores are bounded by 1."""
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        return self.decay ** (level + 1)


class SimRankJoin:
    """Top-``k`` 2-way join under SimRank scores."""

    name = "SimRank-join"

    def __init__(
        self,
        graph: Graph,
        left: Sequence[int],
        right: Sequence[int],
        decay: float = 0.8,
        iterations: int = 10,
        matrix: Optional[np.ndarray] = None,
    ) -> None:
        self._left = validate_node_set(graph.num_nodes, left, "left node set")
        self._right = validate_node_set(graph.num_nodes, right, "right node set")
        self._matrix = (
            matrix
            if matrix is not None
            else simrank_matrix(graph, decay=decay, iterations=iterations)
        )
        if self._matrix.shape != (graph.num_nodes, graph.num_nodes):
            raise GraphValidationError("similarity matrix shape mismatch")

    def all_pairs(self) -> List[ScoredPair]:
        """Score every candidate pair (unsorted)."""
        return [
            ScoredPair(p, q, float(self._matrix[p, q]))
            for p in self._left
            for q in self._right
            if p != q
        ]

    def top_k(self, k: int) -> List[ScoredPair]:
        """Top-``k`` pairs by SimRank."""
        if k == 0:
            return []
        return top_k_pairs(self.all_pairs(), k)


def simrank_multi_way_join(
    graph: Graph,
    query_graph: QueryGraph,
    node_sets: Sequence[Sequence[int]],
    k: int,
    decay: float = 0.8,
    iterations: int = 10,
    aggregate: Aggregate = MIN,
) -> List[CandidateAnswer]:
    """Top-``k`` n-way join under SimRank (AP strategy + PBRJ).

    The similarity matrix is computed once and shared by every query
    edge.
    """
    if len(node_sets) != query_graph.num_vertices:
        raise GraphValidationError(
            f"{len(node_sets)} node sets for {query_graph.num_vertices} vertices"
        )
    matrix = simrank_matrix(graph, decay=decay, iterations=iterations)
    inputs = []
    for e, (i, j) in enumerate(query_graph.edges):
        join = SimRankJoin(graph, node_sets[i], node_sets[j], matrix=matrix)
        inputs.append(
            MaterializedInput(
                sort_pairs(join.all_pairs()), name=query_graph.edge_name(e)
            )
        )
    return PBRJ(query_graph, aggregate, inputs, k).run()
