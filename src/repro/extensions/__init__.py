"""Measure layer (paper Section VIII): n-way joins beyond DHT.

:mod:`repro.extensions.measures` defines the :class:`SeriesMeasure`
contract (per-target + batched-block backward kernels, tail bounds,
cache identity) with PPR and DHT instantiations;
:mod:`repro.extensions.simrank` adds SimRank (solver, measure, oracle
joins); :mod:`repro.extensions.series_join` runs the measure-generic
2-way (``Series-B-BJ`` / ``Series-IDJ``) and n-way (``Series-AP`` /
``Series-PJ``) joins on the shared walk/bound-cache stack.
"""

from repro.extensions.measures import (
    DHTMeasure,
    SeriesYBound,
    TruncatedPPR,
    exact_ppr_to_target,
    measure_by_name,
)
from repro.extensions.series_join import (
    SeriesAllPairsJoin,
    SeriesBackwardJoin,
    SeriesIDJ,
    SeriesPartialJoin,
    make_series_context,
    series_multi_way_join,
    series_two_way_join,
)
from repro.extensions.simrank import (
    SimRankJoin,
    SimRankMeasure,
    simrank_matrix,
    simrank_multi_way_join,
)

__all__ = [
    "DHTMeasure",
    "SeriesAllPairsJoin",
    "SeriesBackwardJoin",
    "SeriesIDJ",
    "SeriesPartialJoin",
    "SeriesYBound",
    "SimRankJoin",
    "SimRankMeasure",
    "TruncatedPPR",
    "exact_ppr_to_target",
    "make_series_context",
    "measure_by_name",
    "series_multi_way_join",
    "series_two_way_join",
    "simrank_matrix",
    "simrank_multi_way_join",
]
