"""Future-work extensions (paper Section VIII): joins over PPR and
SimRank."""

from repro.extensions.measures import DHTMeasure, TruncatedPPR, exact_ppr_to_target
from repro.extensions.series_join import (
    SeriesBackwardJoin,
    SeriesIDJ,
    series_multi_way_join,
    series_two_way_join,
)
from repro.extensions.simrank import (
    SimRankJoin,
    simrank_matrix,
    simrank_multi_way_join,
)

__all__ = [
    "DHTMeasure",
    "SeriesBackwardJoin",
    "SeriesIDJ",
    "SimRankJoin",
    "TruncatedPPR",
    "exact_ppr_to_target",
    "series_multi_way_join",
    "series_two_way_join",
    "simrank_matrix",
    "simrank_multi_way_join",
]
