"""Random-walk proximity measures beyond DHT.

The paper's conclusion (Section VIII) plans to "extend the study of
n-way join for other proximity measures on graphs, including
Personalized PageRank [and] SimRank".  The IDJ framework [19] the paper
builds on supports any measure expressible as a truncated decayed
series

``score(u, v) = sum_{i} w_i M_i(u, v) + floor``

where ``M_i`` is some per-step walk statistic and ``w_i`` a
non-negative weight.  :class:`SeriesMeasure` captures that contract —
per-target *and* batched-block backward kernels plus the tail algebra
iterative deepening needs — and three families instantiate it:

* :class:`TruncatedPPR` — Personalized PageRank (``M_i = S_i``, the
  *unrestricted* visit probability; plain propagation).
* :class:`DHTMeasure` — the core DHT implementation adapted to the
  contract (``M_i = P_i``, first-hit probability; absorbing
  propagation), so generic joins can mix measures and the core
  algorithms double as its oracles.
* :class:`repro.extensions.simrank.SimRankMeasure` — SimRank, whose
  pairwise-recursive fixed point has no single-propagation kernel; it
  serves blocks from memoised (and resumable) matrix iterates instead.

**Admissibility contract** (what the generic iterative-deepening join
:class:`repro.extensions.series_join.SeriesIDJ` relies on — see
``docs/ALGORITHMS.md`` for the worked derivations):

1. ``backward_scores(engine, q, l)`` returns the ``l``-step truncation
   ``h_l(., q)``, and ``h_l(p, q) <= h_d(p, q)`` for ``l <= d``
   (non-negative statistics and weights), so truncations are valid
   *lower* bounds.
2. ``tail_bound(l) >= sum_{i > l} w_i sup_u,v M_i(u, v)``, so
   ``h_d(p, q) <= h_l(p, q) + tail_bound(l)`` is a valid *upper* bound.
3. ``floor`` is the score of a pair whose every statistic is zero — the
   bottom of the range, used to seed per-target maxima and to filter
   uninformative lower bounds.
4. Optionally, ``tail_weight(i) = w_i * sup M_i`` per step enables the
   data-dependent reach-mass tail :class:`SeriesYBound` (the Theorem 1
   analogue), which is tighter than the closed form whenever the left
   set's ``i``-step reach mass at ``q`` is below 1.

Batched-block equivalence: ``backward_scores_block`` must agree with
per-target ``backward_scores`` at every node ``u != target`` (reflexive
entries may differ by the kernel's return-walk convention; every join
excludes ``p == q``).

A measure whose ``kernel()`` is non-``None`` gets the full resumable
walk layer for free: :class:`~repro.walks.state.WalkState` blocks,
walk-cache adoption, and the bounded-memory chunked rounds of
:class:`~repro.walks.rounds.DeepeningRounds` (a ``max_block_bytes``
ceiling with walk-cache spill of overflow survivors).  Matrix-backed
measures (``kernel() is None``) use only the score-vector half of the
walk cache and resume through their own memoised iterates.
"""

from __future__ import annotations

import math
from typing import Optional, Protocol, Sequence

import numpy as np

from repro.core.dht import DHTParams
from repro.graph.validation import GraphValidationError
from repro.walks.engine import WalkEngine
from repro.walks.kernels import BlockKernel, DHTBlockKernel, PPRBlockKernel
from repro.walks.state import WalkState


class SeriesMeasure(Protocol):
    """A truncated decayed-series proximity measure.

    Implementations provide a *backward* kernel — one propagation from a
    target yields the measure to all sources — in both per-target
    (oracle) and batched-block (production) forms, plus the algebra
    needed for iterative-deepening bounds.  See the module docstring for
    the admissibility conditions each piece must satisfy.
    """

    name: str
    d: int

    def backward_scores(self, engine: WalkEngine, target: int, steps: int) -> np.ndarray:
        """``steps``-truncated scores from every node to ``target``.

        The per-target reference path — the equivalence oracle every
        batched/cached path is tested against.
        """
        ...

    def backward_scores_block(
        self, engine: WalkEngine, targets: Sequence[int], steps: int
    ) -> np.ndarray:
        """Batched backward scores: an ``(n, B)`` array, column ``j``
        agreeing with ``backward_scores(engine, targets[j], steps)`` at
        every node ``u != targets[j]``."""
        ...

    def tail_bound(self, level: int) -> float:
        """Upper bound on the score mass of steps ``level+1 .. d``."""
        ...

    @property
    def floor(self) -> float:
        """Score of a pair with zero walk statistics (the range floor)."""
        ...

    def cache_key(self) -> object:
        """Hashable value identity for walk/bound caches.

        Two measures share cached artifacts iff their keys compare
        equal; distinct measure families must never collide (DHT and
        PPR kernels are distinct frozen dataclasses by construction).
        """
        ...

    def kernel(self) -> Optional[BlockKernel]:
        """The resumable block kernel, or ``None`` for matrix-backed
        measures (no :class:`~repro.walks.state.WalkState` support —
        and therefore no bounded-memory walk windows or cache spill;
        such measures resume through their own memoised iterates)."""
        ...


class TruncatedPPR:
    """Personalized PageRank, truncated at ``d`` steps.

    ``PPR(u, v) = (1 - c) * sum_{i >= 0} c^i S_i(u, v)`` where
    ``S_i(u, v)`` is the probability that a ``c``-continuing walker from
    ``u`` is at ``v`` after ``i`` steps (Jeh & Widom [20]).  Unlike DHT
    the walker may revisit ``v``; the backward kernel is therefore the
    plain (non-absorbing) propagation —
    :class:`~repro.walks.kernels.PPRBlockKernel` in block form.

    Parameters
    ----------
    damping:
        Continuation probability ``c`` in (0, 1); 0.85 is customary.
    epsilon:
        Truncation error target; ``d`` is the smallest depth with
        ``c^{d+1} <= epsilon`` (the tail of the geometric series, since
        ``S_i <= 1``).
    """

    def __init__(self, damping: float = 0.85, epsilon: float = 1e-4) -> None:
        if not (0.0 < damping < 1.0):
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if not (0.0 < epsilon < 1.0):
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.damping = damping
        self.epsilon = epsilon
        self.d = max(1, math.ceil(math.log(epsilon) / math.log(damping) - 1.0))
        self.name = f"PPR(c={damping})"

    @property
    def floor(self) -> float:
        """A never-visited pair scores 0."""
        return 0.0

    def kernel(self) -> PPRBlockKernel:
        """The plain-propagation block kernel (weights ``(1-c) c^i``)."""
        return PPRBlockKernel(self.damping)

    def cache_key(self) -> PPRBlockKernel:
        """Walk/bound caches are keyed by the kernel itself."""
        return self.kernel()

    def backward_scores(self, engine: WalkEngine, target: int, steps: int) -> np.ndarray:
        """Truncated PPR of every node to ``target`` in one propagation.

        ``(1-c) * sum_{i=1..steps} c^i S_i(u, target)`` plus the ``i=0``
        self-visit term for ``u == target`` itself.  Per-target oracle;
        reports its steps to ``engine.stats`` in the same column-step
        currency as the batched paths.
        """
        back = np.zeros(engine.num_nodes, dtype=np.float64)
        back[target] = 1.0
        transition = engine.graph.transition_matrix()
        scores = np.zeros(engine.num_nodes, dtype=np.float64)
        scores[target] = 1.0 - self.damping  # i = 0 term
        factor = 1.0 - self.damping
        for i in range(1, steps + 1):
            # Same governor visibility as the DHT oracle, whose steps
            # run through engine.backward_first_hit_series.
            engine.checkpoint("step")
            back = transition.dot(back)
            scores += factor * self.damping ** i * back
        engine.stats.add("propagation_steps", steps)
        engine.stats.add("sparse_products", steps)
        return scores

    def backward_scores_block(
        self, engine: WalkEngine, targets: Sequence[int], steps: int
    ) -> np.ndarray:
        """Batched truncated PPR: one sparse-dense product per step for
        the whole target block, equal to the per-target oracle at every
        node (PPR has no reflexive artefact — the self-visit term is
        part of the score)."""
        return WalkState(engine, self.kernel(), targets).advance_to(steps).scores_matrix()

    def tail_bound(self, level: int) -> float:
        """``(1-c) sum_{i > level} c^i = c^{level+1}`` (since S_i <= 1)."""
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        return self.damping ** (level + 1)

    def tail_weight(self, i: int) -> float:
        """``w_i * sup S_i = (1-c) c^i`` — enables :class:`SeriesYBound`."""
        if i < 1:
            raise ValueError(f"i must be >= 1, got {i}")
        return (1.0 - self.damping) * self.damping ** i


class DHTMeasure:
    """Adapter exposing the core DHT implementation as a
    :class:`SeriesMeasure`, so generic joins can mix measures.

    The core 2-way algorithms (``B-BJ``/``B-IDJ``) remain the tuned DHT
    path; this adapter exists so the measure-generic machinery has DHT
    as a third instantiation (and an oracle-rich one: its batched block
    rides the exact kernel the core algorithms use).
    """

    def __init__(self, params: DHTParams = None, epsilon: float = 1e-6) -> None:
        self.params = params if params is not None else DHTParams.dht_lambda(0.2)
        self.d = self.params.steps_for_epsilon(epsilon)
        self.name = f"DHT(lambda={self.params.decay})"

    @property
    def floor(self) -> float:
        """``beta`` — the score of a pair that never hits."""
        return self.params.beta

    def kernel(self) -> DHTBlockKernel:
        """The first-hit (absorbing) block kernel of Eq. 5."""
        return DHTBlockKernel.from_params(self.params)

    def cache_key(self) -> DHTBlockKernel:
        """Walk/bound caches are keyed by the kernel itself."""
        return self.kernel()

    def backward_scores(self, engine: WalkEngine, target: int, steps: int) -> np.ndarray:
        """Truncated DHT via the first-hit backward kernel (oracle)."""
        series = engine.backward_first_hit_series(target, steps)
        scores = self.params.scores_from_matrix(series)
        scores[target] = 0.0
        return scores

    def backward_scores_block(
        self, engine: WalkEngine, targets: Sequence[int], steps: int
    ) -> np.ndarray:
        """Batched truncated DHT with the reflexive convention of the
        per-target oracle (``h(v, v) = 0``, replacing the block kernel's
        return-walk artefact)."""
        state = WalkState(engine, self.kernel(), targets).advance_to(steps)
        scores = state.scores_matrix()
        idx = np.asarray(targets, dtype=np.int64)
        scores[idx, np.arange(idx.shape[0])] = 0.0
        return scores

    def tail_bound(self, level: int) -> float:
        """The ``X_l^+`` geometric tail (Lemma 2)."""
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        return (
            self.params.alpha
            * self.params.decay ** (level + 1)
            / (1.0 - self.params.decay)
        )

    def tail_weight(self, i: int) -> float:
        """``w_i * sup P_i = alpha * lambda^i`` — the Theorem 1 weights."""
        if i < 1:
            raise ValueError(f"i must be >= 1, got {i}")
        return self.params.alpha * self.params.decay ** i


class SeriesYBound:
    """Reach-mass tail bound for any series measure (Theorem 1 analogue).

    For steps ``i > l`` the pair statistic is bounded by the left set's
    aggregated reach mass: ``M_i(p, q) <= min(sum_{p' in P} S_i(p', q), 1)``
    (for DHT because first hits are a sub-event of visits, Lemma 3; for
    PPR because ``S_i(p, q)`` is one summand).  One unrestricted
    ``d``-step propagation from all of ``P`` therefore yields

    ``Y_l^+(P, q) = sum_{i=l+1}^{d} tail_weight(i) * min(reach_i(q), 1)``

    for every ``q`` and every ``l`` via suffix sums — ``O(1)`` per
    query, always at most the closed-form :meth:`SeriesMeasure.tail_bound`
    restricted to steps ``<= d``.  Built through a
    :class:`~repro.bounds_cache.BoundPlanCache` keyed by ``(P, d)``, so
    query edges sharing a left set build it once; every build increments
    ``engine.stats.bound_builds`` like the core :class:`~repro.core.bounds.YBound`.
    """

    name = "Series-Y"

    def __init__(
        self,
        engine: WalkEngine,
        measure: SeriesMeasure,
        sources: Sequence[int],
        d: int,
    ) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self._d = d
        engine.stats.add("bound_builds", 1)
        reach = engine.reach_mass_series(sources, d)  # (d, n)
        capped = np.minimum(reach, 1.0)
        weights = np.array(
            [measure.tail_weight(i) for i in range(1, d + 1)], dtype=np.float64
        )[:, None]
        contributions = capped * weights
        n = reach.shape[1]
        suffix = np.zeros((d + 1, n), dtype=np.float64)
        suffix[:d] = np.cumsum(contributions[::-1], axis=0)[::-1]
        self._suffix = suffix

    @property
    def d(self) -> int:
        """Walk length the bound was built for."""
        return self._d

    def tail(self, l: int, q: int) -> float:
        """``Y_l^+(P, q)`` for graph node ``q``."""
        if not (0 <= l <= self._d):
            raise ValueError(f"l must be in [0, {self._d}], got {l}")
        return float(self._suffix[l, q])


_DHT_NAMES = frozenset({"dht", "dht-lambda", "dht-e"})


def measure_by_name(name: str, **options) -> Optional[object]:
    """Resolve a measure name to a :class:`SeriesMeasure` instance.

    The DHT family (``"dht"``, ``"dht-lambda"``, ``"dht-e"``) resolves
    to ``None`` — callers keep the tuned core DHT path and its
    :class:`~repro.core.dht.DHTParams` configuration.  ``"ppr"`` builds
    a :class:`TruncatedPPR` (options: ``damping``, ``epsilon``) and
    ``"simrank"`` a :class:`repro.extensions.simrank.SimRankMeasure`
    (options: ``decay``, ``iterations``, ``weighted``).
    """
    key = name.lower()
    if key in _DHT_NAMES:
        return None
    if key == "ppr":
        return TruncatedPPR(**options)
    if key == "simrank":
        from repro.extensions.simrank import SimRankMeasure

        return SimRankMeasure(**options)
    raise GraphValidationError(
        f"unknown measure {name!r}; choose from "
        f"{sorted(_DHT_NAMES | {'ppr', 'simrank'})}"
    )


def exact_ppr_to_target(graph, damping: float, target: int) -> np.ndarray:
    """Exact (untruncated) PPR column via a dense linear solve.

    ``pi = (1-c) (I - c T)^{-1} e_target`` — test oracle for
    :class:`TruncatedPPR`; small graphs only.
    """
    from repro.walks.hitting import dense_transition_matrix

    n = graph.num_nodes
    dense = dense_transition_matrix(graph)
    rhs = np.zeros(n)
    rhs[target] = 1.0 - damping
    return np.linalg.solve(np.eye(n) - damping * dense, rhs)
