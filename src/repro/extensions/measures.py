"""Random-walk proximity measures beyond DHT.

The paper's conclusion (Section VIII) plans to "extend the study of
n-way join for other proximity measures on graphs, including
Personalized PageRank [and] SimRank".  The IDJ framework [19] the paper
builds on supports any measure expressible as a truncated decayed
series

``score(u, v) = alpha * sum_{i} lambda^i M_i(u, v) + beta``

where ``M_i`` is some per-step walk statistic.  :class:`SeriesMeasure`
captures that contract; :class:`TruncatedPPR` instantiates it for
Personalized PageRank (``M_i = S_i``, the *unrestricted* visit
probability), and :class:`DHTMeasure` adapts the core DHT
implementation so the generic joins in
:mod:`repro.extensions.series_join` run over either measure unchanged.
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np

from repro.core.dht import DHTParams
from repro.walks.engine import WalkEngine


class SeriesMeasure(Protocol):
    """A truncated decayed-series proximity measure.

    Implementations provide a *backward* kernel — one propagation from a
    target yields the measure to all sources — plus the algebra needed
    for iterative-deepening bounds.
    """

    name: str
    d: int

    def backward_scores(self, engine: WalkEngine, target: int, steps: int) -> np.ndarray:
        """``steps``-truncated scores from every node to ``target``."""
        ...

    def tail_bound(self, level: int) -> float:
        """Upper bound on the score mass of steps ``level+1 .. d``."""
        ...

    @property
    def floor(self) -> float:
        """Score of a pair with zero walk statistics (the range floor)."""
        ...


class TruncatedPPR:
    """Personalized PageRank, truncated at ``d`` steps.

    ``PPR(u, v) = (1 - c) * sum_{i >= 0} c^i S_i(u, v)`` where
    ``S_i(u, v)`` is the probability that a ``c``-continuing walker from
    ``u`` is at ``v`` after ``i`` steps (Jeh & Widom [20]).  Unlike DHT
    the walker may revisit ``v``; the backward kernel is therefore the
    plain (non-absorbing) propagation.

    Parameters
    ----------
    damping:
        Continuation probability ``c`` in (0, 1); 0.85 is customary.
    epsilon:
        Truncation error target; ``d`` is the smallest depth with
        ``c^{d+1} <= epsilon`` (the tail of the geometric series, since
        ``S_i <= 1``).
    """

    def __init__(self, damping: float = 0.85, epsilon: float = 1e-4) -> None:
        if not (0.0 < damping < 1.0):
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if not (0.0 < epsilon < 1.0):
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.damping = damping
        self.epsilon = epsilon
        self.d = max(1, math.ceil(math.log(epsilon) / math.log(damping) - 1.0))
        self.name = f"PPR(c={damping})"

    @property
    def floor(self) -> float:
        """A never-visited pair scores 0."""
        return 0.0

    def backward_scores(self, engine: WalkEngine, target: int, steps: int) -> np.ndarray:
        """Truncated PPR of every node to ``target`` in one propagation.

        ``(1-c) * sum_{i=1..steps} c^i S_i(u, target)`` plus the ``i=0``
        self-visit term for ``u == target`` itself.
        """
        back = np.zeros(engine.num_nodes, dtype=np.float64)
        back[target] = 1.0
        transition = engine.graph.transition_matrix()
        scores = np.zeros(engine.num_nodes, dtype=np.float64)
        scores[target] = 1.0 - self.damping  # i = 0 term
        factor = 1.0 - self.damping
        for i in range(1, steps + 1):
            back = transition.dot(back)
            scores += factor * self.damping ** i * back
        return scores

    def tail_bound(self, level: int) -> float:
        """``(1-c) sum_{i > level} c^i = c^{level+1}`` (since S_i <= 1)."""
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        return self.damping ** (level + 1)


class DHTMeasure:
    """Adapter exposing the core DHT implementation as a
    :class:`SeriesMeasure`, so generic joins can mix measures."""

    def __init__(self, params: DHTParams = None, epsilon: float = 1e-6) -> None:
        self.params = params if params is not None else DHTParams.dht_lambda(0.2)
        self.d = self.params.steps_for_epsilon(epsilon)
        self.name = f"DHT(lambda={self.params.decay})"

    @property
    def floor(self) -> float:
        """``beta`` — the score of a pair that never hits."""
        return self.params.beta

    def backward_scores(self, engine: WalkEngine, target: int, steps: int) -> np.ndarray:
        """Truncated DHT via the first-hit backward kernel."""
        series = engine.backward_first_hit_series(target, steps)
        scores = self.params.scores_from_matrix(series)
        scores[target] = 0.0
        return scores

    def tail_bound(self, level: int) -> float:
        """The ``X_l^+`` geometric tail (Lemma 2)."""
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        return (
            self.params.alpha
            * self.params.decay ** (level + 1)
            / (1.0 - self.params.decay)
        )


def exact_ppr_to_target(graph, damping: float, target: int) -> np.ndarray:
    """Exact (untruncated) PPR column via a dense linear solve.

    ``pi = (1-c) (I - c T)^{-1} e_target`` — test oracle for
    :class:`TruncatedPPR`; small graphs only.
    """
    from repro.walks.hitting import dense_transition_matrix

    n = graph.num_nodes
    dense = dense_transition_matrix(graph)
    rhs = np.zeros(n)
    rhs[target] = 1.0 - damping
    return np.linalg.solve(np.eye(n) - damping * dense, rhs)
