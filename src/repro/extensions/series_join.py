"""Generic 2-way and n-way joins over any :class:`SeriesMeasure`.

This realises the paper's future-work plan (Section VIII): the backward
basic join and the iterative-deepening join are measure-agnostic — they
only need backward scoring and a tail bound — and the n-way join simply
feeds the generic 2-way join's sorted output into the same PBRJ rank
join used by ``AP``/``PJ``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.nway.aggregates import MIN, Aggregate
from repro.core.nway.candidates import CandidateAnswer
from repro.core.nway.query_graph import QueryGraph
from repro.core.two_way.base import ScoredPair, sort_pairs, top_k_pairs
from repro.extensions.measures import SeriesMeasure
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError, validate_node_set
from repro.rankjoin.inputs import MaterializedInput
from repro.rankjoin.pbrj import PBRJ
from repro.walks.engine import WalkEngine


class SeriesBackwardJoin:
    """``B-BJ`` generalised: one backward pass per right node."""

    name = "Series-B-BJ"

    def __init__(
        self,
        graph: Graph,
        measure: SeriesMeasure,
        left: Sequence[int],
        right: Sequence[int],
        engine: Optional[WalkEngine] = None,
    ) -> None:
        self._graph = graph
        self._measure = measure
        self._left = validate_node_set(graph.num_nodes, left, "left node set")
        self._right = validate_node_set(graph.num_nodes, right, "right node set")
        self._engine = engine if engine is not None else WalkEngine(graph)

    def all_pairs(self) -> List[ScoredPair]:
        """Score every candidate pair (unsorted)."""
        pairs: List[ScoredPair] = []
        for q in self._right:
            scores = self._measure.backward_scores(self._engine, q, self._measure.d)
            pairs.extend(
                ScoredPair(p, q, float(scores[p])) for p in self._left if p != q
            )
        return pairs

    def top_k(self, k: int) -> List[ScoredPair]:
        """Top-``k`` pairs by exhaustive backward scoring."""
        if k == 0:
            return []
        return top_k_pairs(self.all_pairs(), k)


class SeriesIDJ(SeriesBackwardJoin):
    """``B-IDJ`` generalised: doubling walks + tail-bound pruning.

    Uses the measure's closed-form tail (the ``X``-style bound; a
    measure-specific ``Y`` analogue would need per-measure reach-mass
    reasoning and is left to the measure implementation).
    """

    name = "Series-IDJ"

    def top_k(self, k: int) -> List[ScoredPair]:
        if k < 0:
            raise GraphValidationError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        measure = self._measure
        active = list(self._right)
        level = 1
        while level < measure.d:
            lower_bounds: List[float] = []
            upper = {}
            for q in active:
                scores = measure.backward_scores(self._engine, q, level)
                tail = measure.tail_bound(level)
                best = measure.floor
                for p in self._left:
                    if p == q:
                        continue
                    score = float(scores[p])
                    if score > measure.floor:
                        lower_bounds.append(score)
                    if score > best:
                        best = score
                upper[q] = best + tail
            if len(lower_bounds) >= k:
                threshold = sorted(lower_bounds, reverse=True)[k - 1]
                active = [q for q in active if upper[q] >= threshold]
            level *= 2
        pairs: List[ScoredPair] = []
        for q in active:
            scores = measure.backward_scores(self._engine, q, measure.d)
            pairs.extend(
                ScoredPair(p, q, float(scores[p])) for p in self._left if p != q
            )
        return top_k_pairs(pairs, k)


def series_two_way_join(
    graph: Graph,
    left: Sequence[int],
    right: Sequence[int],
    k: int,
    measure: SeriesMeasure,
    algorithm: str = "idj",
    engine: Optional[WalkEngine] = None,
) -> List[ScoredPair]:
    """Top-``k`` 2-way join under an arbitrary series measure.

    ``algorithm`` is ``"idj"`` (pruned, default) or ``"basic"``.
    """
    name = algorithm.lower()
    if name == "basic":
        join = SeriesBackwardJoin(graph, measure, left, right, engine=engine)
    elif name == "idj":
        join = SeriesIDJ(graph, measure, left, right, engine=engine)
    else:
        raise GraphValidationError(
            f"unknown series algorithm {algorithm!r}; use 'basic' or 'idj'"
        )
    return join.top_k(k)


def series_multi_way_join(
    graph: Graph,
    query_graph: QueryGraph,
    node_sets: Sequence[Sequence[int]],
    k: int,
    measure: SeriesMeasure,
    aggregate: Aggregate = MIN,
    engine: Optional[WalkEngine] = None,
) -> List[CandidateAnswer]:
    """Top-``k`` n-way join under an arbitrary series measure.

    Materialises each query edge's full 2-way join (the ``AP``
    strategy — measure-generic prefixes with incremental refills are
    future work squared) and rank-joins with PBRJ.
    """
    if len(node_sets) != query_graph.num_vertices:
        raise GraphValidationError(
            f"{len(node_sets)} node sets for {query_graph.num_vertices} vertices"
        )
    engine = engine if engine is not None else WalkEngine(graph)
    inputs = []
    for e, (i, j) in enumerate(query_graph.edges):
        join = SeriesBackwardJoin(
            graph, measure, node_sets[i], node_sets[j], engine=engine
        )
        inputs.append(
            MaterializedInput(
                sort_pairs(join.all_pairs()), name=query_graph.edge_name(e)
            )
        )
    return PBRJ(query_graph, aggregate, inputs, k).run()
