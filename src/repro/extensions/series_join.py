"""Measure-generic 2-way and n-way joins over any :class:`SeriesMeasure`.

This realises the paper's future-work plan (Section VIII) on the full
production stack: the backward basic join and the iterative-deepening
join are measure-agnostic — they need batched backward scoring and a
tail bound — and the n-way strategies (``AP``-style materialisation,
``PJ``-style top-``m`` prefixes with restart refills) feed the same
PBRJ rank join the DHT algorithms use.

The machinery mirrors the DHT path layer by layer:

* **Batched blocks** — every walking round goes through
  :meth:`SeriesMeasure.backward_scores_block` (one sparse-dense product
  per step for kernel measures, memoised matrix gathers for SimRank);
  ``block_size=1`` selects the per-target oracle path, kept as the
  equivalence baseline exactly like ``B-BJ``'s.
* **Resumable states** — :class:`SeriesIDJ` keeps one
  :class:`~repro.walks.state.WalkState` block across doubling levels
  (extend, don't restart), with the measure's
  :class:`~repro.walks.kernels.BlockKernel` supplying the per-step
  algebra; :meth:`SeriesIDJ.top_k_reference` keeps the seed
  restart-per-level implementation as the oracle.  The rounds run on
  the shared :class:`~repro.walks.rounds.DeepeningRounds` machinery,
  so a ``max_block_bytes`` ceiling buys the same bounded-memory
  chunked rounds (and walk-cache spill of overflow survivors) as the
  DHT ``B-IDJ``.
* **Shared caches** — contexts carry the same
  :class:`~repro.walks.cache.WalkCache` /
  :class:`~repro.bounds_cache.BoundPlanCache` pair as DHT joins, keyed
  by the *measure* (``measure.cache_key()``), so an
  :class:`~repro.core.nway.spec.NWayJoinSpec` built with a measure
  shares walks and reach-mass tail bounds across all its query edges —
  and a PPR spec can never touch a DHT spec's entries.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.nway.aggregates import MIN, Aggregate
from repro.core.nway.candidates import CandidateAnswer
from repro.core.nway.partial_join import PartialJoinStats
from repro.core.nway.query_graph import QueryGraph
from repro.core.nway.spec import NWayJoinSpec
from repro.core.two_way.backward import DEFAULT_BLOCK_SIZE
from repro.exec.budget import MemoryBudgetExceeded
from repro.core.two_way.base import (
    BoundedTopK,
    ScoredPair,
    TwoWayContext,
    sort_pairs,
    top_k_pairs,
)
from repro.extensions.measures import SeriesMeasure, SeriesYBound
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError
from repro.rankjoin.inputs import LazyInput, MaterializedInput
from repro.rankjoin.pbrj import PBRJ
from repro.walks.cache import WalkCache
from repro.walks.engine import WalkEngine
from repro.walks.rounds import DeepeningRounds, columns_for_budget

from repro.bounds_cache import BoundPlanCache


def make_series_context(
    graph: Graph,
    measure: SeriesMeasure,
    left: Sequence[int],
    right: Sequence[int],
    engine: Optional[WalkEngine] = None,
    walk_cache: Optional[WalkCache] = None,
    bound_cache: Optional[BoundPlanCache] = None,
    max_block_bytes: Optional[int] = None,
) -> TwoWayContext:
    """A validated measure context (``d = measure.d``, caches keyed by
    the measure's :meth:`cache_key`, optional resumable-block byte
    ceiling — see :class:`~repro.core.two_way.base.TwoWayContext`)."""
    return TwoWayContext(
        graph=graph,
        params=None,
        left=list(left),
        right=list(right),
        d=measure.d,
        engine=engine,
        walk_cache=walk_cache,
        bound_cache=bound_cache,
        max_block_bytes=max_block_bytes,
        measure=measure,
    )


class _ClosedFormTail:
    """Data-independent tail: the measure's ``X``-style closed form."""

    name = "Series-X"

    def __init__(self, measure: SeriesMeasure) -> None:
        self._measure = measure

    def tail(self, l: int, q: int = -1) -> float:
        return self._measure.tail_bound(l)


class SeriesBackwardJoin:
    """``B-BJ`` generalised: batched backward blocks, one pass per target.

    Parameters
    ----------
    graph / measure / left / right:
        The join inputs; ``measure`` is any :class:`SeriesMeasure`.
    engine / walk_cache / bound_cache:
        Optional shared infrastructure (the caches must be keyed by this
        measure's :meth:`cache_key`; pass a spec's caches to share
        across query edges).
    block_size:
        Targets per propagated block.  ``1`` selects the per-target
        oracle path (:meth:`SeriesMeasure.backward_scores`), kept as the
        equivalence baseline and benchmark reference.
    max_block_bytes:
        Optional resumable-block byte ceiling forwarded to the context
        (16 bytes per node per column).  Clamps this join's block width
        and switches :class:`SeriesIDJ` to bounded-memory chunked
        rounds, exactly like the DHT ``B-IDJ``.
    """

    name = "Series-B-BJ"

    def __init__(
        self,
        graph: Graph,
        measure: SeriesMeasure,
        left: Sequence[int],
        right: Sequence[int],
        engine: Optional[WalkEngine] = None,
        walk_cache: Optional[WalkCache] = None,
        bound_cache: Optional[BoundPlanCache] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        max_block_bytes: Optional[int] = None,
    ) -> None:
        self._bind(
            make_series_context(
                graph, measure, left, right,
                engine=engine, walk_cache=walk_cache, bound_cache=bound_cache,
                max_block_bytes=max_block_bytes,
            ),
            block_size,
        )

    @classmethod
    def from_context(
        cls, context: TwoWayContext, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> "SeriesBackwardJoin":
        """Build from an existing measure context (e.g. a spec's edge)."""
        join = cls.__new__(cls)
        join._bind(context, block_size)
        return join

    def _bind(self, context: TwoWayContext, block_size: int) -> None:
        if context.measure is None:
            raise GraphValidationError(
                "series joins need a measure context (TwoWayContext.measure)"
            )
        if block_size < 1:
            raise GraphValidationError(
                f"block_size must be >= 1, got {block_size}"
            )
        if context.max_block_bytes is not None:
            # Same per-block semantics as B-BJ: clamp the propagated
            # block's width so its buffers stay under the ceiling.
            cap = columns_for_budget(
                context.max_block_bytes, context.engine.num_nodes
            )
            block_size = min(block_size, cap)
        self._ctx = context
        self._measure: SeriesMeasure = context.measure
        self._block_size = block_size
        self.pruning_trace: List[dict] = []
        # Best-effort progress for the execution governor: the pairs
        # scored so far (basic join) and the last fully-gathered
        # deepening round (IDJ) — see repro.exec.governed.
        self.partial_pairs: Optional[List[ScoredPair]] = None
        self.budget_snapshot: Optional[dict] = None

    @property
    def context(self) -> TwoWayContext:
        """The validated join inputs."""
        return self._ctx

    def all_pairs(self) -> List[ScoredPair]:
        """Score every candidate pair (unsorted)."""
        with self._ctx.engine.trace_span(
            "join", self.name, targets=len(self._ctx.right)
        ):
            return self._all_pairs()

    def _all_pairs(self) -> List[ScoredPair]:
        ctx, measure = self._ctx, self._measure
        if self._block_size == 1:
            pairs: List[ScoredPair] = []
            self.partial_pairs = pairs
            for q in ctx.right:
                scores = measure.backward_scores(ctx.engine, q, measure.d)
                pairs.extend(ctx.pairs_for_target(scores, q))
            return pairs
        cache = ctx.walk_cache
        pairs = []
        self.partial_pairs = pairs
        pending: List[int] = []

        def flush() -> None:
            block = measure.backward_scores_block(ctx.engine, pending, measure.d)
            for j, q in enumerate(pending):
                vector = block[:, j]
                if cache is not None:
                    cache.put_scores(q, measure.d, vector)
                pairs.extend(ctx.pairs_for_target(vector, q))
            pending.clear()

        for q in ctx.right:
            ctx.engine.checkpoint("cache")
            if cache is not None:
                cached = cache.peek(q, measure.d)
                if cached is not None:
                    pairs.extend(ctx.pairs_for_target(cached, q))
                    continue
            pending.append(q)
            if len(pending) == self._block_size:
                flush()
        if pending:
            flush()
        return pairs

    def top_k(self, k: int) -> List[ScoredPair]:
        """Top-``k`` pairs by exhaustive backward scoring."""
        if k == 0:
            return []
        return top_k_pairs(self.all_pairs(), k)


class SeriesIDJ(SeriesBackwardJoin):
    """``B-IDJ`` generalised: resumable doubling walks + tail pruning.

    Kernel measures run on the shared
    :class:`~repro.walks.rounds.DeepeningRounds` machinery — the exact
    plan the DHT ``B-IDJ`` runs: one resumable
    :class:`~repro.walks.state.WalkState` block carries all active
    targets across doubling levels (level ``2l`` extends level ``l``,
    the same ``~2d -> d`` column-step saving), walked levels are donated
    to the walk cache (``put_scores``) and pruned targets hand over
    their resumable column (``adopt``), so restart refills and sibling
    edges resume instead of re-walking.

    With ``max_block_bytes`` on the context, the same bounded-memory
    chunked rounds as ``B-IDJ`` apply: a byte-ceilinged resumable
    window, throwaway overflow chunks, survivor re-packing via
    :meth:`~repro.walks.state.WalkState.concat`, and the spill policy —
    overflow survivors donate their single-column states to the walk
    cache and are resumed from it at the next level (visible as
    ``extensions`` / ``steps_saved``), instead of restarting.  Outputs
    and pruning traces are bit-identical to the unbounded mode.

    The upper bound is the measure's reach-mass
    :class:`~repro.extensions.measures.SeriesYBound` when the measure
    defines ``tail_weight`` (served through the context's bound cache,
    keyed by ``(P, d)`` — shared by every edge with the same left set),
    falling back to the closed-form ``tail_bound`` otherwise (SimRank).

    Matrix-backed measures (``kernel() is None``) have nothing to
    resume in walk space; their levels are batched gathers from the
    measure's memoised iterates, which the measure itself resumes.  A
    byte ceiling only clamps the gather width there — the iterate's
    dense ``O(n^2)`` memory lives in the measure, outside the walk
    layer's budget.
    """

    name = "Series-IDJ"

    def top_k(self, k: int) -> List[ScoredPair]:
        if k < 0:
            raise GraphValidationError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        with self._ctx.engine.trace_span(
            "join", self.name, k=k, targets=len(self._ctx.right)
        ):
            return self._top_k(k)

    def _top_k(self, k: int) -> List[ScoredPair]:
        ctx, measure = self._ctx, self._measure
        engine, cache = ctx.engine, ctx.walk_cache
        kern = measure.kernel()
        bound = self._make_bound()
        left = ctx.left_array
        floor_value = measure.floor
        self.pruning_trace = []
        self.budget_snapshot = None

        active: List[int] = list(ctx.right)
        rounds: Optional[DeepeningRounds] = None
        max_cols: Optional[int] = None
        if kern is not None:
            rounds = DeepeningRounds(engine, kern, cache, ctx.max_block_bytes)
        elif ctx.max_block_bytes is not None:
            max_cols = columns_for_budget(ctx.max_block_bytes, engine.num_nodes)

        def walk_level(level: int, consume) -> None:
            """Feed every active target's ``level`` score vector to
            ``consume(q, vector)``.

            Kernel measures delegate to the shared deepening-rounds
            machinery (cache peek, resumable window, spill resume,
            bounded chunks).  Matrix-backed measures gather from the
            memoised iterate, chunked under the byte ceiling.
            """
            nonlocal max_cols
            if rounds is not None:
                rounds.walk_level(active, level, consume)
                return
            pending: List[int] = []
            for q in active:
                engine.checkpoint("cache")
                if cache is not None:
                    cached = cache.peek(q, level)
                    if cached is not None:
                        consume(q, cached)
                        continue
                pending.append(q)
            while pending:
                width = len(pending) if max_cols is None else max_cols
                group = pending[: max(width, 1)]
                try:
                    engine.checkpoint("round")
                    block = measure.backward_scores_block(engine, group, level)
                except (MemoryError, MemoryBudgetExceeded):
                    # Adaptive backoff, the matrix-measure twin of the
                    # rounds-layer split: halve the gather width and
                    # retry; a single-column failure is genuine
                    # exhaustion.
                    if len(group) == 1:
                        raise
                    half = max(1, len(group) // 2)
                    engine.stats.add("alloc_retries", 1)
                    engine.stats.add("degradations", 1)
                    if max_cols is None or half < max_cols:
                        max_cols = half
                    continue
                for j, q in enumerate(group):
                    vector = block[:, j]
                    if cache is not None:
                        cache.put_scores(q, level, vector)
                    consume(q, vector)
                del pending[: len(group)]

        level = 1
        while level < measure.d:
            with engine.trace_span(
                "level", level=level, active=len(active)
            ) as level_span:
                engine.checkpoint("round")
                width = len(active)
                targets_arr = np.asarray(active, dtype=np.int64)
                tails = np.array([bound.tail(level, q) for q in active])
                column_of = {q: j for j, q in enumerate(active)}
                left_scores = np.empty((left.size, width), dtype=np.float64)

                def gather(q, vector, column_of=column_of,
                           left_scores=left_scores):
                    left_scores[:, column_of[q]] = vector[left]

                walk_level(level, gather)
                # Every column of this round gathered: h_level is a
                # monotone lower bound and tail(level) a sound upper
                # increment, so a budget stop after this point can emit
                # flagged-partial results with oracle-containing
                # intervals.
                self.budget_snapshot = {
                    "level": level,
                    "targets": list(active),
                    "left": list(ctx.left),
                    "left_scores": left_scores,
                    "tails": tails,
                }
                valid = left[:, None] != targets_arr[None, :]
                floor_acc = BoundedTopK(k)
                # Only informative lower bounds (a nonzero statistic
                # within `level` steps) enter the floor, mirroring
                # Algorithm 2.
                floor_acc.push(left_scores[valid & (left_scores > floor_value)])
                best = np.where(valid, left_scores, -np.inf).max(axis=0)
                best = np.maximum(best, floor_value)
                t_k = floor_acc.kth_largest()
                keep = best + tails >= t_k
                surviving = [q for q, flag in zip(active, keep) if flag]
                self.pruning_trace.append(
                    {
                        "level": level,
                        "active_before": len(active),
                        "pruned": len(active) - len(surviving),
                        "threshold": t_k,
                    }
                )
                level_span.set(pruned=len(active) - len(surviving))
                if rounds is not None:
                    rounds.donate_pruned(
                        q for q, flag in zip(active, keep) if not flag
                    )
                    rounds.repack(set(surviving), level)
                active = surviving
                level *= 2

        with engine.trace_span(
            "level", level=measure.d, active=len(active), final=True
        ):
            engine.checkpoint("round")
            pairs: List[ScoredPair] = []

            def emit(q, vector):
                pairs.extend(ctx.pairs_for_target(vector, q))

            walk_level(measure.d, emit)
        return top_k_pairs(pairs, k)

    def _make_bound(self):
        """Reach-mass tail through the bound cache, or the closed form."""
        ctx, measure = self._ctx, self._measure
        if getattr(measure, "tail_weight", None) is not None:
            return ctx.bound_cache.y_bound(
                ctx.left,
                measure.d,
                lambda: SeriesYBound(ctx.engine, measure, ctx.left, measure.d),
            )
        return _ClosedFormTail(measure)

    def top_k_reference(self, k: int) -> List[ScoredPair]:
        """The seed implementation: per-target walks, restarted per level,
        closed-form tails.  Kept verbatim as the equivalence oracle;
        bypasses the walk and bound caches."""
        if k < 0:
            raise GraphValidationError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        ctx, measure = self._ctx, self._measure
        active = list(ctx.right)
        level = 1
        while level < measure.d:
            lower_bounds: List[float] = []
            upper = {}
            for q in active:
                scores = measure.backward_scores(ctx.engine, q, level)
                tail = measure.tail_bound(level)
                best = measure.floor
                for p in ctx.left:
                    if p == q:
                        continue
                    score = float(scores[p])
                    if score > measure.floor:
                        lower_bounds.append(score)
                    if score > best:
                        best = score
                upper[q] = best + tail
            if len(lower_bounds) >= k:
                threshold = sorted(lower_bounds, reverse=True)[k - 1]
                active = [q for q in active if upper[q] >= threshold]
            level *= 2
        pairs: List[ScoredPair] = []
        for q in active:
            scores = measure.backward_scores(ctx.engine, q, measure.d)
            pairs.extend(ctx.pairs_for_target(scores, q))
        return top_k_pairs(pairs, k)


def series_two_way_join(
    graph: Graph,
    left: Sequence[int],
    right: Sequence[int],
    k: int,
    measure: SeriesMeasure,
    algorithm: str = "idj",
    engine: Optional[WalkEngine] = None,
    walk_cache: Optional[WalkCache] = None,
    bound_cache: Optional[BoundPlanCache] = None,
    max_block_bytes: Optional[int] = None,
) -> List[ScoredPair]:
    """Top-``k`` 2-way join under an arbitrary series measure.

    ``algorithm`` is ``"idj"`` (pruned, default) or ``"basic"``.
    ``max_block_bytes`` caps any single resumable walk block, switching
    the deepening join to bounded-memory chunked rounds (with walk-cache
    spill for overflow survivors) — identical output either way.
    """
    name = algorithm.lower()
    if name == "basic":
        cls = SeriesBackwardJoin
    elif name == "idj":
        cls = SeriesIDJ
    else:
        raise GraphValidationError(
            f"unknown series algorithm {algorithm!r}; use 'basic' or 'idj'"
        )
    join = cls(
        graph, measure, left, right,
        engine=engine, walk_cache=walk_cache, bound_cache=bound_cache,
        max_block_bytes=max_block_bytes,
    )
    return join.top_k(k)


class SeriesAllPairsJoin:
    """``AP`` generalised: full per-edge materialisation + PBRJ rank join.

    Every edge materialises through the batched
    :class:`SeriesBackwardJoin`; with the spec's shared walk cache,
    edges whose right sets overlap score repeated targets from memory.
    """

    name = "Series-AP"

    def __init__(
        self,
        spec: NWayJoinSpec,
        block_size: int = DEFAULT_BLOCK_SIZE,
        plan=None,
    ) -> None:
        if spec.measure is None:
            raise GraphValidationError(
                "series n-way joins need a measure spec (NWayJoinSpec.measure)"
            )
        self._spec = spec
        self._block_size = block_size
        self._plan = plan
        self.stats = None

    def run(self) -> List[CandidateAnswer]:
        """Materialise every edge's full join, then rank-join."""
        spec = self._spec
        if spec.k == 0:
            return []
        plan = spec.resolve_plan("ap", plan=self._plan, default_operator="basic")
        self.plan = plan
        num_edges = spec.query_graph.num_edges
        inputs = [None] * num_edges
        for e in plan.build_order:
            # A caller's explicit block width beats the plan's knob.
            block_size = self._block_size
            ep = plan.edges[e]
            if block_size == DEFAULT_BLOCK_SIZE and ep.block_size is not None:
                block_size = ep.block_size
            with spec.trace_edge_span(e, ep.operator):
                join = SeriesBackwardJoin.from_context(
                    spec.edge_context(e), block_size=block_size
                )
                inputs[e] = MaterializedInput(
                    sort_pairs(join.all_pairs()),
                    name=spec.query_graph.edge_name(e),
                )
        with spec.engine.trace_span("rankjoin", self.name):
            driver = PBRJ(spec.query_graph, spec.aggregate, inputs, spec.k)
            answers = driver.run()
        self.stats = driver.stats
        return answers


class _SeriesRestartProvider:
    """``getNextNodePair`` the ``PJ`` way: rerun top-``(m+1)`` from scratch.

    "From scratch" algorithmically — the reruns share the context's
    walk/bound caches, so they re-score cached walks instead of
    re-propagating, exactly like the DHT ``PJ``.
    """

    def __init__(self, context: TwoWayContext, m: int, join_cls=None) -> None:
        self._context = context
        self._m = m
        self._join_cls = join_cls if join_cls is not None else SeriesIDJ
        self.restarts = 0

    def initial(self) -> List[ScoredPair]:
        return self._join_cls.from_context(self._context).top_k(self._m)

    def next_pair(self) -> Optional[ScoredPair]:
        if self._m >= self._context.num_pairs:
            return None
        self._m += 1
        self.restarts += 1
        result = self._join_cls.from_context(self._context).top_k(self._m)
        if len(result) < self._m:
            return None
        return result[-1]


class SeriesPartialJoin:
    """``PJ`` generalised: top-``m`` prefixes + PBRJ + restart refills.

    Per-edge prefixes come from :class:`SeriesIDJ` (the pruned
    algorithm), refills rerun it at ``m+1`` against the spec's shared
    caches — the measure-generic twin of
    :class:`repro.core.nway.partial_join.PartialJoin`.
    """

    name = "Series-PJ"

    # Planner operator names -> per-edge join classes (the series twin
    # of ``partial_join._TWO_WAY_ALGORITHMS``).
    _OPERATORS = None  # filled in after class definitions below

    def __init__(self, spec: NWayJoinSpec, m: int = 50, plan=None) -> None:
        if spec.measure is None:
            raise GraphValidationError(
                "series n-way joins need a measure spec (NWayJoinSpec.measure)"
            )
        if m < 0:
            raise GraphValidationError(f"m must be >= 0, got {m}")
        self._spec = spec
        self._m = m
        self._plan = plan
        self.stats = PartialJoinStats()

    def run(self) -> List[CandidateAnswer]:
        """Execute the partial join and return the top-``k`` answers."""
        spec = self._spec
        if spec.k == 0:
            return []
        plan = spec.resolve_plan(
            "pj", plan=self._plan, default_operator="idj", m=self._m
        )
        self.plan = plan
        num_edges = spec.query_graph.num_edges
        inputs: List[Optional[LazyInput]] = [None] * num_edges
        providers = []
        for e in plan.build_order:
            operator = plan.edges[e].operator
            join_cls = self._OPERATORS[operator]
            with spec.trace_edge_span(e, operator):
                provider = _SeriesRestartProvider(
                    spec.edge_context(e), self._m, join_cls=join_cls
                )
                providers.append(provider)
                initial = provider.initial()

            def refill(provider=provider, e=e, operator=operator):
                # Each restart refill is traced as its own ``refill``
                # span so explain-analyze can attribute its walks to
                # the edge's plan row.
                with spec.trace_edge_span(e, operator, kind="refill"):
                    return provider.next_pair()

            inputs[e] = LazyInput(
                initial,
                refill=refill,
                name=spec.query_graph.edge_name(e),
            )
        with spec.engine.trace_span("rankjoin", self.name):
            driver = PBRJ(spec.query_graph, spec.aggregate, inputs, spec.k)
            answers = driver.run()
        self.stats.next_pair_calls = sum(p.restarts for p in providers)
        self.stats.rank_join_pulls = driver.stats.pulls
        self.stats.pulls_per_edge = driver.stats.pulls_per_edge
        return answers


SeriesPartialJoin._OPERATORS = {
    "idj": SeriesIDJ,
    "basic": SeriesBackwardJoin,
}


_SERIES_NWAY = ("ap", "pj", "pj-i")


def series_multi_way_join(
    graph: Graph,
    query_graph: QueryGraph,
    node_sets: Sequence[Sequence[int]],
    k: int,
    measure: SeriesMeasure,
    aggregate: Aggregate = MIN,
    engine: Optional[WalkEngine] = None,
    algorithm: str = "ap",
    m: int = 50,
    walk_cache: Optional[WalkCache] = None,
    share_walks: bool = True,
    bound_cache: Optional[BoundPlanCache] = None,
    share_bounds: bool = True,
    max_block_bytes: Optional[int] = None,
    walk_cache_bytes: Optional[int] = None,
    plan: object = "fixed",
) -> List[CandidateAnswer]:
    """Top-``k`` n-way join under an arbitrary series measure.

    ``algorithm`` selects the strategy: ``"ap"`` (default) materialises
    each edge's full 2-way join; ``"pj"`` runs top-``m`` prefixes with
    restart refills.  ``"pj-i"`` is accepted as an alias of ``"pj"`` —
    incremental F-structure refinement is a DHT-specific optimisation
    with no measure-generic counterpart yet.  All edges share one walk
    cache and one bound cache (disable with ``share_walks`` /
    ``share_bounds``), both keyed by the measure; pass explicit
    ``walk_cache`` / ``bound_cache`` instances to share them *across*
    calls too (the service tier does).  ``max_block_bytes`` caps each
    edge's resumable walk block (bounded-memory rounds with walk-cache
    spill), forwarded uniformly through the spec; ``walk_cache_bytes``
    byte-budgets an automatically created shared walk cache.  ``plan``
    (``"fixed"``/``"auto"``/an ``ExplainedPlan``) hands edge order and
    per-edge operator choice to the cost-based planner.
    """
    spec = NWayJoinSpec(
        graph=graph,
        query_graph=query_graph,
        node_sets=[list(nodes) for nodes in node_sets],
        k=k,
        aggregate=aggregate,
        engine=engine,
        measure=measure,
        walk_cache=walk_cache,
        share_walks=share_walks,
        bound_cache=bound_cache,
        share_bounds=share_bounds,
        max_block_bytes=max_block_bytes,
        walk_cache_bytes=walk_cache_bytes,
        plan=plan,
    )
    name = algorithm.lower()
    if name == "ap":
        return SeriesAllPairsJoin(spec).run()
    if name in ("pj", "pj-i"):
        return SeriesPartialJoin(spec, m=m).run()
    raise GraphValidationError(
        f"unknown series n-way algorithm {algorithm!r}; "
        f"choose from {_SERIES_NWAY}"
    )
