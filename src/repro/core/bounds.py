"""Upper bounds on DHT scores — Section VI-C of the paper.

Both backward iterative-deepening joins bound the final score
``h_d(p, q)`` by ``h_l(p, q) + U_l^+`` after an ``l``-step walk:

* :class:`XBound` — Lemma 2's closed-form geometric tail
  ``X_l^+ = alpha * lambda^{l+1} / (1 - lambda)``.  Cheap, but loose:
  it assumes every remaining step hits with probability 1.
* :class:`YBound` — Theorem 1's data-dependent tail
  ``Y_l^+(P, q) = alpha * sum_{i=l+1}^{d} lambda^i min(sum_p S_i(p, q), 1)``
  built from the *unrestricted* reach probabilities ``S_i`` (Lemmas 3-4).
  One ``O(d |E_G|)`` propagation from the whole set ``P`` precomputes the
  bound for every ``q`` and every ``l`` (suffix sums).

Lemma 5 guarantees ``Y_l^+(P, q) <= X_l^+`` — the Y bound always prunes at
least as well; the property tests verify this, and Fig. 10(b)'s benchmark
measures how much it matters.

Memoisation semantics: a :class:`YBound` depends only on
``(graph, params, P, d)`` — not on the right set, not on ``k`` — so it is
shared through the :class:`repro.bounds_cache.BoundPlanCache` attached to
every :class:`~repro.core.two_way.base.TwoWayContext`.  A context created
standalone gets a private cache (so repeated joins on one context, e.g.
``PJ``'s restart refills, build the bound once); contexts created by an
:class:`~repro.core.nway.spec.NWayJoinSpec` share one cache across all
query edges, so a star spec whose edges repeat the centre set as ``P``
pays for one reach-mass propagation total instead of one per edge.
Every build increments ``engine.stats.bound_builds`` and every cache hit
``engine.stats.bound_cache_hits`` — the counters behind the
``bound_cache`` section of ``BENCH_walks.json``.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.core.dht import DHTParams
from repro.walks.engine import WalkEngine


class ScoreUpperBound(Protocol):
    """Tail bound interface shared by X and Y bounds.

    ``tail(l, q)`` returns ``U_l^+`` such that
    ``h_d(p, q) <= h_l(p, q) + U_l^+`` for every ``p`` in the join's left
    set.  ``q`` is a *graph* node id (only the Y bound actually uses it).
    """

    name: str

    def tail(self, l: int, q: int) -> float:
        """Upper bound on the score contribution of steps ``l+1 .. d``."""
        ...


class XBound:
    """Lemma 2: ``X_l^+ = alpha * lambda^{l+1} / (1 - lambda)``.

    Independent of the data and of ``q``; ``O(1)`` per query after a
    trivial precomputation of the powers.
    """

    name = "X"

    def __init__(self, params: DHTParams, d: int) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self._d = d
        scale = params.alpha / (1.0 - params.decay)
        self._tails = scale * params.decay ** np.arange(1, d + 2)
        # _tails[l] == alpha * lambda^{l+1} / (1-lambda) for l = 0..d

    @property
    def d(self) -> int:
        """Walk length the bound was built for."""
        return self._d

    def tail(self, l: int, q: int = -1) -> float:
        """``X_l^+``; valid for any ``q`` (argument ignored)."""
        if not (0 <= l <= self._d):
            raise ValueError(f"l must be in [0, {self._d}], got {l}")
        return float(self._tails[l])


class YBound:
    """Theorem 1: reach-mass tail ``Y_l^+(P, q)``.

    Parameters
    ----------
    engine:
        Walk engine for the join's graph.
    params:
        DHT coefficients.
    sources:
        The left node set ``P`` of the 2-way join.
    d:
        Full walk length.

    Notes
    -----
    The constructor runs one ``d``-step unrestricted propagation from all
    of ``P`` (cost ``O(d |E_G|)``), caches
    ``c_i(q) = alpha * lambda^i * min(sum_p S_i(p, q), 1)`` for the whole
    graph, and serves ``Y_l^+(P, q) = sum_{i > l} c_i(q)`` from suffix
    sums — ``O(1)`` per ``(l, q)`` query, ``O(d |V_G|)`` memory, matching
    the complexity stated in Section VI-C.
    """

    name = "Y"

    def __init__(
        self,
        engine: WalkEngine,
        params: DHTParams,
        sources: Sequence[int],
        d: int,
    ) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self._d = d
        engine.stats.add("bound_builds", 1)
        reach = engine.reach_mass_series(sources, d)  # (d, n)
        capped = np.minimum(reach, 1.0)
        weights = (params.alpha * params.decay ** np.arange(1, d + 1))[:, None]
        contributions = capped * weights  # c_i(q), shape (d, n)
        # suffix[l, q] = sum_{i = l+1 .. d} c_i(q), for l = 0..d
        n = reach.shape[1]
        suffix = np.zeros((d + 1, n), dtype=np.float64)
        suffix[:d] = np.cumsum(contributions[::-1], axis=0)[::-1]
        self._suffix = suffix

    @property
    def d(self) -> int:
        """Walk length the bound was built for."""
        return self._d

    def tail(self, l: int, q: int) -> float:
        """``Y_l^+(P, q)`` for graph node ``q``."""
        if not (0 <= l <= self._d):
            raise ValueError(f"l must be in [0, {self._d}], got {l}")
        return float(self._suffix[l, q])
