"""The paper's core contribution: DHT scoring and join algorithms."""

from repro.core.bounds import XBound, YBound
from repro.core.dht import DHTParams, exact_dht_score, exact_dht_to_target

__all__ = [
    "DHTParams",
    "XBound",
    "YBound",
    "exact_dht_score",
    "exact_dht_to_target",
]
