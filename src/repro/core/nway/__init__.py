"""n-way joins over DHT: NL, AP, PJ, and PJ-i."""

from repro.core.nway.aggregates import AVG, MAX, MIN, SUM, aggregate_by_name
from repro.core.nway.all_pairs import AllPairsJoin, all_pairs_join
from repro.core.nway.candidates import CandidateAnswer
from repro.core.nway.nested_loop import NestedLoopJoin, nested_loop_join
from repro.core.nway.partial_join import PartialJoin, partial_join
from repro.core.nway.partial_join_inc import (
    PartialJoinIncremental,
    partial_join_incremental,
)
from repro.core.nway.query_graph import QueryGraph
from repro.core.nway.spec import NWayJoinSpec

__all__ = [
    "AVG",
    "MAX",
    "MIN",
    "SUM",
    "AllPairsJoin",
    "CandidateAnswer",
    "NWayJoinSpec",
    "NestedLoopJoin",
    "PartialJoin",
    "PartialJoinIncremental",
    "QueryGraph",
    "aggregate_by_name",
    "all_pairs_join",
    "nested_loop_join",
    "partial_join",
    "partial_join_incremental",
]
