"""The All Pairs baseline ``AP`` (Section III-B, solution 2).

``AP`` decomposes the n-way join into one *complete* 2-way join per query
edge — every ``|R_i| x |R_j|`` pair is scored — and rank-joins the fully
materialised, sorted lists with PBRJ.  It avoids ``NL``'s per-tuple
re-computation but still pays for all-pair DHT scores, of which (the
paper observes) under 1% are ever used.

The paper implements ``AP``'s ``twoWayJoin`` with ``F-BJ``: since all
pairs are needed anyway, pruning buys nothing and forward walks are the
simplest complete scorer.  ``B-BJ`` is offered as a faster alternative
materialiser (it changes nothing about which results are produced); it
propagates its targets in batched blocks and, through the spec's shared
walk cache, reuses full-depth walks across edges whose right sets
overlap (star / clique query graphs).
"""

from __future__ import annotations

from typing import List

from repro.core.nway.candidates import CandidateAnswer
from repro.core.nway.spec import NWayJoinSpec
from repro.core.two_way.backward import BackwardBasicJoin
from repro.core.two_way.base import sort_pairs
from repro.core.two_way.forward import ForwardBasicJoin
from repro.graph.validation import GraphValidationError
from repro.rankjoin.inputs import MaterializedInput
from repro.rankjoin.pbrj import PBRJ

_MATERIALIZERS = {
    "f-bj": ForwardBasicJoin,
    "b-bj": BackwardBasicJoin,
}


class AllPairsJoin:
    """``AP``: full per-edge materialisation + PBRJ rank join.

    ``plan`` (or ``spec.plan``) chooses per-edge materialiser
    (``f-bj``/``b-bj``), build order, and ``b-bj``'s block width; the
    materialised lists are complete either way, so plans only move
    cost, never answers.
    """

    name = "AP"

    def __init__(self, spec: NWayJoinSpec, two_way: str = "f-bj", plan=None) -> None:
        if two_way.lower() not in _MATERIALIZERS:
            raise GraphValidationError(
                f"unknown AP materializer {two_way!r}; "
                f"choose from {sorted(_MATERIALIZERS)}"
            )
        self._spec = spec
        self._default_operator = two_way.lower()
        self._plan = plan
        self.stats = None

    def run(self) -> List[CandidateAnswer]:
        """Materialise every edge's full join, then rank-join."""
        spec = self._spec
        if spec.k == 0:
            return []
        plan = spec.resolve_plan(
            "ap", plan=self._plan, default_operator=self._default_operator
        )
        self.plan = plan
        num_edges = spec.query_graph.num_edges
        inputs = [None] * num_edges
        for e in plan.build_order:
            ep = plan.edges[e]
            materializer_cls = _MATERIALIZERS[ep.operator]
            with spec.trace_edge_span(e, ep.operator):
                if ep.operator == "b-bj" and ep.block_size is not None:
                    materializer = materializer_cls(
                        spec.edge_context(e), block_size=ep.block_size
                    )
                else:
                    materializer = materializer_cls(spec.edge_context(e))
                pairs = sort_pairs(materializer.all_pairs())
                inputs[e] = MaterializedInput(
                    pairs, name=spec.query_graph.edge_name(e)
                )
        with spec.engine.trace_span("rankjoin", self.name):
            driver = PBRJ(spec.query_graph, spec.aggregate, inputs, spec.k)
            answers = driver.run()
        self.stats = driver.stats
        return answers


def all_pairs_join(spec: NWayJoinSpec, two_way: str = "f-bj", plan=None):
    """Convenience: run ``AP`` on a spec and return its answers."""
    return AllPairsJoin(spec, two_way=two_way, plan=plan).run()
