"""The Incremental Partial Join ``PJ-i`` (Section VI-D).

Identical rank-join structure to ``PJ``, but each query edge keeps an
:class:`~repro.core.two_way.incremental.IncrementalTwoWayJoin`: the
top-``m`` prefix is computed by a ``B-IDJ`` instrumented to retain its
bound information in the ``F`` structure, and every later
``getNextNodePair`` is answered by refining ``F`` instead of re-running a
join from scratch.  This is the paper's best n-way algorithm (up to 50x
faster than ``PJ``; two orders of magnitude at ``k = 200``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.nway.candidates import CandidateAnswer
from repro.core.nway.spec import NWayJoinSpec
from repro.core.two_way.backward import x_bound_factory, y_bound_factory
from repro.core.two_way.incremental import IncrementalTwoWayJoin
from repro.graph.validation import GraphValidationError
from repro.rankjoin.inputs import LazyInput
from repro.rankjoin.pbrj import PBRJ

_BOUND_FACTORIES = {
    "x": x_bound_factory,
    "y": y_bound_factory,
}


@dataclass
class PartialJoinIncStats:
    """Instrumentation of one ``PJ-i`` run."""

    next_pair_calls: int = 0
    rank_join_pulls: int = 0
    pulls_per_edge: List[int] = field(default_factory=list)


class PartialJoinIncremental:
    """``PJ-i``: top-``m`` prefixes + PBRJ + F-structure refills.

    Parameters
    ----------
    spec:
        The validated join inputs.
    m:
        Per-edge prefix length (default 50, the paper's setting).
    bound:
        Upper-bound flavour for the underlying ``B-IDJ``; ``"y"``
        (default, the paper's choice) or ``"x"``.
    plan:
        Optional override of ``spec.plan``.  ``PJ-i``'s incremental
        ``F``-structure is its own operator, so the planner only
        chooses the edge *build order* here (walk-cache residency),
        never the operator.
    """

    name = "PJ-i"

    def __init__(
        self, spec: NWayJoinSpec, m: int = 50, bound: str = "y", plan=None
    ) -> None:
        if m < 0:
            raise GraphValidationError(f"m must be >= 0, got {m}")
        bound = bound.lower()
        try:
            self._bound_factory = _BOUND_FACTORIES[bound]
        except KeyError:
            raise GraphValidationError(
                f"unknown bound {bound!r}; choose from {sorted(_BOUND_FACTORIES)}"
            ) from None
        self._spec = spec
        self._m = m
        self._default_operator = f"b-idj-{bound}"
        self._plan = plan
        self.stats = PartialJoinIncStats()

    def run(self) -> List[CandidateAnswer]:
        """Execute ``PJ-i`` and return the top-``k`` answers."""
        spec = self._spec
        if spec.k == 0:
            return []
        plan = spec.resolve_plan(
            "pj-i",
            plan=self._plan,
            default_operator=self._default_operator,
            m=self._m,
        )
        self.plan = plan
        num_edges = spec.query_graph.num_edges
        inputs: List[LazyInput] = [None] * num_edges
        joins = []
        for e in plan.build_order:
            operator = plan.edges[e].operator
            with spec.trace_edge_span(e, operator):
                context = spec.edge_context(e)
                join = IncrementalTwoWayJoin(
                    context, bound_factory=self._bound_factory
                )
                joins.append(join)
                initial = join.top(self._m)

            def refill(join=join, e=e, operator=operator):
                # F-structure refinements trace as ``refill`` spans so
                # explain-analyze attributes their walks to the edge.
                with spec.trace_edge_span(e, operator, kind="refill"):
                    return join.next_pair()

            inputs[e] = LazyInput(
                initial,
                refill=refill,
                name=spec.query_graph.edge_name(e),
            )
        with spec.engine.trace_span("rankjoin", self.name):
            driver = PBRJ(spec.query_graph, spec.aggregate, inputs, spec.k)
            answers = driver.run()
        self.stats.next_pair_calls = sum(inp.refill_calls for inp in inputs)
        self.stats.rank_join_pulls = driver.stats.pulls
        self.stats.pulls_per_edge = driver.stats.pulls_per_edge
        return answers


def partial_join_incremental(
    spec: NWayJoinSpec, m: int = 50, bound: str = "y", plan=None
):
    """Convenience: run ``PJ-i`` on a spec and return its answers."""
    return PartialJoinIncremental(spec, m=m, bound=bound, plan=plan).run()
