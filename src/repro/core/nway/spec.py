"""Shared validation and typing for n-way joins (Definitions 1–4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.bounds_cache import BoundPlanCache
from repro.core.dht import DHTParams
from repro.core.two_way.base import TwoWayContext
from repro.core.nway.aggregates import MIN, Aggregate
from repro.core.nway.query_graph import QueryGraph
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError, validate_node_set
from repro.walks.cache import WalkCache
from repro.walks.engine import NULL_SPAN, WalkEngine


@dataclass
class NWayJoinSpec:
    """Validated inputs of one n-way join.

    Attributes
    ----------
    graph:
        The data graph ``G``.
    query_graph:
        ``Q`` (Definition 1); vertex ``i`` corresponds to
        ``node_sets[i]``.
    node_sets:
        One node set per query vertex.
    aggregate:
        Monotone ``f`` (Definition 2); defaults to ``MIN``, the paper's
        experimental default.
    k:
        Number of answers (Definition 4).
    params / d / epsilon:
        DHT configuration; defaults to ``DHT_lambda(0.2)`` with
        ``epsilon = 1e-6`` (``d = 8``), matching Section VII-A.
    walk_cache / share_walks:
        One :class:`~repro.walks.cache.WalkCache` is shared by every
        query edge of the join (created automatically unless
        ``share_walks`` is false), so edges whose node sets overlap —
        star and clique specs especially — never walk the same target
        twice.
    bound_cache / share_bounds:
        One :class:`~repro.bounds_cache.BoundPlanCache` shared by every
        query edge (created automatically unless ``share_bounds`` is
        false), the bound-layer twin of the walk cache: edges that
        agree on the left node set — every edge of a star spec, the
        repeated sets of a clique — build the ``Y_l^+`` reach-mass
        table and the ``B-BJ`` restricted-tail plan once instead of
        once per edge, and ``PJ`` restarts / ``PJ-i`` refinements reuse
        them too.  With ``share_bounds`` false each edge context falls
        back to a private cache (the pre-sharing, per-edge build cost).
    max_block_bytes:
        Optional resumable-block byte ceiling forwarded to every edge
        context; caps the per-edge walk-block memory of the deepening
        joins — ``B-IDJ`` for DHT specs, ``Series-IDJ`` for measure
        specs — which switch to bounded-memory chunked rounds with
        walk-cache spill under it (see
        :class:`~repro.core.two_way.base.TwoWayContext`).
    walk_cache_bytes:
        Optional byte budget for the automatically created shared walk
        cache (ignored when an explicit ``walk_cache`` is passed): the
        cache evicts least-recent targets until its retained vectors and
        resumable buffers fit, so a long n-way join's cache footprint is
        bounded no matter how many targets its edges touch.
    plan:
        How executors order and implement the per-edge joins:
        ``"fixed"`` (default) keeps index order with each executor's
        default operator — the pre-planner behaviour and the planner's
        bit-identity oracle; ``"auto"`` lets the cost-based planner
        (:mod:`repro.planner`) choose edge order, operators, and knobs
        from degree/skew statistics; an
        :class:`~repro.planner.plan.ExplainedPlan` instance replays a
        previously computed plan verbatim.  Resolution happens lazily
        in :meth:`resolve_plan` — the core layer holds only the value.
    measure:
        Optional :class:`repro.extensions.measures.SeriesMeasure`
        (duck-typed; the core layer never imports ``extensions``).
        ``None`` (default) is DHT: params/d/epsilon behave as above.
        With a measure set, the measure fixes its own truncation depth
        (``d = measure.d``; passing ``params``/``d``/``epsilon`` is an
        error) and both shared caches are keyed by the measure's
        :meth:`cache_key`, so a PPR spec and a DHT spec on the same
        graph keep fully isolated cache universes.  Measure specs are
        consumed by the n-way joins in
        :mod:`repro.extensions.series_join`; the DHT algorithms
        (``NL``/``AP``/``PJ``/``PJ-i``) require ``measure=None``.
    """

    graph: Graph
    query_graph: QueryGraph
    node_sets: List[List[int]]
    k: int
    aggregate: Aggregate = MIN
    params: DHTParams = None  # type: ignore[assignment]
    d: Optional[int] = None
    epsilon: Optional[float] = None
    engine: WalkEngine = field(default=None)  # type: ignore[assignment]
    walk_cache: Optional[WalkCache] = None
    share_walks: bool = True
    bound_cache: Optional[BoundPlanCache] = None
    share_bounds: bool = True
    max_block_bytes: Optional[int] = None
    walk_cache_bytes: Optional[int] = None
    plan: object = "fixed"
    measure: Optional[object] = None

    def __post_init__(self) -> None:
        if isinstance(self.plan, str):
            normalized = self.plan.lower()
            if normalized not in ("fixed", "auto"):
                raise GraphValidationError(
                    f"plan must be 'fixed', 'auto', or an ExplainedPlan; "
                    f"got {self.plan!r}"
                )
            self.plan = normalized
        elif not hasattr(self.plan, "build_order"):
            raise GraphValidationError(
                f"plan must be 'fixed', 'auto', or an ExplainedPlan; "
                f"got {self.plan!r}"
            )
        if self.measure is not None:
            if self.params is not None or self.d is not None or self.epsilon is not None:
                raise GraphValidationError(
                    "a measure spec fixes its own depth and coefficients; "
                    "do not pass params, d, or epsilon alongside measure"
                )
            self.d = self.measure.d
        else:
            if self.params is None:
                self.params = DHTParams.dht_lambda(0.2)
            if self.d is not None and self.epsilon is not None:
                raise GraphValidationError("pass either d or epsilon, not both")
            if self.d is None:
                eps = self.epsilon if self.epsilon is not None else 1e-6
                self.d = self.params.steps_for_epsilon(eps)
        if self.d < 1:
            raise GraphValidationError(f"d must be >= 1, got {self.d}")
        if self.k < 0:
            raise GraphValidationError(f"k must be >= 0, got {self.k}")
        if len(self.node_sets) != self.query_graph.num_vertices:
            raise GraphValidationError(
                f"{len(self.node_sets)} node sets for "
                f"{self.query_graph.num_vertices} query vertices"
            )
        self.node_sets = [
            validate_node_set(self.graph.num_nodes, nodes, f"node set {i}")
            for i, nodes in enumerate(self.node_sets)
        ]
        if self.engine is None:
            self.engine = WalkEngine(self.graph)
        key_params = (
            self.measure.cache_key() if self.measure is not None else self.params
        )
        if self.walk_cache is None and self.share_walks:
            self.walk_cache = WalkCache(
                self.engine, key_params, max_bytes=self.walk_cache_bytes
            )
        if self.bound_cache is None and self.share_bounds:
            self.bound_cache = BoundPlanCache(self.engine, key_params)
        if self.max_block_bytes is not None and self.max_block_bytes < 1:
            raise GraphValidationError(
                f"max_block_bytes must be >= 1, got {self.max_block_bytes}"
            )

    def resolve_plan(
        self,
        strategy: str,
        plan: object = None,
        default_operator: Optional[str] = None,
        m: int = 50,
        feedback: Optional[object] = None,
    ):
        """The :class:`~repro.planner.plan.ExplainedPlan` an executor
        should follow for ``strategy`` (``"pj"``/``"pj-i"``/``"ap"``).

        ``plan`` overrides this spec's own ``plan`` field; executors
        pass their constructor override here.  The planner package is
        imported lazily at call time, keeping the core layer free of a
        static dependency on :mod:`repro.planner` (which itself builds
        on core types).
        """
        from repro.planner.plan import resolve_spec_plan

        with self.engine.trace_span("plan", strategy):
            return resolve_spec_plan(
                self,
                strategy,
                plan=plan,
                default_operator=default_operator,
                m=m,
                feedback=feedback,
            )

    def trace_edge_span(
        self, edge_index: int, operator: Optional[str] = None,
        kind: str = "edge",
    ):
        """A trace span for one query edge's build (or ``refill``).

        Every n-way executor wraps its per-edge work in one of these,
        which is how explain-analyze attributes propagation steps,
        cache hits, and block bytes back to plan rows.  Alongside the
        engine-stat deltas the span captures the shared walk cache's
        hit/miss deltas (exact for single-threaded queries, advisory
        when the cache is concurrently shared).  No tracer installed
        means the shared no-op span — one attribute read.
        """
        tracer = self.engine.tracer
        if tracer is None:
            return NULL_SPAN
        extra = None
        if self.walk_cache is not None:
            cache_stats = self.walk_cache.stats
            extra = lambda: {  # noqa: E731 - tiny capture closure
                "walk_cache_hits": cache_stats.hits,
                "walk_cache_misses": cache_stats.misses,
            }
        return tracer.span(
            kind,
            name=self.query_graph.edge_name(edge_index),
            stats=self.engine.stats,
            extra=extra,
            edge=edge_index,
            operator=operator,
        )

    def edge_node_sets(self, edge_index: int) -> tuple:
        """The (left, right) node sets of query edge ``edge_index``."""
        i, j = self.query_graph.edges[edge_index]
        return self.node_sets[i], self.node_sets[j]

    def edge_context(self, edge_index: int) -> TwoWayContext:
        """A validated 2-way context for query edge ``edge_index``.

        Every n-way algorithm builds its per-edge joins through this
        method, so the spec's shared engine, walk cache, bound cache,
        and ``max_block_bytes`` ceiling reach each edge uniformly.
        """
        left, right = self.edge_node_sets(edge_index)
        self.engine.checkpoint("edge")
        return TwoWayContext(
            graph=self.graph,
            params=self.params,
            left=list(left),
            right=list(right),
            d=self.d,
            engine=self.engine,
            walk_cache=self.walk_cache,
            bound_cache=self.bound_cache,
            max_block_bytes=self.max_block_bytes,
            measure=self.measure,
        )
