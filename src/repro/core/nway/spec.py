"""Shared validation and typing for n-way joins (Definitions 1–4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.dht import DHTParams
from repro.core.nway.aggregates import MIN, Aggregate
from repro.core.nway.query_graph import QueryGraph
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError, validate_node_set
from repro.walks.cache import WalkCache
from repro.walks.engine import WalkEngine


@dataclass
class NWayJoinSpec:
    """Validated inputs of one n-way join.

    Attributes
    ----------
    graph:
        The data graph ``G``.
    query_graph:
        ``Q`` (Definition 1); vertex ``i`` corresponds to
        ``node_sets[i]``.
    node_sets:
        One node set per query vertex.
    aggregate:
        Monotone ``f`` (Definition 2); defaults to ``MIN``, the paper's
        experimental default.
    k:
        Number of answers (Definition 4).
    params / d / epsilon:
        DHT configuration; defaults to ``DHT_lambda(0.2)`` with
        ``epsilon = 1e-6`` (``d = 8``), matching Section VII-A.
    walk_cache / share_walks:
        One :class:`~repro.walks.cache.WalkCache` is shared by every
        query edge of the join (created automatically unless
        ``share_walks`` is false), so edges whose node sets overlap —
        star and clique specs especially — never walk the same target
        twice.
    """

    graph: Graph
    query_graph: QueryGraph
    node_sets: List[List[int]]
    k: int
    aggregate: Aggregate = MIN
    params: DHTParams = None  # type: ignore[assignment]
    d: Optional[int] = None
    epsilon: Optional[float] = None
    engine: WalkEngine = field(default=None)  # type: ignore[assignment]
    walk_cache: Optional[WalkCache] = None
    share_walks: bool = True

    def __post_init__(self) -> None:
        if self.params is None:
            self.params = DHTParams.dht_lambda(0.2)
        if self.d is not None and self.epsilon is not None:
            raise GraphValidationError("pass either d or epsilon, not both")
        if self.d is None:
            eps = self.epsilon if self.epsilon is not None else 1e-6
            self.d = self.params.steps_for_epsilon(eps)
        if self.d < 1:
            raise GraphValidationError(f"d must be >= 1, got {self.d}")
        if self.k < 0:
            raise GraphValidationError(f"k must be >= 0, got {self.k}")
        if len(self.node_sets) != self.query_graph.num_vertices:
            raise GraphValidationError(
                f"{len(self.node_sets)} node sets for "
                f"{self.query_graph.num_vertices} query vertices"
            )
        self.node_sets = [
            validate_node_set(self.graph.num_nodes, nodes, f"node set {i}")
            for i, nodes in enumerate(self.node_sets)
        ]
        if self.engine is None:
            self.engine = WalkEngine(self.graph)
        if self.walk_cache is None and self.share_walks:
            self.walk_cache = WalkCache(self.engine, self.params)

    def edge_node_sets(self, edge_index: int) -> tuple:
        """The (left, right) node sets of query edge ``edge_index``."""
        i, j = self.query_graph.edges[edge_index]
        return self.node_sets[i], self.node_sets[j]
