"""The Nested Loop baseline ``NL`` (Section III-B, solution 1).

Enumerates the full cross product ``R_1 x ... x R_n`` and, for every
candidate answer, computes a fresh DHT score for every query edge with a
forward walk — no sharing, no pruning.  This is the paper's strawman: it
is exponential in ``n`` and repeats identical DHT computations across
tuples, which is exactly why it "cannot complete in a reasonable time" at
``n >= 3`` (Fig. 7(a)).

``memoize_pairs=True`` deviates from the strict baseline by caching pair
scores; it is off by default and exists only so tests can cross-check the
enumeration logic quickly.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from repro.core.nway.candidates import CandidateAnswer
from repro.core.nway.spec import NWayJoinSpec


class NestedLoopJoin:
    """``NL``: exhaustive enumeration with per-tuple DHT evaluation."""

    name = "NL"

    def __init__(self, spec: NWayJoinSpec, memoize_pairs: bool = False) -> None:
        self._spec = spec
        self._memoize = memoize_pairs
        self._cache: Dict[Tuple[int, int], float] = {}
        self.tuples_scored = 0
        self.dht_computations = 0

    def run(self) -> List[CandidateAnswer]:
        """Enumerate, score, sort, and return the top-``k`` answers.

        Tuples in which some query edge would relate a node to itself are
        skipped (reflexive DHT is not a similarity; the fast algorithms
        exclude these pairs too).
        """
        spec = self._spec
        if spec.k == 0:
            return []
        edges = spec.query_graph.edges
        answers: List[CandidateAnswer] = []
        for nodes in itertools.product(*spec.node_sets):
            if any(nodes[i] == nodes[j] for i, j in edges):
                continue
            edge_scores = tuple(
                self._pair_score(nodes[i], nodes[j]) for i, j in edges
            )
            self.tuples_scored += 1
            answers.append(
                CandidateAnswer(tuple(nodes), spec.aggregate(edge_scores), edge_scores)
            )
        answers.sort(key=lambda a: (-a.score, a.nodes))
        return answers[: spec.k]

    def _pair_score(self, source: int, target: int) -> float:
        if self._memoize:
            key = (source, target)
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        spec = self._spec
        series = spec.engine.forward_first_hit_series(source, target, spec.d)
        score = spec.params.score_from_series(series)
        self.dht_computations += 1
        if self._memoize:
            self._cache[(source, target)] = score
        return score


def nested_loop_join(spec: NWayJoinSpec, memoize_pairs: bool = False):
    """Convenience: run ``NL`` on a spec and return its answers."""
    return NestedLoopJoin(spec, memoize_pairs=memoize_pairs).run()
