"""Candidate buffers and partial-answer expansion (Fig. 4 / Algorithm 1).

During a rank join, every pair pulled from an edge's 2-way join is kept
in that edge's *candidate buffer* ``C``.  When a new pair ``(r_i, r_j)``
arrives on edge ``e``, ``getCandidate`` assembles every complete
candidate answer that uses the new pair on ``e`` and otherwise only pairs
already buffered — generating each answer exactly once across the whole
run (an answer materialises at the moment its last constituent pair is
pulled).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.core.nway.aggregates import Aggregate
from repro.core.nway.query_graph import QueryGraph
from repro.core.two_way.base import ScoredPair


class CandidateAnswer(NamedTuple):
    """A complete n-tuple with its aggregate and per-edge scores."""

    nodes: Tuple[int, ...]
    score: float
    edge_scores: Tuple[float, ...]


class CandidateBuffer:
    """Buffer ``C`` for one query edge, indexed by both endpoints.

    The paper describes ``C`` as a 2D array ``|R_i| x |R_j|``; we use
    hash indexes instead so that lookup by either endpoint is ``O(1)`` in
    the number of matches, independent of set sizes.
    """

    def __init__(self) -> None:
        self._score: Dict[Tuple[int, int], float] = {}
        self._by_left: Dict[int, List[Tuple[int, float]]] = {}
        self._by_right: Dict[int, List[Tuple[int, float]]] = {}

    def __len__(self) -> int:
        return len(self._score)

    def add(self, pair: ScoredPair) -> None:
        """Insert a pulled pair (idempotent inserts are rejected upstream
        by the sorted-stream contract, so no dedup here)."""
        key = (pair.left, pair.right)
        self._score[key] = pair.score
        self._by_left.setdefault(pair.left, []).append((pair.right, pair.score))
        self._by_right.setdefault(pair.right, []).append((pair.left, pair.score))

    def score_of(self, left: int, right: int) -> Optional[float]:
        """Buffered score of ``(left, right)``, or ``None`` if absent."""
        return self._score.get((left, right))

    def rights_for(self, left: int) -> List[Tuple[int, float]]:
        """All buffered ``(right, score)`` partners of ``left``."""
        return self._by_left.get(left, [])

    def lefts_for(self, right: int) -> List[Tuple[int, float]]:
        """All buffered ``(left, score)`` partners of ``right``."""
        return self._by_right.get(right, [])


class CandidateGenerator:
    """``getCandidate``: expand a new pair into complete answers.

    Holds one :class:`CandidateBuffer` per query edge and the query
    graph's cached expansion orders.
    """

    def __init__(self, query_graph: QueryGraph, aggregate: Aggregate) -> None:
        self._query = query_graph
        self._aggregate = aggregate
        self._buffers = [CandidateBuffer() for _ in query_graph.edges]
        self._edge_list = query_graph.edges

    def buffer(self, edge_index: int) -> CandidateBuffer:
        """The candidate buffer of edge ``edge_index``."""
        return self._buffers[edge_index]

    def on_new_pair(self, edge_index: int, pair: ScoredPair) -> List[CandidateAnswer]:
        """Buffer the pair and return every newly completable answer.

        Implements Fig. 4: seed a partial assignment with the new pair's
        endpoints, then grow it along the cached expansion order, binding
        unbound vertices from buffer lookups and checking already-bound
        ones against buffered pairs.
        """
        self._buffers[edge_index].add(pair)
        i, j = self._edge_list[edge_index]
        assignment: Dict[int, int] = {i: pair.left, j: pair.right}
        order = self._query.expansion_order(edge_index)
        edge_scores: Dict[int, float] = {edge_index: pair.score}
        results: List[CandidateAnswer] = []
        self._expand(order, 0, assignment, edge_scores, results)
        return results

    def _expand(
        self,
        order: List[int],
        depth: int,
        assignment: Dict[int, int],
        edge_scores: Dict[int, float],
        results: List[CandidateAnswer],
    ) -> None:
        if depth == len(order):
            nodes = tuple(assignment[v] for v in range(self._query.num_vertices))
            ordered_scores = tuple(
                edge_scores[e] for e in range(len(self._edge_list))
            )
            results.append(
                CandidateAnswer(nodes, self._aggregate(ordered_scores), ordered_scores)
            )
            return
        edge = order[depth]
        i, j = self._edge_list[edge]
        buffer = self._buffers[edge]
        left_bound = i in assignment
        right_bound = j in assignment
        if left_bound and right_bound:
            score = buffer.score_of(assignment[i], assignment[j])
            if score is None:
                return  # dead end: required pair not buffered yet
            edge_scores[edge] = score
            self._expand(order, depth + 1, assignment, edge_scores, results)
            del edge_scores[edge]
        elif left_bound:
            for right, score in list(buffer.rights_for(assignment[i])):
                assignment[j] = right
                edge_scores[edge] = score
                self._expand(order, depth + 1, assignment, edge_scores, results)
                del edge_scores[edge]
                del assignment[j]
        elif right_bound:
            for left, score in list(buffer.lefts_for(assignment[j])):
                assignment[i] = left
                edge_scores[edge] = score
                self._expand(order, depth + 1, assignment, edge_scores, results)
                del edge_scores[edge]
                del assignment[i]
        else:  # pragma: no cover - expansion order guarantees a bound endpoint
            raise AssertionError("expansion order left an edge unanchored")
