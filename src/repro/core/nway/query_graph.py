"""The query graph ``Q`` (Definition 1) and its standard shapes.

A query graph is a small directed graph whose vertices stand for node
sets ``R_1 .. R_n`` of the data graph; each directed edge ``(R_i, R_j)``
contributes the DHT score ``h(r_i, r_j)`` to the aggregate.  DHT is
asymmetric, so edge direction matters; the paper draws an undirected line
for the bidirectional pair ``(R_i -> R_j, R_j -> R_i)`` (footnote 2).

The evaluation uses four shapes (Fig. 2): chains, triangles, stars, and
(for the ``|E_Q|`` sweep) denser graphs up to cliques; all are available
as constructors here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.validation import GraphValidationError

QueryEdge = Tuple[int, int]


class QueryGraph:
    """An unweighted directed query graph over node-set vertices.

    Parameters
    ----------
    num_vertices:
        Number of node sets ``n >= 2``.
    edges:
        Directed vertex pairs.  Both directions between the same vertices
        are allowed (and are distinct edges); duplicate directed edges and
        self-loops are not.
    names:
        Optional display names per vertex (e.g. ``["DB", "AI", "SYS"]``).

    Raises
    ------
    GraphValidationError
        If the graph is empty, has invalid/duplicate edges, leaves a
        vertex untouched, or is disconnected — candidate answers of a
        disconnected query cannot be assembled edge-by-edge, and the
        paper's queries are all connected.
    """

    def __init__(
        self,
        num_vertices: int,
        edges: Sequence[QueryEdge],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        if num_vertices < 2:
            raise GraphValidationError(
                f"a query graph needs >= 2 vertices, got {num_vertices}"
            )
        self._num_vertices = int(num_vertices)
        seen = set()
        self._edges: List[QueryEdge] = []
        for edge in edges:
            i, j = int(edge[0]), int(edge[1])
            if not (0 <= i < num_vertices and 0 <= j < num_vertices):
                raise GraphValidationError(f"query edge ({i}, {j}) out of range")
            if i == j:
                raise GraphValidationError(f"query self-loop on vertex {i}")
            if (i, j) in seen:
                raise GraphValidationError(f"duplicate query edge ({i}, {j})")
            seen.add((i, j))
            self._edges.append((i, j))
        if not self._edges:
            raise GraphValidationError("a query graph needs at least one edge")
        if names is not None:
            names = list(names)
            if len(names) != num_vertices:
                raise GraphValidationError(
                    f"{len(names)} names for {num_vertices} vertices"
                )
        self._names = names
        self._check_coverage_and_connectivity()
        self._expansion_cache: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of node-set vertices ``n``."""
        return self._num_vertices

    @property
    def edges(self) -> List[QueryEdge]:
        """The directed edges, in insertion order (input/list order)."""
        return list(self._edges)

    @property
    def num_edges(self) -> int:
        """``|E_Q|``."""
        return len(self._edges)

    def name(self, vertex: int) -> str:
        """Display name of a vertex (falls back to ``R{i+1}``)."""
        if self._names is not None:
            return self._names[vertex]
        return f"R{vertex + 1}"

    def edge_name(self, index: int) -> str:
        """Display name of edge ``index``, e.g. ``"DB->AI"``."""
        i, j = self._edges[index]
        return f"{self.name(i)}->{self.name(j)}"

    # ------------------------------------------------------------------
    # Expansion orders for candidate generation
    # ------------------------------------------------------------------

    def expansion_order(self, start_edge: int) -> List[int]:
        """Edge indices ordered so each edge touches an assigned vertex.

        Candidate generation (Fig. 4) starts from a freshly pulled pair on
        ``start_edge`` and grows the partial answer one edge at a time;
        the order guarantees every expanded edge has at least one endpoint
        already bound.  Connectivity (validated in the constructor) makes
        such an order exist; results are cached per start edge.
        """
        if not (0 <= start_edge < len(self._edges)):
            raise GraphValidationError(f"edge index {start_edge} out of range")
        cached = self._expansion_cache.get(start_edge)
        if cached is not None:
            return list(cached)
        assigned = set(self._edges[start_edge])
        remaining = [e for e in range(len(self._edges)) if e != start_edge]
        order: List[int] = []
        while remaining:
            progressed = False
            for idx, e in enumerate(remaining):
                i, j = self._edges[e]
                if i in assigned or j in assigned:
                    order.append(e)
                    assigned.update((i, j))
                    remaining.pop(idx)
                    progressed = True
                    break
            if not progressed:  # pragma: no cover - connectivity guarantees
                raise GraphValidationError("query graph is disconnected")
        self._expansion_cache[start_edge] = order
        return list(order)

    # ------------------------------------------------------------------
    # Standard shapes (Fig. 2)
    # ------------------------------------------------------------------

    @classmethod
    def chain(
        cls,
        n: int,
        bidirectional: bool = False,
        names: Optional[Sequence[str]] = None,
    ) -> "QueryGraph":
        """``R1 -> R2 -> ... -> Rn`` (Fig. 2(b)); the efficiency
        experiments' default shape (Section VII-C)."""
        edges: List[QueryEdge] = []
        for i in range(n - 1):
            edges.append((i, i + 1))
            if bidirectional:
                edges.append((i + 1, i))
        return cls(n, edges, names=names)

    @classmethod
    def cycle(
        cls,
        n: int,
        bidirectional: bool = False,
        names: Optional[Sequence[str]] = None,
    ) -> "QueryGraph":
        """``R1 -> R2 -> ... -> Rn -> R1``."""
        if n < 3:
            raise GraphValidationError(f"cycle needs >= 3 vertices, got {n}")
        edges: List[QueryEdge] = []
        for i in range(n):
            j = (i + 1) % n
            edges.append((i, j))
            if bidirectional:
                edges.append((j, i))
        return cls(n, edges, names=names)

    @classmethod
    def triangle(
        cls,
        bidirectional: bool = True,
        names: Optional[Sequence[str]] = None,
    ) -> "QueryGraph":
        """The 3-clique of Fig. 2(a).

        Following footnote 2, the paper's drawn triangle lines denote
        both directions, hence ``bidirectional=True`` by default.
        """
        return cls.cycle(3, bidirectional=bidirectional, names=names)

    @classmethod
    def star(
        cls,
        n_satellites: int,
        bidirectional: bool = True,
        names: Optional[Sequence[str]] = None,
    ) -> "QueryGraph":
        """Star with the centre at vertex 0 (Fig. 2(c)).

        Example 4's 6-way join is ``star(5)`` with the photography group
        at the centre.
        """
        if n_satellites < 1:
            raise GraphValidationError("star needs >= 1 satellite")
        edges: List[QueryEdge] = []
        for leaf in range(1, n_satellites + 1):
            edges.append((0, leaf))
            if bidirectional:
                edges.append((leaf, 0))
        return cls(n_satellites + 1, edges, names=names)

    @classmethod
    def clique(
        cls,
        n: int,
        bidirectional: bool = False,
        names: Optional[Sequence[str]] = None,
    ) -> "QueryGraph":
        """All ordered (or all unordered, if not bidirectional) pairs."""
        edges: List[QueryEdge] = []
        for i in range(n):
            for j in range(i + 1, n):
                edges.append((i, j))
                if bidirectional:
                    edges.append((j, i))
        return cls(n, edges, names=names)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_coverage_and_connectivity(self) -> None:
        adjacency: List[set] = [set() for _ in range(self._num_vertices)]
        touched = set()
        for i, j in self._edges:
            adjacency[i].add(j)
            adjacency[j].add(i)
            touched.update((i, j))
        if touched != set(range(self._num_vertices)):
            missing = sorted(set(range(self._num_vertices)) - touched)
            raise GraphValidationError(
                f"query vertices {missing} have no incident edges"
            )
        # BFS from vertex 0 over the undirected skeleton.
        frontier = [0]
        visited = {0}
        while frontier:
            u = frontier.pop()
            for v in adjacency[u]:
                if v not in visited:
                    visited.add(v)
                    frontier.append(v)
        if visited != set(range(self._num_vertices)):
            raise GraphValidationError("query graph must be connected")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryGraph(num_vertices={self._num_vertices}, edges={self._edges})"
