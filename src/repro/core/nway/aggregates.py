"""Monotone aggregate functions over per-edge DHT scores (Definition 2).

The aggregate score of a candidate answer applies ``f`` to the ``|E_Q|``
DHT scores of its query-graph edges.  ``f`` must be monotone
non-decreasing in every argument — this is what makes the HRJN corner
bound valid.  The paper's experiments use ``MIN`` (default) and mention
``SUM``; ``MAX`` and ``AVG`` are provided because they are also monotone
and exercise different tie structures in tests.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np


class Aggregate(Protocol):
    """A monotone aggregate: maps edge-score vectors to a total score."""

    name: str

    def __call__(self, scores: Sequence[float]) -> float:
        """Aggregate the per-edge scores (order matches ``E_Q``)."""
        ...


class SumAggregate:
    """``SUM``: overall closeness of the answer's node pairs."""

    name = "SUM"

    def __call__(self, scores: Sequence[float]) -> float:
        return float(sum(scores))


class MinAggregate:
    """``MIN``: the weakest link among the answer's node pairs.

    The paper's default (Section VII-A): an answer is only as good as its
    least-similar pair.
    """

    name = "MIN"

    def __call__(self, scores: Sequence[float]) -> float:
        return float(min(scores))


class MaxAggregate:
    """``MAX``: the strongest link (monotone, mostly useful in tests)."""

    name = "MAX"

    def __call__(self, scores: Sequence[float]) -> float:
        return float(max(scores))


class AverageAggregate:
    """``AVG``: SUM scaled by ``1/|E_Q|`` — same ranking as SUM for a
    fixed query graph, kept for API completeness."""

    name = "AVG"

    def __call__(self, scores: Sequence[float]) -> float:
        values = list(scores)
        return float(sum(values) / len(values))


SUM = SumAggregate()
MIN = MinAggregate()
MAX = MaxAggregate()
AVG = AverageAggregate()

_BY_NAME = {agg.name: agg for agg in (SUM, MIN, MAX, AVG)}


def aggregate_by_name(name: str) -> Aggregate:
    """Look up a built-in aggregate by (case-insensitive) name."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown aggregate {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None


def check_monotone(
    aggregate: Aggregate,
    arity: int,
    rng: np.random.Generator,
    trials: int = 64,
    low: float = -5.0,
    high: float = 5.0,
) -> bool:
    """Spot-check that ``aggregate`` is monotone non-decreasing.

    Samples random score vectors, bumps one coordinate upward, and checks
    the aggregate does not decrease.  Used by tests and by defensive
    validation when a user supplies a custom ``f``.
    """
    for _ in range(trials):
        base = rng.uniform(low, high, size=arity)
        bumped = base.copy()
        coordinate = int(rng.integers(0, arity))
        bumped[coordinate] += float(rng.uniform(0.0, high - low))
        if aggregate(list(bumped)) < aggregate(list(base)) - 1e-12:
            return False
    return True
