"""The Partial Join algorithm ``PJ`` (Section IV, Algorithm 1).

``PJ`` evaluates a *top-m* 2-way join per query edge (``m`` tunable,
default 50 = the paper's setting) and rank-joins the short sorted lists.
When the rank join needs a pair beyond the top-``m`` prefix of some edge
(``getNextNodePair``, step 10), plain ``PJ`` re-runs a full top-``(m+1)``
2-way join from scratch and takes its last element — correct but
expensive, which is precisely the weakness ``PJ-i`` fixes.  The restart
joins do at least run against the spec's shared walk cache, so a re-run
re-scores cached walks instead of re-propagating them; the *algorithmic*
waste (re-ranking from scratch) remains, keeping the PJ/PJ-i comparison
honest.

The per-edge 2-way joins default to ``B-IDJ-Y``, the paper's best
algorithm for this role (Section VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.nway.candidates import CandidateAnswer
from repro.core.nway.spec import NWayJoinSpec
from repro.core.two_way.backward import (
    BackwardBasicJoin,
    BackwardIDJX,
    BackwardIDJY,
)
from repro.core.two_way.base import ScoredPair, TwoWayContext
from repro.core.two_way.forward import ForwardBasicJoin, ForwardIDJ
from repro.graph.validation import GraphValidationError
from repro.rankjoin.inputs import LazyInput
from repro.rankjoin.pbrj import PBRJ

_TWO_WAY_ALGORITHMS = {
    "f-bj": ForwardBasicJoin,
    "f-idj": ForwardIDJ,
    "b-bj": BackwardBasicJoin,
    "b-idj-x": BackwardIDJX,
    "b-idj-y": BackwardIDJY,
}


def two_way_algorithm_by_name(name: str) -> Callable:
    """Factory for a 2-way join algorithm class by its paper name."""
    try:
        return _TWO_WAY_ALGORITHMS[name.lower()]
    except KeyError:
        raise GraphValidationError(
            f"unknown 2-way algorithm {name!r}; "
            f"choose from {sorted(_TWO_WAY_ALGORITHMS)}"
        ) from None


@dataclass
class PartialJoinStats:
    """Instrumentation of one ``PJ`` run."""

    initial_join_time: float = 0.0
    next_pair_calls: int = 0
    rank_join_pulls: int = 0
    pulls_per_edge: List[int] = field(default_factory=list)


class _RestartProvider:
    """``getNextNodePair`` the slow way: rerun top-``(m+1)`` from scratch."""

    def __init__(self, context: TwoWayContext, algorithm_cls: Callable, m: int) -> None:
        self._context = context
        self._algorithm_cls = algorithm_cls
        self._m = m
        self.restarts = 0

    def initial(self) -> List[ScoredPair]:
        return self._algorithm_cls(self._context).top_k(self._m)

    def next_pair(self) -> Optional[ScoredPair]:
        if self._m >= self._context.num_pairs:
            return None
        self._m += 1
        self.restarts += 1
        result = self._algorithm_cls(self._context).top_k(self._m)
        if len(result) < self._m:
            return None
        return result[-1]


class PartialJoin:
    """``PJ`` (Algorithm 1): top-``m`` prefixes + PBRJ + restart refills.

    Parameters
    ----------
    spec:
        The validated join inputs.
    m:
        Per-edge prefix length; ``0 <= m``.  The paper's default is 50.
    two_way:
        Name of the default 2-way join algorithm used for both the
        initial prefixes and the restart refills (``"b-idj-y"``).
        Under ``plan="auto"`` the planner may pick a different operator
        per edge; the default seeds its candidate preference.
    plan:
        Optional override of ``spec.plan`` — ``"fixed"``, ``"auto"``,
        or a replayed :class:`~repro.planner.plan.ExplainedPlan`.
    """

    name = "PJ"

    def __init__(
        self,
        spec: NWayJoinSpec,
        m: int = 50,
        two_way: str = "b-idj-y",
        plan=None,
    ) -> None:
        if m < 0:
            raise GraphValidationError(f"m must be >= 0, got {m}")
        self._spec = spec
        self._m = m
        two_way_algorithm_by_name(two_way)  # validate the default eagerly
        self._default_operator = two_way.lower()
        self._plan = plan
        self.stats = PartialJoinStats()

    def run(self) -> List[CandidateAnswer]:
        """Execute ``PJ`` and return the top-``k`` answers."""
        spec = self._spec
        if spec.k == 0:
            return []
        plan = spec.resolve_plan(
            "pj",
            plan=self._plan,
            default_operator=self._default_operator,
            m=self._m,
        )
        self.plan = plan
        num_edges = spec.query_graph.num_edges
        inputs: List[Optional[LazyInput]] = [None] * num_edges
        providers = []
        # The plan orders the *builds*; the PBRJ driver still consumes
        # ``inputs`` positionally (``inputs[e]`` streams query edge
        # ``e``), so build order affects walk-cache residency — never
        # which pairs an edge yields.
        for e in plan.build_order:
            operator = plan.edges[e].operator
            algorithm_cls = two_way_algorithm_by_name(operator)
            with spec.trace_edge_span(e, operator):
                context = spec.edge_context(e)
                provider = _RestartProvider(context, algorithm_cls, self._m)
                providers.append(provider)
                initial = provider.initial()

            def refill(provider=provider, e=e, operator=operator):
                # Restart refills trace as ``refill`` spans so
                # explain-analyze attributes their walks to the edge.
                with spec.trace_edge_span(e, operator, kind="refill"):
                    return provider.next_pair()

            inputs[e] = LazyInput(
                initial,
                refill=refill,
                name=spec.query_graph.edge_name(e),
            )
        with spec.engine.trace_span("rankjoin", self.name):
            driver = PBRJ(spec.query_graph, spec.aggregate, inputs, spec.k)
            answers = driver.run()
        self.stats.next_pair_calls = sum(p.restarts for p in providers)
        self.stats.rank_join_pulls = driver.stats.pulls
        self.stats.pulls_per_edge = driver.stats.pulls_per_edge
        return answers


def partial_join(
    spec: NWayJoinSpec, m: int = 50, two_way: str = "b-idj-y", plan=None
):
    """Convenience: run ``PJ`` on a spec and return its answers."""
    return PartialJoin(spec, m=m, two_way=two_way, plan=plan).run()
