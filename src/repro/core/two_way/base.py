"""Shared types for 2-way joins over DHT.

A 2-way join (Section V) takes node sets ``P`` (left) and ``Q`` (right)
and returns the ``k`` pairs ``(p, q)`` with the highest truncated DHT
scores ``h_d(p, q)``.  All five algorithms in the paper — ``F-BJ``,
``F-IDJ``, ``B-BJ``, ``B-IDJ-X``, ``B-IDJ-Y`` — share the
:class:`TwoWayContext` prepared here and return identical results; they
differ only in how much work they avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, NamedTuple, Optional, Sequence

import numpy as np

from repro.bounds_cache import BoundPlanCache
from repro.core.dht import DHTParams
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError, validate_node_set
from repro.walks.cache import WalkCache
from repro.walks.engine import WalkEngine


class ScoredPair(NamedTuple):
    """A join result: left node, right node, truncated DHT score."""

    left: int
    right: int
    score: float


def sort_pairs(pairs: Sequence[ScoredPair]) -> List[ScoredPair]:
    """Sort pairs by descending score; ties broken by ``(left, right)``.

    The deterministic tie-break makes every algorithm return the same
    *sequence*, not just the same score multiset, which the equivalence
    tests rely on.
    """
    return sorted(pairs, key=lambda sp: (-sp.score, sp.left, sp.right))


def top_k_pairs(pairs: Sequence[ScoredPair], k: int) -> List[ScoredPair]:
    """The ``k`` highest-scoring pairs in descending order."""
    if k < 0:
        raise GraphValidationError(f"k must be >= 0, got {k}")
    return sort_pairs(pairs)[:k]


def kth_largest(values: Sequence[float], k: int) -> float:
    """``k``-th largest value, or ``-inf`` when fewer than ``k`` exist.

    ``O(len(values))`` via ``np.partition`` — the iterative-deepening
    joins call this once per round with every informative lower bound.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size < k:
        return float("-inf")
    return float(np.partition(values, values.size - k)[values.size - k])


class BoundedTopK:
    """Bounded accumulator of the ``k`` largest values pushed so far.

    Replaces the unbounded per-round ``lower_bounds`` list in the
    deepening joins: memory stays ``O(k)`` regardless of how many
    candidate scores a round produces.  Values are appended into a
    ``2k``-slot buffer that is compacted with ``np.partition`` whenever
    it fills, so the amortised cost per pushed value is ``O(1)``.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise GraphValidationError(f"k must be >= 1, got {k}")
        self._k = k
        self._capacity = max(2 * k, 64)
        self._buffer = np.empty(self._capacity, dtype=np.float64)
        self._size = 0
        self._count = 0

    @property
    def count(self) -> int:
        """Total number of values pushed."""
        return self._count

    def push(self, values) -> None:
        """Add a scalar or array of values."""
        values = np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel()
        if values.size == 0:
            return
        self._count += values.size
        position = 0
        while position < values.size:
            take = min(values.size - position, self._capacity - self._size)
            self._buffer[self._size : self._size + take] = values[
                position : position + take
            ]
            self._size += take
            position += take
            if self._size == self._capacity:
                self._compact()

    def kth_largest(self) -> float:
        """``k``-th largest value seen, or ``-inf`` if fewer than ``k``."""
        if self._count < self._k:
            return float("-inf")
        return kth_largest(self._buffer[: self._size], self._k)

    def _compact(self) -> None:
        # Keep only the k largest: they are the only candidates for the
        # k-th largest of everything seen.
        partitioned = np.partition(self._buffer[: self._size], self._size - self._k)
        top = partitioned[self._size - self._k :]
        self._buffer[: top.size] = top
        self._size = top.size


@dataclass
class TwoWayContext:
    """Validated inputs shared by every 2-way join algorithm.

    Attributes
    ----------
    graph / engine:
        The data graph and its walk engine (engine is created on demand
        and may be shared across joins on the same graph).
    params:
        DHT coefficients (general form).
    left / right:
        The node sets ``P`` and ``Q``.  Overlap is allowed; reflexive
        pairs ``(v, v)`` are excluded from results (``h(v, v) = 0`` by
        convention and is not a similarity between distinct entities).
    d:
        Truncation depth (Eq. 4), typically from
        :meth:`repro.core.dht.DHTParams.steps_for_epsilon`.
    walk_cache:
        Optional cross-join :class:`~repro.walks.cache.WalkCache`.  When
        set, ``back_walk`` serves repeated ``(target, level)`` requests
        from it and the backward joins donate their walks into it; an
        n-way spec shares one cache across all its query edges.  Must be
        bound to the same engine and params as this context.
    bound_cache:
        The :class:`~repro.bounds_cache.BoundPlanCache` serving ``Y``
        bounds and restricted-tail plans.  A private cache is created
        when none is passed, so repeated joins on one context (``PJ``
        restart refills) build each artifact once; an n-way spec passes
        one shared cache to every edge context so edges that agree on
        the left set share the build too.  Must be bound to the same
        engine and params as this context.
    max_block_bytes:
        Optional ceiling, in bytes, on any single resumable walk block
        (mass + score prefix, 16 bytes per node per column).  The
        deepening joins (``B-IDJ`` and the measure-generic
        ``Series-IDJ``) read it and switch to bounded-memory chunked
        rounds — with a walk cache present, overflow survivors are
        spilled into it and resumed instead of re-walked — and the
        basic joins (``B-BJ`` / ``Series-B-BJ``) clamp their block
        width under it; ``None`` (default) keeps the full-width /
        default-width blocks.  A ceiling below the cost of one column
        (``16 * num_nodes``) is infeasible — a single column is the
        smallest block the propagation can run — and raises a
        ``ValueError`` naming the minimum budget when a join derives
        its block layout from it.
    measure:
        Optional :class:`repro.extensions.measures.SeriesMeasure`
        (duck-typed — the core layer never imports ``extensions``).
        ``None`` (default) selects DHT: ``params`` are required and the
        caches are keyed by them.  With a measure set, ``params`` may be
        ``None``, ``d`` should be the measure's truncation depth, and
        both caches are keyed by the measure's :meth:`cache_key` — so a
        DHT cache and a PPR cache on the same graph can never be mixed
        (the validation below rejects the swap).  The DHT-specific
        algorithms (``F-*``/``B-*``) require ``measure=None``; the
        measure-generic joins in :mod:`repro.extensions.series_join`
        consume measure contexts.
    """

    graph: Graph
    params: Optional[DHTParams]
    left: List[int]
    right: List[int]
    d: int
    engine: WalkEngine = field(default=None)  # type: ignore[assignment]
    walk_cache: Optional[WalkCache] = None
    bound_cache: Optional[BoundPlanCache] = None
    max_block_bytes: Optional[int] = None
    measure: Optional[object] = None

    def __post_init__(self) -> None:
        self.left = validate_node_set(self.graph.num_nodes, self.left, "left node set")
        self.right = validate_node_set(self.graph.num_nodes, self.right, "right node set")
        if self.params is None and self.measure is None:
            raise GraphValidationError(
                "a TwoWayContext needs DHT params or a series measure"
            )
        if self.d < 1:
            raise GraphValidationError(f"d must be >= 1, got {self.d}")
        if self.engine is None:
            self.engine = WalkEngine(self.graph)
        key_params = self.cache_params
        if self.walk_cache is not None:
            if self.walk_cache.engine is not self.engine:
                raise GraphValidationError(
                    "walk_cache is bound to a different engine than this context"
                )
            if self.walk_cache.params != key_params:
                raise GraphValidationError(
                    "walk_cache was built for a different measure configuration"
                )
        if self.bound_cache is None:
            self.bound_cache = BoundPlanCache(self.engine, key_params)
        else:
            if self.bound_cache.engine is not self.engine:
                raise GraphValidationError(
                    "bound_cache is bound to a different engine than this context"
                )
            if self.bound_cache.params != key_params:
                raise GraphValidationError(
                    "bound_cache was built for a different measure configuration"
                )
        if self.max_block_bytes is not None and self.max_block_bytes < 1:
            raise GraphValidationError(
                f"max_block_bytes must be >= 1, got {self.max_block_bytes}"
            )
        self._left_array = np.asarray(self.left, dtype=np.int64)

    @property
    def cache_params(self):
        """The identity walk/bound caches for this context are keyed by.

        The measure's cache key when a measure is set, the DHT params
        otherwise — one cache universe per ``(graph, measure)``.
        """
        return self.measure.cache_key() if self.measure is not None else self.params

    @property
    def left_array(self) -> np.ndarray:
        """``P`` as an int64 array (for vectorised score gathering)."""
        return self._left_array

    @property
    def num_pairs(self) -> int:
        """Number of candidate pairs, excluding reflexive ones."""
        overlap = len(set(self.left) & set(self.right))
        return len(self.left) * len(self.right) - overlap

    def pairs_for_target(self, scores: np.ndarray, q: int) -> List[ScoredPair]:
        """Materialise ``(p, q, scores[p])`` for every valid ``p``.

        One vectorised gather + ``tolist`` keeps the per-pair Python
        work to a single tuple construction.
        """
        values = scores[self._left_array].tolist()
        return [
            ScoredPair(p, q, value)
            for p, value in zip(self.left, values)
            if p != q
        ]


def make_context(
    graph: Graph,
    left: Sequence[int],
    right: Sequence[int],
    params: Optional[DHTParams] = None,
    d: Optional[int] = None,
    epsilon: Optional[float] = None,
    engine: Optional[WalkEngine] = None,
    walk_cache: Optional[WalkCache] = None,
    bound_cache: Optional[BoundPlanCache] = None,
    max_block_bytes: Optional[int] = None,
) -> TwoWayContext:
    """Build a :class:`TwoWayContext` with the paper's defaults.

    Defaults follow Section VII-A: ``DHT_lambda`` with ``lambda = 0.2``
    and ``epsilon = 1e-6`` (which yields ``d = 8``).  Pass either ``d``
    directly or an ``epsilon`` to derive it via Lemma 1 — not both.
    """
    params = params if params is not None else DHTParams.dht_lambda(0.2)
    if d is not None and epsilon is not None:
        raise GraphValidationError("pass either d or epsilon, not both")
    if d is None:
        d = params.steps_for_epsilon(epsilon if epsilon is not None else 1e-6)
    return TwoWayContext(
        graph=graph, params=params, left=list(left), right=list(right), d=d,
        engine=engine, walk_cache=walk_cache, bound_cache=bound_cache,
        max_block_bytes=max_block_bytes,
    )
