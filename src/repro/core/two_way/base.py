"""Shared types for 2-way joins over DHT.

A 2-way join (Section V) takes node sets ``P`` (left) and ``Q`` (right)
and returns the ``k`` pairs ``(p, q)`` with the highest truncated DHT
scores ``h_d(p, q)``.  All five algorithms in the paper — ``F-BJ``,
``F-IDJ``, ``B-BJ``, ``B-IDJ-X``, ``B-IDJ-Y`` — share the
:class:`TwoWayContext` prepared here and return identical results; they
differ only in how much work they avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, NamedTuple, Optional, Sequence

import numpy as np

from repro.core.dht import DHTParams
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError, validate_node_set
from repro.walks.engine import WalkEngine


class ScoredPair(NamedTuple):
    """A join result: left node, right node, truncated DHT score."""

    left: int
    right: int
    score: float


def sort_pairs(pairs: Sequence[ScoredPair]) -> List[ScoredPair]:
    """Sort pairs by descending score; ties broken by ``(left, right)``.

    The deterministic tie-break makes every algorithm return the same
    *sequence*, not just the same score multiset, which the equivalence
    tests rely on.
    """
    return sorted(pairs, key=lambda sp: (-sp.score, sp.left, sp.right))


def top_k_pairs(pairs: Sequence[ScoredPair], k: int) -> List[ScoredPair]:
    """The ``k`` highest-scoring pairs in descending order."""
    if k < 0:
        raise GraphValidationError(f"k must be >= 0, got {k}")
    return sort_pairs(pairs)[:k]


@dataclass
class TwoWayContext:
    """Validated inputs shared by every 2-way join algorithm.

    Attributes
    ----------
    graph / engine:
        The data graph and its walk engine (engine is created on demand
        and may be shared across joins on the same graph).
    params:
        DHT coefficients (general form).
    left / right:
        The node sets ``P`` and ``Q``.  Overlap is allowed; reflexive
        pairs ``(v, v)`` are excluded from results (``h(v, v) = 0`` by
        convention and is not a similarity between distinct entities).
    d:
        Truncation depth (Eq. 4), typically from
        :meth:`repro.core.dht.DHTParams.steps_for_epsilon`.
    """

    graph: Graph
    params: DHTParams
    left: List[int]
    right: List[int]
    d: int
    engine: WalkEngine = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.left = validate_node_set(self.graph.num_nodes, self.left, "left node set")
        self.right = validate_node_set(self.graph.num_nodes, self.right, "right node set")
        if self.d < 1:
            raise GraphValidationError(f"d must be >= 1, got {self.d}")
        if self.engine is None:
            self.engine = WalkEngine(self.graph)
        self._left_array = np.asarray(self.left, dtype=np.int64)

    @property
    def left_array(self) -> np.ndarray:
        """``P`` as an int64 array (for vectorised score gathering)."""
        return self._left_array

    @property
    def num_pairs(self) -> int:
        """Number of candidate pairs, excluding reflexive ones."""
        overlap = len(set(self.left) & set(self.right))
        return len(self.left) * len(self.right) - overlap

    def pairs_for_target(self, scores: np.ndarray, q: int) -> List[ScoredPair]:
        """Materialise ``(p, q, scores[p])`` for every valid ``p``."""
        return [
            ScoredPair(int(p), q, float(scores[p])) for p in self.left if p != q
        ]


def make_context(
    graph: Graph,
    left: Sequence[int],
    right: Sequence[int],
    params: Optional[DHTParams] = None,
    d: Optional[int] = None,
    epsilon: Optional[float] = None,
    engine: Optional[WalkEngine] = None,
) -> TwoWayContext:
    """Build a :class:`TwoWayContext` with the paper's defaults.

    Defaults follow Section VII-A: ``DHT_lambda`` with ``lambda = 0.2``
    and ``epsilon = 1e-6`` (which yields ``d = 8``).  Pass either ``d``
    directly or an ``epsilon`` to derive it via Lemma 1 — not both.
    """
    params = params if params is not None else DHTParams.dht_lambda(0.2)
    if d is not None and epsilon is not None:
        raise GraphValidationError("pass either d or epsilon, not both")
    if d is None:
        d = params.steps_for_epsilon(epsilon if epsilon is not None else 1e-6)
    return TwoWayContext(
        graph=graph, params=params, left=list(left), right=list(right), d=d,
        engine=engine,
    )
