"""2-way joins over DHT: forward, backward, and incremental algorithms."""

from repro.core.two_way.backward import (
    BackwardBasicJoin,
    BackwardIDJ,
    BackwardIDJX,
    BackwardIDJY,
    back_walk,
)
from repro.core.two_way.base import ScoredPair, TwoWayContext, make_context
from repro.core.two_way.forward import ForwardBasicJoin, ForwardIDJ
from repro.core.two_way.incremental import FStructure, IncrementalTwoWayJoin

__all__ = [
    "BackwardBasicJoin",
    "BackwardIDJ",
    "BackwardIDJX",
    "BackwardIDJY",
    "ForwardBasicJoin",
    "ForwardIDJ",
    "FStructure",
    "IncrementalTwoWayJoin",
    "ScoredPair",
    "TwoWayContext",
    "back_walk",
    "make_context",
]
