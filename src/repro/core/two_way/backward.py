"""Backward-processing 2-way joins: ``B-BJ`` and ``B-IDJ`` (Section VI).

The key idea (Fig. 5(b) of the paper): one *backward* propagation from a
right-set node ``q`` (Eq. 5) yields ``h_d(p, q)`` for **every** left node
``p`` simultaneously — a factor-``|P|`` saving over forward processing.

``B-IDJ`` (Algorithm 2) adds iterative deepening on top: doubling-length
walks give lower bounds ``h_l(p, q)`` and per-``q`` upper bounds
``max_p h_l(p, q) + U_l^+``; a ``q`` whose upper bound cannot reach the
current top-``k`` floor is pruned before the expensive full-depth walk.
The bound ``U_l^+`` is pluggable: ``X_l^+`` (Lemma 2) gives ``B-IDJ-X``,
``Y_l^+`` (Theorem 1) gives ``B-IDJ-Y``.

This module runs both algorithms on the batched, resumable walk layer:

* ``B-BJ`` propagates its targets in ``(n, B)`` blocks — one CSR
  sparse-dense product per step instead of ``B`` mat-vecs.
* ``B-IDJ`` keeps one :class:`~repro.walks.state.WalkState` across
  deepening rounds, so level ``2l`` *extends* level ``l`` (``d``
  column-steps per surviving target instead of ``~2d``), and its per-``p``
  score/floor loop is a NumPy gather + masked max with a bounded top-k
  floor accumulator.
* With a :class:`~repro.walks.cache.WalkCache` on the context, walks are
  served from / donated to the cache, so repeated joins over overlapping
  node sets (``PJ`` restarts, star/clique edges) never re-walk a target.

The seed per-target, restart-per-level implementations are kept as
equivalence oracles: :func:`back_walk_series` and
:meth:`BackwardIDJ.top_k_reference` (plus ``B-BJ`` with
``block_size=1``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol

import numpy as np

from repro.core.bounds import ScoreUpperBound, XBound, YBound
from repro.core.two_way.base import (
    BoundedTopK,
    ScoredPair,
    TwoWayContext,
    kth_largest,
    top_k_pairs,
)
from repro.exec.budget import CorruptedWalkError
from repro.graph.validation import GraphValidationError
from repro.walks.rounds import REWALK_ATTEMPTS, DeepeningRounds, columns_for_budget
from repro.walks.state import WalkState

# 16 columns keeps the dense mass block cache-resident on large graphs
# (n x B x 8 bytes) while amortising the CSR index traffic; measured the
# fastest block width from 2k to 20k nodes (see BENCH_walks.json).
DEFAULT_BLOCK_SIZE = 16


def back_walk_series(context: TwoWayContext, target: int, steps: int) -> np.ndarray:
    """The seed per-target ``backWalk`` kernel (equivalence oracle).

    Runs the ``steps``-step backward first-hit propagation from ``target``
    (Eq. 5) and converts the hit series into truncated DHT scores
    (Eq. 4).  Cost: ``O(steps * |E_G|)``; never touches the walk cache.
    """
    series = context.engine.backward_first_hit_series(target, steps)
    return context.params.scores_from_matrix(series)


def back_walk(context: TwoWayContext, target: int, steps: int) -> np.ndarray:
    """The paper's ``backWalk``: ``h_l(p, target)`` for all graph nodes.

    With a walk cache on the context, the request is served from the
    cache — an exact repeat costs ``O(n)``, a deeper repeat only pays the
    walk's uncached suffix.  Without a cache this is
    :func:`back_walk_series`.

    Returns the full length-``|V_G|`` score vector; callers gather the
    entries for ``p in P``.
    """
    if context.walk_cache is not None:
        return context.walk_cache.scores(target, steps)
    return back_walk_series(context, target, steps)


# A sparse product costs a small constant times its FLOP bound but with
# branchy per-entry work; the dense SpMM costs ``nnz(T) * B`` FLOPs with
# streaming access.  Empirically the sparse step stops winning once its
# product bound passes ~1/8 of the dense step's FLOPs.
_SPARSE_STEP_FRACTION = 8


class _RestrictedTail:
    """Row-sliced transition operators for the last walk steps.

    Step ``d`` of the scorer only needs mass at the left rows; step
    ``d - 1`` only at their out-neighbours, and so on — the *reverse*
    frontier.  This plan materialises the nested node sets
    ``R_0 = rows``, ``R_{j+1} = out_nbrs(R_j) | R_0`` and the submatrix
    operators ``A_j = T[R_j][:, R_{j+1}]``, for as many levels as the
    row slice stays under half of ``nnz(T)``.  The plan depends only on
    ``(graph, rows, d)``, so it is served through the context's
    :class:`~repro.bounds_cache.BoundPlanCache`: shared by every target
    chunk of one ``all_pairs`` call *and* by later calls over the same
    left set — ``PJ`` restarts that re-materialise an edge reuse the
    plan instead of re-slicing the transition matrix.
    """

    def __init__(self, context: TwoWayContext, rows: np.ndarray) -> None:
        context.engine.stats.add("plan_builds", 1)
        transition = context.graph.transition_matrix()
        out_degrees = np.diff(transition.indptr)
        budget = transition.nnz // 2
        base = np.sort(np.asarray(rows, dtype=np.int64))
        self.node_sets: List[np.ndarray] = [base]
        self.operators: List = []
        self.row_positions: List[np.ndarray] = [np.arange(base.size)]
        while len(self.operators) < context.d - 1:
            current = self.node_sets[-1]
            if int(out_degrees[current].sum()) > budget:
                break
            sliced = transition[current]
            bigger = np.union1d(sliced.indices, base)
            self.operators.append(sliced[:, bigger])
            self.node_sets.append(bigger)
            self.row_positions.append(np.searchsorted(bigger, base))

    @property
    def depth(self) -> int:
        """Number of final steps the plan can serve."""
        return len(self.operators)


def _zero_targets_sparse(mass, targets) -> None:
    """Zero each column's target entry of a CSR block in place (Eq. 5)."""
    mass.sort_indices()
    for j, target in enumerate(targets):
        start, end = mass.indptr[target], mass.indptr[target + 1]
        row = mass.indices[start:end]
        pos = int(np.searchsorted(row, j))
        if pos < row.size and row[pos] == j:
            mass.data[start + pos] = 0.0


def _block_scores_at_rows(
    context: TwoWayContext,
    targets,
    rows: np.ndarray,
    tail: _RestrictedTail,
) -> np.ndarray:
    """Full-depth scores for a target block, evaluated at ``rows`` only.

    Degree-aware propagation in three phases, chosen adaptively:

    * **sparse head** — the forward frontier of step ``i`` covers
      ``O(deg^i)`` nodes, so early steps run as sparse-sparse products
      (cost proportional to the frontier, not ``|E_G| B``).  Before
      each sparse step the next frontier's exact nnz bound is computed
      in O(n) from the in-degree profile; the step is only taken while
      it beats the dense SpMM.
    * **dense middle** — full-width CSR SpMM via
      :meth:`~repro.walks.engine.WalkEngine.backward_block_step`.
    * **restricted tail** — the last steps only need mass on the
      *reverse* frontier of ``rows`` (see :class:`_RestrictedTail`), so
      they run on row-sliced submatrix operators.

    Hub-heavy graphs collapse to mostly-dense middles; bounded-degree
    graphs may never need a dense step at all.  The score prefix is
    accumulated only on the requested rows — no caller needs the
    intermediate full vectors.

    Agrees with the corresponding rows of
    :meth:`repro.walks.state.WalkState.scores_matrix` at full depth to
    within summation-order rounding (far below the 1e-12 test
    tolerance; the phases add the same products in different orders).
    Returns an ``(len(rows), B)`` array in the order of ``rows``.
    """
    engine, params = context.engine, context.params
    targets = np.asarray(targets, dtype=np.int64)
    rows = np.asarray(rows, dtype=np.int64)
    width = targets.shape[0]
    transition = context.graph.transition_matrix()
    in_degrees = engine.in_degree_array()
    dense_step_flops = transition.nnz * width
    base = tail.node_sets[0]  # sorted rows

    # Step 1 is a column slice of T (the one-hot product), kept sparse.
    sparse_mass = engine.transition_columns()[:, targets].tocsr()
    engine.stats.add("propagation_steps", int(width))
    engine.stats.add("sparse_products", 1)
    acc = params.decay * np.asarray(sparse_mass[base].todense())
    mass = None
    restricted = None
    for i in range(2, context.d + 1):
        consume_level = context.d - i + 1  # tail level holding m_{i-1}
        if consume_level <= tail.depth:
            node_set = tail.node_sets[consume_level]
            if restricted is None:
                if sparse_mass is not None:
                    restricted = np.asarray(sparse_mass[node_set].todense())
                    sparse_mass = None
                else:
                    restricted = mass[node_set, :]
                    mass = None
            positions = np.searchsorted(node_set, targets)
            for column in range(width):
                pos = positions[column]
                if pos < node_set.size and node_set[pos] == targets[column]:
                    restricted[pos, column] = 0.0
            restricted = tail.operators[consume_level - 1].dot(restricted)
            engine.stats.add("propagation_steps", int(width))
            engine.stats.add("sparse_products", 1)
            acc += params.decay ** i * restricted[
                tail.row_positions[consume_level - 1], :
            ]
            continue
        if sparse_mass is not None:
            counts = np.diff(sparse_mass.indptr)
            bound = int(counts.dot(in_degrees))
            if bound * _SPARSE_STEP_FRACTION > dense_step_flops:
                mass = sparse_mass.toarray()
                sparse_mass = None
            else:
                _zero_targets_sparse(sparse_mass, targets)
                sparse_mass = transition.dot(sparse_mass)
                engine.stats.add("propagation_steps", int(width))
                engine.stats.add("sparse_products", 1)
                acc += params.decay ** i * np.asarray(
                    sparse_mass[base].todense()
                )
                continue
        mass = engine.backward_block_step(mass, targets, first=False)
        acc += params.decay ** i * mass[base, :]
    scores = params.alpha * acc + params.beta
    governor = engine.governor
    if governor is not None and governor.validate_walks:
        # This path has no WalkState (whose advance validates for us), so
        # guard the accumulated scores before they reach any result list.
        if not np.isfinite(scores).all():
            raise CorruptedWalkError(
                "non-finite block scores detected in restricted-row scoring"
            )
    return scores[np.searchsorted(base, rows), :]


class WalkObserver(Protocol):
    """Callback receiving every backward walk's bounds.

    ``PJ-i`` registers an observer that mirrors the walk results into its
    ``F`` structure (Section VI-D), so the information paid for during the
    top-``m`` join is reused by ``getNextNodePair``.
    """

    def observe(self, q: int, level: int, scores: np.ndarray, tail: float) -> None:
        """Record that an ``level``-step walk from ``q`` produced
        ``scores`` (full graph vector) with tail bound ``tail``."""
        ...


class BackwardBasicJoin:
    """``B-BJ``: one full-depth backward walk per right node.

    ``O(|Q| d |E_G|)`` total — already ``|P|`` times faster than ``F-BJ``
    — but walks every ``q`` to full depth regardless of ``k``.  Targets
    are propagated in blocks of ``block_size`` columns (one sparse-dense
    product per step per block); ``block_size=1`` selects the seed
    per-target kernel, kept as the equivalence oracle and as the
    benchmark baseline.  A ``max_block_bytes`` ceiling on the context
    clamps the block width so each propagated block's buffers stay
    under it, same per-block semantics as ``B-IDJ``'s chunked rounds.
    """

    name = "B-BJ"

    def __init__(
        self, context: TwoWayContext, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> None:
        if block_size < 1:
            raise GraphValidationError(
                f"block_size must be >= 1, got {block_size}"
            )
        if context.max_block_bytes is not None:
            cap = columns_for_budget(
                context.max_block_bytes, context.engine.num_nodes
            )
            block_size = min(block_size, cap)
        self._ctx = context
        self._block_size = block_size
        # Exact-score pairs accumulated so far; the governed entry points
        # read this after a budget stop to report the completed prefix.
        self.partial_pairs: Optional[List[ScoredPair]] = None

    def all_pairs(self) -> List[ScoredPair]:
        """Score every candidate pair (unsorted)."""
        with self._ctx.engine.trace_span(
            "join", self.name, targets=len(self._ctx.right)
        ):
            return self._all_pairs()

    def _all_pairs(self) -> List[ScoredPair]:
        ctx = self._ctx
        if self._block_size == 1:
            pairs: List[ScoredPair] = []
            self.partial_pairs = pairs
            for q in ctx.right:
                scores = back_walk(ctx, q, ctx.d)
                pairs.extend(ctx.pairs_for_target(scores, q))
            return pairs
        if ctx.walk_cache is None:
            return self._all_pairs_lean()
        return self._all_pairs_cached()

    def _all_pairs_lean(self) -> List[ScoredPair]:
        """Batched scoring with the accumulator restricted to ``P``.

        Without a cache to feed, only the left rows of each score vector
        are ever read, so the ``lambda^i P_i`` prefix is accumulated on
        an ``(|P|, B)`` slice instead of the full ``(n, B)`` block — the
        propagation itself still needs full vectors, but the accumulator
        traffic drops by ``n / |P|``.
        """
        ctx = self._ctx
        left = ctx.left_array
        tail = ctx.bound_cache.tail_plan(
            ctx.left, ctx.d, lambda: _RestrictedTail(ctx, left)
        )
        pairs: List[ScoredPair] = []
        self.partial_pairs = pairs
        for start in range(0, len(ctx.right), self._block_size):
            chunk = ctx.right[start : start + self._block_size]
            scores = self._chunk_scores_with_retry(chunk, left, tail)
            for j, q in enumerate(chunk):
                values = scores[:, j].tolist()
                pairs.extend(
                    ScoredPair(p, q, value)
                    for p, value in zip(ctx.left, values)
                    if p != q
                )
        return pairs

    def _chunk_scores_with_retry(self, chunk, left, tail) -> np.ndarray:
        """Score one target chunk, re-running it on detected corruption."""
        for attempt in range(REWALK_ATTEMPTS):
            try:
                return _block_scores_at_rows(self._ctx, chunk, left, tail)
            except CorruptedWalkError:
                self._ctx.engine.stats.add("degradations", 1)
                if attempt == REWALK_ATTEMPTS - 1:
                    raise
        raise AssertionError("unreachable")

    def _all_pairs_cached(self) -> List[ScoredPair]:
        """Batched scoring through the shared walk cache.

        Cache hits (targets walked by an earlier join or query edge)
        cost ``O(n)``; misses are walked one block at a time and donated
        back for the next join, so peak memory stays
        ``O(n * block_size)`` regardless of ``|Q|``.
        """
        ctx = self._ctx
        cache = ctx.walk_cache
        pairs: List[ScoredPair] = []
        self.partial_pairs = pairs
        pending: List[int] = []

        def walk_pending() -> WalkState:
            for attempt in range(REWALK_ATTEMPTS):
                try:
                    return WalkState(
                        ctx.engine, ctx.params, pending
                    ).advance_to(ctx.d)
                except CorruptedWalkError:
                    ctx.engine.stats.add("degradations", 1)
                    if attempt == REWALK_ATTEMPTS - 1:
                        raise
            raise AssertionError("unreachable")

        def flush() -> None:
            state = walk_pending()
            for j, q in enumerate(pending):
                vector = state.score_column(j)
                cache.put_scores(q, ctx.d, vector)
                pairs.extend(ctx.pairs_for_target(vector, q))
            pending.clear()

        for q in ctx.right:  # validated node sets carry no duplicates
            ctx.engine.checkpoint("cache")
            cached = cache.peek(q, ctx.d)
            if cached is not None:
                pairs.extend(ctx.pairs_for_target(cached, q))
                continue
            pending.append(q)
            if len(pending) == self._block_size:
                flush()
        if pending:
            flush()
        return pairs

    def top_k(self, k: int) -> List[ScoredPair]:
        """Top-``k`` pairs by exhaustive backward scoring."""
        if k == 0:
            return []
        return top_k_pairs(self.all_pairs(), k)


BoundFactory = Callable[[TwoWayContext], ScoreUpperBound]


def x_bound_factory(context: TwoWayContext) -> XBound:
    """``U_l^+ = X_l^+`` (Lemma 2) — the ``B-IDJ-X`` configuration.

    Served through the context's
    :class:`~repro.bounds_cache.BoundPlanCache` (keyed by depth only —
    ``X`` is data-independent), so repeated joins on one context and
    ``F-IDJ`` runs at the same depth share one table.
    """
    return context.bound_cache.x_bound(
        context.d, lambda: XBound(context.params, context.d)
    )


def y_bound_factory(context: TwoWayContext) -> YBound:
    """``U_l^+ = Y_l^+(P, q)`` (Theorem 1) — the ``B-IDJ-Y`` configuration.

    Construction runs a one-off ``O(d |E_G|)`` reach-mass propagation
    from all of ``P``, served through the context's
    :class:`~repro.bounds_cache.BoundPlanCache`: repeated joins over the
    same inputs (``PJ``'s restart refills) and sibling query edges that
    agree on the left set (every edge of a star spec, repeated sets of a
    clique spec — they share one cache via their
    :class:`~repro.core.nway.spec.NWayJoinSpec`) reuse the bound instead
    of re-propagating.
    """
    return context.bound_cache.y_bound(
        context.left,
        context.d,
        lambda: YBound(context.engine, context.params, context.left, context.d),
    )


class BackwardIDJ:
    """``B-IDJ`` (Algorithm 2) with a pluggable upper-bound function.

    Runs on the batched, resumable walk layer: all active targets share
    one :class:`~repro.walks.state.WalkState` block that is *extended*
    at each doubling level (the seed restarted every walk from scratch,
    paying ``1 + 2 + ... + d ~ 2d`` steps per surviving target instead
    of ``d``).  With a walk cache on the context, previously walked
    targets are served from the cache and pruned targets donate their
    resumable column so later joins pick up where this one stopped.

    With ``max_block_bytes`` set (here or on the context), the full-width
    block — ``O(n |Q|)`` floats for very large right sets — is replaced
    by bounded-memory chunked rounds: a resumable *window* of at most
    ``max_block_bytes`` (16 bytes per node per column: walker mass plus
    score prefix) is retained between deepening levels, and overflow
    targets are walked in throwaway chunks of the same size.  Survivors
    of the throwaway chunks are folded into the window as pruning frees
    columns; overflow survivors beyond the window's capacity are
    *spilled* — their single-column states are donated to the walk
    cache (under its LRU budget) and resumed from it at the next level,
    so with a cache on the context the restart steps of the old
    drop-and-re-walk policy become ``extensions`` / ``steps_saved``
    counters instead.  Cache-less contexts keep the restart behaviour.
    Score vectors are consumed streaming (only their left-row slice is
    kept), so a round's live walk memory is
    ``O(max_block_bytes + |P| |Q|)`` rather than the unbounded mode's
    ``O(n |Q|)``.  Scores are bit-identical
    either way (Eq. 5 columns propagate independently), so the top-``k``
    output and the pruning trace do not change — only the
    memory/compute trade-off does, visible as extra
    ``propagation_steps`` and a capped ``peak_block_bytes`` in the
    engine stats.  The round machinery itself is the shared
    :class:`~repro.walks.rounds.DeepeningRounds` (the measure-generic
    ``Series-IDJ`` runs the identical plan).

    Parameters
    ----------
    context:
        The validated join inputs.
    bound_factory:
        Builds the ``U_l^+`` bound; use :func:`x_bound_factory` or
        :func:`y_bound_factory` (or the :class:`BackwardIDJX` /
        :class:`BackwardIDJY` conveniences).
    observer:
        Optional :class:`WalkObserver` mirroring walk results (used by
        ``PJ-i``).
    max_block_bytes:
        Resumable-block byte ceiling; defaults to the context's value
        (``None`` = unbounded full-width block).

    Attributes
    ----------
    pruning_trace:
        Per-round dicts with ``level`` / ``active_before`` / ``pruned`` —
        the data behind Fig. 10(b).
    """

    name = "B-IDJ"

    def __init__(
        self,
        context: TwoWayContext,
        bound_factory: BoundFactory,
        observer: Optional[WalkObserver] = None,
        max_block_bytes: Optional[int] = None,
    ) -> None:
        if max_block_bytes is None:
            max_block_bytes = context.max_block_bytes
        elif max_block_bytes < 1:
            raise GraphValidationError(
                f"max_block_bytes must be >= 1, got {max_block_bytes}"
            )
        self._ctx = context
        self._bound_factory = bound_factory
        self._observer = observer
        self._max_block_bytes = max_block_bytes
        self.pruning_trace: List[dict] = []
        # Threshold-state snapshot of the last *completed* deepening
        # round; the governed entry points turn it into a partial result
        # with sound [h_l, h_l + tail_l] intervals after a budget stop.
        self.budget_snapshot: Optional[dict] = None

    def top_k(self, k: int) -> List[ScoredPair]:
        """Top-``k`` pairs with iterative-deepening pruning on ``Q``."""
        if k < 0:
            raise GraphValidationError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        with self._ctx.engine.trace_span(
            "join", self.name, k=k, targets=len(self._ctx.right)
        ):
            return self._top_k(k)

    def _top_k(self, k: int) -> List[ScoredPair]:
        ctx = self._ctx
        self.budget_snapshot = None
        bound = self._bound_factory(ctx)
        self.pruning_trace = []
        left = ctx.left_array
        zero = ctx.params.zero_score
        rounds = DeepeningRounds(
            ctx.engine, ctx.params, ctx.walk_cache, self._max_block_bytes
        )
        active: List[int] = list(ctx.right)

        level = 1
        while level < ctx.d:
            with ctx.engine.trace_span(
                "level", level=level, active=len(active)
            ) as level_span:
                ctx.engine.checkpoint("round")
                # The seed's per-p Python loop, vectorised: gather the
                # left rows of every column as its vector streams past,
                # mask reflexive pairs, take column maxima, and feed
                # informative entries to the bounded floor.  Only the
                # (|P|, width) left-row slice is retained — never the
                # full vectors.
                width = len(active)
                targets_arr = np.asarray(active, dtype=np.int64)
                tails = np.array([bound.tail(level, q) for q in active])
                column_of = {q: j for j, q in enumerate(active)}
                left_scores = np.empty((left.size, width), dtype=np.float64)

                def gather(q, vector, level=level, tails=tails,
                           column_of=column_of, left_scores=left_scores):
                    j = column_of[q]
                    if self._observer is not None:
                        self._observer.observe(
                            q, level, vector, float(tails[j])
                        )
                    left_scores[:, j] = vector[left]

                rounds.walk_level(active, level, gather)
                # Snapshot only after every column of this round has been
                # gathered: h_level is a monotone lower bound and
                # tail_level a sound upper increment for every
                # then-active target.
                self.budget_snapshot = {
                    "level": level,
                    "targets": list(active),
                    "left": list(ctx.left),
                    "left_scores": left_scores,
                    "tails": tails,
                }
                valid = left[:, None] != targets_arr[None, :]
                floor = BoundedTopK(k)
                # Algorithm 2, step 7: only informative lower bounds
                # (pairs with at least one hit within `level` steps)
                # enter the floor.
                floor.push(left_scores[valid & (left_scores > zero)])
                best = np.where(valid, left_scores, -np.inf).max(axis=0)
                best = np.maximum(best, zero)
                t_k = floor.kth_largest()
                keep = best + tails >= t_k
                surviving = [q for q, flag in zip(active, keep) if flag]
                self.pruning_trace.append(
                    {
                        "level": level,
                        "active_before": len(active),
                        "pruned": len(active) - len(surviving),
                        "threshold": t_k,
                    }
                )
                level_span.set(pruned=len(active) - len(surviving))
                rounds.donate_pruned(
                    q for q, flag in zip(active, keep) if not flag
                )
                rounds.repack(set(surviving), level)
                active = surviving
                level *= 2

        with ctx.engine.trace_span(
            "level", level=ctx.d, active=len(active), final=True
        ):
            ctx.engine.checkpoint("round")
            pairs: List[ScoredPair] = []

            def emit(q, vector):
                if self._observer is not None:
                    self._observer.observe(q, ctx.d, vector, 0.0)
                pairs.extend(ctx.pairs_for_target(vector, q))

            rounds.walk_level(active, ctx.d, emit)
        return top_k_pairs(pairs, k)

    def top_k_reference(self, k: int) -> List[ScoredPair]:
        """The seed implementation: per-target walks, restarted per level.

        Kept verbatim as the equivalence oracle and as the benchmark
        baseline for the resumable engine; bypasses the walk cache so
        its propagation-step count reflects the restart-per-level cost.
        """
        if k < 0:
            raise GraphValidationError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        ctx = self._ctx
        bound = self._bound_factory(ctx)
        self.pruning_trace = []
        active = list(ctx.right)
        level = 1
        while level < ctx.d:
            lower_bounds: List[float] = []
            q_upper = {}
            for q in active:
                scores = back_walk_series(ctx, q, level)
                tail = bound.tail(level, q)
                if self._observer is not None:
                    self._observer.observe(q, level, scores, tail)
                best = ctx.params.zero_score
                for p in ctx.left:
                    if p == q:
                        continue
                    score = float(scores[p])
                    if score > ctx.params.zero_score:
                        lower_bounds.append(score)
                    if score > best:
                        best = score
                q_upper[q] = best + tail
            t_k = kth_largest(lower_bounds, k)
            surviving = [q for q in active if q_upper[q] >= t_k]
            self.pruning_trace.append(
                {
                    "level": level,
                    "active_before": len(active),
                    "pruned": len(active) - len(surviving),
                    "threshold": t_k,
                }
            )
            active = surviving
            level *= 2
        pairs: List[ScoredPair] = []
        for q in active:
            scores = back_walk_series(ctx, q, ctx.d)
            if self._observer is not None:
                self._observer.observe(q, ctx.d, scores, 0.0)
            pairs.extend(ctx.pairs_for_target(scores, q))
        return top_k_pairs(pairs, k)


class BackwardIDJX(BackwardIDJ):
    """``B-IDJ-X``: Algorithm 2 with the closed-form ``X_l^+`` bound."""

    name = "B-IDJ-X"

    def __init__(
        self,
        context: TwoWayContext,
        observer: Optional[WalkObserver] = None,
        max_block_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(
            context, x_bound_factory, observer=observer,
            max_block_bytes=max_block_bytes,
        )


class BackwardIDJY(BackwardIDJ):
    """``B-IDJ-Y``: Algorithm 2 with the reach-mass ``Y_l^+`` bound.

    The tighter bound (Lemma 5) prunes earlier; the paper selects this
    variant inside ``PJ``/``PJ-i``.
    """

    name = "B-IDJ-Y"

    def __init__(
        self,
        context: TwoWayContext,
        observer: Optional[WalkObserver] = None,
        max_block_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(
            context, y_bound_factory, observer=observer,
            max_block_bytes=max_block_bytes,
        )
