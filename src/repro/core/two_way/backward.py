"""Backward-processing 2-way joins: ``B-BJ`` and ``B-IDJ`` (Section VI).

The key idea (Fig. 5(b) of the paper): one *backward* propagation from a
right-set node ``q`` (Eq. 5) yields ``h_d(p, q)`` for **every** left node
``p`` simultaneously — a factor-``|P|`` saving over forward processing.

``B-IDJ`` (Algorithm 2) adds iterative deepening on top: doubling-length
walks give lower bounds ``h_l(p, q)`` and per-``q`` upper bounds
``max_p h_l(p, q) + U_l^+``; a ``q`` whose upper bound cannot reach the
current top-``k`` floor is pruned before the expensive full-depth walk.
The bound ``U_l^+`` is pluggable: ``X_l^+`` (Lemma 2) gives ``B-IDJ-X``,
``Y_l^+`` (Theorem 1) gives ``B-IDJ-Y``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol

import numpy as np

from repro.core.bounds import ScoreUpperBound, XBound, YBound
from repro.core.two_way.base import ScoredPair, TwoWayContext, top_k_pairs
from repro.graph.validation import GraphValidationError


def back_walk(context: TwoWayContext, target: int, steps: int) -> np.ndarray:
    """The paper's ``backWalk``: ``h_l(p, target)`` for all graph nodes.

    Runs the ``steps``-step backward first-hit propagation from ``target``
    (Eq. 5) and converts the hit series into truncated DHT scores
    (Eq. 4).  Cost: ``O(steps * |E_G|)``.

    Returns the full length-``|V_G|`` score vector; callers gather the
    entries for ``p in P``.
    """
    series = context.engine.backward_first_hit_series(target, steps)
    return context.params.scores_from_matrix(series)


class WalkObserver(Protocol):
    """Callback receiving every backward walk's bounds.

    ``PJ-i`` registers an observer that mirrors the walk results into its
    ``F`` structure (Section VI-D), so the information paid for during the
    top-``m`` join is reused by ``getNextNodePair``.
    """

    def observe(self, q: int, level: int, scores: np.ndarray, tail: float) -> None:
        """Record that an ``level``-step walk from ``q`` produced
        ``scores`` (full graph vector) with tail bound ``tail``."""
        ...


class BackwardBasicJoin:
    """``B-BJ``: one full-depth backward walk per right node.

    ``O(|Q| d |E_G|)`` total — already ``|P|`` times faster than ``F-BJ``
    — but walks every ``q`` to full depth regardless of ``k``.
    """

    name = "B-BJ"

    def __init__(self, context: TwoWayContext) -> None:
        self._ctx = context

    def all_pairs(self) -> List[ScoredPair]:
        """Score every candidate pair (unsorted)."""
        ctx = self._ctx
        pairs: List[ScoredPair] = []
        for q in ctx.right:
            scores = back_walk(ctx, q, ctx.d)
            pairs.extend(ctx.pairs_for_target(scores, q))
        return pairs

    def top_k(self, k: int) -> List[ScoredPair]:
        """Top-``k`` pairs by exhaustive backward scoring."""
        if k == 0:
            return []
        return top_k_pairs(self.all_pairs(), k)


BoundFactory = Callable[[TwoWayContext], ScoreUpperBound]


def x_bound_factory(context: TwoWayContext) -> XBound:
    """``U_l^+ = X_l^+`` (Lemma 2) — the ``B-IDJ-X`` configuration."""
    return XBound(context.params, context.d)


def y_bound_factory(context: TwoWayContext) -> YBound:
    """``U_l^+ = Y_l^+(P, q)`` (Theorem 1) — the ``B-IDJ-Y`` configuration.

    Construction runs the one-off ``O(d |E_G|)`` reach-mass propagation
    from all of ``P``.
    """
    return YBound(context.engine, context.params, context.left, context.d)


class BackwardIDJ:
    """``B-IDJ`` (Algorithm 2) with a pluggable upper-bound function.

    Parameters
    ----------
    context:
        The validated join inputs.
    bound_factory:
        Builds the ``U_l^+`` bound; use :func:`x_bound_factory` or
        :func:`y_bound_factory` (or the :class:`BackwardIDJX` /
        :class:`BackwardIDJY` conveniences).
    observer:
        Optional :class:`WalkObserver` mirroring walk results (used by
        ``PJ-i``).

    Attributes
    ----------
    pruning_trace:
        Per-round dicts with ``level`` / ``active_before`` / ``pruned`` —
        the data behind Fig. 10(b).
    """

    name = "B-IDJ"

    def __init__(
        self,
        context: TwoWayContext,
        bound_factory: BoundFactory,
        observer: Optional[WalkObserver] = None,
    ) -> None:
        self._ctx = context
        self._bound_factory = bound_factory
        self._observer = observer
        self.pruning_trace: List[dict] = []

    def top_k(self, k: int) -> List[ScoredPair]:
        """Top-``k`` pairs with iterative-deepening pruning on ``Q``."""
        if k < 0:
            raise GraphValidationError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        ctx = self._ctx
        bound = self._bound_factory(ctx)
        self.pruning_trace = []
        active = list(ctx.right)
        level = 1
        while level < ctx.d:
            lower_bounds: List[float] = []
            q_upper = {}
            for q in active:
                scores = back_walk(ctx, q, level)
                tail = bound.tail(level, q)
                if self._observer is not None:
                    self._observer.observe(q, level, scores, tail)
                best = ctx.params.zero_score
                for p in ctx.left:
                    if p == q:
                        continue
                    score = float(scores[p])
                    # Algorithm 2, step 7: only informative lower bounds
                    # (pairs with at least one hit within `level` steps)
                    # enter the floor computation.
                    if score > ctx.params.zero_score:
                        lower_bounds.append(score)
                    if score > best:
                        best = score
                q_upper[q] = best + tail
            t_k = _kth_largest(lower_bounds, k)
            surviving = [q for q in active if q_upper[q] >= t_k]
            self.pruning_trace.append(
                {
                    "level": level,
                    "active_before": len(active),
                    "pruned": len(active) - len(surviving),
                    "threshold": t_k,
                }
            )
            active = surviving
            level *= 2
        pairs: List[ScoredPair] = []
        for q in active:
            scores = back_walk(ctx, q, ctx.d)
            if self._observer is not None:
                self._observer.observe(q, ctx.d, scores, 0.0)
            pairs.extend(ctx.pairs_for_target(scores, q))
        return top_k_pairs(pairs, k)


class BackwardIDJX(BackwardIDJ):
    """``B-IDJ-X``: Algorithm 2 with the closed-form ``X_l^+`` bound."""

    name = "B-IDJ-X"

    def __init__(
        self, context: TwoWayContext, observer: Optional[WalkObserver] = None
    ) -> None:
        super().__init__(context, x_bound_factory, observer=observer)


class BackwardIDJY(BackwardIDJ):
    """``B-IDJ-Y``: Algorithm 2 with the reach-mass ``Y_l^+`` bound.

    The tighter bound (Lemma 5) prunes earlier; the paper selects this
    variant inside ``PJ``/``PJ-i``.
    """

    name = "B-IDJ-Y"

    def __init__(
        self, context: TwoWayContext, observer: Optional[WalkObserver] = None
    ) -> None:
        super().__init__(context, y_bound_factory, observer=observer)


def _kth_largest(values: List[float], k: int) -> float:
    """``k``-th largest value, or ``-inf`` when fewer than ``k`` exist."""
    if len(values) < k:
        return float("-inf")
    return sorted(values, reverse=True)[k - 1]
