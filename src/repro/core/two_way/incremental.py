"""Incremental 2-way joins — the basis of ``PJ-i`` (Section VI-D).

``PJ`` repeatedly needs "the next best pair" of a 2-way join after the
top-``m`` prefix has been consumed.  Re-running a top-``(m+1)`` join from
scratch is wasteful: the top-``m`` join already computed bounds for most
pairs.  :class:`IncrementalTwoWayJoin` keeps that information in the
paper's ``F`` structure:

* ``F`` is a mutable max-priority queue of entries
  ``<(p, q), h^-(p, q), h^+(p, q), l>`` ordered by **upper** bound,
  with a hash index ``H`` from pair to entry (here: a dict + lazy-deleted
  binary heap).
* ``next_pair`` repeatedly looks at the two best entries ``e1, e2``.  If
  ``e1``'s lower bound already beats ``e2``'s upper bound, ``e1`` is the
  answer — finalise it with a full ``d``-step walk if needed.  Otherwise
  *refine* ``e1`` by re-walking its ``q`` with a doubled length
  ``min(2 l, d)``, which tightens every ``( . , q)`` entry at once.

Refinement walks run through the context's
:class:`~repro.walks.cache.WalkCache` (one is attached on construction
if the context has none): the instrumented ``B-IDJ`` donates its walk
state there, so a doubled-length re-walk *extends* the recorded
``l``-step walk instead of restarting from scratch — each target pays
for every propagation step at most once across the join's lifetime.
The ``Y`` bound comes from the context's
:class:`~repro.bounds_cache.BoundPlanCache` the same way: inside a
``PJ-i`` run all query edges share one cache via the spec, so edges
that agree on the left set reuse one reach-mass build.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.bounds import ScoreUpperBound
from repro.core.two_way.backward import (
    BackwardIDJ,
    BoundFactory,
    back_walk,
    y_bound_factory,
)
from repro.core.two_way.base import ScoredPair, TwoWayContext
from repro.graph.validation import GraphValidationError
from repro.walks.cache import WalkCache

Pair = Tuple[int, int]


class FEntry:
    """One ``F`` entry: pair key, score bounds, and walk depth ``l``."""

    __slots__ = ("pair", "lower", "upper", "level")

    def __init__(self, pair: Pair, lower: float, upper: float, level: int) -> None:
        self.pair = pair
        self.lower = lower
        self.upper = upper
        self.level = level

    def __repr__(self) -> str:  # pragma: no cover - debug cosmetic
        return (
            f"FEntry(pair={self.pair}, lower={self.lower:.6f}, "
            f"upper={self.upper:.6f}, l={self.level})"
        )


class FStructure:
    """Max-priority queue over :class:`FEntry` keyed by upper bound.

    Uses a binary heap with *lazy deletion*: updating an entry pushes a
    fresh heap record and bumps a per-pair version; stale records are
    skipped on pop.  This keeps ``update`` at ``O(log n)`` without a
    decrease-key primitive (the paper's "mutable priority queue" + hash
    table ``H``).
    """

    def __init__(self) -> None:
        self._entries: Dict[Pair, FEntry] = {}
        self._versions: Dict[Pair, int] = {}
        self._heap: List[Tuple[float, int, int, int, Pair]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._entries

    def get(self, pair: Pair) -> Optional[FEntry]:
        """Current entry for ``pair``, if tracked."""
        return self._entries.get(pair)

    def update(self, pair: Pair, lower: float, upper: float, level: int) -> None:
        """Insert ``pair`` or supersede its entry with deeper-walk bounds.

        Following Section VI-D, an existing entry is only replaced when
        the new walk is *longer* (``level > entry.level``) — longer walks
        give tighter bounds.
        """
        entry = self._entries.get(pair)
        if entry is not None and entry.level >= level:
            return
        if entry is None:
            entry = FEntry(pair, lower, upper, level)
            self._entries[pair] = entry
        else:
            entry.lower = lower
            entry.upper = upper
            entry.level = level
        version = self._versions.get(pair, 0) + 1
        self._versions[pair] = version
        heapq.heappush(
            self._heap, (-upper, pair[0], pair[1], version, pair)
        )

    def remove(self, pair: Pair) -> None:
        """Drop ``pair`` (lazy: its heap records become stale)."""
        self._entries.pop(pair, None)
        self._versions.pop(pair, None)

    def peek_top_two(self) -> Tuple[Optional[FEntry], Optional[FEntry]]:
        """The two entries with the highest upper bounds.

        Ties are broken by pair id, matching
        :func:`repro.core.two_way.base.sort_pairs`.
        """
        self._prune_stale()
        if not self._heap:
            return None, None
        first_record = self._heap[0]
        first = self._entries[first_record[4]]
        # Temporarily pop the head to look at the runner-up.
        head = heapq.heappop(self._heap)
        self._prune_stale()
        second = self._entries[self._heap[0][4]] if self._heap else None
        heapq.heappush(self._heap, head)
        return first, second

    def _prune_stale(self) -> None:
        while self._heap:
            neg_upper, _, _, version, pair = self._heap[0]
            entry = self._entries.get(pair)
            if entry is None or self._versions.get(pair) != version:
                heapq.heappop(self._heap)
                continue
            break


class _FRecorder:
    """Walk observer that mirrors ``B-IDJ`` walk results into ``F``.

    ``B-IDJ`` walks each surviving ``q`` once per deepening round; only
    the *deepest* walk matters (``FStructure.update`` would discard the
    rest anyway), so the recorder buffers the latest walk per ``q`` and
    the join flushes the buffer into ``F`` once, after ``B-IDJ``
    finishes — saving one heap push per superseded round.
    """

    def __init__(self) -> None:
        self.latest: Dict[int, Tuple[int, np.ndarray, float]] = {}

    def observe(self, q: int, level: int, scores: np.ndarray, tail: float) -> None:
        previous = self.latest.get(q)
        if previous is None or level > previous[0]:
            self.latest[q] = (level, scores, tail)


class IncrementalTwoWayJoin:
    """A 2-way join that can be consumed one pair at a time.

    Typical use (this is exactly what ``PJ-i`` does per query-graph
    edge)::

        join = IncrementalTwoWayJoin(context)
        prefix = join.top(m)          # modified B-IDJ, fills F
        extra = join.next_pair()      # the (m+1)-th pair, from F
        extra = join.next_pair()      # the (m+2)-th, ...

    The emitted stream is globally sorted: it equals the sequence a fresh
    top-``(m + t)`` join would return (the property tests check this).

    Parameters
    ----------
    context:
        Validated join inputs.
    bound_factory:
        Upper-bound flavour for both the initial ``B-IDJ`` and the
        refinement loop; defaults to the ``Y`` bound, the paper's choice.
    """

    def __init__(
        self,
        context: TwoWayContext,
        bound_factory: BoundFactory = y_bound_factory,
    ) -> None:
        if context.walk_cache is None:
            # Resumable refinement needs somewhere to keep walk state
            # between next_pair() calls; work on a private copy of the
            # context so the caller's object is not mutated.
            context = replace(
                context,
                walk_cache=WalkCache(context.engine, context.params),
            )
        self._ctx = context
        self._bound: ScoreUpperBound = bound_factory(context)
        self._f = FStructure()
        self._emitted: set = set()
        self._started = False

    @property
    def context(self) -> TwoWayContext:
        """The join's validated inputs."""
        return self._ctx

    @property
    def pairs_remaining(self) -> int:
        """Candidate pairs not yet emitted."""
        return self._ctx.num_pairs - len(self._emitted)

    def top(self, m: int) -> List[ScoredPair]:
        """The top-``m`` pairs, via ``B-IDJ`` instrumented to fill ``F``.

        Must be called exactly once, before any :meth:`next_pair` call.
        ``m = 0`` is allowed (Algorithm 1 permits it): ``F`` is seeded
        with 1-step walks from every right node so that ``next_pair`` can
        start refining.
        """
        if self._started:
            raise GraphValidationError("top() may only be called once")
        self._started = True
        if m < 0:
            raise GraphValidationError(f"m must be >= 0, got {m}")
        if m == 0:
            level = min(1, self._ctx.d)
            for q in self._ctx.right:
                self._refine(q, level)
            return []
        recorder = _FRecorder()
        algorithm = BackwardIDJ(
            self._ctx,
            bound_factory=lambda _ctx: self._bound,
            observer=recorder,
        )
        result = algorithm.top_k(m)
        for pair in result:
            self._emitted.add((pair.left, pair.right))
        for q, (level, scores, tail) in recorder.latest.items():
            self._record_walk(q, level, scores, tail)
        return result

    def next_pair(self) -> Optional[ScoredPair]:
        """The next pair in global score order, or ``None`` if exhausted.

        Implements the Section VI-D loop: peek the two best entries by
        upper bound; emit the head once its lower bound is certain to
        dominate, otherwise refine the head's ``q`` with a doubled walk.
        """
        if not self._started:
            raise GraphValidationError("call top(m) before next_pair()")
        d = self._ctx.d
        while True:
            first, second = self._f.peek_top_two()
            if first is None:
                return None
            head_certain = second is None or first.lower >= second.upper
            if first.level >= d:
                if head_certain:
                    return self._emit(first)
                # first has max upper and exact bounds, so
                # first.lower == first.upper >= second.upper: unreachable,
                # but guard against float asymmetries by emitting anyway.
                return self._emit(first)
            if head_certain:
                # The head is the answer; finalise its exact score.
                self._refine(first.pair[1], d)
            else:
                self._refine(first.pair[1], min(2 * first.level, d))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _emit(self, entry: FEntry) -> ScoredPair:
        pair = entry.pair
        self._emitted.add(pair)
        self._f.remove(pair)
        return ScoredPair(pair[0], pair[1], entry.lower)

    def _refine(self, q: int, level: int) -> None:
        """Re-walk ``q`` at ``level`` steps and tighten all its entries."""
        scores = back_walk(self._ctx, q, level)
        tail = 0.0 if level >= self._ctx.d else self._bound.tail(level, q)
        self._record_walk(q, level, scores, tail)

    def _record_walk(self, q: int, level: int, scores: np.ndarray, tail: float) -> None:
        for p in self._ctx.left:
            if p == q:
                continue
            key = (p, q)
            if key in self._emitted:
                continue
            score = float(scores[p])
            self._f.update(key, score, score + tail, level)
