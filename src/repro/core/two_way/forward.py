"""Forward-processing 2-way joins: ``F-BJ`` and ``F-IDJ`` (Section V-B).

Forward processing computes ``h_d(p, q)`` by propagating walker mass from
``p`` towards ``q``; one propagation serves a *single* pair, which is why
both algorithms cost ``O(|P| |Q| d |E_G|)`` in the worst case and why the
backward algorithms of Section VI beat them by a factor of ``|P|``.
"""

from __future__ import annotations

from typing import List

from repro.core.bounds import XBound
from repro.core.two_way.base import (
    ScoredPair,
    TwoWayContext,
    kth_largest,
    top_k_pairs,
)
from repro.graph.validation import GraphValidationError


class ForwardBasicJoin:
    """``F-BJ``: exhaustive per-pair forward computation.

    For every pair ``(p, q)`` runs a ``d``-step forward propagation with
    ``q`` absorbing and scores the resulting hit series (the approach of
    [8], adapted to the general DHT form).  No pruning; this is the
    baseline the paper uses inside ``AP``.
    """

    name = "F-BJ"

    def __init__(self, context: TwoWayContext) -> None:
        self._ctx = context

    def all_pairs(self) -> List[ScoredPair]:
        """Score every candidate pair (unsorted)."""
        ctx = self._ctx
        pairs: List[ScoredPair] = []
        for p in ctx.left:
            for q in ctx.right:
                if p == q:
                    continue
                series = ctx.engine.forward_first_hit_series(p, q, ctx.d)
                pairs.append(ScoredPair(p, q, ctx.params.score_from_series(series)))
        return pairs

    def top_k(self, k: int) -> List[ScoredPair]:
        """Top-``k`` pairs by exhaustive scoring."""
        if k == 0:
            return []
        return top_k_pairs(self.all_pairs(), k)


class ForwardIDJ:
    """``F-IDJ``: iterative-deepening forward join (adaptation of IDJ [19]).

    Runs ``ceil(log2 d) - 1`` cheap rounds with doubling walk lengths
    ``l = 1, 2, 4, ...``; after each round a left node ``p`` is pruned
    when even its best possible score ``max_q h_l(p, q) + X_l^+`` cannot
    reach the current top-``k`` floor ``T_k``.  Surviving pairs get the
    full ``d``-step computation in a final round.

    The short rounds are cheap (``l``-step walks) and, because ``lambda^i``
    decays geometrically, already rank most pairs correctly — so the
    expensive final round usually runs on a small survivor set.

    The ``X_l^+`` table is served through the context's
    :class:`~repro.bounds_cache.BoundPlanCache` instead of being rebuilt
    per join instance, so ``PJ`` restart refills and sibling query edges
    sharing a spec-wide cache reuse one build (hits land in
    ``engine.stats.bound_cache_hits``).
    """

    name = "F-IDJ"

    def __init__(self, context: TwoWayContext) -> None:
        self._ctx = context
        self.pruning_trace: List[dict] = []

    def top_k(self, k: int) -> List[ScoredPair]:
        """Top-``k`` pairs with iterative-deepening pruning on ``P``."""
        if k < 0:
            raise GraphValidationError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        ctx = self._ctx
        xbound = ctx.bound_cache.x_bound(
            ctx.d, lambda: XBound(ctx.params, ctx.d)
        )
        self.pruning_trace = []
        active = list(ctx.left)
        level = 1
        while level < ctx.d and len(active) > 1:
            lower_bounds: List[float] = []
            surviving: List[int] = []
            upper_by_p = {}
            for p in active:
                best_l = ctx.params.zero_score
                for q in ctx.right:
                    if p == q:
                        continue
                    series = ctx.engine.forward_first_hit_series(p, q, level)
                    h_l = ctx.params.score_from_series(series)
                    lower_bounds.append(h_l)
                    if h_l > best_l:
                        best_l = h_l
                upper_by_p[p] = best_l + xbound.tail(level)
            t_k = kth_largest(lower_bounds, k)
            for p in active:
                if upper_by_p[p] >= t_k:
                    surviving.append(p)
            self.pruning_trace.append(
                {
                    "level": level,
                    "active_before": len(active),
                    "pruned": len(active) - len(surviving),
                    "threshold": t_k,
                }
            )
            active = surviving
            level *= 2
        pairs: List[ScoredPair] = []
        for p in active:
            for q in ctx.right:
                if p == q:
                    continue
                series = ctx.engine.forward_first_hit_series(p, q, ctx.d)
                pairs.append(ScoredPair(p, q, ctx.params.score_from_series(series)))
        return top_k_pairs(pairs, k)
