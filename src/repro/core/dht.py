"""The discounted hitting time (DHT) framework — Section V-A of the paper.

The general form (Definition 5) is

``h(u, v) = alpha * sum_{i >= 1} lambda^i P_i(u, v) + beta``

with ``P_i(u, v)`` the probability of *first* hitting ``v`` at step ``i``
from ``u``.  The two published variants are specialisations (Table II):

* ``DHT_e`` (Guan et al. [8]): ``alpha = e``, ``beta = 0``,
  ``lambda = 1/e`` — i.e. ``sum_i e^{-(i-1)} P_i``.
* ``DHT_lambda`` (Sarkar & Moore [9]): ``alpha = 1/(1-lambda)``,
  ``beta = -1/(1-lambda)`` — the negated discounted-hitting-distance, so
  larger is more similar.

In practice the series is truncated at ``d`` steps (Eq. 4); Lemma 1 gives
the smallest ``d`` with truncation error at most ``epsilon``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.digraph import Graph
from repro.walks.hitting import dense_transition_matrix


@dataclass(frozen=True)
class DHTParams:
    """Coefficients ``(alpha, beta, lambda)`` of the general DHT form.

    ``alpha`` must be positive: both published variants have ``alpha > 0``
    and every pruning bound in the paper (Lemmas 2 and 5, Theorem 1)
    silently relies on the series term being non-negative.
    """

    alpha: float
    beta: float
    decay: float  # the paper's lambda; renamed because `lambda` is reserved

    def __post_init__(self) -> None:
        if not (self.alpha > 0 and math.isfinite(self.alpha)):
            raise ValueError(f"alpha must be finite and > 0, got {self.alpha}")
        if not math.isfinite(self.beta):
            raise ValueError(f"beta must be finite, got {self.beta}")
        if not (0.0 < self.decay < 1.0):
            raise ValueError(f"decay (lambda) must be in (0, 1), got {self.decay}")

    # ------------------------------------------------------------------
    # Named variants (Table II)
    # ------------------------------------------------------------------

    @classmethod
    def dht_e(cls) -> "DHTParams":
        """``DHT_e`` of [8]: ``sum_i e^{-(i-1)} P_i(u, v)``."""
        return cls(alpha=math.e, beta=0.0, decay=1.0 / math.e)

    @classmethod
    def dht_lambda(cls, decay: float = 0.2) -> "DHTParams":
        """``DHT_lambda`` of [9], negated into a similarity (footnote 3).

        The paper's default configuration is ``lambda = 0.2`` giving
        ``alpha = 1.25`` and ``beta = -1.25`` (Section VII-A).
        """
        if not (0.0 < decay < 1.0):
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        scale = 1.0 / (1.0 - decay)
        return cls(alpha=scale, beta=-scale, decay=decay)

    # ------------------------------------------------------------------
    # Truncation (Eq. 4, Lemma 1)
    # ------------------------------------------------------------------

    def steps_for_epsilon(self, epsilon: float) -> int:
        """Smallest ``d`` with ``|h - h_d| <= epsilon`` (Lemma 1).

        ``d >= log_lambda( epsilon (1 - lambda) / (alpha lambda) )``.
        For the paper's defaults (``lambda=0.2, alpha=1.25``) and
        ``epsilon = 1e-6`` this returns ``d = 8``.
        """
        if not (epsilon > 0):
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        ratio = epsilon * (1.0 - self.decay) / (self.alpha * self.decay)
        if ratio >= 1.0:
            return 1
        d = math.log(ratio) / math.log(self.decay)
        return max(1, math.ceil(d - 1e-12))

    def truncation_error_bound(self, d: int) -> float:
        """Upper bound on ``h - h_d``: the full geometric tail
        ``alpha * lambda^{d+1} / (1 - lambda)`` (cf. Lemma 2 with
        ``l = d``)."""
        if d < 0:
            raise ValueError(f"d must be >= 0, got {d}")
        return self.alpha * self.decay ** (d + 1) / (1.0 - self.decay)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    @property
    def zero_score(self) -> float:
        """Score of a pair with zero hitting probability at every step
        (``h = beta``): the floor of the score range."""
        return self.beta

    def max_score(self) -> float:
        """Score of a pair hit at step 1 with probability 1
        (``alpha * lambda + beta``): the ceiling of the score range."""
        return self.alpha * self.decay + self.beta

    def score_from_series(self, hit_probs: np.ndarray) -> float:
        """Truncated score ``h_d`` from ``[P_1, ..., P_d]`` (Eq. 4)."""
        hit_probs = np.asarray(hit_probs, dtype=np.float64)
        d = hit_probs.shape[-1]
        weights = self.decay ** np.arange(1, d + 1)
        return float(self.alpha * hit_probs.dot(weights) + self.beta)

    def scores_from_matrix(self, hit_matrix: np.ndarray) -> np.ndarray:
        """Vectorised ``h_d`` for a ``(d, n)`` matrix of hit series.

        Column ``u`` of ``hit_matrix`` is ``[P_1(u, q), ..., P_d(u, q)]``
        (the layout produced by
        :meth:`repro.walks.engine.WalkEngine.backward_first_hit_series`);
        the result is the length-``n`` vector of ``h_d(u, q)`` scores.
        """
        hit_matrix = np.asarray(hit_matrix, dtype=np.float64)
        d = hit_matrix.shape[0]
        weights = self.decay ** np.arange(1, d + 1)
        return self.alpha * weights.dot(hit_matrix) + self.beta

    def partial_score_prefixes(self, hit_probs: np.ndarray) -> np.ndarray:
        """All prefixes ``[h_0, h_1, ..., h_d]`` from one hit series.

        ``h_0 = beta`` (empty sum); ``h_l`` is the ``l``-step truncation.
        Used by the iterative-deepening algorithms, which need ``h_l`` at
        doubling checkpoints.
        """
        hit_probs = np.asarray(hit_probs, dtype=np.float64)
        d = hit_probs.shape[-1]
        weights = self.decay ** np.arange(1, d + 1)
        prefix = np.concatenate(([0.0], np.cumsum(hit_probs * weights)))
        return self.alpha * prefix + self.beta

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"DHT(alpha={self.alpha:.4g}, beta={self.beta:.4g}, lambda={self.decay:.4g})"


# ----------------------------------------------------------------------
# Exact reference solver (test oracle)
# ----------------------------------------------------------------------


def exact_dht_score(
    graph: Graph,
    params: DHTParams,
    source: int,
    target: int,
    dense_cache: Optional[np.ndarray] = None,
) -> float:
    """Exact (untruncated) ``h(source, target)`` by solving a linear system.

    Writing ``g(u) = sum_i lambda^i P_i(u, v)`` for a fixed target ``v``,
    first-step analysis gives

    ``g(u) = lambda * ( p_uv + sum_{w != v} p_uw g(w) )``

    i.e. ``(I - lambda T_{-v}) g = lambda T e_v`` where ``T_{-v}`` is the
    transition matrix with column ``v`` zeroed.  Since
    ``lambda < 1`` and ``T_{-v}`` is sub-stochastic the system is
    strictly diagonally dominant and has a unique solution.  Dense solve:
    small graphs only (test oracle).
    """
    if source == target:
        return 0.0
    dense = dense_cache if dense_cache is not None else dense_transition_matrix(graph)
    n = graph.num_nodes
    masked = dense.copy()
    masked[:, target] = 0.0
    system = np.eye(n) - params.decay * masked
    rhs = params.decay * dense[:, target]
    g = np.linalg.solve(system, rhs)
    return float(params.alpha * g[source] + params.beta)


def exact_dht_to_target(
    graph: Graph,
    params: DHTParams,
    target: int,
    dense_cache: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Exact ``h(u, target)`` for all ``u`` (same system, full vector)."""
    dense = dense_cache if dense_cache is not None else dense_transition_matrix(graph)
    n = graph.num_nodes
    masked = dense.copy()
    masked[:, target] = 0.0
    system = np.eye(n) - params.decay * masked
    rhs = params.decay * dense[:, target]
    g = np.linalg.solve(system, rhs)
    scores = params.alpha * g + params.beta
    scores[target] = 0.0
    return scores
