"""Command-line interface: run DHT joins against on-disk graphs.

Usage (after ``pip install -e .``)::

    # top-10 closest pairs between two node sets
    python -m repro two-way graph.tsv --sets sets.json \\
        --left DB --right AI -k 10

    # top-5 chain 3-way join
    python -m repro multi-way graph.tsv --sets sets.json \\
        --shape chain --node-sets DB AI SYS -k 5 --aggregate MIN

    # the same star join under Personalized PageRank
    python -m repro multi-way graph.tsv --sets sets.json \\
        --shape star --node-sets CENTER A B -k 5 --measure ppr

    # dataset statistics
    python -m repro stats graph.tsv

    # serve a JSON request mix through the concurrent query service
    python -m repro serve graph.tsv --sets sets.json \\
        --requests requests.json --workers 4

    # throughput/latency sweep: replay the mix, cold vs warm caches
    python -m repro bench-service graph.tsv --sets sets.json \\
        --requests requests.json --workers 4 --runs 3

Graphs are TSV edge lists with a ``# nodes: N`` header
(:mod:`repro.graph.io`); node sets are JSON ``{"name": [ids...]}``.
The ``--requests`` file is a JSON list of request objects, e.g.
``[{"type": "two-way", "left": "DB", "right": "AI", "k": 5},
{"type": "multi-way", "shape": "chain", "node_sets": ["DB", "AI"],
"k": 5, "measure": "ppr"}]`` (``type`` also accepts ``"explain"``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from typing import List, Optional, Sequence

from repro.api import explain_multi_way_plan, multi_way_join, two_way_join
from repro.core.dht import DHTParams
from repro.core.nway.aggregates import aggregate_by_name
from repro.core.nway.query_graph import QueryGraph
from repro.exec.budget import (
    ON_BUDGET_POLICIES,
    BudgetExhaustedError,
    PartialResult,
    QueryBudget,
)
from repro.extensions.measures import TruncatedPPR
from repro.extensions.simrank import SimRankMeasure
from repro.graph.io import read_edge_list, read_node_sets
from repro.graph.validation import GraphValidationError

_SHAPES = ("chain", "cycle", "triangle", "star", "clique")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-way joins over discounted hitting time (ICDE 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("graph", help="TSV edge list with a '# nodes: N' header")
        p.add_argument("--sets", required=True, help="JSON node-set file")
        p.add_argument("-k", type=int, default=10, help="answers to return")
        p.add_argument(
            "--measure",
            choices=("dht-lambda", "dht-e", "dht", "ppr", "simrank"),
            default="dht-lambda",
            help="proximity measure ('dht' aliases 'dht-lambda'; 'ppr' and "
                 "'simrank' run the measure-generic join stack)",
        )
        p.add_argument("--decay", type=float, default=0.2, help="lambda")
        p.add_argument("--epsilon", type=float, default=1e-6,
                       help="truncation error target (Lemma 1; also sets "
                            "PPR's depth)")
        p.add_argument("--damping", type=float, default=0.85,
                       help="PPR continuation probability c (--measure ppr)")
        p.add_argument("--sr-decay", type=float, default=0.8,
                       help="SimRank decay C (--measure simrank)")
        p.add_argument("--sr-iterations", type=int, default=10,
                       help="SimRank fixed-point sweeps (--measure simrank)")
        p.add_argument(
            "--max-block-bytes", type=int, default=None,
            help="ceiling on the deepening join's resumable walk block, "
                 "for DHT and series measures alike (bounded-memory "
                 "chunked rounds with walk-cache spill; default "
                 "unbounded)",
        )
        p.add_argument(
            "--deadline-ms", type=float, default=None,
            help="wall-clock budget in milliseconds; on exhaustion the "
                 "join returns flagged best-effort results with score "
                 "intervals (see --on-budget)",
        )
        p.add_argument(
            "--step-budget", type=int, default=None,
            help="propagation-step budget (batching-invariant "
                 "column-steps); same exhaustion semantics as "
                 "--deadline-ms",
        )
        p.add_argument(
            "--on-budget", choices=ON_BUDGET_POLICIES, default="partial",
            help="what budget exhaustion does: 'partial' (default) "
                 "returns best-effort results flagged exact=false, "
                 "'error' exits with status 3",
        )
        p.add_argument("--json", action="store_true", dest="as_json",
                       help="emit machine-readable JSON")
        add_obs_common(p)

    def add_obs_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace-out", metavar="FILE", default=None,
            help="run under the structured tracer and append the query's "
                 "span tree to FILE as schema-tagged JSON lines "
                 "(repro-trace-v1); export failures never affect results",
        )
        p.add_argument(
            "--metrics-out", metavar="FILE", default=None,
            help="write a metrics snapshot after the run: Prometheus "
                 "text if FILE ends in .prom, else appended JSON lines",
        )

    two = sub.add_parser("two-way", help="top-k 2-way join")
    add_common(two)
    two.add_argument("--left", required=True, help="left node-set name")
    two.add_argument("--right", required=True, help="right node-set name")
    two.add_argument(
        "--algorithm",
        choices=("f-bj", "f-idj", "b-bj", "b-idj-x", "b-idj-y"),
        default="b-idj-y",
    )

    multi = sub.add_parser("multi-way", help="top-k n-way join")
    add_common(multi)
    multi.add_argument("--node-sets", nargs="+", required=True,
                       help="node-set names, one per query vertex")
    multi.add_argument("--shape", choices=_SHAPES, default="chain")
    multi.add_argument("--bidirectional", action="store_true",
                       help="add both directions per query edge")
    multi.add_argument(
        "--algorithm", choices=("nl", "ap", "pj", "pj-i"), default="pj-i"
    )
    multi.add_argument("--aggregate", default="MIN")
    multi.add_argument("-m", type=int, default=50, help="PJ/PJ-i prefix length")
    multi.add_argument(
        "--no-walk-cache", action="store_false", dest="share_walks",
        help="disable the cross-edge walk cache (seed per-edge walk costs)",
    )
    multi.add_argument(
        "--no-bound-cache", action="store_false", dest="share_bounds",
        help="disable the cross-edge bound/plan cache "
             "(per-edge Y-bound and tail-plan builds)",
    )
    multi.add_argument(
        "--plan", choices=("fixed", "auto"), default="fixed",
        help="edge order / per-edge operator selection: 'fixed' "
             "(default) keeps index order with the strategy default, "
             "'auto' lets the degree/skew cost planner choose (answers "
             "are identical either way; only cost moves)",
    )
    multi.add_argument(
        "--explain", nargs="?", const="plan", choices=("plan", "analyze"),
        default=None,
        help="print the chosen plan (order, operators, cost estimates) "
             "before the answers; with --json the output becomes "
             "{'plan': ..., 'results': ...}.  '--explain analyze' also "
             "runs the query under the tracer and annotates each edge "
             "with predicted vs. actual propagation steps, cache hits, "
             "and peak block bytes",
    )

    stats = sub.add_parser("stats", help="print graph statistics")
    stats.add_argument("graph")
    stats.add_argument("--json", action="store_true", dest="as_json")

    def add_service_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("graph", help="TSV edge list with a '# nodes: N' header")
        p.add_argument("--sets", required=True, help="JSON node-set file")
        p.add_argument("--requests", required=True,
                       help="JSON list of request objects (see module docs)")
        p.add_argument("--workers", type=int, default=4,
                       help="worker threads in the service pool")
        p.add_argument("--queue-depth", type=int, default=32,
                       help="max requests waiting for a worker before "
                            "admission control rejects")
        p.add_argument("--max-in-flight", type=int, default=None,
                       help="ceiling on admitted-but-unfinished requests "
                            "(default workers + queue depth)")
        p.add_argument("--decay", type=float, default=0.2, help="lambda")
        p.add_argument("--epsilon", type=float, default=1e-6,
                       help="truncation error target (Lemma 1)")
        p.add_argument("--deadline-ms", type=float, default=None,
                       help="default per-query wall budget (requests "
                            "without their own budget run under this; "
                            "queue wait counts against it)")
        p.add_argument("--step-budget", type=int, default=None,
                       help="default per-query propagation-step budget")
        p.add_argument("--json", action="store_true", dest="as_json",
                       help="emit machine-readable JSON")
        add_obs_common(p)

    serve = sub.add_parser(
        "serve",
        help="run a JSON request mix through the concurrent query service",
    )
    add_service_common(serve)
    serve.add_argument(
        "--metrics-interval", type=float, default=None, metavar="SECONDS",
        help="with --metrics-out: flush a registry snapshot every "
             "SECONDS while the service runs (plus one final snapshot)",
    )

    bench = sub.add_parser(
        "bench-service",
        help="replay the request mix repeatedly: QPS/p50/p99 and "
             "cold-vs-warm cache-hit rates",
    )
    add_service_common(bench)
    bench.add_argument("--runs", type=int, default=3,
                       help="replay passes over the mix (pass 1 is the "
                            "cold arm, the last pass the warm arm)")
    return parser


def _budget(args) -> Optional[QueryBudget]:
    """The ``QueryBudget`` selected by the flags, or ``None`` (ungoverned)."""
    if args.deadline_ms is None and args.step_budget is None:
        return None
    return QueryBudget(
        deadline_ms=args.deadline_ms, step_budget=args.step_budget
    )


def _unwrap(result):
    """Split an API return into (items, partial-or-None)."""
    if isinstance(result, PartialResult):
        return result.results, result
    return result, None


def _obs_setup(args, graph):
    """``(engine, tracer)`` for ``--trace-out`` / ``--metrics-out``.

    Both flags need the engine pinned up front (the API otherwise
    creates one internally): the tracer installs on it, and the metrics
    snapshot reads its stats after the run.  ``(None, None)`` when
    neither flag is set — the query path stays untouched.
    """
    if args.trace_out is None and args.metrics_out is None:
        return None, None
    from repro.obs import QueryTracer
    from repro.walks.engine import WalkEngine

    engine = WalkEngine(graph)
    tracer = QueryTracer() if args.trace_out is not None else None
    return engine, tracer


def _obs_export(args, engine, tracer) -> None:
    """Write the trace/metrics files the flags asked for (never raises)."""
    if tracer is not None:
        tracer.write_jsonl(args.trace_out)
    if args.metrics_out is not None and engine is not None:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.register_engine(engine.stats)
        registry.write_snapshot(args.metrics_out)


def _dht_params(args) -> DHTParams:
    if args.measure == "dht-e":
        return DHTParams.dht_e()
    return DHTParams.dht_lambda(args.decay)


def _series_measure(args):
    """The non-DHT measure object selected by ``--measure``, or ``None``."""
    if args.measure == "ppr":
        return TruncatedPPR(damping=args.damping, epsilon=args.epsilon)
    if args.measure == "simrank":
        return SimRankMeasure(decay=args.sr_decay, iterations=args.sr_iterations)
    return None


def _query_graph(shape: str, n: int, bidirectional: bool,
                 names: Sequence[str]) -> QueryGraph:
    if shape == "chain":
        return QueryGraph.chain(n, bidirectional=bidirectional, names=names)
    if shape == "cycle":
        return QueryGraph.cycle(n, bidirectional=bidirectional, names=names)
    if shape == "triangle":
        if n != 3:
            raise GraphValidationError("triangle needs exactly 3 node sets")
        return QueryGraph.triangle(names=names)
    if shape == "star":
        return QueryGraph.star(n - 1, bidirectional=bidirectional, names=names)
    if shape == "clique":
        return QueryGraph.clique(n, bidirectional=bidirectional, names=names)
    raise GraphValidationError(f"unknown shape {shape!r}")  # pragma: no cover


def _resolve_sets(path: str, names: Sequence[str]) -> List[List[int]]:
    node_sets = read_node_sets(path)
    missing = [name for name in names if name not in node_sets]
    if missing:
        raise GraphValidationError(
            f"node sets {missing} not in {path} (available: {sorted(node_sets)})"
        )
    return [node_sets[name] for name in names]


def _run_two_way(args) -> int:
    graph = read_edge_list(args.graph)
    left, right = _resolve_sets(args.sets, [args.left, args.right])
    measure = _series_measure(args)
    budget = _budget(args)
    engine, tracer = _obs_setup(args, graph)
    if measure is not None:
        result = two_way_join(
            graph, left, right, k=args.k,
            algorithm=args.algorithm,
            measure=measure,
            max_block_bytes=args.max_block_bytes,
            budget=budget, on_budget=args.on_budget,
            engine=engine, tracer=tracer,
        )
    else:
        result = two_way_join(
            graph, left, right, k=args.k,
            algorithm=args.algorithm,
            params=_dht_params(args), epsilon=args.epsilon,
            max_block_bytes=args.max_block_bytes,
            budget=budget, on_budget=args.on_budget,
            engine=engine, tracer=tracer,
        )
    _obs_export(args, engine, tracer)
    pairs, partial = _unwrap(result)
    if args.as_json:
        rows = [
            {"left": p.left, "right": p.right, "score": p.score} for p in pairs
        ]
        if partial is not None:
            for row, (lower, upper) in zip(rows, partial.bounds):
                row["lower"] = lower
                row["upper"] = upper
            print(json.dumps(
                {"exact": partial.exact, "reason": partial.reason,
                 "results": rows}
            ))
        else:
            print(json.dumps(rows))
    else:
        if partial is not None and not partial.exact:
            print(f"# partial result (budget exhausted: {partial.reason}); "
                  f"scores are lower bounds")
        for rank, pair in enumerate(pairs, start=1):
            print(f"{rank:>4}  ({pair.left}, {pair.right})  h_d = {pair.score:+.6f}")
    return 0


def _run_multi_way(args) -> int:
    graph = read_edge_list(args.graph)
    sets = _resolve_sets(args.sets, args.node_sets)
    query = _query_graph(
        args.shape, len(sets), args.bidirectional, args.node_sets
    )
    measure = _series_measure(args)
    budget = _budget(args)
    aggregate = aggregate_by_name(args.aggregate)
    engine, tracer = _obs_setup(args, graph)
    plan_arg: object = args.plan
    plan_obj = None
    analyzed = None
    if args.explain:
        analyze = args.explain == "analyze"
        if analyze and budget is not None:
            raise GraphValidationError(
                "--explain analyze runs the query ungoverned; drop "
                "--deadline-ms/--step-budget or use --explain plan"
            )
        # Plan once, print it, then replay that exact plan — the join
        # executes precisely what was explained (no double planning).
        # With 'analyze' the traced replay happens inside the API call
        # and its answers are the query's answers.
        explain_kwargs = dict(
            algorithm=args.algorithm, aggregate=aggregate, m=args.m,
            share_walks=args.share_walks, share_bounds=args.share_bounds,
            max_block_bytes=args.max_block_bytes, plan=args.plan,
            engine=engine, analyze=analyze,
        )
        if measure is not None:
            plan_obj = explain_multi_way_plan(
                graph, query, sets, args.k, measure=measure, **explain_kwargs
            )
        else:
            plan_obj = explain_multi_way_plan(
                graph, query, sets, args.k,
                params=_dht_params(args), epsilon=args.epsilon,
                **explain_kwargs,
            )
        if analyze:
            analyzed = plan_obj
            if args.trace_out is not None and analyzed.trace is not None:
                from repro.obs import write_trace_jsonl

                write_trace_jsonl(args.trace_out, [analyzed.trace])
            _obs_export(args, engine, None)
            result = list(analyzed.answers)
        else:
            plan_arg = plan_obj
    if analyzed is None:
        if measure is not None:
            result = multi_way_join(
                graph, query, sets, k=args.k,
                algorithm=args.algorithm,
                aggregate=aggregate,
                m=args.m,
                measure=measure,
                share_walks=args.share_walks,
                share_bounds=args.share_bounds,
                max_block_bytes=args.max_block_bytes,
                plan=plan_arg,
                budget=budget, on_budget=args.on_budget,
                engine=engine, tracer=tracer,
            )
        else:
            result = multi_way_join(
                graph, query, sets, k=args.k,
                algorithm=args.algorithm,
                aggregate=aggregate,
                m=args.m,
                params=_dht_params(args), epsilon=args.epsilon,
                share_walks=args.share_walks,
                share_bounds=args.share_bounds,
                max_block_bytes=args.max_block_bytes,
                plan=plan_arg,
                budget=budget, on_budget=args.on_budget,
                engine=engine, tracer=tracer,
            )
        _obs_export(args, engine, tracer)
    answers, partial = _unwrap(result)
    if args.as_json:
        rows = [
            {
                "nodes": list(a.nodes),
                "score": a.score,
                "edge_scores": list(a.edge_scores),
            }
            for a in answers
        ]
        if partial is not None:
            for row, (lower, upper) in zip(rows, partial.bounds):
                row["lower"] = lower
                row["upper"] = upper
            payload = {"exact": partial.exact, "reason": partial.reason,
                       "results": rows}
        else:
            payload = rows
        if plan_obj is not None:
            if not isinstance(payload, dict):
                payload = {"results": rows}
            payload["plan"] = plan_obj.to_json()
        print(json.dumps(payload))
    else:
        if plan_obj is not None:
            for line in plan_obj.format().splitlines():
                print(f"# {line}")
        if partial is not None and not partial.exact:
            print(f"# partial result (budget exhausted: {partial.reason}); "
                  f"scores are lower bounds")
        for rank, answer in enumerate(answers, start=1):
            nodes = ", ".join(str(u) for u in answer.nodes)
            print(f"{rank:>4}  ({nodes})  f = {answer.score:+.6f}")
    return 0


def _resolve_members(node_sets: dict, value, path: str) -> List[int]:
    """A node list from a set name or an explicit id list."""
    if isinstance(value, str):
        if value not in node_sets:
            raise GraphValidationError(
                f"node set {value!r} not in {path} "
                f"(available: {sorted(node_sets)})"
            )
        return node_sets[value]
    return [int(u) for u in value]


def _parse_requests(path: str, sets_path: str) -> List[object]:
    """The request objects described by the ``--requests`` JSON file.

    Each entry is ``{"type": "two-way" | "multi-way" | "explain", ...}``;
    node sets are named (resolved through ``--sets``) or explicit id
    lists, and multi-way entries give either a ``shape`` or explicit
    ``query_edges``.  Per-entry ``deadline_ms`` / ``step_budget`` keys
    become that request's own :class:`~repro.exec.budget.QueryBudget`.
    """
    from repro.service import ExplainRequest, MultiWayRequest, TwoWayRequest

    node_sets = read_node_sets(sets_path)
    with open(path, "r", encoding="utf-8") as handle:
        entries = json.load(handle)
    if not isinstance(entries, list) or not entries:
        raise GraphValidationError(
            f"{path} must hold a non-empty JSON list of request objects"
        )
    requests: List[object] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict) or "type" not in entry:
            raise GraphValidationError(
                f"request #{index} in {path} needs a 'type' key"
            )
        kind = entry["type"]
        required = (
            ("left", "right") if kind == "two-way"
            else ("node_sets",) if kind in ("multi-way", "explain")
            else ()
        )
        for key in required:
            if key not in entry:
                raise GraphValidationError(
                    f"request #{index} ({kind}) in {path} needs a "
                    f"{key!r} key"
                )
        budget = None
        if entry.get("deadline_ms") is not None or entry.get("step_budget") is not None:
            budget = QueryBudget(
                deadline_ms=entry.get("deadline_ms"),
                step_budget=entry.get("step_budget"),
            )
        k = int(entry.get("k", 10))
        measure = entry.get("measure")
        if kind == "two-way":
            requests.append(TwoWayRequest(
                left=_resolve_members(node_sets, entry["left"], sets_path),
                right=_resolve_members(node_sets, entry["right"], sets_path),
                k=k,
                algorithm=entry.get("algorithm", "b-idj-y"),
                measure=measure,
                budget=budget,
            ))
            continue
        if kind not in ("multi-way", "explain"):
            raise GraphValidationError(
                f"request #{index}: unknown type {kind!r} (expected "
                "'two-way', 'multi-way', or 'explain')"
            )
        sets = [
            _resolve_members(node_sets, value, sets_path)
            for value in entry["node_sets"]
        ]
        if "query_edges" in entry:
            edges = [(int(i), int(j)) for i, j in entry["query_edges"]]
        else:
            names = [str(value) for value in entry["node_sets"]]
            query = _query_graph(
                entry.get("shape", "chain"), len(sets),
                bool(entry.get("bidirectional", False)), names,
            )
            edges = [(edge[0], edge[1]) for edge in query.edges]
        common = dict(
            query_edges=edges,
            node_sets=sets,
            k=k,
            algorithm=entry.get("algorithm", "pj-i"),
            m=int(entry.get("m", 50)),
            measure=measure,
        )
        if kind == "explain":
            requests.append(ExplainRequest(
                plan=entry.get("plan", "auto"), **common
            ))
        else:
            requests.append(MultiWayRequest(
                plan=entry.get("plan", "fixed"), budget=budget, **common
            ))
    return requests


def _response_payload(response) -> dict:
    """A JSON-ready row for one :class:`QueryResponse`."""
    row: dict = {
        "type": type(response.request).__name__,
        "status": response.status,
        "queued_ms": round(response.queued_ms, 3),
        "latency_ms": round(response.latency_ms, 3),
    }
    if response.error is not None:
        row["error"] = response.error
    result = response.result
    if not response.ok or result is None:
        return row
    if isinstance(result, PartialResult):
        row["exact"] = result.exact
        if not result.exact:
            row["reason"] = result.reason
        rows = []
        for item in result.results:
            if hasattr(item, "nodes"):
                rows.append({"nodes": list(item.nodes), "score": item.score})
            else:
                rows.append({
                    "left": item.left, "right": item.right, "score": item.score
                })
        row["results"] = rows
    else:  # ExplainedPlan
        row["plan"] = result.to_json()
    return row


def _service_from_args(args, graph, tracer=None):
    from repro.service import QueryService

    return QueryService(
        graph,
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_in_flight=args.max_in_flight,
        default_budget=_budget(args),
        params=DHTParams.dht_lambda(args.decay),
        epsilon=args.epsilon,
        tracer=tracer,
    )


def _run_serve(args) -> int:
    graph = read_edge_list(args.graph)
    requests = _parse_requests(args.requests, args.sets)
    tracer = None
    if args.trace_out is not None:
        from repro.obs import QueryTracer

        tracer = QueryTracer()
    flush_stop = None
    with _service_from_args(args, graph, tracer=tracer) as service:
        interval = getattr(args, "metrics_interval", None)
        if args.metrics_out is not None and interval is not None:
            import threading

            registry = service.metrics_registry()
            flush_stop = threading.Event()

            def _flush_loop() -> None:
                while not flush_stop.wait(interval):
                    registry.write_snapshot(args.metrics_out)

            threading.Thread(
                target=_flush_loop, name="metrics-flush", daemon=True
            ).start()
        tickets = [service.submit(request) for request in requests]
        responses = [ticket.result() for ticket in tickets]
        snapshot = service.stats()
        if flush_stop is not None:
            flush_stop.set()
        if args.metrics_out is not None:
            service.metrics_registry().write_snapshot(args.metrics_out)
    if tracer is not None:
        tracer.write_jsonl(args.trace_out)
    stats_row = dataclasses.asdict(snapshot)
    slow = snapshot.slow_queries()
    if args.as_json:
        print(json.dumps({
            "responses": [_response_payload(r) for r in responses],
            "stats": stats_row,
            "slow_queries": list(slow),
        }))
        return 0
    for rank, response in enumerate(responses, start=1):
        kind = type(response.request).__name__.replace("Request", "").lower()
        if response.ok:
            result = response.result
            if isinstance(result, PartialResult):
                shape = "exact" if result.exact else f"partial/{result.reason}"
                shape += f" ({len(result.results)} answers)"
            else:
                shape = "plan"
            print(f"{rank:>4}  {kind:<9} ok        {shape:<28} "
                  f"latency {response.latency_ms:8.2f} ms")
        else:
            print(f"{rank:>4}  {kind:<9} {response.status:<9} {response.error}")
    print("# service stats")
    for key, value in stats_row.items():
        print(f"{key:>22}: {value:g}" if isinstance(value, float)
              else f"{key:>22}: {value}")
    if slow:
        print("# slow queries (worst latency first)")
        for entry in slow:
            print(f"  {entry['request']:<16} latency {entry['latency_ms']:8.2f} ms  "
                  f"queued {entry['queued_ms']:7.2f} ms  exact={entry['exact']}")
    return 0


def _run_bench_service(args) -> int:
    if args.runs < 2:
        raise GraphValidationError(
            f"bench-service needs --runs >= 2 for a cold/warm pair, "
            f"got {args.runs}"
        )
    graph = read_edge_list(args.graph)
    requests = _parse_requests(args.requests, args.sets)
    from repro.service.stats import percentile

    tracer = None
    if args.trace_out is not None:
        from repro.obs import QueryTracer

        tracer = QueryTracer()
    passes = []
    with _service_from_args(args, graph, tracer=tracer) as service:
        for run in range(1, args.runs + 1):
            before = service.stats()
            started = time.perf_counter()
            tickets = [service.submit(request) for request in requests]
            responses = [ticket.result() for ticket in tickets]
            elapsed = time.perf_counter() - started
            after = service.stats()
            hits = after.walk_cache_hits - before.walk_cache_hits
            misses = after.walk_cache_misses - before.walk_cache_misses
            lookups = hits + misses
            latencies = sorted(r.latency_ms for r in responses if r.ok)
            completed = len(latencies)
            passes.append({
                "run": run,
                "requests": len(responses),
                "completed": completed,
                "rejected": sum(1 for r in responses if r.rejected),
                "qps": (completed / elapsed) if elapsed > 0 else 0.0,
                "p50_ms": percentile(latencies, 0.50),
                "p99_ms": percentile(latencies, 0.99),
                "walk_cache_hit_rate": (hits / lookups) if lookups else 0.0,
            })
        if args.metrics_out is not None:
            service.metrics_registry().write_snapshot(args.metrics_out)
    if tracer is not None:
        tracer.write_jsonl(args.trace_out)
    summary = {
        "workers": args.workers,
        "runs": args.runs,
        "cold_hit_rate": passes[0]["walk_cache_hit_rate"],
        "warm_hit_rate": passes[-1]["walk_cache_hit_rate"],
        "passes": passes,
    }
    if args.as_json:
        print(json.dumps(summary))
        return 0
    print(f"# bench-service: {len(requests)} requests x {args.runs} passes, "
          f"{args.workers} workers")
    for row in passes:
        print(f"pass {row['run']:>2}  qps {row['qps']:8.1f}  "
              f"p50 {row['p50_ms']:8.2f} ms  p99 {row['p99_ms']:8.2f} ms  "
              f"walk-hit {row['walk_cache_hit_rate']:6.1%}  "
              f"rejected {row['rejected']}")
    print(f"# cold walk-hit {summary['cold_hit_rate']:.1%} -> "
          f"warm {summary['warm_hit_rate']:.1%}")
    return 0


def _run_stats(args) -> int:
    graph = read_edge_list(args.graph)
    stats = graph.degree_statistics()
    if args.as_json:
        print(json.dumps(stats))
    else:
        for key, value in stats.items():
            print(f"{key:>18}: {value:g}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "two-way":
            return _run_two_way(args)
        if args.command == "multi-way":
            return _run_multi_way(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "bench-service":
            return _run_bench_service(args)
        return _run_stats(args)
    except BudgetExhaustedError as exc:
        # --on-budget error: exhaustion is an explicit failure mode,
        # distinct from usage errors.
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except (GraphValidationError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
