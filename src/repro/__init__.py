"""Reproduction of *Evaluating Multi-Way Joins over Discounted Hitting
Time* (Zhang, Cheng, Kao — ICDE 2014).

Quick start::

    import numpy as np
    from repro import Graph, QueryGraph, two_way_join, multi_way_join

    graph = Graph.from_undirected_edges(5, [(0, 1, 1.0), (1, 2, 1.0),
                                            (2, 3, 1.0), (3, 4, 2.0)])
    pairs = two_way_join(graph, left=[0, 1], right=[3, 4], k=2)
    answers = multi_way_join(graph, QueryGraph.chain(3),
                             [[0], [2], [4]], k=1)

See ``README.md`` for the architecture map and paper-name glossary, and
``docs/BENCHMARKS.md`` for how the performance trajectory is measured.
"""

from repro.api import explain_multi_way_plan, multi_way_join, two_way_join
from repro.bounds_cache import BoundPlanCache
from repro.core.dht import DHTParams
from repro.core.nway.aggregates import AVG, MAX, MIN, SUM
from repro.core.nway.query_graph import QueryGraph
from repro.core.two_way.base import ScoredPair
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError
from repro.walks.engine import WalkEngine

__version__ = "1.0.0"

__all__ = [
    "AVG",
    "BoundPlanCache",
    "DHTParams",
    "Graph",
    "GraphValidationError",
    "MAX",
    "MIN",
    "QueryGraph",
    "SUM",
    "ScoredPair",
    "WalkEngine",
    "explain_multi_way_plan",
    "multi_way_join",
    "two_way_join",
    "__version__",
]
