"""Unit tests for aggregates and candidate-buffer expansion."""

import numpy as np
import pytest

from repro.core.nway.aggregates import (
    AVG,
    MAX,
    MIN,
    SUM,
    aggregate_by_name,
    check_monotone,
)
from repro.core.nway.candidates import CandidateBuffer, CandidateGenerator
from repro.core.nway.query_graph import QueryGraph
from repro.core.two_way.base import ScoredPair


class TestAggregates:
    def test_values(self):
        scores = [-1.0, -0.5, -2.0]
        assert SUM(scores) == pytest.approx(-3.5)
        assert MIN(scores) == -2.0
        assert MAX(scores) == -0.5
        assert AVG(scores) == pytest.approx(-3.5 / 3)

    def test_by_name(self):
        assert aggregate_by_name("min") is MIN
        assert aggregate_by_name("SUM") is SUM
        with pytest.raises(ValueError, match="unknown aggregate"):
            aggregate_by_name("median")

    def test_all_builtins_monotone(self, rng):
        for agg in (SUM, MIN, MAX, AVG):
            assert check_monotone(agg, arity=4, rng=rng)

    def test_monotone_checker_catches_decreasing(self, rng):
        class Negate:
            name = "NEG"

            def __call__(self, scores):
                return -sum(scores)

        assert not check_monotone(Negate(), arity=3, rng=rng)


class TestCandidateBuffer:
    def test_indexes(self):
        buf = CandidateBuffer()
        buf.add(ScoredPair(1, 10, 0.5))
        buf.add(ScoredPair(1, 11, 0.4))
        buf.add(ScoredPair(2, 10, 0.3))
        assert len(buf) == 3
        assert buf.score_of(1, 10) == 0.5
        assert buf.score_of(9, 9) is None
        assert sorted(buf.rights_for(1)) == [(10, 0.5), (11, 0.4)]
        assert sorted(buf.lefts_for(10)) == [(1, 0.5), (2, 0.3)]
        assert buf.rights_for(99) == []


class TestCandidateGenerator:
    def test_chain_completion_exactly_once(self):
        query = QueryGraph.chain(3)
        gen = CandidateGenerator(query, SUM)
        # Pull (a, b) on edge 0: no completion possible yet.
        assert gen.on_new_pair(0, ScoredPair(1, 10, 0.5)) == []
        # Pull (b, c) on edge 1: completes (1, 10, 20).
        answers = gen.on_new_pair(1, ScoredPair(10, 20, 0.25))
        assert len(answers) == 1
        assert answers[0].nodes == (1, 10, 20)
        assert answers[0].score == pytest.approx(0.75)
        assert answers[0].edge_scores == (0.5, 0.25)

    def test_multiple_matches_fan_out(self):
        query = QueryGraph.chain(3)
        gen = CandidateGenerator(query, SUM)
        gen.on_new_pair(0, ScoredPair(1, 10, 0.5))
        gen.on_new_pair(0, ScoredPair(2, 10, 0.4))
        answers = gen.on_new_pair(1, ScoredPair(10, 20, 0.1))
        assert {a.nodes for a in answers} == {(1, 10, 20), (2, 10, 20)}

    def test_no_duplicates_across_pulls(self):
        query = QueryGraph.chain(3)
        gen = CandidateGenerator(query, SUM)
        produced = []
        produced += gen.on_new_pair(0, ScoredPair(1, 10, 0.5))
        produced += gen.on_new_pair(1, ScoredPair(10, 20, 0.3))
        produced += gen.on_new_pair(0, ScoredPair(2, 10, 0.2))
        produced += gen.on_new_pair(1, ScoredPair(10, 21, 0.1))
        nodes = [a.nodes for a in produced]
        assert len(nodes) == len(set(nodes)) == 4

    def test_triangle_requires_all_three_edges(self):
        query = QueryGraph.triangle(bidirectional=False)
        gen = CandidateGenerator(query, MIN)
        assert gen.on_new_pair(0, ScoredPair(1, 10, 0.9)) == []
        assert gen.on_new_pair(1, ScoredPair(10, 20, 0.8)) == []
        answers = gen.on_new_pair(2, ScoredPair(20, 1, 0.7))
        assert len(answers) == 1
        assert answers[0].nodes == (1, 10, 20)
        assert answers[0].score == pytest.approx(0.7)

    def test_triangle_closing_edge_mismatch_is_dead_end(self):
        query = QueryGraph.triangle(bidirectional=False)
        gen = CandidateGenerator(query, MIN)
        gen.on_new_pair(0, ScoredPair(1, 10, 0.9))
        gen.on_new_pair(1, ScoredPair(10, 20, 0.8))
        # Closing edge back to the wrong left node: no completion.
        assert gen.on_new_pair(2, ScoredPair(20, 2, 0.7)) == []

    def test_star_completion(self):
        query = QueryGraph.star(2, bidirectional=False)
        gen = CandidateGenerator(query, SUM)
        gen.on_new_pair(0, ScoredPair(0, 10, 0.5))
        answers = gen.on_new_pair(1, ScoredPair(0, 20, 0.25))
        assert answers[0].nodes == (0, 10, 20)

    def test_edge_scores_follow_edge_order(self):
        query = QueryGraph(3, [(0, 1), (1, 2), (0, 2)])
        gen = CandidateGenerator(query, SUM)
        gen.on_new_pair(1, ScoredPair(10, 20, 0.2))
        gen.on_new_pair(2, ScoredPair(1, 20, 0.3))
        answers = gen.on_new_pair(0, ScoredPair(1, 10, 0.1))
        assert answers[0].edge_scores == (0.1, 0.2, 0.3)
