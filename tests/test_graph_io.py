"""Unit tests for graph/node-set serialisation."""

import pytest

from repro.graph.builders import path_graph
from repro.graph.digraph import Graph
from repro.graph.io import (
    read_edge_list,
    read_labels,
    read_node_sets,
    write_edge_list,
    write_labels,
    write_node_sets,
)
from repro.graph.validation import GraphValidationError


class TestEdgeList:
    def test_roundtrip(self, tmp_path, tiny_directed):
        path = tmp_path / "g.tsv"
        write_edge_list(tiny_directed, path)
        loaded = read_edge_list(path)
        assert loaded.num_nodes == tiny_directed.num_nodes
        assert sorted(loaded.edges()) == sorted(tiny_directed.edges())

    def test_roundtrip_preserves_isolated_nodes(self, tmp_path):
        g = Graph(5, [(0, 1, 1.0)])
        path = tmp_path / "g.tsv"
        write_edge_list(g, path)
        assert read_edge_list(path).num_nodes == 5

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("0\t1\t1.0\n")
        with pytest.raises(GraphValidationError, match="header"):
            read_edge_list(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("# nodes: 2\n0 1 1.0\n")
        with pytest.raises(GraphValidationError, match="expected"):
            read_edge_list(path)

    def test_default_weight_is_one(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("# nodes: 2\n0\t1\n")
        g = read_edge_list(path)
        assert g.weight(0, 1) == 1.0

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("# nodes: 2\n\n# a comment\n0\t1\t2.0\n")
        assert read_edge_list(path).num_edges == 1


class TestNodeSets:
    def test_roundtrip(self, tmp_path):
        sets = {"DB": [1, 2, 3], "AI": [4, 5]}
        path = tmp_path / "sets.json"
        write_node_sets(sets, path)
        assert read_node_sets(path) == sets

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "sets.json"
        path.write_text("[1, 2]")
        with pytest.raises(GraphValidationError):
            read_node_sets(path)


class TestLabels:
    def test_roundtrip(self, tmp_path):
        labels = ["alice", "bob smith", "carol\twith tab".replace("\t", " ")]
        path = tmp_path / "labels.tsv"
        write_labels(labels, path)
        assert read_labels(path) == labels

    def test_sparse_ids_rejected(self, tmp_path):
        path = tmp_path / "labels.tsv"
        path.write_text("0\ta\n2\tc\n")
        with pytest.raises(GraphValidationError, match="dense"):
            read_labels(path)

    def test_graph_with_loaded_labels(self, tmp_path):
        g = path_graph(3)
        gpath, lpath = tmp_path / "g.tsv", tmp_path / "l.tsv"
        write_edge_list(g, gpath)
        write_labels(["x", "y", "z"], lpath)
        loaded = read_edge_list(gpath, labels=read_labels(lpath))
        assert loaded.label(2) == "z"
