"""Property-based tests (hypothesis) over randomly generated graphs.

These are the paper's core invariants, checked on arbitrary inputs:

* all five 2-way algorithms return the same score sequence;
* all four n-way algorithms agree;
* the X/Y bounds are valid and Y <= X (Lemma 5);
* truncated scores are monotone in ``d`` and within Lemma 1's error;
* the incremental stream equals the fully sorted join;
* PBRJ equals brute-force materialisation for monotone aggregates.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bounds import XBound, YBound
from repro.core.dht import DHTParams
from repro.core.nway.aggregates import MIN, SUM
from repro.core.nway.nested_loop import NestedLoopJoin
from repro.core.nway.partial_join import PartialJoin
from repro.core.nway.partial_join_inc import PartialJoinIncremental
from repro.core.nway.query_graph import QueryGraph
from repro.core.nway.spec import NWayJoinSpec
from repro.core.two_way.backward import (
    BackwardBasicJoin,
    BackwardIDJX,
    BackwardIDJY,
)
from repro.core.two_way.base import make_context, sort_pairs
from repro.core.two_way.forward import ForwardBasicJoin, ForwardIDJ
from repro.core.two_way.incremental import IncrementalTwoWayJoin
from repro.graph.digraph import Graph
from repro.walks.engine import WalkEngine

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, min_nodes=6, max_nodes=14):
    """Random directed weighted graphs with at least a few edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edge_flags = draw(
        st.lists(st.booleans(), min_size=len(possible), max_size=len(possible))
    )
    edges = []
    for (u, v), keep in zip(possible, edge_flags):
        if keep:
            weight = draw(st.integers(1, 4))
            edges.append((u, v, float(weight)))
    if not edges:
        edges = [(0, 1, 1.0), (1, 0, 1.0)]
    return Graph(n, edges)


@st.composite
def graph_with_sets(draw, num_sets=2, set_size=3):
    graph = draw(graphs(min_nodes=num_sets * set_size, max_nodes=14))
    nodes = list(range(graph.num_nodes))
    picked = draw(
        st.permutations(nodes).map(lambda p: p[: num_sets * set_size])
    )
    sets = [
        sorted(picked[i * set_size : (i + 1) * set_size])
        for i in range(num_sets)
    ]
    return graph, sets


@st.composite
def dht_params(draw):
    choice = draw(st.integers(0, 2))
    if choice == 0:
        return DHTParams.dht_e()
    decay = draw(st.floats(0.05, 0.9))
    if choice == 1:
        return DHTParams.dht_lambda(decay)
    alpha = draw(st.floats(0.1, 3.0))
    beta = draw(st.floats(-2.0, 2.0))
    return DHTParams(alpha=alpha, beta=beta, decay=decay)


class TestTwoWayEquivalence:
    @SETTINGS
    @given(data=graph_with_sets(), params=dht_params(), k=st.integers(1, 12))
    def test_all_five_agree(self, data, params, k):
        graph, (left, right) = data
        d = 6
        reference = None
        for cls in (
            ForwardBasicJoin,
            ForwardIDJ,
            BackwardBasicJoin,
            BackwardIDJX,
            BackwardIDJY,
        ):
            ctx = make_context(graph, left, right, params=params, d=d)
            result = cls(ctx).top_k(k)
            scores = [p.score for p in result]
            assert scores == sorted(scores, reverse=True)
            if reference is None:
                reference = scores
            else:
                assert np.allclose(scores, reference, atol=1e-10), cls.name

    @SETTINGS
    @given(data=graph_with_sets(), params=dht_params(), m=st.integers(0, 10))
    def test_incremental_stream_sorted_and_complete(self, data, params, m):
        graph, (left, right) = data
        d = 6
        ctx = make_context(graph, left, right, params=params, d=d)
        reference = sort_pairs(BackwardBasicJoin(ctx).all_pairs())
        join = IncrementalTwoWayJoin(
            make_context(graph, left, right, params=params, d=d)
        )
        stream = join.top(m)
        while True:
            item = join.next_pair()
            if item is None:
                break
            stream.append(item)
        assert len(stream) == len(reference)
        assert np.allclose(
            [p.score for p in stream],
            [p.score for p in reference],
            atol=1e-10,
        )


class TestBoundProperties:
    @SETTINGS
    @given(data=graph_with_sets(), params=dht_params())
    def test_bounds_valid_and_ordered(self, data, params):
        graph, (left, right) = data
        d = 6
        engine = WalkEngine(graph)
        x_bound = XBound(params, d)
        y_bound = YBound(engine, params, left, d)
        for q in right:
            series = engine.backward_first_hit_series(q, d)
            for p in left:
                if p == q:
                    continue
                full = params.score_from_series(series[:, p])
                prefixes = params.partial_score_prefixes(series[:, p])
                for l in range(d + 1):
                    y = y_bound.tail(l, q)
                    x = x_bound.tail(l)
                    assert y <= x + 1e-12  # Lemma 5
                    assert full <= prefixes[l] + y + 1e-10  # Theorem 1

    @SETTINGS
    @given(graph=graphs(), params=dht_params())
    def test_score_monotone_in_d_and_lemma_1(self, graph, params):
        engine = WalkEngine(graph)
        target = 1
        deep = 24
        series = engine.backward_first_hit_series(target, deep)
        for u in range(min(graph.num_nodes, 5)):
            if u == target:
                continue
            prefixes = params.partial_score_prefixes(series[:, u])
            assert np.all(np.diff(prefixes) >= -1e-12)
            # Lemma 1's d for eps=1e-3 keeps h_deep - h_d below eps.
            d = params.steps_for_epsilon(1e-3)
            if d < deep:
                assert prefixes[deep] - prefixes[d] <= 1e-3 + 1e-9


class TestNWayEquivalence:
    @SETTINGS
    @given(
        data=graph_with_sets(num_sets=3, set_size=2),
        use_min=st.booleans(),
        m=st.integers(0, 4),
        k=st.integers(1, 8),
    )
    def test_chain_pj_variants_match_nl(self, data, use_min, m, k):
        graph, sets = data
        aggregate = MIN if use_min else SUM
        query = QueryGraph.chain(3)

        def spec():
            return NWayJoinSpec(
                graph=graph,
                query_graph=query,
                node_sets=[list(s) for s in sets],
                k=k,
                aggregate=aggregate,
                d=5,
            )

        reference = NestedLoopJoin(spec()).run()
        pj = PartialJoin(spec(), m=m).run()
        pji = PartialJoinIncremental(spec(), m=m).run()
        assert np.allclose(
            [a.score for a in pj], [a.score for a in reference], atol=1e-10
        )
        assert np.allclose(
            [a.score for a in pji], [a.score for a in reference], atol=1e-10
        )

    @SETTINGS
    @given(data=graph_with_sets(num_sets=3, set_size=2), k=st.integers(1, 6))
    def test_triangle_pji_matches_nl(self, data, k):
        graph, sets = data
        query = QueryGraph.triangle()

        def spec():
            return NWayJoinSpec(
                graph=graph,
                query_graph=query,
                node_sets=[list(s) for s in sets],
                k=k,
                aggregate=MIN,
                d=5,
            )

        reference = NestedLoopJoin(spec()).run()
        got = PartialJoinIncremental(spec(), m=2).run()
        assert np.allclose(
            [a.score for a in got], [a.score for a in reference], atol=1e-10
        )


class TestDHTSeriesProperties:
    @SETTINGS
    @given(graph=graphs())
    def test_first_hit_is_probability_mass(self, graph):
        engine = WalkEngine(graph)
        series = engine.backward_first_hit_series(0, 12)
        assert np.all(series >= -1e-15)
        mask = np.arange(graph.num_nodes) != 0
        assert np.all(series[:, mask].sum(axis=0) <= 1.0 + 1e-9)

    @SETTINGS
    @given(graph=graphs())
    def test_forward_backward_duality(self, graph):
        engine = WalkEngine(graph)
        target = graph.num_nodes - 1
        back = engine.backward_first_hit_series(target, 8)
        for source in range(min(3, graph.num_nodes)):
            if source == target:
                continue
            forward = engine.forward_first_hit_series(source, target, 8)
            assert np.allclose(forward, back[:, source], atol=1e-12)
