"""The invariant linter, tested against its own fixture corpus.

Three layers: each rule demonstrably fires on its minimal bad snippet
and stays quiet on the good twin (``tests/lint_fixtures/``); the
suppression/baseline machinery behaves (inline ``# repro-lint:
disable=``, file-wide disables, justified baseline entries, stale-entry
detection); and — the acceptance pin — the repo's own ``src`` and
``tests`` trees lint clean under ``--strict``, so every concurrency and
cache-identity contract the rules encode is actually honoured by the
code that ships.
"""

from pathlib import Path

import pytest

from repro.analysis.baseline import BaselineError, load_baseline
from repro.analysis.lint import LintRunner, discover, main
from repro.analysis.rules import RULES

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"
RULE_IDS = ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006")
NO_BASELINE = FIXTURES / "does-not-exist.baseline"


def lint_paths(*paths, baseline_path=NO_BASELINE, root=REPO_ROOT):
    runner = LintRunner(root=root, baseline_path=baseline_path)
    return runner.lint([str(path) for path in paths])


class TestRegistry:
    def test_registry_is_exactly_the_documented_rules(self):
        assert tuple(sorted(RULES)) == RULE_IDS

    def test_every_rule_carries_name_and_summary(self):
        for rule_id, rule in RULES.items():
            assert rule.rule_id == rule_id
            assert rule.name and rule.summary
            assert callable(rule.checker)

    def test_rule_names_are_the_issue_contract_names(self):
        assert RULES["RL001"].name == "unguarded-shared-state"
        assert RULES["RL002"].name == "ungoverned-loop"
        assert RULES["RL003"].name == "cache-identity-hygiene"
        assert RULES["RL004"].name == "stats-discipline"
        assert RULES["RL005"].name == "swallowed-budget"
        assert RULES["RL006"].name == "untraced-hook"


class TestFixtureCorpus:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_fixture_fires_its_rule_and_only_its_rule(self, rule_id):
        findings = lint_paths(FIXTURES / f"{rule_id.lower()}_bad.py")
        assert findings, f"{rule_id} must fire on its bad fixture"
        assert {finding.rule for finding in findings} == {rule_id}

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_good_fixture_is_clean(self, rule_id):
        assert lint_paths(FIXTURES / f"{rule_id.lower()}_good.py") == []

    def test_rl003_flags_both_thaw_and_mutable_field(self):
        findings = lint_paths(FIXTURES / "rl003_bad.py")
        symbols = {finding.symbol for finding in findings}
        assert symbols == {"WobblyBlockKernel", "weights"}

    def test_rl006_internally_hooked_primitives_discharge(self, tmp_path):
        """``top_k``/``all_pairs``/``walk_level`` open their own spans,
        so a bare loop over them is already observable; only the pure
        lazy ``next_pair`` probe needs an explicit hook."""
        path = tmp_path / "lint_fixtures" / "self_hooked.py"
        path.parent.mkdir()
        path.write_text(
            "def rebuild(joins, k):\n"
            "    return [join.top_k(k) for join in joins]\n"
            "\n"
            "def sweep(joins, k):\n"
            "    out = []\n"
            "    for join in joins:\n"
            "        out.append(join.top_k(k))\n"
            "    return out\n",
            encoding="utf-8",
        )
        assert lint_paths(path, root=tmp_path) == []

    def test_finding_keys_are_line_free_and_renders_carry_lines(self):
        finding = lint_paths(FIXTURES / "rl001_bad.py")[0]
        assert finding.key == (
            "RL001:tests/lint_fixtures/rl001_bad.py:"
            "BadCounterBox.put:_items"
        )
        assert f":{finding.line}: RL001" in finding.render()


class TestDiscovery:
    def test_directory_scan_skips_the_fixture_corpus(self):
        found = {path.name for path in discover([str(REPO_ROOT / "tests")])}
        assert "rl001_bad.py" not in found
        assert "test_analysis_lint.py" in found

    def test_explicit_file_paths_are_always_linted(self):
        assert lint_paths(FIXTURES / "rl002_bad.py")

    def test_missing_path_is_a_usage_error(self):
        assert main([str(FIXTURES / "nope.py"), "--no-baseline"]) == 2


class TestSuppressions:
    def test_inline_disable_silences_one_line(self, tmp_path):
        source = (FIXTURES / "rl004_bad.py").read_text(encoding="utf-8")
        patched = source.replace(
            "engine.stats.propagation_steps += 1",
            "engine.stats.propagation_steps += 1"
            "  # repro-lint: disable=RL004",
        )
        path = tmp_path / "suppressed.py"
        path.write_text(patched, encoding="utf-8")
        findings = lint_paths(path, root=tmp_path)
        assert [finding.symbol for finding in findings] == [
            "sparse_products"
        ], "only the undisabled line may still fire"

    def test_file_wide_disable_silences_the_rule(self, tmp_path):
        source = (FIXTURES / "rl004_bad.py").read_text(encoding="utf-8")
        path = tmp_path / "suppressed.py"
        path.write_text(
            "# repro-lint: disable-file=RL004\n" + source, encoding="utf-8"
        )
        assert lint_paths(path, root=tmp_path) == []


class TestBaseline:
    def test_baselined_finding_is_silenced(self, tmp_path):
        key = lint_paths(FIXTURES / "rl002_bad.py")[0].key
        baseline = tmp_path / "baseline"
        baseline.write_text(f"{key}  # deliberate: fixture\n",
                            encoding="utf-8")
        assert lint_paths(
            FIXTURES / "rl002_bad.py", baseline_path=baseline
        ) == []

    def test_stale_entries_are_reported(self, tmp_path):
        baseline = tmp_path / "baseline"
        baseline.write_text(
            "RL001:src/gone.py:Ghost.method:attr  # obsolete\n",
            encoding="utf-8",
        )
        runner = LintRunner(root=REPO_ROOT, baseline_path=baseline)
        runner.lint([str(FIXTURES / "rl001_good.py")])
        assert runner.stale_baseline_keys() == [
            "RL001:src/gone.py:Ghost.method:attr"
        ]

    def test_entry_without_justification_is_rejected(self, tmp_path):
        baseline = tmp_path / "baseline"
        baseline.write_text("RL001:src/a.py:C.m:attr\n", encoding="utf-8")
        with pytest.raises(BaselineError, match="justification"):
            load_baseline(baseline)

    def test_malformed_key_is_rejected(self, tmp_path):
        baseline = tmp_path / "baseline"
        baseline.write_text("not-a-key  # reason\n", encoding="utf-8")
        with pytest.raises(BaselineError, match="malformed"):
            load_baseline(baseline)

    def test_committed_baseline_parses_and_every_entry_is_justified(self):
        entries = load_baseline(REPO_ROOT / ".repro-lint-baseline")
        for key, justification in entries.items():
            assert key.startswith("RL")
            assert justification


class TestCli:
    def test_bad_fixture_exits_1_good_exits_0(self, capsys):
        assert main(
            [str(FIXTURES / "rl005_bad.py"), "--no-baseline"]
        ) == 1
        assert "RL005" in capsys.readouterr().out
        assert main(
            [str(FIXTURES / "rl005_good.py"), "--no-baseline"]
        ) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out


class TestRepoIsClean:
    def test_src_and_tests_lint_clean_with_no_stale_baseline(self):
        """The acceptance pin: the shipped tree honours every contract
        (modulo the justified baseline), and the baseline has no dead
        weight."""
        runner = LintRunner(root=REPO_ROOT)
        findings = runner.lint(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
        )
        assert findings == [], "\n".join(f.render() for f in findings)
        assert runner.stale_baseline_keys() == []
