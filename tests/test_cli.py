"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.builders import erdos_renyi
from repro.graph.io import write_edge_list, write_node_sets


@pytest.fixture
def workspace(tmp_path):
    import numpy as np

    graph = erdos_renyi(25, 0.2, np.random.default_rng(4), weighted=True)
    graph_path = tmp_path / "graph.tsv"
    sets_path = tmp_path / "sets.json"
    write_edge_list(graph, graph_path)
    write_node_sets(
        {"A": [0, 1, 2, 3], "B": [10, 11, 12], "C": [20, 21, 22]}, sets_path
    )
    return graph_path, sets_path


class TestTwoWayCommand:
    def test_text_output(self, workspace, capsys):
        graph_path, sets_path = workspace
        code = main([
            "two-way", str(graph_path), "--sets", str(sets_path),
            "--left", "A", "--right", "B", "-k", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "h_d" in out
        assert out.count("\n") == 3

    def test_json_output(self, workspace, capsys):
        graph_path, sets_path = workspace
        code = main([
            "two-way", str(graph_path), "--sets", str(sets_path),
            "--left", "A", "--right", "B", "-k", "2", "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data) == 2
        assert {"left", "right", "score"} <= set(data[0])
        assert data[0]["score"] >= data[1]["score"]

    def test_dht_e_measure(self, workspace, capsys):
        graph_path, sets_path = workspace
        code = main([
            "two-way", str(graph_path), "--sets", str(sets_path),
            "--left", "A", "--right", "B", "-k", "1",
            "--measure", "dht-e", "--json",
        ])
        assert code == 0
        assert json.loads(capsys.readouterr().out)

    def test_measure_with_max_block_bytes(self, workspace, capsys):
        """The bounded-memory flag applies to series measures too, and
        a capped run returns the same pairs as an unbounded one."""
        graph_path, sets_path = workspace
        base = [
            "two-way", str(graph_path), "--sets", str(sets_path),
            "--left", "A", "--right", "B", "-k", "3",
            "--measure", "ppr", "--json",
        ]
        assert main(base) == 0
        free = json.loads(capsys.readouterr().out)
        assert main(base + ["--max-block-bytes", "400"]) == 0
        capped = json.loads(capsys.readouterr().out)
        assert [(p["left"], p["right"]) for p in capped] == [
            (p["left"], p["right"]) for p in free
        ]

    def test_unknown_set_name(self, workspace, capsys):
        graph_path, sets_path = workspace
        code = main([
            "two-way", str(graph_path), "--sets", str(sets_path),
            "--left", "A", "--right", "ZZZ",
        ])
        assert code == 2
        assert "ZZZ" in capsys.readouterr().err

    def test_missing_graph_file(self, workspace, capsys):
        _, sets_path = workspace
        code = main([
            "two-way", "/nonexistent.tsv", "--sets", str(sets_path),
            "--left", "A", "--right", "B",
        ])
        assert code == 2


class TestMultiWayCommand:
    def test_chain_json(self, workspace, capsys):
        graph_path, sets_path = workspace
        code = main([
            "multi-way", str(graph_path), "--sets", str(sets_path),
            "--node-sets", "A", "B", "C", "--shape", "chain",
            "-k", "3", "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data and len(data[0]["nodes"]) == 3
        assert len(data[0]["edge_scores"]) == 2

    def test_triangle_shape(self, workspace, capsys):
        graph_path, sets_path = workspace
        code = main([
            "multi-way", str(graph_path), "--sets", str(sets_path),
            "--node-sets", "A", "B", "C", "--shape", "triangle",
            "-k", "2", "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data[0]["edge_scores"]) == 6  # bidirectional triangle

    def test_triangle_wrong_arity(self, workspace, capsys):
        graph_path, sets_path = workspace
        code = main([
            "multi-way", str(graph_path), "--sets", str(sets_path),
            "--node-sets", "A", "B", "--shape", "triangle",
        ])
        assert code == 2

    def test_algorithms_agree(self, workspace, capsys):
        graph_path, sets_path = workspace
        scores = {}
        for algorithm in ("nl", "pj-i"):
            main([
                "multi-way", str(graph_path), "--sets", str(sets_path),
                "--node-sets", "A", "B", "--shape", "chain",
                "-k", "3", "--algorithm", algorithm, "--json",
            ])
            data = json.loads(capsys.readouterr().out)
            scores[algorithm] = [round(a["score"], 9) for a in data]
        assert scores["nl"] == scores["pj-i"]

    def test_sum_aggregate(self, workspace, capsys):
        graph_path, sets_path = workspace
        code = main([
            "multi-way", str(graph_path), "--sets", str(sets_path),
            "--node-sets", "A", "B", "C", "--aggregate", "SUM",
            "-k", "1", "--json",
        ])
        assert code == 0
        answer = json.loads(capsys.readouterr().out)[0]
        assert answer["score"] == pytest.approx(sum(answer["edge_scores"]))


class TestStatsCommand:
    def test_text(self, workspace, capsys):
        graph_path, _ = workspace
        assert main(["stats", str(graph_path)]) == 0
        assert "num_nodes" in capsys.readouterr().out

    def test_json(self, workspace, capsys):
        graph_path, _ = workspace
        assert main(["stats", str(graph_path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_nodes"] == 25.0
