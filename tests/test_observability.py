"""Observability layer: tracer, metrics registry, explain-analyze.

Four pillars:

* span mechanics — nesting per thread, LIFO enforcement, counter deltas
  from the engine's thread-local stats, checkpoint events, the bounded
  trace ring, and the no-op cost path when no tracer is installed;
* the metrics registry — every emitted name is in the frozen
  :data:`repro.obs.METRIC_NAMES` contract, counters are monotone across
  snapshots, and both exporters fail without touching query state;
* snapshot consistency under load — a sampler thread reads
  ``service.stats()`` and ``service.metrics_registry().collect()``
  *while* an 8-worker battery runs; every observed snapshot must be
  internally consistent (completed <= submitted, exact + partial ==
  completed, hit rates in [0, 1], counters never moving backwards);
* explain-analyze — ``analyze=True`` runs the query under tracing and
  the per-edge actuals must be nonzero, trace-sourced, and the answers
  bit-identical to an untraced run of the same query.
"""

from __future__ import annotations

import json
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro import api
from repro.bounds_cache import BoundPlanCache
from repro.core.nway.query_graph import QueryGraph
from repro.graph.builders import erdos_renyi
from repro.obs import (
    METRIC_NAMES,
    MetricsRegistry,
    QueryTracer,
    TRACE_SCHEMA,
    render_jsonl,
    render_prometheus,
    validate_trace_dict,
)
from repro.planner import PlannerFixture
from repro.service import MultiWayRequest, QueryService, TwoWayRequest
from repro.service.stats import (
    LATENCY_WINDOW,
    SLOW_QUERY_RING,
    StatsAccumulator,
)
from repro.walks.cache import WalkCache
from repro.walks.engine import NULL_SPAN, WalkEngine


@pytest.fixture
def mid_graph():
    return erdos_renyi(160, 4.0 / 160, np.random.default_rng(2014),
                       weighted=True)


# ----------------------------------------------------------------------
# Span mechanics
# ----------------------------------------------------------------------


class TestTraceSpans:
    def test_nesting_and_counters(self, mid_graph):
        engine = WalkEngine(mid_graph)
        tracer = QueryTracer()
        engine.tracer = tracer
        try:
            with tracer.span("query", "q", stats=engine.stats):
                with engine.trace_span("edge", edge=0):
                    api.two_way_join(
                        mid_graph, list(range(8)), list(range(16, 24)), 3,
                        engine=engine,
                    )
        finally:
            engine.tracer = None
        tracer.assert_all_closed()
        (root,) = tracer.traces
        assert root.kind == "query" and root.name == "q"
        edge_spans = root.find("edge", edge=0)
        assert len(edge_spans) == 1
        # The join opened its own spans under the edge span.
        assert edge_spans[0].children
        # Counter deltas flow up: the root saw at least the edge's work.
        assert root.counters["propagation_steps"] > 0
        assert (root.counters["propagation_steps"]
                >= edge_spans[0].counters["propagation_steps"])

    def test_out_of_order_close_raises(self):
        tracer = QueryTracer()
        outer = tracer.span("query", "outer")
        inner = tracer.span("edge", "inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)
        # Clean up so the tracer is consistent again.
        inner.__exit__(None, None, None)
        outer.__exit__(None, None, None)
        tracer.assert_all_closed()

    def test_assert_all_closed_catches_leaks(self):
        tracer = QueryTracer()
        span = tracer.span("query", "leaky")
        span.__enter__()
        with pytest.raises(AssertionError, match="left open"):
            tracer.assert_all_closed()
        span.__exit__(None, None, None)
        tracer.assert_all_closed()

    def test_disabled_hooks_are_null_span(self, mid_graph):
        engine = WalkEngine(mid_graph)
        assert engine.tracer is None
        span = engine.trace_span("edge", edge=3)
        assert span is NULL_SPAN
        with span as s:
            s.set(anything=1)  # must be a silent no-op

    def test_trace_ring_is_bounded(self):
        tracer = QueryTracer(max_traces=4)
        for i in range(10):
            with tracer.span("query", str(i)):
                pass
        assert len(tracer.traces) == 4
        assert [s.name for s in tracer.traces] == ["6", "7", "8", "9"]
        assert tracer.dropped_traces == 6

    def test_checkpoint_events_reach_open_span(self, mid_graph):
        engine = WalkEngine(mid_graph)
        tracer = QueryTracer()
        engine.tracer = tracer
        try:
            with tracer.span("query", "ev", stats=engine.stats) as root:
                engine.checkpoint("round")
                engine.checkpoint("alloc", nbytes=4096)
                engine.checkpoint("alloc", nbytes=128)
        finally:
            engine.tracer = None
        assert root.events == {"round": 1, "alloc": 2}
        assert root.peak_block_bytes == 4096

    def test_error_inside_span_is_recorded_not_swallowed(self):
        tracer = QueryTracer()
        with pytest.raises(ValueError):
            with tracer.span("query", "boom") as span:
                raise ValueError("inner failure")
        assert span.attrs["error"] == "ValueError"
        tracer.assert_all_closed()

    def test_export_roundtrip_and_validation(self, tmp_path):
        tracer = QueryTracer()
        with tracer.span("query", "export", k=3):
            with tracer.span("edge", edge=0):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(str(path)) == 1
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        doc = json.loads(lines[0])
        assert doc["schema"] == TRACE_SCHEMA
        assert validate_trace_dict(doc) == []
        assert validate_trace_dict({"schema": "bogus"}) != []
        # write_jsonl drained the ring.
        assert tracer.traces == []

    def test_export_failure_never_raises(self, tmp_path):
        tracer = QueryTracer()
        with tracer.span("query", "doomed"):
            pass
        bad_path = tmp_path / "no" / "such" / "dir" / "trace.jsonl"
        assert tracer.write_jsonl(str(bad_path)) == 0
        assert tracer.export_errors == 1


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def _full_registry(self, mid_graph):
        from repro.core.dht import DHTParams

        engine = WalkEngine(mid_graph)
        params = DHTParams.dht_lambda(0.2)
        registry = MetricsRegistry()
        registry.register_engine(engine.stats)
        registry.register_walk_cache(WalkCache(engine, params), tier="0")
        registry.register_bound_cache(BoundPlanCache(engine, params), tier="0")
        return engine, registry

    def test_names_match_frozen_contract(self, mid_graph):
        engine, registry = self._full_registry(mid_graph)
        names = {s.name for s in registry.collect()}
        assert names <= METRIC_NAMES
        # Service metrics complete the contract.
        with QueryService(mid_graph, workers=1) as service:
            registry.register_service(service)
            names = {s.name for s in registry.collect()}
        assert names == METRIC_NAMES

    def test_counters_monotone_and_consistent(self, mid_graph):
        engine, registry = self._full_registry(mid_graph)

        def counter_values():
            return {
                (s.name, s.labels): s.value
                for s in registry.collect() if s.kind == "counter"
            }

        before = counter_values()
        api.two_way_join(
            mid_graph, list(range(8)), list(range(16, 24)), 3, engine=engine,
        )
        after = counter_values()
        assert after.keys() == before.keys()
        assert all(after[key] >= before[key] for key in before)
        assert any(after[key] > before[key] for key in before)

    def test_render_formats(self, mid_graph):
        _, registry = self._full_registry(mid_graph)
        samples = registry.collect()
        prom = render_prometheus(samples)
        assert "# TYPE repro_engine_propagation_steps_total counter" in prom
        assert 'tier="0"' in prom
        doc = json.loads(render_jsonl(samples))
        assert set(doc) == {"ts", "metrics"}
        assert {m["name"] for m in doc["metrics"]} == {s.name for s in samples}

    def test_snapshot_files(self, mid_graph, tmp_path):
        _, registry = self._full_registry(mid_graph)
        prom_path = tmp_path / "metrics.prom"
        jsonl_path = tmp_path / "metrics.jsonl"
        assert registry.write_snapshot(str(prom_path))
        assert registry.write_snapshot(str(prom_path))  # overwrites
        assert len(prom_path.read_text().splitlines()) == len(
            render_prometheus(registry.collect()).splitlines()
        )
        assert registry.write_snapshot(str(jsonl_path))
        assert registry.write_snapshot(str(jsonl_path))  # appends
        assert len(jsonl_path.read_text().splitlines()) == 2

    def test_snapshot_failure_never_raises(self, mid_graph, tmp_path):
        _, registry = self._full_registry(mid_graph)
        assert not registry.write_snapshot(
            str(tmp_path / "missing" / "metrics.jsonl")
        )
        assert registry.export_errors == 1


# ----------------------------------------------------------------------
# Bounded service accounting (the unbounded-latency-list regression)
# ----------------------------------------------------------------------


def _response(latency_ms, status="ok", exact=True):
    return SimpleNamespace(
        status=status,
        latency_ms=latency_ms,
        queued_ms=0.5,
        request=SimpleNamespace(),
        result=SimpleNamespace(exact=exact),
    )


class TestBoundedServiceAccounting:
    def test_latency_ring_stays_flat(self):
        acc = StatsAccumulator()
        total = 3 * LATENCY_WINDOW
        for i in range(total):
            acc.record_response(_response(float(i)), now=float(i))
        window = acc.latency_window()
        assert len(window) == LATENCY_WINDOW
        # Only the most recent window is retained.
        assert sorted(window) == [
            float(i) for i in range(total - LATENCY_WINDOW, total)
        ]
        assert acc.completed == total

    def test_slow_query_ring_keeps_worst(self):
        acc = StatsAccumulator()
        latencies = list(range(100))
        for latency in latencies:
            acc.record_response(_response(float(latency)), now=0.0)
        slow = acc.slow_queries()
        assert len(slow) == SLOW_QUERY_RING
        assert [entry["latency_ms"] for entry in slow] == [
            float(v) for v in sorted(latencies, reverse=True)[:SLOW_QUERY_RING]
        ]

    def test_rejections_and_errors_not_in_latencies(self):
        acc = StatsAccumulator()
        acc.record_response(_response(5.0), now=0.0)
        acc.record_response(_response(99.0, status="rejected"), now=0.0)
        acc.record_response(_response(99.0, status="error"), now=0.0)
        assert acc.latency_window() == [5.0]
        assert acc.rejected == 1 and acc.errors == 1
        assert len(acc.slow_queries()) == 1

    def test_service_snapshot_exposes_slow_queries(self, mid_graph):
        with QueryService(mid_graph, workers=2) as service:
            tickets = [
                service.submit(TwoWayRequest(
                    tuple(range(4)), tuple(range(8, 12)), k=2,
                ))
                for _ in range(3)
            ]
            for ticket in tickets:
                assert ticket.result(timeout=60.0).ok
            snapshot = service.stats()
        slow = snapshot.slow_queries()
        assert 1 <= len(slow) <= 3
        assert all(entry["request"] == "TwoWayRequest" for entry in slow)
        latencies = [entry["latency_ms"] for entry in slow]
        assert latencies == sorted(latencies, reverse=True)
        # Not a dataclass field: asdict stays numeric for the CLI.
        import dataclasses

        assert "slow_queries" not in dataclasses.asdict(snapshot)


# ----------------------------------------------------------------------
# Snapshot consistency while the battery runs
# ----------------------------------------------------------------------


class TestSnapshotConsistencyUnderLoad:
    QUERIES = 64
    WORKERS = 8

    def _mix(self, rng):
        pools = [tuple(range(i * 8, i * 8 + 4)) for i in range(4)]
        requests = []
        for _ in range(self.QUERIES):
            left = pools[int(rng.integers(len(pools)))]
            right = pools[int(rng.integers(len(pools)))]
            if int(rng.integers(4)) == 0:
                third = pools[int(rng.integers(len(pools)))]
                requests.append(MultiWayRequest(
                    query_edges=((0, 1), (1, 2)),
                    node_sets=(left, right, third), k=2, plan="fixed",
                ))
            else:
                requests.append(TwoWayRequest(left, right, k=2))
        return requests

    def test_mid_battery_snapshots_are_consistent(self, mid_graph):
        rng = np.random.default_rng(8)
        requests = self._mix(rng)
        tracer = QueryTracer(max_traces=self.QUERIES)
        snapshots = []
        metric_snaps = []
        stop = threading.Event()

        with QueryService(
            mid_graph, workers=self.WORKERS, queue_depth=self.QUERIES,
            tracer=tracer,
        ) as service:
            registry = service.metrics_registry()

            def sampler():
                while not stop.is_set():
                    snapshots.append(service.stats())
                    metric_snaps.append(registry.collect())
                    time.sleep(0.002)

            thread = threading.Thread(target=sampler)
            thread.start()
            tickets = [service.submit(request) for request in requests]
            responses = [ticket.result(timeout=120.0) for ticket in tickets]
            stop.set()
            thread.join()
            snapshots.append(service.stats())
            metric_snaps.append(registry.collect())

        assert all(response.ok for response in responses)
        assert len(snapshots) >= 2, "sampler never ran"
        prev = None
        for snap in snapshots:
            # Internal consistency of every single snapshot.
            assert snap.completed <= snap.submitted
            assert snap.exact + snap.partial == snap.completed
            assert 0.0 <= snap.walk_cache_hit_rate <= 1.0
            assert snap.walk_cache_hits >= 0
            assert snap.in_flight >= 0
            assert snap.p99_ms >= snap.p50_ms >= 0.0
            # Monotonicity between consecutive snapshots.
            if prev is not None:
                assert snap.submitted >= prev.submitted
                assert snap.completed >= prev.completed
                assert snap.walk_cache_hits >= prev.walk_cache_hits
                assert snap.walk_cache_misses >= prev.walk_cache_misses
            prev = snap
        assert snapshots[-1].completed == self.QUERIES

        for samples in metric_snaps:
            by_name = {}
            for sample in samples:
                assert sample.name in METRIC_NAMES
                assert sample.value >= 0.0
                by_name[(sample.name, sample.labels)] = sample.value
            hits = sum(v for (n, _), v in by_name.items()
                       if n == "repro_walk_cache_hits_total")
            misses = sum(v for (n, _), v in by_name.items()
                         if n == "repro_walk_cache_misses_total")
            assert hits >= 0 and misses >= 0

        # Tracer agreement: all spans closed, one root per completion.
        tracer.assert_all_closed()
        assert len(tracer.traces) == self.QUERIES
        assert tracer.counts.get("admitted") == self.QUERIES


# ----------------------------------------------------------------------
# Explain-analyze
# ----------------------------------------------------------------------


class TestExplainAnalyze:
    def test_actuals_are_trace_sourced_and_answers_identical(self):
        fixture = PlannerFixture()
        spec = fixture.skewed_star_spec()
        kwargs = dict(algorithm="pj", m=200, plan="auto")

        analyzed = api.explain_multi_way_plan(
            spec.graph, spec.query_graph, spec.node_sets, spec.k,
            analyze=True, **kwargs,
        )
        untraced = api.multi_way_join(
            spec.graph, spec.query_graph,
            [list(nodes) for nodes in spec.node_sets], spec.k, **kwargs,
        )

        # The trace layer observes, never interferes: bit-identical.
        assert [(tuple(a.nodes), a.score) for a in analyzed.answers] == [
            (tuple(a.nodes), a.score) for a in untraced
        ]

        plan = analyzed.plan
        assert [row.edge_index for row in analyzed.actuals] == list(
            plan.build_order
        )
        assert analyzed.total_actual_steps > 0
        # Per-edge actuals came from the trace: every edge either
        # walked (fresh propagation steps) or was served from the
        # cross-edge walk cache — never silently absent.
        assert all(
            row.propagation_steps > 0 or row.walk_cache_hits > 0
            for row in analyzed.actuals
        )
        assert any(row.propagation_steps > 0 for row in analyzed.actuals)
        assert any(row.peak_block_bytes > 0 for row in analyzed.actuals)
        assert analyzed.trace is not None
        doc = {"schema": TRACE_SCHEMA, "span": analyzed.trace.to_dict()}
        assert validate_trace_dict(doc) == []
        for row in analyzed.actuals:
            spans = analyzed.trace.find("edge", edge=row.edge_index)
            refills = analyzed.trace.find("refill", edge=row.edge_index)
            assert spans, f"edge {row.edge_index} missing from trace"
            traced = sum(
                s.counters.get("propagation_steps", 0)
                for s in spans + refills
            )
            assert traced == row.propagation_steps
            assert row.refills == len(refills)

        text = analyzed.format()
        assert "actual: steps=" in text
        assert "analyze: total actual steps=" in text
        payload = analyzed.to_json()
        assert payload["total_actual_steps"] == analyzed.total_actual_steps
        assert len(payload["actuals"]) == len(plan.build_order)

    def test_api_tracer_kwarg_installs_and_uninstalls(self, mid_graph):
        engine = WalkEngine(mid_graph)
        tracer = QueryTracer()
        query = QueryGraph.chain(2)
        answers = api.multi_way_join(
            mid_graph, query, [list(range(6)), list(range(8, 14))], 2,
            algorithm="pj-i", engine=engine, tracer=tracer,
        )
        assert engine.tracer is None, "tracer must be uninstalled after"
        tracer.assert_all_closed()
        (root,) = tracer.traces
        assert root.kind == "query"
        assert root.counters["propagation_steps"] > 0
        assert root.find("edge", edge=0)
        bare = api.multi_way_join(
            mid_graph, query, [list(range(6)), list(range(8, 14))], 2,
            algorithm="pj-i",
        )
        assert [(tuple(a.nodes), a.score) for a in answers] == [
            (tuple(a.nodes), a.score) for a in bare
        ]
