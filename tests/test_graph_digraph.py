"""Unit tests for the Graph store."""

import numpy as np
import pytest

from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_nodes_without_edges(self):
        g = Graph(3, [])
        assert g.num_nodes == 3
        assert list(g.nodes()) == [0, 1, 2]
        assert g.is_dangling(0)

    def test_simple_directed(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        assert g.num_edges == 2
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.weight(1, 2) == 2.0

    def test_parallel_edges_merge_weights(self):
        g = Graph(2, [(0, 1, 1.0), (0, 1, 2.5)])
        assert g.num_edges == 1
        assert g.weight(0, 1) == 3.5

    def test_undirected_creates_both_arcs(self):
        g = Graph.from_undirected_edges(2, [(0, 1, 2.0)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.weight(0, 1) == g.weight(1, 0) == 2.0

    def test_negative_num_nodes_rejected(self):
        with pytest.raises(GraphValidationError):
            Graph(-1, [])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphValidationError, match="self-loop"):
            Graph(2, [(0, 0, 1.0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphValidationError, match="out of node range"):
            Graph(2, [(0, 5, 1.0)])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(GraphValidationError, match="invalid weight"):
            Graph(2, [(0, 1, 0.0)])
        with pytest.raises(GraphValidationError, match="invalid weight"):
            Graph(2, [(0, 1, -1.0)])

    def test_nan_weight_rejected(self):
        with pytest.raises(GraphValidationError, match="invalid weight"):
            Graph(2, [(0, 1, float("nan"))])

    def test_malformed_edge_rejected(self):
        with pytest.raises(GraphValidationError, match="triple"):
            Graph(2, [(0, 1)])


class TestAccessors:
    def test_neighbors(self, tiny_directed):
        assert tiny_directed.out_neighbors(0) == {1: 2.0, 2: 1.0}
        assert tiny_directed.in_neighbors(2) == {0: 1.0, 1: 1.0}
        assert tiny_directed.out_degree(0) == 2
        assert tiny_directed.in_degree(2) == 2

    def test_edges_iteration(self, tiny_directed):
        edges = set(tiny_directed.edges())
        assert (0, 1, 2.0) in edges
        assert len(edges) == 5

    def test_node_range_check(self, tiny_directed):
        with pytest.raises(GraphValidationError):
            tiny_directed.out_neighbors(99)
        with pytest.raises(GraphValidationError):
            tiny_directed.in_neighbors(-1)

    def test_weight_missing_edge(self, tiny_directed):
        with pytest.raises(KeyError):
            tiny_directed.weight(1, 0)


class TestTransitionProbabilities:
    def test_weighted_split(self, tiny_directed):
        assert tiny_directed.transition_probability(0, 1) == pytest.approx(2 / 3)
        assert tiny_directed.transition_probability(0, 2) == pytest.approx(1 / 3)
        assert tiny_directed.transition_probability(1, 2) == 1.0

    def test_missing_edge_is_zero(self, tiny_directed):
        assert tiny_directed.transition_probability(1, 0) == 0.0

    def test_dangling_node_is_zero(self):
        g = Graph(2, [(0, 1, 1.0)])
        assert g.is_dangling(1)
        assert g.transition_probability(1, 0) == 0.0

    def test_rows_sum_to_one(self, random_graph):
        for u in random_graph.nodes():
            total = sum(
                random_graph.transition_probability(u, v)
                for v in random_graph.out_neighbors(u)
            )
            if not random_graph.is_dangling(u):
                assert total == pytest.approx(1.0)

    def test_transition_matrix_matches_scalar_api(self, tiny_directed):
        matrix = tiny_directed.transition_matrix()
        for u in tiny_directed.nodes():
            for v in tiny_directed.nodes():
                assert matrix[u, v] == pytest.approx(
                    tiny_directed.transition_probability(u, v)
                )

    def test_transpose_cached_and_consistent(self, tiny_directed):
        t = tiny_directed.transition_matrix()
        tt = tiny_directed.transition_matrix_transpose()
        assert np.allclose(t.toarray().T, tt.toarray())
        assert tiny_directed.transition_matrix_transpose() is tt  # cached


class TestLabels:
    def test_labels_roundtrip(self):
        g = Graph(2, [(0, 1, 1.0)], labels=["alice", "bob"])
        assert g.has_labels
        assert g.label(1) == "bob"
        assert g.node_by_label("alice") == 0

    def test_default_labels(self, tiny_directed):
        assert not tiny_directed.has_labels
        assert tiny_directed.label(2) == "2"

    def test_label_count_mismatch(self):
        with pytest.raises(GraphValidationError, match="labels"):
            Graph(3, [], labels=["a"])

    def test_unknown_label(self):
        g = Graph(1, [], labels=["a"])
        with pytest.raises(KeyError):
            g.node_by_label("zzz")

    def test_lookup_without_labels(self, tiny_directed):
        with pytest.raises(KeyError):
            tiny_directed.node_by_label("anything")


class TestDerivedGraphs:
    def test_subgraph_reindexes(self, tiny_directed):
        sub, mapping = tiny_directed.subgraph([0, 1, 2])
        assert sub.num_nodes == 3
        assert mapping == {0: 0, 1: 1, 2: 2}
        assert sub.has_edge(0, 1)
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(2, 0)  # 2->3 dropped with node 3

    def test_subgraph_preserves_labels(self):
        g = Graph(3, [(0, 1, 1.0)], labels=["a", "b", "c"])
        sub, _ = g.subgraph([2, 0])
        assert sub.label(0) == "c"
        assert sub.label(1) == "a"

    def test_without_edges_removes_both_arcs(self):
        g = Graph.from_undirected_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        g2 = g.without_edges([(0, 1)])
        assert not g2.has_edge(0, 1)
        assert not g2.has_edge(1, 0)
        assert g2.has_edge(1, 2)
        # original untouched
        assert g.has_edge(0, 1)

    def test_degree_statistics(self, tiny_directed):
        stats = tiny_directed.degree_statistics()
        assert stats["num_nodes"] == 4
        assert stats["num_edges"] == 5
        assert stats["dangling_nodes"] == 0
