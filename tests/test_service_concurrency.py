"""Concurrency battery: shared caches and counters under real threads.

Four pillars, all seeded and barrier-started so schedules are as hostile
as the GIL allows while staying reproducible:

* ``WalkCache`` hammered by 8 threads mixing gets, adoptions, donations,
  and evictions — every returned vector bit-identical to a
  single-threaded reference, and no hit/miss accounting lost;
* ``BoundPlanCache`` under concurrent lookup-or-build — each artifact
  built exactly once, every thread handed the same object;
* ``WalkEngineStats`` sharded counters — no lost updates under raw
  contention, and the pinned regression: total ``propagation_steps``
  across 8 workers sharing one engine equals the serial count;
* the acceptance battery — 200 seeded mixed queries through an
  8-worker :class:`~repro.service.QueryService`, every completed answer
  bit-identical to the single-caller fixed-plan oracle or a flagged
  partial whose intervals contain the exact scores.
"""

import threading

import numpy as np
import pytest

from repro import api
from repro.bounds_cache import BoundPlanCache
from repro.core.dht import DHTParams
from repro.core.nway.query_graph import QueryGraph
from repro.exec.budget import BUDGET_REASONS, PartialResult, QueryBudget
from repro.extensions.measures import measure_by_name
from repro.graph.builders import erdos_renyi
from repro.service import MultiWayRequest, QueryService, TwoWayRequest
from repro.walks.cache import WalkCache
from repro.walks.engine import STAT_COUNTERS, WalkEngine, WalkEngineStats
from repro.walks.state import WalkState

THREADS = 8


def run_threads(count, body):
    """Run ``body(index)`` on ``count`` barrier-started threads; re-raise."""
    barrier = threading.Barrier(count)
    errors = []

    def wrapped(index):
        barrier.wait()
        try:
            body(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


@pytest.fixture
def graph():
    return erdos_renyi(40, 0.12, np.random.default_rng(11), weighted=True)


@pytest.fixture
def params():
    return DHTParams.dht_lambda(0.2)


class TestWalkCacheStress:
    def test_concurrent_mix_is_bit_identical_and_lossless(self, graph, params):
        targets = list(range(12))
        levels = [2, 3, 5, 8]
        # Single-threaded reference, one vector per (target, level).
        ref_engine = WalkEngine(graph)
        ref_cache = WalkCache(ref_engine, params)
        reference = {
            (t, d): ref_cache.scores(t, d) for t in targets for d in levels
        }

        engine = WalkEngine(graph)
        cache = WalkCache(engine, params, max_targets=8)  # forces evictions
        calls_per_thread = 60
        mismatches = []

        def body(index):
            rng = np.random.default_rng(1000 + index)
            for step in range(calls_per_thread):
                t = targets[int(rng.integers(len(targets)))]
                d = levels[int(rng.integers(len(levels)))]
                op = rng.integers(10)
                if op == 0:
                    # Donate a fresh state mid-flight.
                    cache.adopt(WalkState(engine, params, [t]).advance_to(d))
                elif op == 1:
                    cache.peek(t, d)  # pure probe, counted as hit or miss
                elif op == 2 and index == 0 and step % 29 == 0:
                    cache.clear()  # eviction storm from one thread
                else:
                    got = cache.scores(t, d)
                    if not np.array_equal(got, reference[(t, d)]):
                        mismatches.append((t, d))

        run_threads(THREADS, body)
        assert mismatches == []
        # No lost accounting: every scores()/peek() call landed exactly
        # once as a hit or a miss (adopt/clear don't count lookups).
        rng_totals = 0
        for index in range(THREADS):
            rng = np.random.default_rng(1000 + index)
            for step in range(calls_per_thread):
                rng.integers(len(targets))
                rng.integers(len(levels))
                op = rng.integers(10)
                if op == 0 or (op == 2 and index == 0 and step % 29 == 0):
                    continue
                rng_totals += 1
        assert cache.stats.hits + cache.stats.misses == rng_totals

    def test_concurrent_same_key_returns_private_copies(self, graph, params):
        engine = WalkEngine(graph)
        cache = WalkCache(engine, params)
        baseline = cache.scores(5, 4).copy()
        seen = []

        def body(index):
            vector = cache.scores(5, 4)
            assert np.array_equal(vector, baseline)
            vector[:] = -float(index)  # scribble on the returned copy
            seen.append(vector)

        run_threads(THREADS, body)
        assert np.array_equal(cache.scores(5, 4), baseline)
        assert len(seen) == THREADS


class TestBoundCacheStress:
    def test_build_exactly_once_per_key(self, graph, params):
        engine = WalkEngine(graph)
        cache = BoundPlanCache(engine, params, max_entries=32)
        keys = [((0, 1, 2), 4), ((3, 4), 4), ((0, 1, 2), 6), ((5, 6, 7), 5)]
        build_counts = {key: 0 for key in keys}
        count_lock = threading.Lock()
        results = {key: [] for key in keys}
        results_lock = threading.Lock()

        def body(index):
            rng = np.random.default_rng(2000 + index)
            for _ in range(40):
                sources, d = keys[int(rng.integers(len(keys)))]

                def build(sources=sources, d=d):
                    with count_lock:
                        build_counts[(sources, d)] += 1
                    return ("artifact", sources, d)

                got = cache.y_bound(sources, d, build)
                with results_lock:
                    results[(sources, d)].append(got)

        run_threads(THREADS, body)
        for key, count in build_counts.items():
            assert count == 1, f"{key} built {count} times"
        for key, values in results.items():
            assert values, f"{key} never looked up"
            first = values[0]
            assert all(value is first for value in values)
        assert cache.stats.y_builds == len(keys)
        assert cache.stats.y_hits + cache.stats.y_builds == THREADS * 40


class TestStatsSharding:
    def test_no_lost_updates_under_contention(self):
        stats = WalkEngineStats()
        per_thread = 20_000

        def body(index):
            for _ in range(per_thread):
                stats.add("propagation_steps", 1)
            stats.add("sparse_products", index)

        run_threads(THREADS, body)
        assert stats.propagation_steps == THREADS * per_thread
        assert stats.sparse_products == sum(range(THREADS))

    def test_assignment_keeps_single_thread_semantics(self):
        stats = WalkEngineStats()
        stats.add("checkpoints", 7)
        # This test pins the single-thread assignment semantics the
        # sharded API preserves — the direct writes are the subject.
        stats.checkpoints = 2  # repro-lint: disable=RL004
        assert stats.checkpoints == 2
        stats.checkpoints += 1  # repro-lint: disable=RL004
        assert stats.checkpoints == 3
        snapshot = stats.snapshot()
        assert snapshot["checkpoints"] == 3
        assert all(name in snapshot for name in STAT_COUNTERS)

    def test_propagation_steps_across_workers_equal_serial(self, graph):
        """Pinned regression: a shared engine's merged step count must
        equal the single-threaded count for the same set of walks."""
        targets = list(range(16))
        depth = 8

        serial_engine = WalkEngine(graph)
        for target in targets:
            serial_engine.backward_first_hit_series(target, depth)
        serial_steps = serial_engine.stats.propagation_steps
        serial_products = serial_engine.stats.sparse_products
        assert serial_steps > 0

        shared_engine = WalkEngine(graph)

        def body(index):
            for target in targets[index::THREADS]:
                shared_engine.backward_first_hit_series(target, depth)

        run_threads(THREADS, body)
        assert shared_engine.stats.propagation_steps == serial_steps
        assert shared_engine.stats.sparse_products == serial_products


class TestServiceBattery:
    """The acceptance battery: 200 seeded queries, 8 workers, one oracle."""

    QUERIES = 200
    WORKERS = 8

    def _build_mix(self, rng, pools):
        requests = []
        for _ in range(self.QUERIES):
            roll = rng.integers(100)
            left = pools[int(rng.integers(len(pools)))]
            right = pools[int(rng.integers(len(pools)))]
            k = int(rng.integers(1, 5))
            if roll < 55:
                requests.append(TwoWayRequest(
                    left, right, k=k,
                    algorithm=("b-idj-y", "b-bj")[int(rng.integers(2))],
                ))
            elif roll < 70:
                requests.append(TwoWayRequest(left, right, k=k, measure="ppr"))
            elif roll < 90:
                third = pools[int(rng.integers(len(pools)))]
                requests.append(MultiWayRequest(
                    query_edges=((0, 1), (1, 2)),
                    node_sets=(left, right, third),
                    k=min(k, 3),
                    plan="fixed",
                ))
            else:
                budget = QueryBudget(
                    step_budget=int((3, 20, 100)[int(rng.integers(3))])
                )
                requests.append(TwoWayRequest(
                    left, right, k=k, budget=budget
                ))
        return requests

    def _oracle(self, graph, request, params, d, cache):
        """Single-caller ungoverned answer rows + exact score map."""
        key = (request if request.budget is None
               else type(request)(**{**request.__dict__, "budget": None}))
        if key in cache:
            return cache[key]
        measure = (
            measure_by_name(request.measure) if request.measure else None
        )
        if isinstance(request, TwoWayRequest):
            common = dict(algorithm=request.algorithm)
            if measure is None:
                common.update(params=params, d=d)
            else:
                common.update(measure=measure)
            top = api.two_way_join(
                graph, list(request.left), list(request.right),
                request.k, **common,
            )
            full = api.two_way_join(
                graph, list(request.left), list(request.right),
                len(request.left) * len(request.right), **common,
            )
            scores = {(p.left, p.right): p.score for p in full}
            value = (_rows(top), scores)
        else:
            query = QueryGraph(len(request.node_sets), request.query_edges)
            common = dict(algorithm=request.algorithm, m=request.m,
                          plan="fixed")
            if measure is None:
                common.update(params=params, d=d)
            top = api.multi_way_join(
                graph, query,
                [list(nodes) for nodes in request.node_sets],
                request.k, **common,
            )
            value = (_rows(top), None)
        cache[key] = value
        return value

    @pytest.mark.parametrize("traced", [False, True], ids=["bare", "traced"])
    def test_eight_workers_match_single_threaded_oracle(
        self, graph, lock_sanitizer, traced
    ):
        rng = np.random.default_rng(20140808)
        pools = [
            tuple(range(0, 4)), tuple(range(8, 12)), tuple(range(16, 20)),
            tuple(range(24, 28)), tuple(range(32, 36)),
        ]
        requests = self._build_mix(rng, pools)
        params = DHTParams.dht_lambda(0.2)
        d = params.steps_for_epsilon(1e-6)

        # The traced arm runs the identical battery under the
        # structured tracer: answers, oracle checks, and the lock-order
        # report must all hold with spans being recorded.
        tracer = None
        if traced:
            from repro.obs import QueryTracer

            tracer = QueryTracer(max_traces=self.QUERIES)

        with QueryService(
            graph, workers=self.WORKERS, queue_depth=self.QUERIES,
            params=params, d=d, tracer=tracer,
        ) as service:
            # Every lock the battery can touch is traced: the service's
            # own, the engine's, its stats shards, and both tiers the
            # request mix exercises (pre-created here, before workers
            # see a query).
            lock_sanitizer.instrument_service(service, measures=(None, "ppr"))
            tickets = [service.submit(request) for request in requests]
            responses = [ticket.result(timeout=300.0) for ticket in tickets]
            snapshot = service.stats()

        oracle_cache = {}
        exact = partial = 0
        for request, response in zip(requests, responses):
            assert response.ok, (response.status, response.error)
            result = response.result
            assert isinstance(result, PartialResult)
            expected_rows, score_map = self._oracle(
                graph, request, params, d, oracle_cache
            )
            if result.exact:
                exact += 1
                assert _rows(result.results) == expected_rows, (
                    f"concurrent answer differs from oracle for {request}"
                )
            else:
                partial += 1
                assert request.budget is not None
                assert result.reason in BUDGET_REASONS
                assert score_map is not None
                for item, (lower, upper) in zip(result.results, result.bounds):
                    truth = score_map[(item.left, item.right)]
                    assert lower - 1e-9 <= truth <= upper + 1e-9

        assert exact + partial == self.QUERIES
        assert exact > 0
        assert snapshot.completed == self.QUERIES
        assert snapshot.rejected == 0 and snapshot.errors == 0
        assert snapshot.exact == exact and snapshot.partial == partial
        # The whole point of the shared tiers: the mix repeats targets,
        # so cross-query hits must show up.
        assert snapshot.walk_cache_hits > 0
        assert snapshot.walk_cache_hit_rate > 0.0
        # The acquisition-order graph recorded across all 8 workers is
        # acyclic and no lock outside the documented cold-path set was
        # held across engine propagation.
        report = lock_sanitizer.assert_clean()
        assert report["edges"], "the battery must actually trace locks"

        if tracer is not None:
            # Every worker span closed and properly nested, one root
            # "service" span per completed request, and the admission
            # counters agree with the service's own accounting.
            tracer.assert_all_closed()
            roots = tracer.traces
            assert len(roots) == self.QUERIES
            assert all(span.kind == "service" for span in roots)
            assert tracer.counts.get("admitted", 0) == self.QUERIES
            assert "rejected" not in tracer.counts
            total_steps = sum(
                span.counters.get("propagation_steps", 0) for span in roots
            )
            assert total_steps > 0, "traced battery recorded no walk work"


def _rows(items):
    out = []
    for item in items:
        if hasattr(item, "nodes"):
            out.append((tuple(item.nodes), item.score, tuple(item.edge_scores)))
        else:
            out.append((item.left, item.right, item.score))
    return out
