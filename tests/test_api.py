"""Unit tests for the high-level facade (`repro.two_way_join`,
`repro.multi_way_join`)."""

import numpy as np
import pytest

from repro import (
    DHTParams,
    Graph,
    GraphValidationError,
    QueryGraph,
    SUM,
    multi_way_join,
    two_way_join,
)
from repro.graph.builders import erdos_renyi


@pytest.fixture
def graph():
    return erdos_renyi(30, 0.15, np.random.default_rng(2), weighted=True)


class TestTwoWayFacade:
    def test_default_algorithm(self, graph):
        result = two_way_join(graph, [0, 1, 2], [20, 21, 22], k=3)
        assert len(result) == 3
        scores = [p.score for p in result]
        assert scores == sorted(scores, reverse=True)

    @pytest.mark.parametrize(
        "name", ["f-bj", "f-idj", "b-bj", "b-idj-x", "b-idj-y"]
    )
    def test_all_algorithms_agree(self, graph, name):
        expected = two_way_join(graph, [0, 1, 2], [20, 21, 22], k=5, algorithm="b-bj")
        got = two_way_join(graph, [0, 1, 2], [20, 21, 22], k=5, algorithm=name)
        assert np.allclose([p.score for p in got], [p.score for p in expected])

    def test_algorithm_name_case_insensitive(self, graph):
        assert two_way_join(graph, [0], [5], k=1, algorithm="B-IDJ-Y")

    def test_unknown_algorithm(self, graph):
        with pytest.raises(GraphValidationError, match="unknown 2-way"):
            two_way_join(graph, [0], [5], k=1, algorithm="quantum")

    def test_custom_params_and_epsilon(self, graph):
        result = two_way_join(
            graph, [0, 1], [20, 21], k=2,
            params=DHTParams.dht_e(), epsilon=1e-4,
        )
        assert len(result) == 2

    def test_shared_engine_reuse(self, graph):
        from repro.walks.engine import WalkEngine

        engine = WalkEngine(graph)
        a = two_way_join(graph, [0], [20], k=1, engine=engine)
        b = two_way_join(graph, [0], [20], k=1, engine=engine)
        assert a[0].score == b[0].score


class TestMultiWayFacade:
    def test_default_pji(self, graph):
        result = multi_way_join(
            graph, QueryGraph.chain(3), [[0, 1], [10, 11], [20, 21]], k=4
        )
        assert 0 < len(result) <= 4
        assert all(len(a.nodes) == 3 for a in result)

    @pytest.mark.parametrize("name", ["nl", "ap", "pj", "pj-i"])
    def test_all_algorithms_agree(self, graph, name):
        sets = [[0, 1, 2], [10, 11, 12], [20, 21, 22]]
        expected = multi_way_join(graph, QueryGraph.chain(3), sets, k=5, algorithm="nl")
        got = multi_way_join(
            graph, QueryGraph.chain(3), sets, k=5, algorithm=name, m=2
        )
        assert np.allclose([a.score for a in got], [a.score for a in expected])

    def test_sum_aggregate(self, graph):
        result = multi_way_join(
            graph,
            QueryGraph.chain(3),
            [[0, 1], [10, 11], [20, 21]],
            k=2,
            aggregate=SUM,
        )
        for answer in result:
            assert answer.score == pytest.approx(sum(answer.edge_scores))

    def test_unknown_algorithm(self, graph):
        with pytest.raises(GraphValidationError, match="unknown n-way"):
            multi_way_join(
                graph, QueryGraph.chain(2), [[0], [1]], k=1, algorithm="magic"
            )

    def test_example_from_module_docstring(self):
        graph = Graph.from_undirected_edges(
            5, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 2.0)]
        )
        pairs = two_way_join(graph, left=[0, 1], right=[3, 4], k=2)
        assert len(pairs) == 2
        answers = multi_way_join(graph, QueryGraph.chain(3), [[0], [2], [4]], k=1)
        assert answers[0].nodes == (0, 2, 4)
