"""Tests for the batched / resumable walk layer.

The per-target Eq. 5 kernel (``backward_first_hit_series``) is the
equivalence oracle: every batched, resumable, or row-restricted path
must reproduce it to 1e-12.
"""

import numpy as np
import pytest

from repro.core.dht import DHTParams
from repro.graph.builders import erdos_renyi, path_graph
from repro.graph.validation import GraphValidationError
from repro.walks.engine import WalkEngine
from repro.walks.state import WalkState


@pytest.fixture
def engine(random_graph):
    return WalkEngine(random_graph)


class TestBackwardBlock:
    def test_block_matches_per_target_series(self, engine):
        targets = [3, 11, 25, 3]  # duplicates propagate independently
        block = engine.backward_first_hit_block(targets, 7)
        for j, target in enumerate(targets):
            series = engine.backward_first_hit_series(target, 7)
            assert np.allclose(block[:, :, j], series, atol=1e-12)

    def test_block_single_target(self, engine):
        block = engine.backward_first_hit_block([5], 4)
        series = engine.backward_first_hit_series(5, 4)
        assert np.allclose(block[:, :, 0], series, atol=1e-12)

    def test_block_validates_inputs(self, engine):
        with pytest.raises(GraphValidationError):
            engine.backward_first_hit_block([], 3)
        with pytest.raises(GraphValidationError):
            engine.backward_first_hit_block([0, 999], 3)
        with pytest.raises(GraphValidationError):
            engine.backward_first_hit_block([0], 0)

    def test_onehot_step_is_first_series_row(self, engine):
        targets = np.asarray([2, 9, 14])
        mass = engine.backward_onehot_step(targets)
        for j, target in enumerate(targets):
            series = engine.backward_first_hit_series(int(target), 1)
            assert np.array_equal(mass[:, j], series[0])


class TestWalkStats:
    def test_counts_are_batching_invariant(self, random_graph):
        per_target = WalkEngine(random_graph)
        batched = WalkEngine(random_graph)
        targets = [1, 2, 3, 4]
        for t in targets:
            per_target.backward_first_hit_series(t, 5)
        batched.backward_first_hit_block(targets, 5)
        assert (
            per_target.stats.propagation_steps
            == batched.stats.propagation_steps
            == 20
        )
        # ...but batching collapses the number of sparse products.
        assert batched.stats.sparse_products < per_target.stats.sparse_products

    def test_reset(self, engine):
        engine.backward_first_hit_series(0, 3)
        assert engine.stats.propagation_steps > 0
        engine.stats.reset()
        assert engine.stats.propagation_steps == 0
        assert engine.stats.sparse_products == 0


class TestWalkState:
    def test_extension_equals_fresh_walk(self, engine, params):
        targets = [4, 17, 30]
        resumed = WalkState(engine, params, targets)
        resumed.advance_to(2)
        resumed.advance_to(4)
        resumed.advance_to(8)
        fresh = WalkState(engine, params, targets).advance_to(8)
        assert np.allclose(
            resumed.scores_matrix(), fresh.scores_matrix(), atol=1e-12
        )

    def test_scores_match_series_oracle(self, engine, params):
        state = WalkState(engine, params, [7, 21]).advance_to(6)
        for j, target in enumerate((7, 21)):
            series = engine.backward_first_hit_series(target, 6)
            oracle = params.scores_from_matrix(series)
            assert np.allclose(state.score_column(j), oracle, atol=1e-12)

    def test_level_zero_scores_are_beta(self, engine, params):
        state = WalkState(engine, params, [3])
        assert np.all(state.scores_matrix() == params.beta)
        assert state.level == 0

    def test_cannot_rewind(self, engine, params):
        state = WalkState(engine, params, [3]).advance_to(4)
        with pytest.raises(GraphValidationError, match="rewind"):
            state.advance_to(2)

    def test_select_narrows_and_keeps_level(self, engine, params):
        state = WalkState(engine, params, [2, 8, 19]).advance_to(3)
        narrowed = state.select([2, 0])
        assert narrowed.level == 3
        assert list(narrowed.targets) == [19, 2]
        assert np.allclose(
            narrowed.score_column(0), state.score_column(2), atol=0
        )
        # Narrowing copies: extending the narrowed state must not
        # disturb the original.
        narrowed.advance_to(5)
        assert state.level == 3

    def test_extract_column_resumes_like_block(self, engine, params):
        block = WalkState(engine, params, [5, 13]).advance_to(2)
        single = block.extract_column(1).advance_to(6)
        fresh = WalkState(engine, params, [13]).advance_to(6)
        assert np.allclose(
            single.score_column(0), fresh.score_column(0), atol=1e-12
        )

    def test_steps_saved_by_resuming(self, params):
        graph = erdos_renyi(50, 0.1, np.random.default_rng(0))
        engine = WalkEngine(graph)
        engine.stats.reset()
        state = WalkState(engine, params, [1, 2])
        state.advance_to(2)
        state.advance_to(4)
        resumed_steps = engine.stats.propagation_steps
        engine.stats.reset()
        WalkState(engine, params, [1, 2]).advance_to(2)
        WalkState(engine, params, [1, 2]).advance_to(4)
        restart_steps = engine.stats.propagation_steps
        assert resumed_steps == 8  # 2 targets x 4 levels, each paid once
        assert restart_steps == 12  # restart pays the prefix twice

    def test_path_graph_hand_check(self, params):
        engine = WalkEngine(path_graph(3))
        state = WalkState(engine, params, [2]).advance_to(3)
        series = engine.backward_first_hit_series(2, 3)
        assert np.allclose(
            state.score_column(0), params.scores_from_matrix(series), atol=1e-12
        )


class TestDHTEVariant:
    def test_state_matches_oracle_for_dht_e(self, engine):
        params = DHTParams.dht_e()
        state = WalkState(engine, params, [11]).advance_to(5)
        series = engine.backward_first_hit_series(11, 5)
        assert np.allclose(
            state.score_column(0),
            params.scores_from_matrix(series),
            atol=1e-12,
        )
