"""Unit tests for the random-walk kernels.

Three independent implementations must agree: the sparse engine, the
dense reference, and (statistically) Monte-Carlo simulation.
"""

import numpy as np
import pytest

from repro.graph.builders import path_graph
from repro.graph.validation import GraphValidationError
from repro.walks.engine import WalkEngine
from repro.walks.hitting import (
    dense_transition_matrix,
    exact_first_hit_series,
    simulate_first_hit_series,
)


class TestBackwardSeries:
    def test_hand_computed_path_graph(self):
        # Path 0-1-2: P_1(1, 2) = 1/2; P_2(0, 2) = 1/2 (0->1->2);
        # P_3(1, 2) = 1/2 * 1 * 1/2 = 1/4 (1->0->1->2).
        engine = WalkEngine(path_graph(3))
        series = engine.backward_first_hit_series(2, 3)
        assert series[0, 1] == pytest.approx(0.5)
        assert series[1, 0] == pytest.approx(0.5)
        assert series[2, 1] == pytest.approx(0.25)
        # Step-1 from node 0 cannot hit node 2.
        assert series[0, 0] == 0.0

    def test_matches_dense_reference(self, random_graph):
        engine = WalkEngine(random_graph)
        for target in (0, 7, 23):
            sparse = engine.backward_first_hit_series(target, 10)
            dense = exact_first_hit_series(random_graph, target, 10)
            mask = np.ones(random_graph.num_nodes, dtype=bool)
            mask[target] = False  # reflexive column is implementation-defined
            assert np.allclose(sparse[:, mask], dense[:, mask], atol=1e-12)

    def test_matches_dense_on_directed(self, random_digraph):
        engine = WalkEngine(random_digraph)
        sparse = engine.backward_first_hit_series(3, 8)
        dense = exact_first_hit_series(random_digraph, 3, 8)
        mask = np.ones(random_digraph.num_nodes, dtype=bool)
        mask[3] = False
        assert np.allclose(sparse[:, mask], dense[:, mask], atol=1e-12)

    def test_total_hit_probability_at_most_one(self, random_graph):
        engine = WalkEngine(random_graph)
        series = engine.backward_first_hit_series(5, 20)
        totals = series.sum(axis=0)
        assert np.all(totals <= 1.0 + 1e-9)

    def test_invalid_inputs(self, path4):
        engine = WalkEngine(path4)
        with pytest.raises(GraphValidationError):
            engine.backward_first_hit_series(99, 3)
        with pytest.raises(GraphValidationError):
            engine.backward_first_hit_series(0, 0)


class TestForwardSeries:
    def test_forward_equals_backward(self, random_graph):
        engine = WalkEngine(random_graph)
        back = engine.backward_first_hit_series(11, 8)
        for source in (0, 3, 17):
            forward = engine.forward_first_hit_series(source, 11, 8)
            assert np.allclose(forward, back[:, source], atol=1e-12)

    def test_forward_equals_backward_directed(self, random_digraph):
        engine = WalkEngine(random_digraph)
        back = engine.backward_first_hit_series(2, 6)
        forward = engine.forward_first_hit_series(9, 2, 6)
        assert np.allclose(forward, back[:, 9], atol=1e-12)

    def test_self_pair_rejected(self, path4):
        engine = WalkEngine(path4)
        with pytest.raises(GraphValidationError, match="itself"):
            engine.forward_first_hit_series(1, 1, 3)

    def test_monte_carlo_agreement(self, path4):
        engine = WalkEngine(path4)
        exact = engine.forward_first_hit_series(0, 3, 6)
        simulated = simulate_first_hit_series(
            path4, 0, 3, 6, num_walks=20000, rng=np.random.default_rng(0)
        )
        assert np.allclose(exact, simulated, atol=0.02)


class TestReachMass:
    def test_conserves_mass_without_dangling(self, random_graph):
        engine = WalkEngine(random_graph)
        series = engine.reach_mass_series([0, 1, 2], 6)
        for i in range(6):
            assert series[i].sum() == pytest.approx(3.0)

    def test_linearity_over_sources(self, random_graph):
        engine = WalkEngine(random_graph)
        combined = engine.reach_mass_series([4, 9], 5)
        separate = (
            engine.reach_mass_series([4], 5) + engine.reach_mass_series([9], 5)
        )
        assert np.allclose(combined, separate, atol=1e-12)

    def test_reach_dominates_first_hit(self, random_graph):
        # S_i(p, q) >= P_i(p, q) (Lemma 3).
        engine = WalkEngine(random_graph)
        reach = engine.reach_mass_series([6], 8)
        hits = engine.backward_first_hit_series(30, 8)
        assert np.all(reach[:, 30] >= hits[:, 6] - 1e-12)

    def test_requires_sources(self, path4):
        engine = WalkEngine(path4)
        with pytest.raises(GraphValidationError):
            engine.reach_mass_series([], 3)


class TestDenseReference:
    def test_dense_matrix_rows(self, tiny_directed):
        dense = dense_transition_matrix(tiny_directed)
        assert dense[0, 1] == pytest.approx(2 / 3)
        assert dense[0, 2] == pytest.approx(1 / 3)
        assert dense[1, 2] == 1.0
        assert dense[1].sum() == pytest.approx(1.0)

    def test_dense_dangling_row_zero(self):
        from repro.graph.digraph import Graph

        g = Graph(2, [(0, 1, 1.0)])
        dense = dense_transition_matrix(g)
        assert dense[1].sum() == 0.0

    def test_exact_series_target_validation(self, path4):
        with pytest.raises(GraphValidationError):
            exact_first_hit_series(path4, 44, 3)


class TestDerivedArtifactsUnderThreads:
    """Regression for the RL001 (*unguarded-shared-state*) pass: the
    lazily built CSC transition view and in-degree array are now
    resolved entirely under the derived-artifact lock, so every thread
    gets the same object with no torn double-checked read."""

    @staticmethod
    def _race(worker, threads=8):
        import threading

        barrier = threading.Barrier(threads)
        results, errors = [], []

        def body():
            barrier.wait()
            try:
                results.append(worker())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        pool = [threading.Thread(target=body) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        if errors:
            raise errors[0]
        return results

    def test_transition_columns_is_one_object_across_threads(
        self, random_graph
    ):
        engine = WalkEngine(random_graph)
        results = self._race(engine.transition_columns)
        assert all(result is results[0] for result in results)
        assert results[0] is engine.transition_columns()

    def test_in_degree_array_is_one_object_across_threads(
        self, random_graph
    ):
        engine = WalkEngine(random_graph)
        results = self._race(engine.in_degree_array)
        assert all(result is results[0] for result in results)
        # in_degree_array composes with transition_columns without
        # deadlocking on the non-reentrant derived lock.
        assert np.array_equal(
            results[0], np.diff(engine.transition_columns().indptr)
        )
