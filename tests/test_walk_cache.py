"""Tests for the cross-join walk cache: hit/miss semantics, resumable
extension, LRU bounding, and sharing across n-way query edges."""

import numpy as np
import pytest

from repro.core.dht import DHTParams
from repro.core.nway.query_graph import QueryGraph
from repro.core.nway.spec import NWayJoinSpec
from repro.core.two_way.base import make_context
from repro.graph.validation import GraphValidationError
from repro.walks.cache import WalkCache
from repro.walks.engine import WalkEngine
from repro.walks.state import WalkState


@pytest.fixture
def engine(random_graph):
    return WalkEngine(random_graph)


@pytest.fixture
def cache(engine, params):
    return WalkCache(engine, params)


class TestHitMiss:
    def test_miss_then_hit(self, cache, engine, params):
        first = cache.scores(5, 4)
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        second = cache.scores(5, 4)
        assert cache.stats.hits == 1
        assert np.array_equal(first, second)

    def test_peek_never_walks(self, cache, engine):
        engine.stats.reset()
        assert cache.peek(3, 2) is None
        assert engine.stats.propagation_steps == 0
        assert cache.stats.misses == 1

    def test_scores_match_oracle(self, cache, engine, params):
        cached = cache.scores(9, 6)
        series = engine.backward_first_hit_series(9, 6)
        assert np.allclose(cached, params.scores_from_matrix(series), atol=1e-12)

    def test_returned_vectors_are_private_copies(self, cache):
        first = cache.scores(5, 4)
        first[:] = -1.0
        assert not np.array_equal(first, cache.scores(5, 4))

    def test_deeper_request_extends_state(self, cache, engine):
        cache.scores(7, 2)
        engine.stats.reset()
        cache.scores(7, 6)
        # Only the 4 missing steps are walked, not all 6.
        assert engine.stats.propagation_steps == 4
        assert cache.stats.extensions == 1
        assert cache.stats.steps_saved == 2

    def test_shallower_request_after_deeper(self, cache, engine, params):
        deep = cache.scores(7, 6)
        shallow = cache.scores(7, 3)
        series = engine.backward_first_hit_series(7, 3)
        assert np.allclose(
            shallow, params.scores_from_matrix(series), atol=1e-12
        )
        # The deep vector must still be served.
        assert np.array_equal(cache.scores(7, 6), deep)


class TestDonation:
    def test_put_scores_served_back(self, cache, engine, params):
        state = WalkState(engine, params, [4]).advance_to(5)
        vector = state.score_column(0)
        cache.put_scores(4, 5, vector)
        assert np.array_equal(cache.scores(4, 5), vector)
        assert cache.stats.hits == 1

    def test_adopted_state_resumes(self, cache, engine, params):
        donated = WalkState(engine, params, [12]).advance_to(2)
        cache.adopt(donated)
        engine.stats.reset()
        cache.scores(12, 8)
        assert engine.stats.propagation_steps == 6  # only the suffix

    def test_adopt_rejects_blocks(self, cache, engine, params):
        with pytest.raises(GraphValidationError, match="single-column"):
            cache.adopt(WalkState(engine, params, [1, 2]))

    def test_adopt_keeps_deepest(self, cache, engine, params):
        deep = WalkState(engine, params, [3]).advance_to(4)
        cache.adopt(deep)
        cache.adopt(WalkState(engine, params, [3]).advance_to(1))
        engine.stats.reset()
        cache.scores(3, 4)
        assert engine.stats.propagation_steps == 0


class TestLRU:
    def test_eviction_bounds_targets(self, engine, params):
        cache = WalkCache(engine, params, max_targets=2)
        cache.scores(0, 2)
        cache.scores(1, 2)
        cache.scores(2, 2)  # evicts target 0
        assert len(cache) == 2
        assert 0 not in cache
        assert cache.stats.evictions == 1

    def test_recent_use_protects_from_eviction(self, engine, params):
        cache = WalkCache(engine, params, max_targets=2)
        cache.scores(0, 2)
        cache.scores(1, 2)
        cache.scores(0, 2)  # touch 0
        cache.scores(2, 2)  # evicts 1, not 0
        assert 0 in cache and 1 not in cache

    def test_invalid_capacity(self, engine, params):
        with pytest.raises(GraphValidationError):
            WalkCache(engine, params, max_targets=0)


class TestContextBinding:
    def test_context_rejects_foreign_engine(self, random_graph, params):
        other = WalkEngine(random_graph)
        cache = WalkCache(other, params)
        with pytest.raises(GraphValidationError, match="different engine"):
            make_context(random_graph, [0], [1], params=params, d=4,
                         walk_cache=cache)

    def test_context_rejects_foreign_params(self, random_graph, params):
        engine = WalkEngine(random_graph)
        cache = WalkCache(engine, DHTParams.dht_e())
        with pytest.raises(GraphValidationError, match="different measure configuration"):
            make_context(random_graph, [0], [1], params=params, d=4,
                         engine=engine, walk_cache=cache)


class TestCrossEdgeSharing:
    def test_star_spec_shares_walks_between_edges(self, random_graph, params):
        # Star query: edges (0,1) and (0,2) walk the same center targets?
        # No - backward walks run from the *right* sets; use a query
        # where two edges share the right set: chain 0->1, 2->1.
        query = QueryGraph(3, [(0, 1), (2, 1)], names=["A", "B", "C"])
        hub = list(range(10, 18))
        spec = NWayJoinSpec(
            graph=random_graph,
            query_graph=query,
            node_sets=[list(range(5)), hub, list(range(20, 25))],
            k=3,
            params=params,
        )
        assert spec.walk_cache is not None
        from repro.core.nway.all_pairs import AllPairsJoin

        AllPairsJoin(spec, two_way="b-bj").run()
        # Edge 2 re-walks the same right set as edge 1: every target hit.
        assert spec.walk_cache.stats.hits >= len(hub)

    def test_incremental_join_does_not_mutate_caller_context(
        self, random_graph, params
    ):
        from repro.core.two_way.incremental import IncrementalTwoWayJoin

        ctx = make_context(
            random_graph, [0, 1, 2], list(range(20, 26)), params=params, d=4
        )
        join = IncrementalTwoWayJoin(ctx)
        assert ctx.walk_cache is None  # caller's object untouched
        assert join.context.walk_cache is not None

    def test_scores_count_stats_flag(self, cache):
        cache.scores(4, 3)
        misses = cache.stats.misses
        cache.scores(4, 6, count_stats=False)
        assert cache.stats.misses == misses
        # hit path with count_stats=False still serves the vector
        again = cache.scores(4, 6, count_stats=False)
        assert again.shape[0] > 0
        assert cache.stats.hits == 0

    def test_share_walks_can_be_disabled(self, random_graph, params):
        query = QueryGraph(2, [(0, 1)], names=["A", "B"])
        spec = NWayJoinSpec(
            graph=random_graph,
            query_graph=query,
            node_sets=[[0, 1], [2, 3]],
            k=2,
            params=params,
            share_walks=False,
        )
        assert spec.walk_cache is None


class TestByteBudget:
    """Strict byte-denominated LRU: ``current_bytes <= max_bytes`` always."""

    def test_rejects_bad_budget(self, engine, params):
        with pytest.raises(GraphValidationError, match="max_bytes"):
            WalkCache(engine, params, max_bytes=0)

    def test_accounting_tracks_retained_bytes(self, engine, params):
        cache = WalkCache(engine, params)
        assert cache.current_bytes == 0
        cache.scores(5, 4)
        n = engine.num_nodes
        # One length-n score vector plus one resumable state (mass + acc).
        assert cache.current_bytes == 8 * n + 16 * n
        cache.scores(5, 6)  # extends the state, adds a second vector
        assert cache.current_bytes == 2 * 8 * n + 16 * n
        cache.clear()
        assert cache.current_bytes == 0

    def test_budget_evicts_least_recent(self, engine, params):
        n = engine.num_nodes
        per_target = 8 * n + 16 * n
        cache = WalkCache(engine, params, max_bytes=2 * per_target)
        cache.scores(1, 4)
        cache.scores(2, 4)
        assert len(cache) == 2 and cache.stats.evictions == 0
        cache.scores(3, 4)  # exceeds the budget: target 1 is evicted
        assert len(cache) == 2
        assert 1 not in cache and 2 in cache and 3 in cache
        assert cache.stats.evictions == 1
        assert cache.current_bytes <= cache.max_bytes

    def test_oversized_entry_is_dropped_outright(self, engine, params):
        n = engine.num_nodes
        cache = WalkCache(engine, params, max_bytes=8 * n)  # < one entry
        cache.scores(7, 4)
        assert len(cache) == 0
        assert cache.current_bytes == 0
        assert cache.stats.evictions == 1

    def test_put_scores_and_adopt_are_accounted(self, engine, params):
        n = engine.num_nodes
        cache = WalkCache(engine, params, max_bytes=10 * (8 * n + 16 * n))
        cache.put_scores(4, 3, np.zeros(n))
        assert cache.current_bytes == 8 * n
        cache.adopt(WalkState(engine, params, [4]).advance_to(3))
        assert cache.current_bytes == 8 * n + 16 * n
        assert cache.current_bytes <= cache.max_bytes

    def test_bound_holds_under_mixed_workload(self, engine, params, rng):
        n = engine.num_nodes
        cache = WalkCache(engine, params, max_bytes=3 * (8 * n + 16 * n))
        for _ in range(60):
            target = int(rng.integers(n))
            level = int(rng.integers(1, 7))
            cache.scores(target, level)
            assert cache.current_bytes <= cache.max_bytes

    def test_spec_forwards_walk_cache_bytes(self, random_graph, params):
        query = QueryGraph(2, [(0, 1)], names=["A", "B"])
        spec = NWayJoinSpec(
            graph=random_graph,
            query_graph=query,
            node_sets=[[0, 1], [2, 3]],
            k=2,
            params=params,
            walk_cache_bytes=1 << 20,
        )
        assert spec.walk_cache.max_bytes == 1 << 20


class TestErrorPathLockRelease:
    """Satellite of the RL001 pass: a raising public method must leave
    the cache usable — the lock released — and its message must speak
    the caller's vocabulary (targets, kernels, widths), never leak
    internal lock state."""

    @staticmethod
    def assert_lock_released(lock):
        """Probe from another thread — the owning RLock thread would
        re-enter successfully and prove nothing."""
        import threading

        acquired = []

        def probe():
            got = lock.acquire(timeout=2.0)
            acquired.append(got)
            if got:
                lock.release()

        worker = threading.Thread(target=probe)
        worker.start()
        worker.join()
        assert acquired == [True], "lock still held after the raise"

    def test_adopt_width_error_releases_lock(self, cache, engine, params):
        with pytest.raises(GraphValidationError, match="width"):
            cache.adopt(WalkState(engine, params, [1, 2]).advance_to(2))
        self.assert_lock_released(cache._lock)
        assert np.array_equal(cache.scores(1, 2), cache.scores(1, 2))

    def test_adopt_kernel_mismatch_releases_lock(self, cache, engine):
        other = DHTParams.dht_lambda(0.7)
        with pytest.raises(GraphValidationError, match="kernel"):
            cache.adopt(WalkState(engine, other, [3]).advance_to(2))
        self.assert_lock_released(cache._lock)

    def test_scores_invalid_target_releases_lock(self, cache):
        with pytest.raises(GraphValidationError):
            cache.scores(10_000, 3)
        self.assert_lock_released(cache._lock)
        assert cache.scores(0, 2) is not None

    def test_error_messages_leak_no_lock_state(self, cache, engine, params):
        raisers = [
            lambda: cache.adopt(
                WalkState(engine, params, [1, 2]).advance_to(2)
            ),
            lambda: cache.adopt(
                WalkState(
                    engine, DHTParams.dht_lambda(0.7), [3]
                ).advance_to(2)
            ),
            lambda: cache.scores(10_000, 3),
        ]
        import re

        for raiser in raisers:
            with pytest.raises(GraphValidationError) as excinfo:
                raiser()
            message = str(excinfo.value).lower()
            for word in ("lock", "mutex", "acquire", "held", "thread"):
                assert not re.search(rf"\b{word}\b", message), (
                    f"error message leaks lock state: {excinfo.value!r}"
                )
