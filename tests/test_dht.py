"""Unit tests for the DHT framework: general form, variants, Lemma 1,
and the exact linear-system oracle."""

import math

import numpy as np
import pytest

from repro.core.dht import (
    DHTParams,
    exact_dht_score,
    exact_dht_to_target,
)
from repro.graph.builders import path_graph
from repro.walks.engine import WalkEngine


class TestParamsValidation:
    def test_alpha_must_be_positive(self):
        with pytest.raises(ValueError, match="alpha"):
            DHTParams(alpha=0.0, beta=0.0, decay=0.5)
        with pytest.raises(ValueError, match="alpha"):
            DHTParams(alpha=-1.0, beta=0.0, decay=0.5)

    def test_decay_in_open_interval(self):
        with pytest.raises(ValueError, match="decay"):
            DHTParams(alpha=1.0, beta=0.0, decay=0.0)
        with pytest.raises(ValueError, match="decay"):
            DHTParams(alpha=1.0, beta=0.0, decay=1.0)

    def test_beta_finite(self):
        with pytest.raises(ValueError, match="beta"):
            DHTParams(alpha=1.0, beta=float("inf"), decay=0.5)


class TestVariantCoefficients:
    """Table II of the paper."""

    def test_dht_e(self):
        p = DHTParams.dht_e()
        assert p.alpha == pytest.approx(math.e)
        assert p.beta == 0.0
        assert p.decay == pytest.approx(1.0 / math.e)

    def test_dht_lambda_default(self):
        # Section VII-A: lambda = 0.2 -> alpha = 1.25, beta = -1.25.
        p = DHTParams.dht_lambda(0.2)
        assert p.alpha == pytest.approx(1.25)
        assert p.beta == pytest.approx(-1.25)
        assert p.decay == 0.2

    def test_dht_lambda_general(self):
        p = DHTParams.dht_lambda(0.6)
        assert p.alpha == pytest.approx(2.5)
        assert p.beta == pytest.approx(-2.5)

    def test_dht_lambda_range_check(self):
        with pytest.raises(ValueError):
            DHTParams.dht_lambda(1.0)

    def test_dht_e_matches_equation_one(self):
        # DHT_e(u,v) = sum_i e^{-(i-1)} P_i  must equal the general form
        # alpha * sum_i lambda^i P_i + beta with Table II's coefficients.
        p = DHTParams.dht_e()
        hits = np.array([0.3, 0.1, 0.05, 0.01])
        direct = sum(
            math.exp(-(i - 1)) * h for i, h in enumerate(hits, start=1)
        )
        assert p.score_from_series(hits) == pytest.approx(direct)


class TestLemma1:
    def test_paper_default_gives_d_8(self):
        # Section VII-A: epsilon = 1e-6 "or equivalently d = 8".
        p = DHTParams.dht_lambda(0.2)
        assert p.steps_for_epsilon(1e-6) == 8

    def test_d_achieves_epsilon(self):
        for decay in (0.2, 0.5, 0.8):
            p = DHTParams.dht_lambda(decay)
            for eps in (1e-3, 1e-6):
                d = p.steps_for_epsilon(eps)
                assert p.truncation_error_bound(d) <= eps * (1 + 1e-9)

    def test_d_is_minimal(self):
        p = DHTParams.dht_lambda(0.2)
        d = p.steps_for_epsilon(1e-6)
        assert p.truncation_error_bound(d - 1) > 1e-6

    def test_monotone_in_epsilon(self):
        p = DHTParams.dht_e()
        assert p.steps_for_epsilon(1e-8) >= p.steps_for_epsilon(1e-4)

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            DHTParams.dht_e().steps_for_epsilon(0.0)

    def test_huge_epsilon_floors_at_one(self):
        assert DHTParams.dht_e().steps_for_epsilon(1e6) == 1


class TestScoring:
    def test_zero_and_max_scores(self, params):
        assert params.zero_score == params.beta
        assert params.max_score() == pytest.approx(
            params.alpha * params.decay + params.beta
        )

    def test_score_from_series_hand_case(self, params):
        # h_2 = alpha (lambda * 0.5 + lambda^2 * 0.25) + beta
        hits = np.array([0.5, 0.25])
        expected = params.alpha * (0.2 * 0.5 + 0.04 * 0.25) + params.beta
        assert params.score_from_series(hits) == pytest.approx(expected)

    def test_scores_from_matrix_vectorises(self, params, rng):
        matrix = rng.random((5, 7)) * 0.1
        vector = params.scores_from_matrix(matrix)
        for u in range(7):
            assert vector[u] == pytest.approx(params.score_from_series(matrix[:, u]))

    def test_partial_prefixes(self, params, rng):
        hits = rng.random(6) * 0.1
        prefixes = params.partial_score_prefixes(hits)
        assert prefixes[0] == params.beta
        assert prefixes[-1] == pytest.approx(params.score_from_series(hits))
        # monotone non-decreasing (alpha > 0, hits >= 0)
        assert np.all(np.diff(prefixes) >= -1e-15)

    def test_score_monotone_in_d(self, params, random_graph):
        engine = WalkEngine(random_graph)
        series = engine.backward_first_hit_series(3, 12)
        scores = [
            params.score_from_series(series[:d, 8]) for d in range(1, 13)
        ]
        assert all(b >= a - 1e-15 for a, b in zip(scores, scores[1:]))


class TestExactOracle:
    def test_truncated_converges_to_exact(self, params, random_graph):
        engine = WalkEngine(random_graph)
        target = 13
        exact = exact_dht_to_target(random_graph, params, target)
        series = engine.backward_first_hit_series(target, 40)
        approx = params.scores_from_matrix(series)
        mask = np.arange(random_graph.num_nodes) != target
        assert np.allclose(exact[mask], approx[mask], atol=1e-10)

    def test_truncation_error_within_lemma_bound(self, params, random_graph):
        engine = WalkEngine(random_graph)
        target = 20
        exact = exact_dht_to_target(random_graph, params, target)
        for d in (2, 4, 8):
            series = engine.backward_first_hit_series(target, d)
            approx = params.scores_from_matrix(series)
            mask = np.arange(random_graph.num_nodes) != target
            gap = np.max(exact[mask] - approx[mask])
            assert gap <= params.truncation_error_bound(d) + 1e-12
            assert gap >= -1e-12  # truncation only undershoots

    def test_dht_lambda_recursion(self, random_digraph):
        # Eq. 2: DHT_lambda(u,v) = -1 + lambda sum_w p_uw DHT_lambda(w,v)
        # in the negated-similarity convention used by the general form.
        decay = 0.3
        params = DHTParams.dht_lambda(decay)
        target = 4
        scores = exact_dht_to_target(random_digraph, params, target)
        for u in random_digraph.nodes():
            if u == target or random_digraph.is_dangling(u):
                continue
            rhs = -1.0 + decay * sum(
                random_digraph.transition_probability(u, w) * scores[w]
                for w in random_digraph.out_neighbors(u)
            )
            assert scores[u] == pytest.approx(rhs, abs=1e-9)

    def test_exact_score_scalar_matches_vector(self, params, path4):
        vector = exact_dht_to_target(path4, params, 3)
        for u in range(3):
            assert exact_dht_score(path4, params, u, 3) == pytest.approx(vector[u])

    def test_self_score_zero(self, params, path4):
        assert exact_dht_score(path4, params, 2, 2) == 0.0

    def test_asymmetry_on_directed_graph(self, params, tiny_directed):
        # h(1, 0) goes 1->2->3->0 (3 hops); h(0, 1) is one hop w.p. 2/3.
        forward = exact_dht_score(tiny_directed, params, 0, 1)
        backward = exact_dht_score(tiny_directed, params, 1, 0)
        assert forward != pytest.approx(backward)
        assert forward > backward
