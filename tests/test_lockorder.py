"""The runtime lock-order sanitizer, unit-tested on synthetic
schedules and smoke-tested on the real cache/engine stack.

The concurrency battery (``tests/test_service_concurrency.py``) is
where the sanitizer earns its keep; here we prove the detector itself:
a two-lock cycle is caught from a purely sequential schedule (the order
graph needs conflicting *edges*, not an actual interleaving), re-entrant
RLock use records no edge, same-identity/different-object inversions
surface as self-loops, and a lock held across engine propagation
outside the documented cold-path set is flagged.
"""

import threading

import numpy as np
import pytest

from repro.analysis.lockorder import (
    DEFAULT_PROPAGATION_ALLOWED,
    LockOrderError,
    LockOrderSanitizer,
)
from repro.walks.cache import WalkCache
from repro.walks.engine import WalkEngine


class TestCycleDetection:
    def test_synthetic_two_lock_cycle_is_detected(self, lock_sanitizer):
        a = lock_sanitizer.wrap(threading.Lock(), "A._lock")
        b = lock_sanitizer.wrap(threading.Lock(), "B._lock")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        cycle = lock_sanitizer.find_cycle()
        assert cycle is not None
        assert set(cycle) == {"A._lock", "B._lock"}
        with pytest.raises(LockOrderError, match="cycle"):
            lock_sanitizer.assert_clean()

    def test_consistent_order_is_clean(self, lock_sanitizer):
        a = lock_sanitizer.wrap(threading.Lock(), "A._lock")
        b = lock_sanitizer.wrap(threading.Lock(), "B._lock")
        for _ in range(3):
            with a:
                with b:
                    pass
        report = lock_sanitizer.assert_clean()
        assert report["cycle"] is None
        assert report["edges"] == {("A._lock", "B._lock"): 3}

    def test_reentrant_rlock_records_no_edge(self, lock_sanitizer):
        lock = lock_sanitizer.wrap(threading.RLock(), "WalkCache._lock")
        with lock:
            with lock:  # the documented evict-inside-scores pattern
                pass
        assert lock_sanitizer.edges() == {}
        lock_sanitizer.assert_clean()

    def test_same_identity_different_objects_is_a_self_loop(
        self, lock_sanitizer
    ):
        """Two instances of one class crossed in opposite orders is a
        real deadlock risk; identity-by-name makes it a self-loop."""
        first = lock_sanitizer.wrap(threading.Lock(), "WalkCache._lock")
        second = lock_sanitizer.wrap(threading.Lock(), "WalkCache._lock")
        with first:
            with second:
                pass
        assert lock_sanitizer.find_cycle() == [
            "WalkCache._lock", "WalkCache._lock"
        ]

    def test_cross_thread_edges_merge_into_one_graph(self, lock_sanitizer):
        a = lock_sanitizer.wrap(threading.Lock(), "A._lock")
        b = lock_sanitizer.wrap(threading.Lock(), "B._lock")

        def inverted():
            with b:
                with a:
                    pass

        with a:
            with b:
                pass
        worker = threading.Thread(target=inverted)
        worker.start()
        worker.join()
        assert lock_sanitizer.find_cycle() is not None

    def test_held_stacks_are_per_thread(self, lock_sanitizer):
        lock = lock_sanitizer.wrap(threading.Lock(), "A._lock")
        seen = []

        def observer():
            seen.append(lock_sanitizer.held_names())

        with lock:
            assert lock_sanitizer.held_names() == ("A._lock",)
            worker = threading.Thread(target=observer)
            worker.start()
            worker.join()
        assert seen == [()]
        assert lock_sanitizer.held_names() == ()


class TestPropagationHolds:
    def test_lock_held_across_propagation_is_flagged(
        self, lock_sanitizer, random_graph
    ):
        engine = WalkEngine(random_graph)
        lock_sanitizer.instrument_engine(engine)
        rogue = lock_sanitizer.wrap(threading.Lock(), "Rogue._lock")
        with rogue:
            engine.backward_first_hit_series(0, 3)
        holds = lock_sanitizer.propagation_holds()
        assert holds == {("Rogue._lock", "backward_first_hit_series"): 1}
        with pytest.raises(LockOrderError, match="Rogue._lock"):
            lock_sanitizer.assert_clean()
        lock_sanitizer.assert_clean(
            allowed=DEFAULT_PROPAGATION_ALLOWED | {"Rogue._lock"}
        )

    def test_documented_cold_path_holds_are_allowed(
        self, lock_sanitizer, random_graph, params
    ):
        """A cold WalkCache.scores() walks under its own lock — the
        documented exception must pass assert_clean unmodified."""
        engine = WalkEngine(random_graph)
        cache = WalkCache(engine, params)
        wrapped = lock_sanitizer.instrument_engine(engine)
        wrapped += lock_sanitizer.instrument(cache)
        assert "WalkCache._lock" in wrapped
        assert "WalkEngineStats._lock" in wrapped
        cache.scores(3, 4)  # cold miss: propagation under the lock
        assert any(
            name == "WalkCache._lock"
            for name, _ in lock_sanitizer.propagation_holds()
        )
        report = lock_sanitizer.assert_clean()
        assert report["cycle"] is None


class TestInstrumentation:
    def test_instrumented_cache_stays_bit_identical(
        self, lock_sanitizer, random_graph, params
    ):
        engine = WalkEngine(random_graph)
        reference = WalkCache(WalkEngine(random_graph), params)
        cache = WalkCache(engine, params)
        lock_sanitizer.instrument_engine(engine)
        lock_sanitizer.instrument(cache)
        for target, level in [(0, 3), (5, 2), (0, 3), (7, 6)]:
            got = cache.scores(target, level)
            assert np.array_equal(got, reference.scores(target, level))
        lock_sanitizer.assert_clean()

    def test_instrument_finds_slotted_locks(self, lock_sanitizer,
                                            random_graph):
        engine = WalkEngine(random_graph)
        wrapped = lock_sanitizer.instrument(engine.stats)
        assert wrapped == ["WalkEngineStats._lock"]

    def test_wrap_is_idempotent(self, lock_sanitizer):
        lock = lock_sanitizer.wrap(threading.Lock(), "A._lock")
        assert lock_sanitizer.wrap(lock, "A._lock") is lock
