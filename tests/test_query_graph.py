"""Unit tests for the query-graph model (Definition 1 and Fig. 2 shapes)."""

import pytest

from repro.core.nway.query_graph import QueryGraph
from repro.graph.validation import GraphValidationError


class TestConstruction:
    def test_minimal(self):
        q = QueryGraph(2, [(0, 1)])
        assert q.num_vertices == 2
        assert q.edges == [(0, 1)]
        assert q.num_edges == 1

    def test_both_directions_are_distinct_edges(self):
        q = QueryGraph(2, [(0, 1), (1, 0)])
        assert q.num_edges == 2

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphValidationError, match="duplicate"):
            QueryGraph(2, [(0, 1), (0, 1)])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphValidationError, match="self-loop"):
            QueryGraph(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphValidationError, match="out of range"):
            QueryGraph(2, [(0, 5)])

    def test_no_edges_rejected(self):
        with pytest.raises(GraphValidationError, match="at least one edge"):
            QueryGraph(2, [])

    def test_uncovered_vertex_rejected(self):
        with pytest.raises(GraphValidationError, match="no incident edges"):
            QueryGraph(3, [(0, 1)])

    def test_disconnected_rejected(self):
        with pytest.raises(GraphValidationError, match="connected"):
            QueryGraph(4, [(0, 1), (2, 3)])

    def test_single_vertex_rejected(self):
        with pytest.raises(GraphValidationError):
            QueryGraph(1, [])

    def test_names(self):
        q = QueryGraph(2, [(0, 1)], names=["DB", "AI"])
        assert q.name(0) == "DB"
        assert q.edge_name(0) == "DB->AI"

    def test_default_names(self):
        q = QueryGraph(2, [(0, 1)])
        assert q.name(1) == "R2"

    def test_name_count_mismatch(self):
        with pytest.raises(GraphValidationError):
            QueryGraph(2, [(0, 1)], names=["only one"])


class TestShapes:
    def test_chain(self):
        q = QueryGraph.chain(4)
        assert q.edges == [(0, 1), (1, 2), (2, 3)]

    def test_chain_bidirectional(self):
        q = QueryGraph.chain(3, bidirectional=True)
        assert set(q.edges) == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_cycle(self):
        q = QueryGraph.cycle(3)
        assert set(q.edges) == {(0, 1), (1, 2), (2, 0)}

    def test_triangle_default_bidirectional(self):
        # Footnote 2: drawn lines denote both directions.
        q = QueryGraph.triangle()
        assert q.num_edges == 6

    def test_star(self):
        q = QueryGraph.star(5, bidirectional=False)
        assert q.num_vertices == 6
        assert all(edge[0] == 0 for edge in q.edges)

    def test_star_bidirectional(self):
        q = QueryGraph.star(2)
        assert set(q.edges) == {(0, 1), (1, 0), (0, 2), (2, 0)}

    def test_clique(self):
        q = QueryGraph.clique(4)
        assert q.num_edges == 6
        q2 = QueryGraph.clique(4, bidirectional=True)
        assert q2.num_edges == 12

    def test_star_needs_satellite(self):
        with pytest.raises(GraphValidationError):
            QueryGraph.star(0)

    def test_cycle_needs_three(self):
        with pytest.raises(GraphValidationError):
            QueryGraph.cycle(2)


class TestExpansionOrder:
    @pytest.mark.parametrize(
        "query",
        [
            QueryGraph.chain(4),
            QueryGraph.triangle(),
            QueryGraph.star(4),
            QueryGraph.clique(4),
            QueryGraph.cycle(5, bidirectional=True),
        ],
    )
    def test_every_start_edge_yields_anchored_order(self, query):
        for start in range(query.num_edges):
            order = query.expansion_order(start)
            assert sorted(order + [start]) == list(range(query.num_edges))
            assigned = set(query.edges[start])
            for e in order:
                i, j = query.edges[e]
                assert i in assigned or j in assigned
                assigned.update((i, j))
            assert assigned == set(range(query.num_vertices))

    def test_order_cached(self):
        q = QueryGraph.chain(3)
        assert q.expansion_order(0) == q.expansion_order(0)

    def test_bad_start_edge(self):
        with pytest.raises(GraphValidationError):
            QueryGraph.chain(3).expansion_order(99)
