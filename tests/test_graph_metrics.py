"""Unit tests for structural graph metrics."""

import numpy as np
import pytest

from repro.graph.builders import complete_graph, path_graph, star_graph
from repro.graph.digraph import Graph
from repro.graph.metrics import (
    average_clustering_coefficient,
    connected_components,
    degree_histogram,
    summarize,
    undirected_neighbor_sets,
)


class TestDegreeHistogram:
    def test_path(self):
        hist = degree_histogram(path_graph(4))
        assert hist[1] == 2  # endpoints
        assert hist[2] == 2  # middle nodes

    def test_star(self):
        hist = degree_histogram(star_graph(5))
        assert hist[1] == 5
        assert hist[5] == 1

    def test_counts_undirected_once(self):
        g = Graph(3, [(0, 1, 1.0), (1, 0, 2.0)])  # both arcs, one edge
        hist = degree_histogram(g)
        assert hist[1] == 2

    def test_empty(self):
        assert degree_histogram(Graph(0, [])).tolist() == [0]


class TestClustering:
    def test_complete_graph_is_one(self):
        assert average_clustering_coefficient(complete_graph(5)) == pytest.approx(1.0)

    def test_star_is_zero(self):
        assert average_clustering_coefficient(star_graph(6)) == 0.0

    def test_triangle_plus_tail(self):
        # Triangle 0-1-2 with tail 2-3: c(0)=c(1)=1, c(2)=1/3, c(3)=0.
        g = Graph.from_undirected_edges(
            4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)]
        )
        assert average_clustering_coefficient(g) == pytest.approx(
            (1.0 + 1.0 + 1.0 / 3.0 + 0.0) / 4.0
        )

    def test_sampled_estimate_close(self, random_graph):
        exact = average_clustering_coefficient(random_graph)
        sampled = average_clustering_coefficient(random_graph, sample=30, seed=1)
        assert abs(exact - sampled) < 0.25


class TestComponents:
    def test_single_component(self):
        components = connected_components(path_graph(5))
        assert len(components) == 1
        assert components[0] == [0, 1, 2, 3, 4]

    def test_multiple_components_sorted_by_size(self):
        g = Graph.from_undirected_edges(
            6, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)]
        )
        components = connected_components(g)
        assert [len(c) for c in components] == [3, 2, 1]
        assert components[0] == [2, 3, 4]
        assert components[2] == [5]


class TestSummary:
    def test_summary_fields(self, random_graph):
        summary = summarize(random_graph)
        assert summary["num_nodes"] == random_graph.num_nodes
        assert summary["num_undirected_edges"] == random_graph.num_edges / 2
        assert 0.0 <= summary["clustering"] <= 1.0
        assert summary["largest_component"] <= summary["num_nodes"]

    def test_dataset_substitutes_have_clustering(self):
        # The property the link-prediction experiments rely on: the
        # substitutes must be locally clustered, unlike ER noise.
        from repro.datasets import generate_yeast, generate_youtube
        from repro.graph.builders import erdos_renyi

        yeast = generate_yeast(num_proteins=600, seed=3).graph
        youtube = generate_youtube(num_users=2000, num_groups=5, seed=3).graph
        noise = erdos_renyi(600, 2 * 3.0 / 600, np.random.default_rng(3))
        c_noise = average_clustering_coefficient(noise, sample=300, seed=0)
        for clustered in (yeast, youtube):
            c = average_clustering_coefficient(clustered, sample=300, seed=0)
            assert c > 3 * max(c_noise, 0.005)
