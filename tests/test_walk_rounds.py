"""Tests for the shared deepening-round machinery and the spill policy.

Covers the bounded-memory modes of both iterative-deepening joins
(``B-IDJ`` and ``Series-IDJ``), the walk-cache spill of overflow
survivors (resumed instead of re-walked, visible as ``extensions`` /
``steps_saved``), and the :class:`~repro.walks.state.WalkState`
restructuring primitives (``select`` / ``extract_column`` / ``concat``)
under both the DHT and PPR kernels.
"""

import numpy as np
import pytest

from repro.core.dht import DHTParams
from repro.core.two_way.backward import BackwardIDJY
from repro.core.two_way.base import make_context
from repro.extensions.measures import DHTMeasure, TruncatedPPR
from repro.extensions.series_join import SeriesIDJ
from repro.extensions.simrank import SimRankMeasure
from repro.graph.builders import erdos_renyi
from repro.graph.validation import GraphValidationError
from repro.walks.cache import WalkCache
from repro.walks.engine import WalkEngine
from repro.walks.kernels import PPRBlockKernel
from repro.walks.state import WalkState


@pytest.fixture
def engine(random_graph):
    return WalkEngine(random_graph)


def _pairs_key(pairs):
    return [(p.left, p.right) for p in pairs]


def _mid_workload():
    graph = erdos_renyi(600, 6.0 / 600, np.random.default_rng(4), weighted=True)
    rng = np.random.default_rng(8)
    nodes = rng.permutation(600)
    left = sorted(int(u) for u in nodes[:40])
    right = sorted(int(u) for u in nodes[40:120])
    return graph, left, right


KERNEL_FACTORIES = [
    lambda: DHTParams.dht_lambda(0.2),
    lambda: PPRBlockKernel(0.7),
]


class TestWalkStateRoundTrips:
    """``select`` / ``extract_column`` / ``concat`` under both kernels."""

    @pytest.mark.parametrize("kernel_factory", KERNEL_FACTORIES)
    def test_select_concat_round_trip(self, engine, kernel_factory):
        params = kernel_factory()
        block = WalkState(engine, params, [3, 7, 11, 15]).advance_to(4)
        halves = [block.select([0, 2]), block.select([1, 3])]
        merged = WalkState.concat(halves)
        assert list(merged.targets) == [3, 11, 7, 15]
        fresh = WalkState(engine, params, [3, 11, 7, 15]).advance_to(4)
        assert np.array_equal(merged.scores_matrix(), fresh.scores_matrix())
        # Extending the re-packed block stays bit-identical to a fresh
        # deeper walk — the property the spill policy relies on.
        merged.advance_to(8)
        fresh.advance_to(8)
        assert np.array_equal(merged.scores_matrix(), fresh.scores_matrix())

    @pytest.mark.parametrize("kernel_factory", KERNEL_FACTORIES)
    def test_extract_column_round_trip(self, engine, kernel_factory):
        params = kernel_factory()
        block = WalkState(engine, params, [2, 9, 21]).advance_to(2)
        column = block.extract_column(1)
        assert column.width == 1 and int(column.targets[0]) == 9
        assert np.array_equal(
            column.score_column(0), block.score_column(1)
        )
        column.advance_to(6)
        fresh = WalkState(engine, params, [9]).advance_to(6)
        assert np.array_equal(column.score_column(0), fresh.score_column(0))
        # The source block is untouched by the copy's extension.
        assert block.level == 2

    @pytest.mark.parametrize("kernel_factory", KERNEL_FACTORIES)
    def test_concat_of_extracted_columns(self, engine, kernel_factory):
        params = kernel_factory()
        a = WalkState(engine, params, [1, 5]).advance_to(3)
        b = WalkState(engine, params, [8]).advance_to(3)
        merged = WalkState.concat([a.extract_column(1), b])
        fresh = WalkState(engine, params, [5, 8]).advance_to(3)
        assert np.array_equal(merged.scores_matrix(), fresh.scores_matrix())

    def test_concat_rejects_mixed_kernels(self, engine):
        dht = WalkState(engine, DHTParams.dht_lambda(0.2), [1]).advance_to(2)
        ppr = WalkState(engine, PPRBlockKernel(0.7), [2]).advance_to(2)
        with pytest.raises(GraphValidationError, match="identical measure kernels"):
            WalkState.concat([dht, ppr])

    @pytest.mark.parametrize("kernel_factory", KERNEL_FACTORIES)
    def test_concat_rejects_mixed_levels(self, engine, kernel_factory):
        params = kernel_factory()
        a = WalkState(engine, params, [1]).advance_to(2)
        b = WalkState(engine, params, [2]).advance_to(4)
        with pytest.raises(GraphValidationError, match="at one level"):
            WalkState.concat([a, b])

    def test_concat_rejects_mixed_engines(self, random_graph):
        params = DHTParams.dht_lambda(0.2)
        a = WalkState(WalkEngine(random_graph), params, [1]).advance_to(1)
        b = WalkState(WalkEngine(random_graph), params, [2]).advance_to(1)
        with pytest.raises(GraphValidationError, match="same engine"):
            WalkState.concat([a, b])


class TestResumableLevel:
    def test_probe_reports_adopted_state(self, engine):
        params = DHTParams.dht_lambda(0.2)
        cache = WalkCache(engine, params)
        assert cache.resumable_level(5) == 0
        cache.adopt(WalkState(engine, params, [5]).advance_to(3))
        assert cache.resumable_level(5) == 3

    def test_probe_is_stat_free(self, engine):
        params = DHTParams.dht_lambda(0.2)
        cache = WalkCache(engine, params)
        cache.adopt(WalkState(engine, params, [5]).advance_to(3))
        before = (cache.stats.hits, cache.stats.misses)
        cache.resumable_level(5)
        cache.resumable_level(6)
        assert (cache.stats.hits, cache.stats.misses) == before


class TestBIDJSpill:
    """Bounded ``B-IDJ`` with a walk cache: overflow survivors spill and
    resume instead of restarting — identical output, fewer steps."""

    def test_spill_resumes_and_matches(self):
        graph, left, right = _mid_workload()
        base_alg = BackwardIDJY(make_context(graph, left, right, d=8))
        expected = base_alg.top_k(12)
        expected_trace = list(base_alg.pruning_trace)

        ceiling = 16 * graph.num_nodes * 3

        # Restart mode: bounded, no cache to spill into.
        restart_ctx = make_context(graph, left, right, d=8, max_block_bytes=ceiling)
        restart_alg = BackwardIDJY(restart_ctx)
        restart_result = restart_alg.top_k(12)
        restart_steps = restart_ctx.engine.stats.propagation_steps
        assert restart_ctx.engine.stats.extensions == 0

        # Spill mode: same ceiling, cache present.
        engine = WalkEngine(graph)
        cache = WalkCache(engine, DHTParams.dht_lambda(0.2))
        spill_ctx = make_context(
            graph, left, right, d=8, engine=engine, walk_cache=cache,
            max_block_bytes=ceiling,
        )
        spill_alg = BackwardIDJY(spill_ctx)
        spill_result = spill_alg.top_k(12)
        spill_steps = engine.stats.propagation_steps

        for result, alg in ((restart_result, restart_alg), (spill_result, spill_alg)):
            assert _pairs_key(result) == _pairs_key(expected)
            assert np.allclose(
                [p.score for p in result],
                [p.score for p in expected],
                atol=1e-12,
            )
            assert alg.pruning_trace == expected_trace
        assert spill_ctx.engine.stats.peak_block_bytes <= ceiling
        # The spill turned restart steps into resumes.
        assert engine.stats.extensions > 0
        assert engine.stats.steps_saved > 0
        assert spill_steps < restart_steps
        assert cache.stats.extensions == engine.stats.extensions

    def test_single_column_window_spills(self):
        graph, left, right = _mid_workload()
        expected = BackwardIDJY(make_context(graph, left, right, d=8)).top_k(8)
        engine = WalkEngine(graph)
        cache = WalkCache(engine, DHTParams.dht_lambda(0.2))
        ctx = make_context(
            graph, left, right, d=8, engine=engine, walk_cache=cache,
            max_block_bytes=16 * graph.num_nodes,  # exactly one column
        )
        result = BackwardIDJY(ctx).top_k(8)
        assert _pairs_key(result) == _pairs_key(expected)
        assert engine.stats.peak_block_bytes <= 16 * graph.num_nodes
        assert engine.stats.extensions > 0

    def test_sub_column_ceiling_rejected(self):
        """A budget below one column's cost names the minimum feasible
        budget instead of silently degrading."""
        graph, left, right = _mid_workload()
        minimum = 16 * graph.num_nodes
        with pytest.raises(ValueError, match=str(minimum)):
            BackwardIDJY(
                make_context(graph, left, right, d=8, max_block_bytes=minimum - 1)
            ).top_k(4)
        from repro.walks.rounds import columns_for_budget

        with pytest.raises(ValueError, match="minimum"):
            columns_for_budget(15, graph.num_nodes)
        assert columns_for_budget(minimum, graph.num_nodes) == 1


SERIES_MEASURES = [
    lambda: TruncatedPPR(damping=0.7, epsilon=1e-6),
    lambda: DHTMeasure(),
]


class TestBoundedSeriesIDJ:
    """``Series-IDJ`` under ``max_block_bytes``: the B-IDJ bounded
    rounds, ported to the measure-generic path."""

    @pytest.mark.parametrize("measure_factory", SERIES_MEASURES)
    @pytest.mark.parametrize("window_cols", [1, 3])
    def test_bounded_matches_unbounded(self, measure_factory, window_cols):
        graph, left, right = _mid_workload()
        free_alg = SeriesIDJ(graph, measure_factory(), left, right)
        expected = free_alg.top_k(10)
        expected_trace = list(free_alg.pruning_trace)
        free_peak = free_alg.context.engine.stats.peak_block_bytes

        ceiling = 16 * graph.num_nodes * window_cols
        capped_alg = SeriesIDJ(
            graph, measure_factory(), left, right, max_block_bytes=ceiling
        )
        result = capped_alg.top_k(10)
        capped_peak = capped_alg.context.engine.stats.peak_block_bytes

        assert _pairs_key(result) == _pairs_key(expected)
        assert np.allclose(
            [p.score for p in result], [p.score for p in expected], atol=1e-12
        )
        assert capped_alg.pruning_trace == expected_trace
        assert capped_peak <= ceiling < free_peak

    @pytest.mark.parametrize("measure_factory", SERIES_MEASURES)
    def test_bounded_with_cache_spills_and_resumes(self, measure_factory):
        graph, left, right = _mid_workload()
        measure = measure_factory()
        expected = SeriesIDJ(graph, measure_factory(), left, right).top_k(10)

        ceiling = 16 * graph.num_nodes * 2
        restart_alg = SeriesIDJ(
            graph, measure_factory(), left, right, max_block_bytes=ceiling
        )
        restart_alg.top_k(10)
        restart_steps = restart_alg.context.engine.stats.propagation_steps

        engine = WalkEngine(graph)
        cache = WalkCache(engine, measure.cache_key())
        spill_alg = SeriesIDJ(
            graph, measure, left, right, engine=engine, walk_cache=cache,
            max_block_bytes=ceiling,
        )
        result = spill_alg.top_k(10)
        assert _pairs_key(result) == _pairs_key(expected)
        assert engine.stats.peak_block_bytes <= ceiling
        assert engine.stats.extensions > 0
        assert engine.stats.steps_saved > 0
        assert engine.stats.propagation_steps < restart_steps

    def test_bounded_simrank_chunks_gathers(self, random_graph):
        """Matrix-backed measures have no walk window; the ceiling just
        chunks the iterate gathers, output unchanged."""
        measure = SimRankMeasure(iterations=6)
        left, right = list(range(8)), list(range(20, 36))
        expected = SeriesIDJ(random_graph, measure, left, right).top_k(6)
        capped = SeriesIDJ(
            random_graph, SimRankMeasure(iterations=6), left, right,
            max_block_bytes=16 * random_graph.num_nodes,
        ).top_k(6)
        assert _pairs_key(capped) == _pairs_key(expected)
        assert np.allclose(
            [p.score for p in capped], [p.score for p in expected], atol=1e-12
        )
