"""Tests for the execution governor: budgets, partial results, backoff.

The contract under test (the tentpole invariant): a governed join either
returns an *exact* result — identical to the ungoverned run — or a
flagged :class:`~repro.exec.budget.PartialResult` whose per-result
score intervals contain the exact (oracle) scores.  Budget stops never
surface as unhandled exceptions under ``on_budget="partial"``, and the
``budget_stops`` / ``degradations`` / ``alloc_retries`` counters are
nonzero exactly when the corresponding degradation occurred.
"""

import json

import numpy as np
import pytest

from repro.api import multi_way_join, two_way_join
from repro.cli import main as cli_main
from repro.core.nway.query_graph import QueryGraph
from repro.exec.budget import (
    BudgetExhaustedError,
    PartialResult,
    QueryBudget,
    exact_result,
)
from repro.exec.governor import ExecutionGovernor
from repro.graph.builders import erdos_renyi
from repro.graph.io import write_edge_list
from repro.graph.validation import GraphValidationError
from repro.walks.engine import WalkEngine


@pytest.fixture
def workload():
    graph = erdos_renyi(150, 5.0 / 150, np.random.default_rng(7), weighted=True)
    left = list(range(12))
    right = list(range(30, 70))
    return graph, left, right


def _oracle_scores(graph, left, right, **kwargs):
    """Exact score of every candidate pair from an ungoverned run."""
    pairs = two_way_join(
        graph, left, right, k=len(left) * len(right), algorithm="b-bj", **kwargs
    )
    return {(p.left, p.right): p.score for p in pairs}


def assert_sound(result, oracle, atol=1e-9):
    """Every returned bound interval contains the exact score."""
    assert isinstance(result, PartialResult)
    assert len(result.results) == len(result.bounds)
    for item, (lower, upper) in zip(result.results, result.bounds):
        assert lower <= upper + atol
        exact = oracle[(item.left, item.right)]
        assert lower - atol <= exact <= upper + atol
        if result.exact:
            assert lower == upper == item.score


class TestBudgetValidation:
    def test_rejects_bad_axes(self):
        with pytest.raises(ValueError):
            QueryBudget(deadline_ms=0)
        with pytest.raises(ValueError):
            QueryBudget(step_budget=0)
        with pytest.raises(ValueError):
            QueryBudget(max_bytes=0)
        assert QueryBudget().unlimited
        assert not QueryBudget(step_budget=5).unlimited

    def test_partial_result_validation(self):
        with pytest.raises(ValueError, match="parallel"):
            PartialResult(results=[1], bounds=[])
        with pytest.raises(ValueError, match="reason"):
            PartialResult(results=[], bounds=[], exact=False)
        with pytest.raises(ValueError, match="no exhaustion reason"):
            PartialResult(results=[], bounds=[], exact=True, reason="steps")

    def test_bad_policy_rejected(self, workload):
        graph, left, right = workload
        with pytest.raises(GraphValidationError, match="on_budget"):
            two_way_join(
                graph, left, right, 5,
                budget=QueryBudget(step_budget=10), on_budget="retry",
            )

    def test_unknown_reason_rejected(self):
        with pytest.raises(ValueError, match="reason"):
            BudgetExhaustedError("patience")


class TestGovernedTwoWay:
    def test_unlimited_budget_is_exact(self, workload):
        graph, left, right = workload
        plain = two_way_join(graph, left, right, 8)
        governed = two_way_join(
            graph, left, right, 8, budget=QueryBudget(step_budget=10**9)
        )
        assert governed.exact and governed.reason is None
        assert governed.results == plain
        assert all(lo == hi for lo, hi in governed.bounds)

    @pytest.mark.parametrize("algorithm", ["b-idj-y", "b-idj-x", "b-bj"])
    def test_step_budget_yields_sound_partial(self, workload, algorithm):
        graph, left, right = workload
        oracle = _oracle_scores(graph, left, right)
        engine = WalkEngine(graph)
        result = two_way_join(
            graph, left, right, 8, algorithm=algorithm, engine=engine,
            budget=QueryBudget(step_budget=40),
        )
        assert not result.exact and result.reason == "steps"
        assert_sound(result, oracle)
        assert engine.stats.budget_stops == 1
        assert engine.stats.checkpoints > 0

    def test_deadline_budget_stops(self, workload):
        graph, left, right = workload
        engine = WalkEngine(graph)
        # A microsecond deadline exhausts at the first checkpoint.
        result = two_way_join(
            graph, left, right, 8, engine=engine,
            budget=QueryBudget(deadline_ms=1e-3),
        )
        assert not result.exact and result.reason == "deadline"
        assert engine.stats.budget_stops == 1

    def test_on_budget_error_raises(self, workload):
        graph, left, right = workload
        engine = WalkEngine(graph)
        with pytest.raises(BudgetExhaustedError) as info:
            two_way_join(
                graph, left, right, 8, engine=engine,
                budget=QueryBudget(step_budget=40), on_budget="error",
            )
        assert info.value.reason == "steps"
        assert engine.stats.budget_stops == 1

    def test_partial_ranking_matches_snapshot_order(self, workload):
        graph, left, right = workload
        result = two_way_join(
            graph, left, right, 8, budget=QueryBudget(step_budget=40),
        )
        scores = [p.score for p in result.results]
        assert scores == sorted(scores, reverse=True)
        assert len(result) <= 8

    def test_series_measures_yield_sound_partials(self, workload):
        graph, left, right = workload
        for measure in ("ppr", "simrank"):
            oracle = _oracle_scores(graph, left, right, measure=measure)
            result = two_way_join(
                graph, left, right, 8, measure=measure,
                budget=QueryBudget(step_budget=30),
            )
            assert_sound(result, oracle)

    def test_ungoverned_runs_have_zero_budget_counters(self, workload):
        graph, left, right = workload
        engine = WalkEngine(graph)
        two_way_join(graph, left, right, 8, engine=engine)
        assert engine.stats.budget_stops == 0
        assert engine.stats.degradations == 0
        assert engine.stats.alloc_retries == 0


class TestByteBudgetBackoff:
    """``max_bytes`` triggers the adaptive window backoff, not an error."""

    def test_backoff_recovers_exactly(self, workload):
        graph, left, right = workload
        expected = two_way_join(graph, left, right, 10)
        engine = WalkEngine(graph)
        # Two columns fit; the full-width window must halve repeatedly.
        result = two_way_join(
            graph, left, right, 10, engine=engine,
            budget=QueryBudget(max_bytes=16 * graph.num_nodes * 2),
        )
        assert result.exact
        assert result.results == expected
        assert engine.stats.alloc_retries > 0
        assert engine.stats.degradations > 0
        assert engine.stats.budget_stops == 0

    def test_sub_column_byte_budget_is_partial(self, workload):
        graph, left, right = workload
        oracle = _oracle_scores(graph, left, right)
        engine = WalkEngine(graph)
        result = two_way_join(
            graph, left, right, 10, engine=engine,
            budget=QueryBudget(max_bytes=16 * graph.num_nodes - 1),
        )
        assert not result.exact and result.reason == "bytes"
        assert_sound(result, oracle)
        assert engine.stats.budget_stops == 1


class TestGovernedMultiWay:
    @pytest.fixture
    def nway(self):
        graph = erdos_renyi(150, 5.0 / 150, np.random.default_rng(7), weighted=True)
        query = QueryGraph(3, [(0, 1), (1, 2)], names=["A", "B", "C"])
        sets = [list(range(8)), list(range(30, 45)), list(range(60, 72))]
        return graph, query, sets

    def _edge_oracles(self, graph, query, sets, **kwargs):
        oracles = []
        for i, j in query.edges:
            oracles.append(_oracle_scores(graph, sets[i], sets[j], **kwargs))
        return oracles

    def assert_answers_sound(self, result, query, oracles, atol=1e-9):
        for answer, (lower, upper) in zip(result.results, result.bounds):
            exact_edges = [
                oracles[e][(answer.nodes[i], answer.nodes[j])]
                for e, (i, j) in enumerate(query.edges)
            ]
            exact = min(exact_edges)  # MIN aggregate (the default)
            assert lower - atol <= exact <= upper + atol

    def test_unlimited_budget_is_exact(self, nway):
        graph, query, sets = nway
        plain = multi_way_join(graph, query, sets, 5)
        governed = multi_way_join(
            graph, query, sets, 5, budget=QueryBudget(step_budget=10**9)
        )
        assert governed.exact
        assert governed.results == plain

    @pytest.mark.parametrize("algorithm", ["pj", "ap"])
    def test_step_budget_yields_sound_partial(self, nway, algorithm):
        graph, query, sets = nway
        oracles = self._edge_oracles(graph, query, sets)
        engine = WalkEngine(graph)
        result = multi_way_join(
            graph, query, sets, 5, algorithm=algorithm, engine=engine,
            budget=QueryBudget(step_budget=160),
        )
        assert not result.exact and result.reason == "steps"
        if algorithm == "pj":
            # The prefixes joined: best-effort answers with intervals.
            assert len(result) > 0
        self.assert_answers_sound(result, query, oracles)
        assert engine.stats.budget_stops >= 1

    def test_nl_rejected_under_budget(self, nway):
        graph, query, sets = nway
        with pytest.raises(GraphValidationError, match="NL"):
            multi_way_join(
                graph, query, sets, 5, algorithm="nl",
                budget=QueryBudget(step_budget=100),
            )

    def test_on_budget_error_raises(self, nway):
        graph, query, sets = nway
        with pytest.raises(BudgetExhaustedError):
            multi_way_join(
                graph, query, sets, 5,
                budget=QueryBudget(step_budget=160), on_budget="error",
            )

    def test_series_measure_partial_is_sound(self, nway):
        graph, query, sets = nway
        oracles = self._edge_oracles(graph, query, sets, measure="ppr")
        result = multi_way_join(
            graph, query, sets, 5, measure="ppr",
            budget=QueryBudget(step_budget=250),
        )
        assert not result.exact
        self.assert_answers_sound(result, query, oracles)


class TestGovernorObject:
    def test_install_uninstall(self, random_graph):
        engine = WalkEngine(random_graph)
        governor = ExecutionGovernor(QueryBudget(step_budget=5)).install(engine)
        assert engine.governor is governor
        governor.uninstall()
        assert engine.governor is None

    def test_checkpoint_counts(self, random_graph):
        engine = WalkEngine(random_graph)
        governor = ExecutionGovernor().install(engine)
        engine.checkpoint("step")
        engine.checkpoint("round")
        assert engine.stats.checkpoints == 2
        governor.uninstall()
        engine.checkpoint("step")  # ungoverned: free
        assert engine.stats.checkpoints == 2

    def test_exact_result_helper(self):
        wrapped = exact_result([])
        assert wrapped.exact and len(wrapped) == 0


class TestCLIBudgetFlags:
    @pytest.fixture
    def cli_files(self, tmp_path):
        graph = erdos_renyi(80, 6.0 / 80, np.random.default_rng(3), weighted=True)
        graph_path = tmp_path / "graph.tsv"
        write_edge_list(graph, graph_path)
        sets_path = tmp_path / "sets.json"
        sets_path.write_text(json.dumps(
            {"P": list(range(8)), "Q": list(range(20, 50))}
        ))
        return str(graph_path), str(sets_path)

    def test_partial_json_output(self, cli_files, capsys):
        graph_path, sets_path = cli_files
        code = cli_main([
            "two-way", graph_path, "--sets", sets_path,
            "--left", "P", "--right", "Q", "-k", "5",
            "--step-budget", "30", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exact"] is False
        assert payload["reason"] == "steps"
        for row in payload["results"]:
            assert row["lower"] <= row["upper"]

    def test_exact_json_output_keeps_shape(self, cli_files, capsys):
        graph_path, sets_path = cli_files
        code = cli_main([
            "two-way", graph_path, "--sets", sets_path,
            "--left", "P", "--right", "Q", "-k", "5",
            "--step-budget", "100000000", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exact"] is True and payload["reason"] is None

    def test_on_budget_error_exit_code(self, cli_files, capsys):
        graph_path, sets_path = cli_files
        code = cli_main([
            "two-way", graph_path, "--sets", sets_path,
            "--left", "P", "--right", "Q", "-k", "5",
            "--step-budget", "30", "--on-budget", "error",
        ])
        assert code == 3
        assert "budget" in capsys.readouterr().err

    def test_multi_way_deadline_flag(self, cli_files, capsys):
        graph_path, sets_path = cli_files
        code = cli_main([
            "multi-way", graph_path, "--sets", sets_path,
            "--node-sets", "P", "Q", "-k", "3",
            "--deadline-ms", "0.001", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exact"] is False
        assert payload["reason"] == "deadline"


class TestWarmCacheInterruptibility:
    """Regression for the RL002 (*ungoverned-loop*) pass: a query served
    entirely from the warm walk cache performs zero propagation steps,
    so before the ``"cache"`` checkpoint site existed a deadline or
    fault schedule could never reach it — it would run to an "exact"
    answer on a budget that had already expired."""

    def test_warm_scores_still_honours_deadline(self, random_graph):
        from repro.core.dht import DHTParams
        from repro.walks.cache import WalkCache

        params = DHTParams.dht_lambda(0.2)
        engine = WalkEngine(random_graph)
        cache = WalkCache(engine, params)
        baseline = cache.scores(3, 4)  # warm the entry, ungoverned
        assert baseline is not None
        governor = ExecutionGovernor(
            QueryBudget(deadline_ms=1e-3)
        ).install(engine)
        try:
            with pytest.raises(BudgetExhaustedError) as excinfo:
                cache.scores(3, 4)
        finally:
            governor.uninstall()
        assert excinfo.value.reason == "deadline"

    def test_fully_cached_triage_loop_still_honours_deadline(
        self, random_graph
    ):
        from repro.core.dht import DHTParams
        from repro.core.two_way.backward import BackwardBasicJoin
        from repro.core.two_way.base import make_context
        from repro.walks.cache import WalkCache

        params = DHTParams.dht_lambda(0.2)
        engine = WalkEngine(random_graph)
        cache = WalkCache(engine, params)
        context = make_context(
            random_graph, [0, 1, 2], [5, 6, 7], params=params, d=4,
            engine=engine, walk_cache=cache,
        )
        BackwardBasicJoin(context).top_k(3)  # every right target now warm
        assert cache.stats.misses > 0
        governor = ExecutionGovernor(
            QueryBudget(deadline_ms=1e-3)
        ).install(engine)
        try:
            with pytest.raises(BudgetExhaustedError):
                BackwardBasicJoin(context).top_k(3)
        finally:
            governor.uninstall()
