"""Shared fixtures: small hand-checkable graphs and default parameters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dht import DHTParams
from repro.graph.builders import erdos_renyi, path_graph, random_directed
from repro.graph.digraph import Graph


@pytest.fixture
def params():
    """The paper's default DHT configuration (lambda = 0.2)."""
    return DHTParams.dht_lambda(0.2)


@pytest.fixture
def params_e():
    """The DHT_e variant."""
    return DHTParams.dht_e()


@pytest.fixture
def path4():
    """Path 0 - 1 - 2 - 3 with unit weights."""
    return path_graph(4)


@pytest.fixture
def tiny_directed():
    """A 4-node directed weighted graph with asymmetric structure.

    Edges: 0->1 (w2), 0->2 (w1), 1->2 (w1), 2->3 (w1), 3->0 (w1).
    Hand-checkable transition probabilities:
    p(0,1)=2/3, p(0,2)=1/3, p(1,2)=1, p(2,3)=1, p(3,0)=1.
    """
    return Graph(4, [(0, 1, 2.0), (0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])


@pytest.fixture
def weighted_triangle():
    """Undirected triangle with distinct weights (0-1: 1, 1-2: 2, 0-2: 3)."""
    return Graph.from_undirected_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])


@pytest.fixture
def random_graph():
    """A fixed mid-size random weighted undirected graph."""
    return erdos_renyi(40, 0.12, np.random.default_rng(11), weighted=True)


@pytest.fixture
def random_digraph():
    """A fixed random directed weighted graph (asymmetric DHT)."""
    return random_directed(25, 0.12, np.random.default_rng(5))


@pytest.fixture
def rng():
    """Deterministic random generator for tests."""
    return np.random.default_rng(123)


@pytest.fixture
def lock_sanitizer():
    """A fresh lock-order sanitizer (see repro.analysis.lockorder).

    Instrument the objects under test (``instrument``,
    ``instrument_engine``, ``instrument_service``) and finish with
    ``assert_clean()``; the concurrency battery wires it across the
    whole 8-worker service.
    """
    from repro.analysis.lockorder import LockOrderSanitizer

    return LockOrderSanitizer()
