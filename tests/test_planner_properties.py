"""Property-based planner equivalence: auto == fixed on random inputs.

Random query graphs (up to 4 edges) over random data graphs, across
DHT, Truncated PPR, and SimRank: the auto plan's top-k must match the
fixed plan's oracle — same tuples, scores within 1e-9 — for every
strategy that accepts a plan.  This is the planner's core safety net:
whatever order and operators the cost model picks on inputs nobody
hand-tuned, answers never move.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import multi_way_join
from repro.core.nway.query_graph import QueryGraph
from repro.extensions.measures import TruncatedPPR
from repro.extensions.simrank import SimRankMeasure

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Query graphs with at most 4 edges (the issue's property bound).
_QUERY_SHAPES = (
    lambda: QueryGraph.chain(2, bidirectional=True),   # 2 edges
    lambda: QueryGraph.chain(3),                       # 2 edges
    lambda: QueryGraph.chain(3, bidirectional=True),   # 4 edges
    lambda: QueryGraph.star(2, bidirectional=True),    # 4 edges
    lambda: QueryGraph.star(3, bidirectional=False),   # 3 edges
    lambda: QueryGraph.cycle(3),                       # 3 edges
)


@st.composite
def workload(draw):
    """A random (graph, query_graph, node_sets) triple."""
    n = draw(st.integers(8, 16))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    flags = draw(
        st.lists(st.booleans(), min_size=len(possible), max_size=len(possible))
    )
    edges = [
        (u, v, float(draw(st.integers(1, 4))))
        for (u, v), keep in zip(possible, flags)
        if keep
    ]
    if len(edges) < 4:
        edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (1, 0, 2.0)]
    from repro.graph.digraph import Graph

    graph = Graph(n, edges)
    query = _QUERY_SHAPES[draw(st.integers(0, len(_QUERY_SHAPES) - 1))]()
    node_sets = []
    for _ in range(query.num_vertices):
        size = draw(st.integers(1, 3))
        members = draw(
            st.lists(
                st.integers(0, n - 1), min_size=size, max_size=size, unique=True
            )
        )
        node_sets.append(members)
    return graph, query, node_sets


def _assert_plans_agree(graph, query, node_sets, k, **kwargs):
    auto = multi_way_join(
        graph, query, node_sets, k, plan="auto", **kwargs
    )
    fixed = multi_way_join(
        graph, query, node_sets, k, plan="fixed", **kwargs
    )
    assert [a.nodes for a in auto] == [a.nodes for a in fixed]
    assert np.allclose(
        [a.score for a in auto], [a.score for a in fixed], atol=1e-9
    )


class TestAutoEqualsFixedOracle:
    @SETTINGS
    @given(data=workload(), k=st.integers(1, 6),
           algorithm=st.sampled_from(["ap", "pj", "pj-i"]))
    def test_dht(self, data, k, algorithm):
        graph, query, node_sets = data
        _assert_plans_agree(
            graph, query, node_sets, k, algorithm=algorithm, m=30, d=5
        )

    @SETTINGS
    @given(data=workload(), k=st.integers(1, 5),
           algorithm=st.sampled_from(["ap", "pj"]))
    def test_ppr(self, data, k, algorithm):
        graph, query, node_sets = data
        _assert_plans_agree(
            graph, query, node_sets, k, algorithm=algorithm, m=30,
            measure=TruncatedPPR(damping=0.85, epsilon=1e-3),
        )

    @SETTINGS
    @given(data=workload(), k=st.integers(1, 5),
           algorithm=st.sampled_from(["ap", "pj"]))
    def test_simrank(self, data, k, algorithm):
        graph, query, node_sets = data
        _assert_plans_agree(
            graph, query, node_sets, k, algorithm=algorithm, m=30,
            measure=SimRankMeasure(decay=0.8, iterations=4),
        )

    @SETTINGS
    @given(data=workload(), k=st.integers(1, 5),
           step_budget=st.integers(20, 400))
    def test_partials_flagged_only_under_budget(self, data, k, step_budget):
        """Flagged partial results appear only when a budget is set,
        and the budgeted auto-plan run keeps intervals ordered."""
        from repro.exec.budget import PartialResult, QueryBudget

        graph, query, node_sets = data
        ungoverned = multi_way_join(
            graph, query, node_sets, k, algorithm="pj", m=30, d=5,
            plan="auto",
        )
        assert not isinstance(ungoverned, PartialResult)
        governed = multi_way_join(
            graph, query, node_sets, k, algorithm="pj", m=30, d=5,
            plan="auto", budget=QueryBudget(step_budget=step_budget),
        )
        assert isinstance(governed, PartialResult)
        for lower, upper in governed.bounds:
            assert lower <= upper + 1e-12
        if governed.exact:
            assert [a.nodes for a in governed.results] == [
                a.nodes for a in ungoverned
            ]
