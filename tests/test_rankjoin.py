"""Unit tests for the rank-join substrate: inputs, HRJN bound, PBRJ."""

import itertools
import math

import numpy as np
import pytest

from repro.core.nway.aggregates import MAX, MIN, SUM
from repro.core.nway.candidates import CandidateAnswer
from repro.core.nway.query_graph import QueryGraph
from repro.core.two_way.base import ScoredPair
from repro.graph.validation import GraphValidationError
from repro.rankjoin.hrjn import RoundRobinPuller, corner_bound
from repro.rankjoin.inputs import LazyInput, MaterializedInput
from repro.rankjoin.pbrj import PBRJ


def pairs(*triples):
    return [ScoredPair(*t) for t in triples]


class TestInputs:
    def test_pull_order_and_bookkeeping(self):
        inp = MaterializedInput(pairs((0, 1, 3.0), (0, 2, 2.0), (1, 1, 1.0)))
        assert inp.first_score is None
        assert inp.pull().score == 3.0
        assert inp.first_score == 3.0
        assert inp.last_score == 3.0
        inp.pull()
        assert inp.last_score == 2.0
        inp.pull()
        assert inp.pull() is None
        assert inp.exhausted
        assert inp.pulled == 3

    def test_unsorted_initial_rejected(self):
        with pytest.raises(GraphValidationError, match="sorted"):
            MaterializedInput(pairs((0, 1, 1.0), (0, 2, 2.0)))

    def test_refill_extends_stream(self):
        supply = iter(pairs((5, 5, 0.5), (6, 6, 0.25)))
        inp = LazyInput(pairs((0, 1, 1.0)), refill=lambda: next(supply, None))
        assert inp.pull().score == 1.0
        assert inp.pull().score == 0.5
        assert inp.refill_calls == 1
        assert inp.pull().score == 0.25
        assert inp.pull() is None
        assert inp.exhausted

    def test_refill_monotonicity_enforced(self):
        supply = iter(pairs((5, 5, 9.0)))
        inp = LazyInput(pairs((0, 1, 1.0)), refill=lambda: next(supply, None))
        inp.pull()
        with pytest.raises(GraphValidationError, match="monotone"):
            inp.pull()


class TestCornerBound:
    def make_inputs(self):
        a = MaterializedInput(pairs((0, 1, 5.0), (0, 2, 3.0)), name="A")
        b = MaterializedInput(pairs((1, 1, 4.0), (1, 2, 1.0)), name="B")
        return a, b

    def test_infinite_before_first_pull(self):
        a, b = self.make_inputs()
        assert corner_bound(SUM, [a, b]) == math.inf
        a.pull()
        assert corner_bound(SUM, [a, b]) == math.inf

    def test_sum_corner(self):
        a, b = self.make_inputs()
        a.pull()
        b.pull()  # firsts: 5, 4; lasts: 5, 4
        assert corner_bound(SUM, [a, b]) == pytest.approx(9.0)
        a.pull()  # last(A) = 3 -> corners: (3 + 4), (5 + 4)
        assert corner_bound(SUM, [a, b]) == pytest.approx(9.0)
        b.pull()  # last(B) = 1 -> corners: (3 + 4), (5 + 1)
        assert corner_bound(SUM, [a, b]) == pytest.approx(7.0)

    def test_min_corner(self):
        a, b = self.make_inputs()
        a.pull(), b.pull(), a.pull(), b.pull()
        # corners: min(3, 4) = 3 and min(5, 1) = 1
        assert corner_bound(MIN, [a, b]) == pytest.approx(3.0)

    def test_exhausted_input_excluded(self):
        a, b = self.make_inputs()
        for _ in range(3):
            a.pull()
        b.pull()
        assert a.exhausted
        # Only B's corner remains: sum(first_a, last_b) = 5 + 4.
        assert corner_bound(SUM, [a, b]) == pytest.approx(9.0)

    def test_all_exhausted_is_minus_infinity(self):
        a, b = self.make_inputs()
        for _ in range(3):
            a.pull(), b.pull()
        assert corner_bound(SUM, [a, b]) == -math.inf


class TestRoundRobin:
    def test_cycles_and_skips_exhausted(self):
        a = MaterializedInput(pairs((0, 1, 1.0)), name="A")
        b = MaterializedInput(pairs((1, 1, 1.0), (1, 2, 0.5)), name="B")
        puller = RoundRobinPuller(2)
        assert puller.next_input([a, b]) == 0
        assert puller.next_input([a, b]) == 1
        a.pull(), a.pull()  # exhaust A
        assert puller.next_input([a, b]) == 1
        b.pull(), b.pull(), b.pull()
        assert puller.next_input([a, b]) is None

    def test_requires_inputs(self):
        with pytest.raises(ValueError):
            RoundRobinPuller(0)


def brute_force_join(query, aggregate, lists, k):
    """Materialise everything and rank (the PBRJ oracle)."""
    answers = []
    # Enumerate assignments over vertices from the cartesian product of
    # per-vertex candidate values seen in the lists.
    values = [set() for _ in range(query.num_vertices)]
    for e, (i, j) in enumerate(query.edges):
        for p in lists[e]:
            values[i].add(p.left)
            values[j].add(p.right)
    tables = [
        {(p.left, p.right): p.score for p in lists[e]}
        for e in range(len(lists))
    ]
    for nodes in itertools.product(*[sorted(v) for v in values]):
        edge_scores = []
        ok = True
        for e, (i, j) in enumerate(query.edges):
            s = tables[e].get((nodes[i], nodes[j]))
            if s is None:
                ok = False
                break
            edge_scores.append(s)
        if ok:
            answers.append(
                CandidateAnswer(tuple(nodes), aggregate(edge_scores), tuple(edge_scores))
            )
    answers.sort(key=lambda a: (-a.score, a.nodes))
    return answers[:k]


def random_edge_list(rng, lefts, rights, density=0.8):
    result = []
    for l in lefts:
        for r in rights:
            if rng.random() < density:
                result.append(ScoredPair(l, r, float(rng.normal())))
    result.sort(key=lambda sp: (-sp.score, sp.left, sp.right))
    return result


class TestPBRJ:
    @pytest.mark.parametrize("aggregate", [SUM, MIN, MAX])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force_chain(self, aggregate, seed):
        rng = np.random.default_rng(seed)
        query = QueryGraph.chain(3)
        lists = [
            random_edge_list(rng, range(4), range(10, 14)),
            random_edge_list(rng, range(10, 14), range(20, 24)),
        ]
        expected = brute_force_join(query, aggregate, lists, 7)
        inputs = [MaterializedInput(l) for l in lists]
        got = PBRJ(query, aggregate, inputs, 7).run()
        assert [a.nodes for a in got] == [a.nodes for a in expected]
        assert np.allclose([a.score for a in got], [a.score for a in expected])

    @pytest.mark.parametrize("seed", [3, 4])
    def test_matches_brute_force_triangle(self, seed):
        rng = np.random.default_rng(seed)
        query = QueryGraph.triangle(bidirectional=False)
        lists = [
            random_edge_list(rng, range(4), range(10, 14)),
            random_edge_list(rng, range(10, 14), range(20, 24)),
            random_edge_list(rng, range(20, 24), range(4)),
        ]
        expected = brute_force_join(query, MIN, lists, 5)
        got = PBRJ(query, MIN, [MaterializedInput(l) for l in lists], 5).run()
        assert np.allclose([a.score for a in got], [a.score for a in expected])
        assert [a.nodes for a in got] == [a.nodes for a in expected]

    def test_matches_brute_force_star(self):
        rng = np.random.default_rng(9)
        query = QueryGraph.star(3, bidirectional=False)
        lists = [
            random_edge_list(rng, range(3), range(10 * (i + 1), 10 * (i + 1) + 3))
            for i in range(3)
        ]
        expected = brute_force_join(query, SUM, lists, 6)
        got = PBRJ(query, SUM, [MaterializedInput(l) for l in lists], 6).run()
        assert np.allclose([a.score for a in got], [a.score for a in expected])

    def test_early_termination_pulls_less_than_everything(self):
        rng = np.random.default_rng(5)
        query = QueryGraph.chain(2)  # single edge: join is the list itself
        big = random_edge_list(rng, range(30), range(100, 130), density=1.0)
        inp = MaterializedInput(big)
        result = PBRJ(query, SUM, [inp], 3).run()
        assert len(result) == 3
        assert inp.pulled < len(big)

    def test_k_zero(self):
        query = QueryGraph.chain(2)
        assert PBRJ(query, SUM, [MaterializedInput([])], 0).run() == []

    def test_k_larger_than_results(self):
        query = QueryGraph.chain(2)
        inp = MaterializedInput(pairs((0, 1, 1.0), (0, 2, 0.5)))
        result = PBRJ(query, SUM, [inp], 10).run()
        assert len(result) == 2

    def test_input_count_mismatch_rejected(self):
        query = QueryGraph.chain(3)
        with pytest.raises(GraphValidationError, match="inputs"):
            PBRJ(query, SUM, [MaterializedInput([])], 3)

    def test_stats_populated(self):
        rng = np.random.default_rng(6)
        query = QueryGraph.chain(3)
        lists = [
            random_edge_list(rng, range(3), range(10, 13)),
            random_edge_list(rng, range(10, 13), range(20, 23)),
        ]
        driver = PBRJ(query, MIN, [MaterializedInput(l) for l in lists], 4)
        driver.run()
        assert driver.stats.pulls > 0
        assert len(driver.stats.pulls_per_edge) == 2
