"""Unit tests for the five 2-way join algorithms.

Every algorithm must return the same top-k as brute force against the
*exact* DHT oracle (up to truncation at d, with deterministic
tie-breaking).
"""

import numpy as np
import pytest

from repro.core.dht import DHTParams
from repro.core.two_way.backward import (
    BackwardBasicJoin,
    BackwardIDJX,
    BackwardIDJY,
    back_walk,
)
from repro.core.two_way.base import (
    ScoredPair,
    make_context,
    sort_pairs,
    top_k_pairs,
)
from repro.core.two_way.forward import ForwardBasicJoin, ForwardIDJ
from repro.graph.validation import GraphValidationError

ALL_ALGORITHMS = [
    ForwardBasicJoin,
    ForwardIDJ,
    BackwardBasicJoin,
    BackwardIDJX,
    BackwardIDJY,
]


def reference_pairs(graph, left, right, params, d):
    """Brute-force scores via the dense walk reference."""
    from repro.walks.hitting import exact_first_hit_series

    pairs = []
    for q in right:
        series = exact_first_hit_series(graph, q, d)
        for p in left:
            if p == q:
                continue
            pairs.append(ScoredPair(p, q, params.score_from_series(series[:, p])))
    return sort_pairs(pairs)


class TestBaseHelpers:
    def test_sort_pairs_deterministic_ties(self):
        pairs = [ScoredPair(2, 0, 1.0), ScoredPair(1, 0, 1.0), ScoredPair(0, 0, 2.0)]
        ordered = sort_pairs(pairs)
        assert [p.left for p in ordered] == [0, 1, 2]

    def test_top_k_negative_rejected(self):
        with pytest.raises(GraphValidationError):
            top_k_pairs([], -1)

    def test_make_context_defaults(self, path4):
        ctx = make_context(path4, [0], [3])
        assert ctx.d == 8  # lambda=0.2, eps=1e-6
        assert ctx.params.alpha == pytest.approx(1.25)

    def test_make_context_epsilon(self, path4):
        ctx = make_context(path4, [0], [3], epsilon=1e-3)
        assert ctx.d == DHTParams.dht_lambda(0.2).steps_for_epsilon(1e-3)

    def test_make_context_rejects_both_d_and_epsilon(self, path4):
        with pytest.raises(GraphValidationError):
            make_context(path4, [0], [3], d=4, epsilon=1e-3)

    def test_empty_node_set_rejected(self, path4):
        with pytest.raises(GraphValidationError, match="empty"):
            make_context(path4, [], [3])

    def test_num_pairs_excludes_overlap(self, path4):
        ctx = make_context(path4, [0, 1], [1, 2], d=4)
        assert ctx.num_pairs == 3  # (1,1) excluded


@pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
class TestAlgorithmCorrectness:
    def test_matches_reference_on_random_graph(
        self, algorithm_cls, random_graph, params
    ):
        left, right = list(range(8)), list(range(25, 37))
        d = 8
        reference = reference_pairs(random_graph, left, right, params, d)
        ctx = make_context(random_graph, left, right, params=params, d=d)
        result = algorithm_cls(ctx).top_k(10)
        assert len(result) == 10
        assert np.allclose(
            [p.score for p in result], [p.score for p in reference[:10]]
        )

    def test_matches_reference_on_directed(
        self, algorithm_cls, random_digraph, params
    ):
        left, right = list(range(6)), list(range(15, 24))
        reference = reference_pairs(random_digraph, left, right, params, 6)
        ctx = make_context(random_digraph, left, right, params=params, d=6)
        result = algorithm_cls(ctx).top_k(8)
        assert np.allclose(
            [p.score for p in result], [p.score for p in reference[:8]]
        )

    def test_k_zero_returns_empty(self, algorithm_cls, path4, params):
        ctx = make_context(path4, [0, 1], [2, 3], params=params, d=4)
        assert algorithm_cls(ctx).top_k(0) == []

    def test_k_exceeding_pairs_returns_all(self, algorithm_cls, path4, params):
        ctx = make_context(path4, [0, 1], [2, 3], params=params, d=4)
        result = algorithm_cls(ctx).top_k(100)
        assert len(result) == 4

    def test_overlapping_sets_skip_reflexive(self, algorithm_cls, path4, params):
        ctx = make_context(path4, [0, 1, 2], [1, 2], params=params, d=4)
        result = algorithm_cls(ctx).top_k(100)
        assert all(p.left != p.right for p in result)
        assert len(result) == 4

    def test_results_sorted_descending(self, algorithm_cls, random_graph, params):
        ctx = make_context(
            random_graph, list(range(10)), list(range(20, 30)), params=params, d=8
        )
        result = algorithm_cls(ctx).top_k(20)
        scores = [p.score for p in result]
        assert scores == sorted(scores, reverse=True)

    def test_dht_e_variant(self, algorithm_cls, random_graph):
        params = DHTParams.dht_e()
        d = params.steps_for_epsilon(1e-6)
        left, right = list(range(5)), list(range(30, 38))
        reference = reference_pairs(random_graph, left, right, params, d)
        ctx = make_context(random_graph, left, right, params=params, d=d)
        result = algorithm_cls(ctx).top_k(6)
        assert np.allclose(
            [p.score for p in result], [p.score for p in reference[:6]]
        )


class TestBackWalk:
    def test_back_walk_scores(self, random_graph, params):
        ctx = make_context(random_graph, [0, 1], [9], params=params, d=8)
        scores = back_walk(ctx, 9, 8)
        series = ctx.engine.backward_first_hit_series(9, 8)
        assert np.allclose(scores, params.scores_from_matrix(series))

    def test_short_walk_lower_bounds_long_walk(self, random_graph, params):
        ctx = make_context(random_graph, [0], [9], params=params, d=8)
        short = back_walk(ctx, 9, 2)
        long = back_walk(ctx, 9, 8)
        assert np.all(short <= long + 1e-12)


class TestPruningBehaviour:
    def test_fidj_trace_records_levels(self, random_graph, params):
        ctx = make_context(
            random_graph, list(range(12)), list(range(25, 35)), params=params, d=8
        )
        algorithm = ForwardIDJ(ctx)
        algorithm.top_k(3)
        levels = [t["level"] for t in algorithm.pruning_trace]
        assert levels == [1, 2, 4]

    def test_bidj_trace_records_levels(self, random_graph, params):
        ctx = make_context(
            random_graph, list(range(12)), list(range(25, 35)), params=params, d=8
        )
        algorithm = BackwardIDJY(ctx)
        algorithm.top_k(3)
        levels = [t["level"] for t in algorithm.pruning_trace]
        assert levels == [1, 2, 4]
        for t in algorithm.pruning_trace:
            assert 0 <= t["pruned"] <= t["active_before"]

    def test_y_prunes_at_least_as_much_as_x(self, random_graph):
        # Lemma 5 consequence, the Fig. 10(b) effect.
        params = DHTParams.dht_lambda(0.7)
        left, right = list(range(10)), list(range(20, 40))
        d = 16
        ctx_x = make_context(random_graph, left, right, params=params, d=d)
        ctx_y = make_context(random_graph, left, right, params=params, d=d)
        algo_x, algo_y = BackwardIDJX(ctx_x), BackwardIDJY(ctx_y)
        result_x, result_y = algo_x.top_k(5), algo_y.top_k(5)
        assert np.allclose(
            [p.score for p in result_x], [p.score for p in result_y]
        )
        pruned_x = sum(t["pruned"] for t in algo_x.pruning_trace)
        pruned_y = sum(t["pruned"] for t in algo_y.pruning_trace)
        assert pruned_y >= pruned_x

    def test_observer_sees_every_walk(self, random_graph, params):
        calls = []

        class Recorder:
            def observe(self, q, level, scores, tail):
                calls.append((q, level, tail))

        ctx = make_context(
            random_graph, list(range(5)), list(range(20, 26)), params=params, d=8
        )
        BackwardIDJY(ctx, observer=Recorder()).top_k(3)
        assert calls
        # Final full-depth walks carry a zero tail.
        finals = [c for c in calls if c[1] == 8]
        assert finals and all(c[2] == 0.0 for c in finals)
