"""Planner-decision test harness.

Two invariant families (the tentpole's contract):

* **Plan equivalence** — the auto plan is *bit-identical* to every
  fixed-order plan's top-k.  Plans move cost (which walks are cached
  when), never answers, so any divergence is a planner bug, not a
  tuning regression.
* **Plan sanity** — on a skewed star the auto plan schedules the
  low-fanout in-edges (shared hub right set) first and contiguously;
  the cost model's pruning power is monotone under increasing skew.

Plus the seams: stats/cost units, JSON round-trips, validation errors,
the governed-execution interaction (mid-plan budget exhaustion stays
sound under every build order), and the CLI ``--explain`` path.
"""

import itertools
import json

import numpy as np
import pytest

from repro.api import explain_multi_way_plan, multi_way_join
from repro.bounds_cache import BoundPlanCache
from repro.core.bounds import YBound
from repro.core.nway.all_pairs import AllPairsJoin
from repro.core.nway.partial_join import PartialJoin
from repro.core.nway.partial_join_inc import PartialJoinIncremental
from repro.core.nway.query_graph import QueryGraph
from repro.core.nway.spec import NWayJoinSpec
from repro.exec.budget import PartialResult, QueryBudget
from repro.extensions.measures import TruncatedPPR
from repro.graph.builders import star_graph
from repro.graph.digraph import Graph
from repro.graph.io import write_edge_list
from repro.graph.validation import GraphValidationError
from repro.planner import (
    COST_MODEL_VERSION,
    CostModel,
    ExplainedPlan,
    GraphStats,
    PlannerFixture,
    choose_plan,
    plan_with_order,
)
from repro import cli

FIXTURE = PlannerFixture()


def _answer_key(answers):
    """Bit-identity fingerprint of a top-k answer list."""
    return [(a.nodes, a.score) for a in answers]


# A small, fast star: 4 edges -> 24 permutations is exhaustively
# checkable; node sets from a 400-node power-law graph.
def small_star_spec(**kwargs):
    return FIXTURE.skewed_star_spec(
        n=400, spokes=2, hub_size=16, leaf_size=32, k=8, **kwargs
    )


class TestGraphStats:
    def test_degree_moments_on_known_graph(self):
        graph = Graph(4, [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0),
                          (1, 2, 1.0)])
        stats = GraphStats(graph)
        assert stats.out_degrees.tolist() == [3, 1, 0, 0]
        assert stats.mean_out_degree == pytest.approx(1.0)
        assert stats.cv_out_degree > 1.0  # skewed
        assert stats.skewness_out > 0.0

    def test_heavy_hitters_on_star(self):
        stats = GraphStats(star_graph(20))
        # Undirected star: the centre's degree is 20, leaves 1.
        assert stats.heavy_count == 1
        assert stats.heavy_mask[0]
        sets = stats.node_set([0, 1, 2])
        assert sets.heavy_count == 1
        assert sets.hub_fraction == pytest.approx(1 / 3)
        assert sets.max_out_degree == 20

    def test_empty_node_set(self):
        stats = GraphStats(star_graph(5))
        empty = stats.node_set([])
        assert empty.size == 0 and empty.hub_fraction == 0.0

    def test_summary_is_json_safe(self):
        summary = GraphStats(FIXTURE.power_law_graph(200)).summary()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["heavy_count"] > 0  # power law has hubs


class TestCostModel:
    def setup_method(self):
        self.stats = GraphStats(FIXTURE.power_law_graph(400))
        self.model = CostModel(self.stats, d=6)

    def test_basic_is_depth_times_targets(self):
        left = self.stats.node_set(range(10))
        right = self.stats.node_set(range(10, 30))
        est = self.model.estimate("basic", left, right)
        assert est.steps == pytest.approx(6 * 20)

    def test_forward_pays_per_pair(self):
        left = self.stats.node_set(range(10))
        right = self.stats.node_set(range(10, 30))
        f_bj = self.model.estimate("f-bj", left, right)
        b_bj = self.model.estimate("basic", left, right)
        assert f_bj.steps == pytest.approx(6 * 10 * 20)
        assert f_bj.steps > b_bj.steps

    def test_idj_cheaper_than_basic_for_skewed_left(self):
        hubs = FIXTURE.degree_order(self.stats.graph)[:16]
        left = self.stats.node_set(hubs)
        right = self.stats.node_set(range(100, 164))
        idj = self.model.estimate("idj-y", left, right)
        basic = self.model.estimate("basic", left, right)
        assert idj.steps < basic.steps
        assert 0.0 < idj.survivor_fraction < 1.0

    def test_pruning_power_monotone_in_skew(self):
        """Cost monotonicity under increasing skew: more hubs in the
        left set -> more pruning -> cheaper deepening."""
        order = FIXTURE.degree_order(self.stats.graph)
        right = self.stats.node_set(range(100, 164))
        rhos, costs = [], []
        for hub_count in (0, 4, 8, 16):
            members = order[:hub_count] + order[200:200 + (16 - hub_count)]
            left = self.stats.node_set(members)
            rhos.append(self.model.pruning_power(left))
            costs.append(self.model.estimate("idj-y", left, right).steps)
        assert rhos == sorted(rhos)
        assert costs == sorted(costs, reverse=True)
        assert rhos[-1] > rhos[0]

    def test_measured_tail_ratio_only_sharpens(self):
        left = self.stats.node_set(range(16))
        base = self.model.pruning_power(left)
        assert self.model.pruning_power(left, tail_ratio=0.01) >= base
        assert self.model.pruning_power(left, tail_ratio=0.99) == base

    def test_cached_y_bound_drops_build_cost(self):
        left = self.stats.node_set(range(16))
        right = self.stats.node_set(range(20, 40))
        cold = self.model.estimate("idj-y", left, right)
        warm = self.model.estimate("idj-y", left, right, y_bound_cached=True)
        assert cold.bound_steps == 6 and warm.bound_steps == 0
        assert warm.steps == pytest.approx(cold.steps - 6)

    def test_resident_overlap_earns_credit(self):
        left = self.stats.node_set(range(16))
        right = self.stats.node_set(range(20, 40))
        none = self.model.estimate("basic", left, right)
        some = self.model.estimate("basic", left, right, resident_overlap=10)
        assert some.credit > 0 and some.steps < none.steps
        assert some.credit <= some.walk_steps  # never negative steps

    def test_feedback_scales_credit(self):
        class Stats:
            propagation_steps = 100
            steps_saved = 300  # resumed 75% of walk work

        warm = CostModel(self.stats, d=6, feedback=Stats())
        assert warm.credit_scale == pytest.approx(0.5 + 0.5 * 0.75)
        cold = CostModel(self.stats, d=6)
        assert cold.credit_scale == pytest.approx(0.75)

    def test_unknown_kind_rejected(self):
        left = self.stats.node_set(range(4))
        with pytest.raises(ValueError, match="unknown operator kind"):
            self.model.estimate("nope", left, left)


class TestPlanSanity:
    def test_skewed_star_schedules_low_fanout_edges_first(self):
        spec = FIXTURE.skewed_star_spec()
        plan = choose_plan(spec, "pj")
        # Star edges alternate out/in: (0,1),(1,0),(0,2),(2,0),...
        # In-edges (odd indices) have the low-fanout leaf left sets and
        # the shared hub right set — they must all build first.
        in_edges = {1, 3, 5}
        assert set(plan.build_order[:3]) == in_edges
        assert plan.mode == "auto" and plan.strategy == "pj"

    def test_shared_right_set_edges_are_contiguous(self):
        spec = FIXTURE.skewed_star_spec()
        plan = choose_plan(spec, "pj")
        positions = {e: i for i, e in enumerate(plan.build_order)}
        in_positions = sorted(positions[e] for e in (1, 3, 5))
        assert in_positions == list(
            range(in_positions[0], in_positions[0] + 3)
        )

    def test_auto_differs_from_fixed_on_skewed_star(self):
        spec = FIXTURE.skewed_star_spec()
        auto = choose_plan(spec, "pj")
        fixed = choose_plan(spec, "pj", mode="fixed")
        assert fixed.build_order == tuple(range(6))
        assert auto.build_order != fixed.build_order

    def test_auto_estimate_never_worse_than_fixed(self):
        for build in (FIXTURE.skewed_star_spec, FIXTURE.chain_spec,
                      FIXTURE.uniform_er_spec):
            spec = build()
            auto = choose_plan(spec, "pj")
            fixed = choose_plan(
                spec, "pj", mode="fixed", default_operator="b-idj-y"
            )
            assert auto.total_estimated_steps <= fixed.total_estimated_steps

    def test_pji_plans_order_only(self):
        spec = FIXTURE.skewed_star_spec()
        plan = choose_plan(spec, "pj-i")
        assert set(plan.operators) == {"b-idj-y"}
        assert set(plan.build_order[:3]) == {1, 3, 5}

    def test_explain_format_mentions_decisions(self):
        plan = choose_plan(FIXTURE.skewed_star_spec(), "pj")
        text = plan.format()
        assert "plan[auto]" in text
        assert f"cost-model=v{COST_MODEL_VERSION}" in text
        for e in range(6):
            assert f"edge {e} " in text


class TestPlanSerialization:
    def test_json_round_trip_preserves_decisions(self):
        plan = choose_plan(FIXTURE.skewed_star_spec(), "pj")
        restored = ExplainedPlan.from_json(
            json.loads(json.dumps(plan.to_json()))
        )
        assert restored.decisions() == plan.decisions()
        assert restored.build_order == plan.build_order
        assert restored.operators == plan.operators

    def test_replayed_plan_validates_edge_count(self):
        star = FIXTURE.skewed_star_spec()
        chain = FIXTURE.chain_spec()
        plan = choose_plan(star, "pj")
        with pytest.raises(GraphValidationError, match="edges"):
            PartialJoin(chain, plan=plan).run()

    def test_replayed_plan_validates_strategy(self):
        spec = FIXTURE.skewed_star_spec()
        ap_plan = choose_plan(spec, "ap")
        with pytest.raises(GraphValidationError, match="strategy"):
            PartialJoin(FIXTURE.skewed_star_spec(), plan=ap_plan).run()

    def test_pj_and_pji_plans_interchange(self):
        spec = FIXTURE.skewed_star_spec()
        pj_plan = choose_plan(spec, "pj", default_operator="b-idj-y")
        # PJ-i accepts a PJ plan (same per-edge stream structure).
        answers = PartialJoinIncremental(
            FIXTURE.skewed_star_spec(), m=40, plan=pj_plan
        ).run()
        assert answers

    def test_bad_plan_values_rejected(self):
        with pytest.raises(GraphValidationError, match="plan"):
            small_star_spec(plan="fastest")
        with pytest.raises(GraphValidationError, match="plan"):
            small_star_spec(plan=42)
        spec = small_star_spec()
        with pytest.raises(GraphValidationError, match="not a permutation"):
            plan_with_order(spec, "pj", [0, 0, 1, 2])

    def test_nl_has_nothing_to_plan(self):
        spec = small_star_spec()
        with pytest.raises(GraphValidationError, match="NL"):
            choose_plan(spec, "nl")
        with pytest.raises(GraphValidationError, match="NL"):
            multi_way_join(
                spec.graph, spec.query_graph, spec.node_sets, 4,
                algorithm="nl", plan="auto", d=spec.d,
            )


class TestPlanEquivalence:
    """Auto must be bit-identical to every fixed-order plan's top-k."""

    def test_auto_matches_all_24_fixed_orders(self):
        auto_spec = small_star_spec()
        auto = _answer_key(PartialJoin(auto_spec, m=100, plan="auto").run())
        assert auto  # non-degenerate fixture
        for order in FIXTURE.all_build_orders(auto_spec, limit=24):
            spec = small_star_spec()
            plan = plan_with_order(
                spec, "pj", order, default_operator="b-idj-y"
            )
            got = _answer_key(PartialJoin(spec, m=100, plan=plan).run())
            assert got == auto, f"order {order} diverged"

    def test_auto_matches_fixed_across_strategies(self):
        for cls, kwargs in (
            (AllPairsJoin, {}),
            (PartialJoin, {"m": 100}),
            (PartialJoinIncremental, {"m": 100}),
        ):
            auto = _answer_key(
                cls(small_star_spec(), plan="auto", **kwargs).run()
            )
            fixed = _answer_key(
                cls(small_star_spec(), plan="fixed", **kwargs).run()
            )
            assert auto == fixed, cls.__name__

    def test_spec_level_plan_flows_through_api(self):
        spec = small_star_spec()
        kwargs = dict(algorithm="pj", m=100, d=spec.d)
        auto = multi_way_join(
            spec.graph, spec.query_graph, spec.node_sets, spec.k,
            plan="auto", **kwargs,
        )
        fixed = multi_way_join(
            spec.graph, spec.query_graph, spec.node_sets, spec.k,
            plan="fixed", **kwargs,
        )
        assert _answer_key(auto) == _answer_key(fixed)

    def test_auto_wins_steps_on_pressured_star(self):
        """The acceptance bar: auto >= 1.2x cheaper than the worst
        fixed order in propagation steps, identical answers."""
        def run(plan_value):
            spec = FIXTURE.skewed_star_spec()
            spec.engine.stats.reset()
            answers = PartialJoin(spec, m=200, plan=plan_value).run()
            return spec.engine.stats.propagation_steps, _answer_key(answers)

        worst_plan = plan_with_order(
            FIXTURE.skewed_star_spec(), "pj",
            FIXTURE.worst_interleaved_order(FIXTURE.skewed_star_spec()),
            default_operator="b-idj-y",
        )
        auto_steps, auto_answers = run("auto")
        worst_steps, worst_answers = run(worst_plan)
        assert auto_answers == worst_answers
        assert worst_steps / auto_steps >= 1.2


class TestCachePeek:
    def test_peek_is_pure(self):
        spec = small_star_spec()
        cache = spec.bound_cache
        left = spec.node_sets[0]
        assert cache.peek_y_bound(left, spec.d) is None
        assert cache.stats.y_hits == 0 and cache.stats.y_builds == 0
        built = cache.y_bound(
            left, spec.d,
            lambda: YBound(spec.engine, spec.params, left, spec.d),
        )
        hits_after_build = cache.stats.y_hits
        peeked = cache.peek_y_bound(left, spec.d)
        assert peeked is built
        assert cache.stats.y_hits == hits_after_build  # no accounting

    def test_planner_uses_memoised_tail(self):
        spec = FIXTURE.skewed_star_spec()
        spec.bound_cache.y_bound(
            spec.node_sets[0], spec.d,
            lambda: YBound(spec.engine, spec.params, spec.node_sets[0], spec.d),
        )
        plan = choose_plan(spec, "pj")
        reasons = " ".join(
            " ".join(plan.edges[e].reasons) for e in range(6)
        )
        assert "measured tail ratio" in reasons


class TestGovernedInteraction:
    """Planner x QueryBudget: partials stay flagged and sound under
    every build order."""

    def _truth(self):
        spec = small_star_spec()
        return {
            a.nodes: a.score
            for a in PartialJoin(spec, m=100, plan="fixed").run()
        }

    @pytest.mark.parametrize("plan_value", ["auto", "fixed", "worst"])
    def test_midplan_exhaustion_sound_intervals(self, plan_value):
        if plan_value == "worst":
            plan_value = plan_with_order(
                small_star_spec(), "pj",
                FIXTURE.worst_interleaved_order(small_star_spec()),
                default_operator="b-idj-y",
            )
        truth = self._truth()
        spec = small_star_spec()
        # Tight enough to stop mid-plan (after some edges built),
        # loose enough to materialise at least one edge prefix.
        partial = multi_way_join(
            spec.graph, spec.query_graph, spec.node_sets, spec.k,
            algorithm="pj", m=100, d=spec.d, plan=plan_value,
            walk_cache_bytes=spec.walk_cache.max_bytes,
            budget=QueryBudget(step_budget=260),
        )
        assert isinstance(partial, PartialResult)
        assert not partial.exact and partial.reason is not None
        assert spec.query_graph.num_edges == 4
        for answer, (lower, upper) in zip(partial.results, partial.bounds):
            assert lower <= upper + 1e-12
            if answer.nodes in truth:
                assert lower - 1e-9 <= truth[answer.nodes] <= upper + 1e-9

    def test_generous_budget_exact_with_auto_plan(self):
        truth = self._truth()
        spec = small_star_spec()
        result = multi_way_join(
            spec.graph, spec.query_graph, spec.node_sets, spec.k,
            algorithm="pj", m=100, d=spec.d, plan="auto",
            budget=QueryBudget(step_budget=10**9),
        )
        assert result.exact
        assert {a.nodes: a.score for a in result.results} == truth


class TestExplainAPI:
    def test_explained_plan_replays_identically(self):
        spec = small_star_spec()
        kwargs = dict(algorithm="pj", m=100, d=spec.d)
        plan = explain_multi_way_plan(
            spec.graph, spec.query_graph, spec.node_sets, spec.k, **kwargs
        )
        assert isinstance(plan, ExplainedPlan) and plan.mode == "auto"
        replayed = multi_way_join(
            spec.graph, spec.query_graph, spec.node_sets, spec.k,
            plan=plan, **kwargs,
        )
        auto = multi_way_join(
            spec.graph, spec.query_graph, spec.node_sets, spec.k,
            plan="auto", **kwargs,
        )
        assert _answer_key(replayed) == _answer_key(auto)

    def test_explain_measure_path(self):
        spec = small_star_spec()
        plan = explain_multi_way_plan(
            spec.graph, spec.query_graph, spec.node_sets, spec.k,
            algorithm="pj", measure=TruncatedPPR(damping=0.85, epsilon=1e-3),
        )
        assert plan.strategy == "pj"
        assert set(plan.operators) <= {"idj", "basic"}
        assert plan.signals["measure"].startswith("PPR")

    def test_explain_rejects_nl(self):
        spec = small_star_spec()
        with pytest.raises(GraphValidationError, match="NL"):
            explain_multi_way_plan(
                spec.graph, spec.query_graph, spec.node_sets, spec.k,
                algorithm="nl",
            )


class TestCLIExplain:
    @pytest.fixture()
    def cli_files(self, tmp_path):
        graph = FIXTURE.power_law_graph(400)
        hubs, leaves = FIXTURE.hub_and_leaf_sets(graph, 16, 32, 2)
        graph_path = tmp_path / "graph.tsv"
        sets_path = tmp_path / "sets.json"
        write_edge_list(graph, str(graph_path))
        sets_path.write_text(
            json.dumps({"C": hubs, "A": leaves[0], "B": leaves[1]})
        )
        return str(graph_path), str(sets_path)

    def _common(self, graph_path, sets_path):
        return [
            "multi-way", graph_path, "--sets", sets_path,
            "--shape", "star", "--bidirectional",
            "--node-sets", "C", "A", "B",
            "-k", "5", "--algorithm", "pj", "-m", "50",
        ]

    def test_explain_text_output(self, cli_files, capsys):
        code = cli.main(
            self._common(*cli_files) + ["--plan", "auto", "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        plan_lines = [l for l in out.splitlines() if l.startswith("# ")]
        assert any("plan[auto]" in l for l in plan_lines)
        assert any("op=" in l for l in plan_lines)

    def test_explain_json_matches_fixed(self, cli_files, capsys):
        code = cli.main(
            self._common(*cli_files)
            + ["--plan", "auto", "--explain", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["mode"] == "auto"
        assert sorted(payload["plan"]["build_order"]) == [0, 1, 2, 3]
        code = cli.main(self._common(*cli_files) + ["--json"])
        assert code == 0
        fixed_rows = json.loads(capsys.readouterr().out)
        assert payload["results"] == fixed_rows
