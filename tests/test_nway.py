"""Unit and equivalence tests for the four n-way join algorithms.

The central invariant (Section VII-B: "all our n-way join algorithms
produce the same answer"): NL, AP, PJ, and PJ-i must agree on every
instance, for every query shape and monotone aggregate.
"""

import numpy as np
import pytest

from repro.core.nway.aggregates import MIN, SUM
from repro.core.nway.all_pairs import AllPairsJoin
from repro.core.nway.nested_loop import NestedLoopJoin
from repro.core.nway.partial_join import PartialJoin
from repro.core.nway.partial_join_inc import PartialJoinIncremental
from repro.core.nway.query_graph import QueryGraph
from repro.core.nway.spec import NWayJoinSpec
from repro.graph.builders import erdos_renyi
from repro.graph.validation import GraphValidationError


def make_spec(graph, query, sets, k, aggregate=MIN, d=6):
    return NWayJoinSpec(
        graph=graph,
        query_graph=query,
        node_sets=[list(s) for s in sets],
        k=k,
        aggregate=aggregate,
        d=d,
    )


@pytest.fixture
def graph():
    return erdos_renyi(35, 0.14, np.random.default_rng(3), weighted=True)


class TestSpecValidation:
    def test_set_count_mismatch(self, graph):
        with pytest.raises(GraphValidationError, match="node sets"):
            make_spec(graph, QueryGraph.chain(3), [[0], [1]], k=1)

    def test_negative_k(self, graph):
        with pytest.raises(GraphValidationError, match="k"):
            make_spec(graph, QueryGraph.chain(2), [[0], [1]], k=-1)

    def test_d_and_epsilon_exclusive(self, graph):
        with pytest.raises(GraphValidationError):
            NWayJoinSpec(
                graph=graph,
                query_graph=QueryGraph.chain(2),
                node_sets=[[0], [1]],
                k=1,
                d=4,
                epsilon=1e-3,
            )

    def test_default_configuration(self, graph):
        spec = NWayJoinSpec(
            graph=graph, query_graph=QueryGraph.chain(2),
            node_sets=[[0], [1]], k=1,
        )
        assert spec.d == 8
        assert spec.params.decay == 0.2

    def test_edge_node_sets(self, graph):
        spec = make_spec(graph, QueryGraph.chain(3), [[0], [1], [2]], k=1)
        left, right = spec.edge_node_sets(1)
        assert (left, right) == ([1], [2])


class TestNestedLoop:
    def test_reflexive_tuples_skipped(self, graph):
        # Overlapping sets: tuples pairing a node with itself are invalid.
        spec = make_spec(graph, QueryGraph.chain(2), [[0, 1], [1, 2]], k=10)
        answers = NestedLoopJoin(spec).run()
        assert all(a.nodes[0] != a.nodes[1] for a in answers)
        assert len(answers) == 3

    def test_memoized_equals_plain(self, graph):
        spec1 = make_spec(graph, QueryGraph.chain(3), [[0, 1], [5, 6], [9, 10]], k=5)
        spec2 = make_spec(graph, QueryGraph.chain(3), [[0, 1], [5, 6], [9, 10]], k=5)
        plain = NestedLoopJoin(spec1).run()
        memo = NestedLoopJoin(spec2, memoize_pairs=True).run()
        assert [a.nodes for a in plain] == [a.nodes for a in memo]
        assert np.allclose([a.score for a in plain], [a.score for a in memo])

    def test_k_zero(self, graph):
        spec = make_spec(graph, QueryGraph.chain(2), [[0], [1]], k=0)
        assert NestedLoopJoin(spec).run() == []

    def test_instrumentation(self, graph):
        spec = make_spec(graph, QueryGraph.chain(2), [[0, 1], [5, 6]], k=2)
        join = NestedLoopJoin(spec)
        join.run()
        assert join.tuples_scored == 4
        assert join.dht_computations == 4

    def test_scores_are_truncated_dht(self, graph, params):
        from repro.core.two_way.base import make_context
        from repro.core.two_way.backward import back_walk

        spec = make_spec(graph, QueryGraph.chain(2), [[0], [7]], k=1)
        answer = NestedLoopJoin(spec).run()[0]
        ctx = make_context(graph, [0], [7], params=spec.params, d=spec.d)
        assert answer.score == pytest.approx(float(back_walk(ctx, 7, spec.d)[0]))


QUERY_CASES = [
    ("chain-2", QueryGraph.chain(2), 2),
    ("chain-3", QueryGraph.chain(3), 3),
    ("cycle-3", QueryGraph.cycle(3), 3),
    ("triangle-bidir", QueryGraph.triangle(), 3),
    ("star-3", QueryGraph.star(3, bidirectional=False), 4),
    ("chain-4", QueryGraph.chain(4), 4),
]


class TestAlgorithmEquivalence:
    @pytest.mark.parametrize("name,query,nsets", QUERY_CASES)
    @pytest.mark.parametrize("aggregate", [MIN, SUM])
    def test_all_four_agree(self, graph, name, query, nsets, aggregate):
        rng = np.random.default_rng(hash(name) % 2**32)
        universe = list(range(graph.num_nodes))
        sets = [
            sorted(rng.choice(universe, size=4, replace=False).tolist())
            for _ in range(nsets)
        ]
        k = 6
        reference = NestedLoopJoin(
            make_spec(graph, query, sets, k, aggregate)
        ).run()
        for make_join in (
            lambda s: AllPairsJoin(s),
            lambda s: AllPairsJoin(s, two_way="b-bj"),
            lambda s: PartialJoin(s, m=3),
            lambda s: PartialJoinIncremental(s, m=3),
        ):
            got = make_join(make_spec(graph, query, sets, k, aggregate)).run()
            assert len(got) == len(reference), name
            assert np.allclose(
                [a.score for a in got], [a.score for a in reference]
            ), name

    @pytest.mark.parametrize("m", [0, 1, 2, 10, 100])
    def test_pj_variants_insensitive_to_m(self, graph, m):
        sets = [[0, 1, 2], [8, 9, 10], [20, 21, 22]]
        query = QueryGraph.chain(3)
        reference = NestedLoopJoin(make_spec(graph, query, sets, 5)).run()
        pj = PartialJoin(make_spec(graph, query, sets, 5), m=m).run()
        pji = PartialJoinIncremental(make_spec(graph, query, sets, 5), m=m).run()
        assert np.allclose([a.score for a in pj], [a.score for a in reference])
        assert np.allclose([a.score for a in pji], [a.score for a in reference])

    @pytest.mark.parametrize("k", [1, 3, 9, 50])
    def test_varying_k(self, graph, k):
        sets = [[0, 1, 2, 3], [10, 11, 12, 13], [25, 26, 27, 28]]
        query = QueryGraph.chain(3)
        reference = NestedLoopJoin(make_spec(graph, query, sets, k)).run()
        got = PartialJoinIncremental(make_spec(graph, query, sets, k), m=2).run()
        assert len(got) == len(reference)
        assert np.allclose([a.score for a in got], [a.score for a in reference])

    def test_pji_x_bound_flavour(self, graph):
        sets = [[0, 1, 2], [8, 9, 10]]
        query = QueryGraph.chain(2)
        reference = NestedLoopJoin(make_spec(graph, query, sets, 4)).run()
        got = PartialJoinIncremental(
            make_spec(graph, query, sets, 4), m=2, bound="x"
        ).run()
        assert np.allclose([a.score for a in got], [a.score for a in reference])

    def test_answers_expose_edge_scores(self, graph):
        sets = [[0, 1], [8, 9], [20, 21]]
        spec = make_spec(graph, QueryGraph.chain(3), sets, 3, SUM)
        for answer in PartialJoinIncremental(spec, m=2).run():
            assert len(answer.edge_scores) == 2
            assert answer.score == pytest.approx(sum(answer.edge_scores))


class TestErrorHandling:
    def test_unknown_two_way_algorithm(self, graph):
        spec = make_spec(graph, QueryGraph.chain(2), [[0], [1]], k=1)
        with pytest.raises(GraphValidationError, match="unknown 2-way"):
            PartialJoin(spec, two_way="nope")

    def test_unknown_bound(self, graph):
        spec = make_spec(graph, QueryGraph.chain(2), [[0], [1]], k=1)
        with pytest.raises(GraphValidationError, match="unknown bound"):
            PartialJoinIncremental(spec, bound="z")

    def test_unknown_ap_materializer(self, graph):
        spec = make_spec(graph, QueryGraph.chain(2), [[0], [1]], k=1)
        with pytest.raises(GraphValidationError, match="materializer"):
            AllPairsJoin(spec, two_way="b-idj-y")

    def test_negative_m(self, graph):
        spec = make_spec(graph, QueryGraph.chain(2), [[0], [1]], k=1)
        with pytest.raises(GraphValidationError):
            PartialJoin(spec, m=-1)
        with pytest.raises(GraphValidationError):
            PartialJoinIncremental(spec, m=-1)

    def test_k_zero_everywhere(self, graph):
        for make_join in (
            lambda s: NestedLoopJoin(s),
            lambda s: AllPairsJoin(s),
            lambda s: PartialJoin(s),
            lambda s: PartialJoinIncremental(s),
        ):
            spec = make_spec(graph, QueryGraph.chain(2), [[0], [1]], k=0)
            assert make_join(spec).run() == []
