"""Golden planner decisions: cost-model edits must be deliberate.

Each golden file pins the planner's *decisions* — build order, per-edge
operators, block knobs, and the cost-model version — for one fixture
(skewed star / chain / uniform ER).  A cost-model change that flips any
decision fails here until the goldens are regenerated on purpose:

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/test_planner_goldens.py

Bump :data:`repro.planner.cost.COST_MODEL_VERSION` in the same change —
the version is part of every golden, so a formula edit that happens to
leave these three fixtures' decisions intact still shows up in review.
"""

import json
import os
from pathlib import Path

import pytest

from repro.extensions.measures import TruncatedPPR
from repro.planner import PlannerFixture, choose_plan

GOLDEN_DIR = Path(__file__).parent / "goldens" / "planner"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDENS") == "1"

FIXTURE = PlannerFixture()

# (golden name, spec builder, strategy) — chain runs under PPR so the
# goldens cover the measure-generic operator table too.
CASES = [
    ("skewed_star", lambda: FIXTURE.skewed_star_spec(), "pj"),
    (
        "chain",
        lambda: FIXTURE.chain_spec(
            measure=TruncatedPPR(damping=0.85, epsilon=1e-4)
        ),
        "pj",
    ),
    ("uniform_er", lambda: FIXTURE.uniform_er_spec(), "pj"),
]


def _decisions(builder, strategy):
    spec = builder()
    payload = {"fixture": None, "strategy": strategy}
    for mode in ("fixed", "auto"):
        plan = choose_plan(spec, strategy, mode=mode)
        payload[mode] = plan.decisions()
    return payload


@pytest.mark.parametrize("name,builder,strategy", CASES)
def test_planner_decisions_match_golden(name, builder, strategy):
    golden_path = GOLDEN_DIR / f"{name}.json"
    payload = _decisions(builder, strategy)
    payload["fixture"] = name
    if UPDATE:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(json.dumps(payload, indent=2) + "\n")
        return
    assert golden_path.exists(), (
        f"missing golden {golden_path}; generate with REPRO_UPDATE_GOLDENS=1"
    )
    golden = json.loads(golden_path.read_text())
    assert payload == golden, (
        f"planner decisions for {name!r} diverged from the golden. If the "
        "cost-model change is intentional, bump COST_MODEL_VERSION and rerun "
        "with REPRO_UPDATE_GOLDENS=1."
    )


def test_goldens_pin_current_cost_model_version():
    from repro.planner import COST_MODEL_VERSION

    for name, _, _ in CASES:
        golden_path = GOLDEN_DIR / f"{name}.json"
        if UPDATE and not golden_path.exists():
            pytest.skip("goldens being regenerated")
        golden = json.loads(golden_path.read_text())
        for mode in ("fixed", "auto"):
            assert golden[mode]["cost_model_version"] == COST_MODEL_VERSION


def test_skewed_star_golden_groups_in_edges():
    """The golden itself documents the headline decision: the star's
    low-fanout in-edges build first under auto."""
    golden = json.loads((GOLDEN_DIR / "skewed_star.json").read_text())
    assert set(golden["auto"]["build_order"][:3]) == {1, 3, 5}
    assert golden["fixed"]["build_order"] == [0, 1, 2, 3, 4, 5]
