"""Tests for the shared bound/plan cache and bounded-memory ``B-IDJ``.

Covers the ISSUE-2 equivalence requirements: cached vs. fresh
``YBound.tail`` values identical across shared query edges, restricted
tail plans reused across ``B-BJ`` re-materialisations, and ``B-IDJ``'s
chunked rounds producing identical top-k output and pruning traces vs.
the unchunked path and the seed ``top_k_reference`` oracle.
"""

import numpy as np
import pytest

from repro.bounds_cache import BoundPlanCache
from repro.core.bounds import YBound
from repro.core.dht import DHTParams
from repro.core.nway.partial_join import PartialJoin
from repro.core.nway.partial_join_inc import PartialJoinIncremental
from repro.core.nway.query_graph import QueryGraph
from repro.core.nway.spec import NWayJoinSpec
from repro.core.two_way.backward import (
    BackwardBasicJoin,
    BackwardIDJX,
    BackwardIDJY,
    y_bound_factory,
)
from repro.core.two_way.base import make_context
from repro.graph.builders import erdos_renyi, preferential_attachment
from repro.graph.validation import GraphValidationError
from repro.walks.cache import WalkCache
from repro.walks.engine import WalkEngine
from repro.walks.state import WalkState


@pytest.fixture
def engine(random_graph):
    return WalkEngine(random_graph)


@pytest.fixture
def cache(engine, params):
    return BoundPlanCache(engine, params)


class TestBoundPlanCache:
    def test_y_bound_built_once(self, cache, engine, params):
        first = cache.y_bound(
            [1, 2, 3], 4, lambda: YBound(engine, params, [1, 2, 3], 4)
        )
        second = cache.y_bound(
            [1, 2, 3], 4, lambda: YBound(engine, params, [1, 2, 3], 4)
        )
        assert first is second
        assert cache.stats.y_builds == 1 and cache.stats.y_hits == 1
        assert engine.stats.bound_builds == 1
        assert engine.stats.bound_cache_hits == 1

    def test_key_is_order_and_duplicate_insensitive(self, cache, engine, params):
        first = cache.y_bound(
            [3, 1, 2], 4, lambda: YBound(engine, params, [3, 1, 2], 4)
        )
        second = cache.y_bound(
            [2, 3, 1, 1], 4, lambda: YBound(engine, params, [2, 3, 1], 4)
        )
        assert first is second

    def test_distinct_sources_or_depth_build_separately(self, cache, engine, params):
        a = cache.y_bound([1, 2], 4, lambda: YBound(engine, params, [1, 2], 4))
        b = cache.y_bound([1, 3], 4, lambda: YBound(engine, params, [1, 3], 4))
        c = cache.y_bound([1, 2], 6, lambda: YBound(engine, params, [1, 2], 6))
        assert a is not b and a is not c
        assert cache.stats.y_builds == 3

    def test_cached_tails_match_fresh_bound(self, cache, engine, params):
        sources = [0, 4, 7]
        cached = cache.y_bound(
            sources, 5, lambda: YBound(engine, params, sources, 5)
        )
        fresh = YBound(engine, params, sources, 5)
        for l in range(6):
            for q in range(engine.num_nodes):
                assert cached.tail(l, q) == fresh.tail(l, q)

    def test_lru_eviction(self, engine, params):
        cache = BoundPlanCache(engine, params, max_entries=2)
        for source in (1, 2, 3):
            cache.y_bound(
                [source], 3, lambda s=source: YBound(engine, params, [s], 3)
            )
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The evicted entry rebuilds.
        cache.y_bound([1], 3, lambda: YBound(engine, params, [1], 3))
        assert cache.stats.y_builds == 4

    def test_max_entries_validated(self, engine, params):
        with pytest.raises(GraphValidationError):
            BoundPlanCache(engine, params, max_entries=0)


class TestContextIntegration:
    def test_context_gets_private_cache(self, random_graph):
        context = make_context(random_graph, [0, 1], [2, 3], d=4)
        assert isinstance(context.bound_cache, BoundPlanCache)
        assert context.bound_cache.engine is context.engine

    def test_mismatched_cache_rejected(self, random_graph, params):
        other_engine = WalkEngine(random_graph)
        bad_engine = BoundPlanCache(other_engine, params)
        with pytest.raises(GraphValidationError):
            make_context(random_graph, [0], [1], d=4, bound_cache=bad_engine)
        engine = WalkEngine(random_graph)
        bad_params = BoundPlanCache(engine, DHTParams.dht_e())
        with pytest.raises(GraphValidationError):
            make_context(
                random_graph, [0], [1], d=4, engine=engine, bound_cache=bad_params
            )

    def test_max_block_bytes_validated(self, random_graph):
        with pytest.raises(GraphValidationError):
            make_context(random_graph, [0], [1], d=4, max_block_bytes=0)

    def test_y_bound_shared_across_edges(self, random_graph, params):
        """Two contexts with the same left set share one YBound build."""
        engine = WalkEngine(random_graph)
        shared = BoundPlanCache(engine, params)
        left = [0, 1, 2]
        ctx_a = make_context(
            random_graph, left, [5, 6], params=params, d=4,
            engine=engine, bound_cache=shared,
        )
        ctx_b = make_context(
            random_graph, left, [8, 9], params=params, d=4,
            engine=engine, bound_cache=shared,
        )
        assert y_bound_factory(ctx_a) is y_bound_factory(ctx_b)
        assert engine.stats.bound_builds == 1

    def test_restart_reuses_private_cache(self, random_graph):
        """PJ-style restarts on one context build the Y bound once."""
        context = make_context(random_graph, [0, 1, 2], [4, 5, 6, 7], d=4)
        BackwardIDJY(context).top_k(3)
        builds = context.engine.stats.bound_builds
        BackwardIDJY(context).top_k(4)
        assert context.engine.stats.bound_builds == builds == 1
        assert context.engine.stats.bound_cache_hits >= 1

    def test_tail_plan_reused_across_materialisations(self, random_graph):
        context = make_context(random_graph, list(range(6)), list(range(20, 36)), d=4)
        BackwardBasicJoin(context, block_size=4).all_pairs()
        assert context.engine.stats.plan_builds == 1
        BackwardBasicJoin(context, block_size=4).all_pairs()
        assert context.engine.stats.plan_builds == 1
        assert context.engine.stats.plan_cache_hits >= 1


class TestNWaySharing:
    def _star_spec(self, share_bounds: bool):
        graph = preferential_attachment(400, 3, np.random.default_rng(6))
        rng = np.random.default_rng(2)
        nodes = rng.permutation(400)
        sets = [sorted(int(u) for u in nodes[i * 20 : (i + 1) * 20]) for i in range(4)]
        return NWayJoinSpec(
            graph=graph,
            query_graph=QueryGraph.star(3, bidirectional=False),
            node_sets=[list(s) for s in sets],
            k=8,
            d=6,
            share_bounds=share_bounds,
        )

    def test_star_pj_builds_once_with_identical_answers(self):
        shared = self._star_spec(True)
        shared.engine.stats.reset()
        shared_answers = PartialJoin(shared, m=10).run()
        shared_builds = shared.engine.stats.bound_builds

        unshared = self._star_spec(False)
        unshared.engine.stats.reset()
        unshared_answers = PartialJoin(unshared, m=10).run()
        unshared_builds = unshared.engine.stats.bound_builds

        assert shared_builds == 1
        assert unshared_builds == shared.query_graph.num_edges
        assert [(a.nodes, a.score) for a in shared_answers] == [
            (a.nodes, a.score) for a in unshared_answers
        ]

    def test_star_pji_matches_pj(self):
        spec = self._star_spec(True)
        pj_answers = PartialJoin(self._star_spec(True), m=10).run()
        pji_answers = PartialJoinIncremental(spec, m=10).run()
        assert [a.nodes for a in pji_answers] == [a.nodes for a in pj_answers]
        assert np.allclose(
            [a.score for a in pji_answers],
            [a.score for a in pj_answers],
            atol=1e-12,
        )


class TestChunkedBIDJ:
    def _workload(self):
        graph = erdos_renyi(600, 6.0 / 600, np.random.default_rng(4), weighted=True)
        rng = np.random.default_rng(8)
        nodes = rng.permutation(600)
        left = sorted(int(u) for u in nodes[:40])
        right = sorted(int(u) for u in nodes[40:120])
        return graph, left, right

    @pytest.mark.parametrize("algorithm_cls", [BackwardIDJY, BackwardIDJX])
    @pytest.mark.parametrize("window_cols", [1, 3, 11])
    def test_chunked_matches_unchunked_and_oracle(self, algorithm_cls, window_cols):
        graph, left, right = self._workload()
        base_ctx = make_context(graph, left, right, d=8)
        base = algorithm_cls(base_ctx)
        expected = base.top_k(12)
        expected_trace = list(base.pruning_trace)
        oracle = algorithm_cls(base_ctx).top_k_reference(12)
        assert [(p.left, p.right) for p in expected] == [
            (p.left, p.right) for p in oracle
        ]

        ceiling = 16 * graph.num_nodes * window_cols
        ctx = make_context(graph, left, right, d=8, max_block_bytes=ceiling)
        algorithm = algorithm_cls(ctx)
        result = algorithm.top_k(12)
        assert [(p.left, p.right) for p in result] == [
            (p.left, p.right) for p in expected
        ]
        assert np.allclose(
            [p.score for p in result], [p.score for p in expected], atol=1e-12
        )
        assert algorithm.pruning_trace == expected_trace
        assert ctx.engine.stats.peak_block_bytes <= ceiling

    def test_single_column_ceiling_runs_and_smaller_rejected(self):
        """One column's cost is the minimum feasible ceiling; anything
        below it raises a ValueError naming that minimum."""
        graph, left, right = self._workload()
        minimum = 16 * graph.num_nodes
        ctx = make_context(graph, left, right, d=8, max_block_bytes=minimum)
        result = BackwardIDJY(ctx).top_k(5)
        base = BackwardIDJY(make_context(graph, left, right, d=8)).top_k(5)
        assert [(p.left, p.right) for p in result] == [
            (p.left, p.right) for p in base
        ]
        assert ctx.engine.stats.peak_block_bytes <= minimum
        tiny = make_context(graph, left, right, d=8, max_block_bytes=1)
        with pytest.raises(ValueError, match=str(minimum)):
            BackwardIDJY(tiny).top_k(5)

    def test_chunked_with_walk_cache_and_rerun(self):
        graph, left, right = self._workload()
        base = BackwardIDJY(make_context(graph, left, right, d=8)).top_k(10)
        engine = WalkEngine(graph)
        walk_cache = WalkCache(engine, DHTParams.dht_lambda(0.2))
        ceiling = 16 * graph.num_nodes * 4
        for _ in range(2):  # second run is served mostly from the cache
            ctx = make_context(
                graph, left, right, d=8, engine=engine,
                walk_cache=walk_cache, max_block_bytes=ceiling,
            )
            result = BackwardIDJY(ctx).top_k(10)
            assert [(p.left, p.right) for p in result] == [
                (p.left, p.right) for p in base
            ]
        assert engine.stats.peak_block_bytes <= ceiling

    def test_bbj_clamps_block_width_under_ceiling(self):
        graph, left, right = self._workload()
        base = sorted(
            BackwardBasicJoin(make_context(graph, left, right, d=8)).all_pairs()
        )
        ceiling = 16 * graph.num_nodes * 2  # clamps the 16-wide block to 2
        for walk_cache in (None, WalkCache(WalkEngine(graph), DHTParams.dht_lambda(0.2))):
            engine = walk_cache.engine if walk_cache is not None else None
            ctx = make_context(
                graph, left, right, d=8, engine=engine,
                walk_cache=walk_cache, max_block_bytes=ceiling,
            )
            capped = sorted(BackwardBasicJoin(ctx).all_pairs())
            assert [(p.left, p.right) for p in capped] == [
                (p.left, p.right) for p in base
            ]
            assert np.allclose(
                [p.score for p in capped], [p.score for p in base], atol=1e-12
            )
            assert ctx.engine.stats.peak_block_bytes <= ceiling

    def test_constructor_rejects_bad_ceiling(self, random_graph):
        context = make_context(random_graph, [0, 1], [3, 4], d=4)
        with pytest.raises(GraphValidationError):
            BackwardIDJY(context, max_block_bytes=0)

    def test_spec_forwards_ceiling_to_edges(self):
        graph = erdos_renyi(200, 0.03, np.random.default_rng(3), weighted=True)
        spec = NWayJoinSpec(
            graph=graph,
            query_graph=QueryGraph.chain(3),
            node_sets=[list(range(10)), list(range(20, 30)), list(range(40, 50))],
            k=5,
            d=6,
            max_block_bytes=16 * 200 * 2,
        )
        context = spec.edge_context(0)
        assert context.max_block_bytes == spec.max_block_bytes
        baseline = NWayJoinSpec(
            graph=graph,
            query_graph=QueryGraph.chain(3),
            node_sets=[list(range(10)), list(range(20, 30)), list(range(40, 50))],
            k=5,
            d=6,
        )
        capped = PartialJoinIncremental(spec).run()
        free = PartialJoinIncremental(baseline).run()
        assert [a.nodes for a in capped] == [a.nodes for a in free]
        assert spec.engine.stats.peak_block_bytes <= spec.max_block_bytes


class TestWalkStateConcat:
    def test_concat_matches_fresh_block(self, engine, params):
        a = WalkState(engine, params, [1, 2]).advance_to(3)
        b = WalkState(engine, params, [5]).advance_to(3)
        merged = WalkState.concat([a, b])
        fresh = WalkState(engine, params, [1, 2, 5]).advance_to(3)
        assert np.allclose(
            merged.scores_matrix(), fresh.scores_matrix(), atol=1e-15
        )
        merged.advance_to(6)
        fresh.advance_to(6)
        assert np.allclose(
            merged.scores_matrix(), fresh.scores_matrix(), atol=1e-15
        )

    def test_concat_rejects_mismatched_levels(self, engine, params):
        a = WalkState(engine, params, [1]).advance_to(2)
        b = WalkState(engine, params, [2]).advance_to(3)
        with pytest.raises(GraphValidationError):
            WalkState.concat([a, b])

    def test_concat_rejects_empty(self):
        with pytest.raises(GraphValidationError):
            WalkState.concat([])


class TestXBoundCaching:
    """F-IDJ / B-IDJ-X pull their X tables from the BoundPlanCache."""

    def test_x_bound_built_once(self, cache, engine, params):
        from repro.core.bounds import XBound

        first = cache.x_bound(4, lambda: XBound(params, 4))
        second = cache.x_bound(4, lambda: XBound(params, 4))
        assert first is second
        assert cache.stats.x_builds == 1 and cache.stats.x_hits == 1
        assert engine.stats.bound_cache_hits == 1  # hits land in engine stats

    def test_forward_idj_reuses_x_across_runs(self, random_graph):
        from repro.core.two_way.forward import ForwardIDJ

        context = make_context(random_graph, [0, 1, 2], [5, 6, 7], d=4)
        ForwardIDJ(context).top_k(2)
        assert context.bound_cache.stats.x_builds == 1
        ForwardIDJ(context).top_k(3)
        assert context.bound_cache.stats.x_builds == 1
        assert context.bound_cache.stats.x_hits >= 1
        assert context.engine.stats.bound_cache_hits >= 1

    def test_bidjx_shares_x_with_forward_idj(self, random_graph):
        from repro.core.two_way.forward import ForwardIDJ

        context = make_context(random_graph, [0, 1, 2], [5, 6, 7], d=4)
        BackwardIDJX(context).top_k(2)
        builds = context.bound_cache.stats.x_builds
        ForwardIDJ(context).top_k(2)
        assert context.bound_cache.stats.x_builds == builds == 1

    def test_forward_idj_results_unchanged_by_caching(self, random_graph, params):
        from repro.core.two_way.forward import ForwardIDJ

        shared = make_context(random_graph, [0, 1, 2, 3], [8, 9, 10], d=4,
                              params=params)
        once = ForwardIDJ(shared).top_k(4)
        again = ForwardIDJ(shared).top_k(4)
        assert [(p.left, p.right) for p in once] == [
            (p.left, p.right) for p in again
        ]
        assert np.allclose([p.score for p in once], [p.score for p in again])


class TestErrorPathLockRelease:
    """A build callback that raises inside the lookup-or-build critical
    section must leave the lock released and the key unpoisoned."""

    @staticmethod
    def assert_lock_released(lock):
        import threading

        acquired = []

        def probe():
            got = lock.acquire(timeout=2.0)
            acquired.append(got)
            if got:
                lock.release()

        worker = threading.Thread(target=probe)
        worker.start()
        worker.join()
        assert acquired == [True], "lock still held after the raise"

    def test_raising_build_releases_lock_and_key_stays_buildable(
        self, engine, params
    ):
        cache = BoundPlanCache(engine, params)

        def bad_build():
            raise RuntimeError("bound construction failed")

        with pytest.raises(RuntimeError, match="bound construction"):
            cache.y_bound((0, 1, 2), 4, bad_build)
        self.assert_lock_released(cache._lock)
        built = cache.y_bound((0, 1, 2), 4, lambda: "artifact")
        assert built == "artifact"
        assert cache.stats.y_builds == 1  # the failed attempt cached nothing

    def test_raising_tail_plan_build_releases_lock(self, engine, params):
        cache = BoundPlanCache(engine, params)

        def bad_build():
            raise RuntimeError("plan construction failed")

        with pytest.raises(RuntimeError, match="plan construction"):
            cache.tail_plan((3, 4), 5, bad_build)
        self.assert_lock_released(cache._lock)
        assert cache.tail_plan((3, 4), 5, lambda: ("plan",)) == ("plan",)
