"""Docs/consistency guard: the README quickstart and the
``docs/ALGORITHMS.md`` handbook snippets must run, and the committed
benchmark report must match the benchmark script's schema.

Run by the tier-1 suite and by the CI ``docs`` job, so a PR cannot land
a front-door snippet that no longer executes or change the
``BENCH_walks.json`` payload without regenerating the committed report
(see docs/BENCHMARKS.md).
"""

import json
import re
from pathlib import Path

import pytest

from repro.bench.harness import WALK_BENCH_SCHEMA_VERSION
from repro.cli import main as cli_main
from repro.graph.builders import path_graph
from repro.graph.io import write_edge_list, write_node_sets

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
ALGORITHMS = REPO_ROOT / "docs" / "ALGORITHMS.md"
BENCH_REPORT = REPO_ROOT / "BENCH_walks.json"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_snippets(path=README):
    return _FENCE.findall(path.read_text(encoding="utf-8"))


def test_readme_exists_with_python_quickstart():
    snippets = _python_snippets()
    assert snippets, "README.md must contain at least one ```python fence"


def test_readme_python_snippets_execute():
    """Every ``python`` fence in the README runs, in order, in one
    namespace — the quickstart is a contract, not an illustration."""
    namespace = {}
    for snippet in _python_snippets():
        exec(compile(snippet, str(README), "exec"), namespace)


def test_algorithms_handbook_snippets_execute():
    """The handbook's ``python`` fences run, in order, in one namespace
    — its worked examples are executable documentation."""
    snippets = _python_snippets(ALGORITHMS)
    assert snippets, "docs/ALGORITHMS.md must contain ```python fences"
    namespace = {}
    for snippet in snippets:
        exec(compile(snippet, str(ALGORITHMS), "exec"), namespace)


def test_algorithms_handbook_covers_every_paper_name():
    """The handbook is the name-to-module map; every paper algorithm
    name and every measure entry point must appear."""
    text = ALGORITHMS.read_text(encoding="utf-8")
    for name in ("F-BJ", "F-IDJ", "B-BJ", "B-IDJ", "AP", "PJ", "PJ-i", "NL",
                 "SeriesMeasure", "backward_scores", "tail_bound", "floor",
                 "TruncatedPPR", "SimRank"):
        assert name in text, f"docs/ALGORITHMS.md must document {name}"


OBSERVABILITY = REPO_ROOT / "docs" / "OBSERVABILITY.md"


def test_observability_doc_snippets_execute():
    """The observability handbook's ``python`` fences run, in order, in
    one namespace — including the explain-analyze example that asserts
    traced answers equal untraced ones."""
    snippets = _python_snippets(OBSERVABILITY)
    assert snippets, "docs/OBSERVABILITY.md must contain ```python fences"
    namespace = {}
    for snippet in snippets:
        exec(compile(snippet, str(OBSERVABILITY), "exec"), namespace)


def test_observability_doc_metric_names_match_registry():
    """Every backticked ``repro_*`` name in docs/OBSERVABILITY.md is
    exactly ``repro.obs.metrics.METRIC_NAMES`` — a metric cannot be
    added, renamed, or dropped without its documentation moving in the
    same diff."""
    from repro.obs.metrics import METRIC_NAMES

    text = OBSERVABILITY.read_text(encoding="utf-8")
    documented = set(re.findall(r"`(repro_[a-z0-9_]+)`", text))
    assert documented == set(METRIC_NAMES), (
        "docs/OBSERVABILITY.md metric catalogue has drifted: "
        f"missing {sorted(set(METRIC_NAMES) - documented)}, "
        f"stale {sorted(documented - set(METRIC_NAMES))}"
    )


def test_observability_doc_covers_span_kinds_and_flags():
    from repro.obs.trace import SPAN_KINDS, TRACE_SCHEMA

    text = OBSERVABILITY.read_text(encoding="utf-8")
    for kind in SPAN_KINDS:
        assert f"`{kind}`" in text, f"span kind {kind} must be documented"
    assert TRACE_SCHEMA in text
    for flag in ("--trace-out", "--metrics-out", "--metrics-interval",
                 "--explain analyze"):
        assert flag in text, f"{flag} must be documented"


def test_readme_cli_commands_exist():
    """Each documented `python -m repro <subcommand>` is a real one."""
    text = README.read_text(encoding="utf-8")
    documented = set(re.findall(r"python -m repro (\S+)", text))
    assert documented, "README must document CLI usage"
    assert documented <= {
        "two-way", "multi-way", "stats", "serve", "bench-service"
    }


def test_cli_quickstart_flow(tmp_path, capsys):
    """The README's on-disk workflow (TSV graph + JSON sets) round-trips
    through every documented subcommand."""
    graph_path = tmp_path / "graph.tsv"
    sets_path = tmp_path / "sets.json"
    write_edge_list(path_graph(6), graph_path)
    write_node_sets({"DB": [0, 1], "AI": [4, 5], "CENTER": [2, 3]}, sets_path)
    assert cli_main(["stats", str(graph_path), "--json"]) == 0
    assert (
        cli_main(
            [
                "two-way", str(graph_path), "--sets", str(sets_path),
                "--left", "DB", "--right", "AI", "-k", "2", "--json",
            ]
        )
        == 0
    )
    assert (
        cli_main(
            [
                "multi-way", str(graph_path), "--sets", str(sets_path),
                "--shape", "star", "--node-sets", "CENTER", "DB", "AI",
                "-k", "2", "--max-block-bytes", "4096", "--json",
            ]
        )
        == 0
    )
    for line in capsys.readouterr().out.strip().splitlines():
        json.loads(line)  # every --json output line is machine-readable


def test_bench_report_not_stale():
    """BENCH_walks.json must be regenerated when the schema changes."""
    payload = json.loads(BENCH_REPORT.read_text(encoding="utf-8"))
    assert payload.get("schema_version") == WALK_BENCH_SCHEMA_VERSION, (
        "BENCH_walks.json is stale: regenerate it with "
        "`PYTHONPATH=src python benchmarks/bench_walk_engine.py` "
        "(see docs/BENCHMARKS.md)"
    )
    assert payload.get("benchmark") == "walk_engine"
    assert payload.get("workloads"), "report must carry walk rows"
    assert payload.get("bound_cache"), "schema 2 reports carry bound rows"
    assert payload.get("measures"), "schema 3 reports carry measure rows"
    assert payload.get("bounded_series"), (
        "schema 4 reports carry bounded-series rows"
    )
    assert payload.get("budget_quality"), (
        "schema 5 reports carry budget-quality rows"
    )
    assert payload.get("planner"), "schema 6 reports carry planner rows"
    assert payload.get("service"), "schema 7 reports carry service rows"
    assert payload.get("observability"), (
        "schema 8 reports carry observability rows"
    )
    assert payload.get("elapsed_s"), (
        "schema 8 reports carry the per-section elapsed_s map"
    )


def test_bench_report_claims_hold():
    """The committed numbers satisfy the documented acceptance bars."""
    payload = json.loads(BENCH_REPORT.read_text(encoding="utf-8"))
    for row in payload["workloads"]:
        assert row["bbj_outputs_match"] and row["bidj_outputs_match"]
        assert row["bidj_resumable_steps"] < row["bidj_seed_steps"]
    for row in payload["bound_cache"]:
        assert row["pj_answers_match"] and row["bidj_chunked_outputs_match"]
        assert row["pj_bound_builds_unshared"] >= 2 * row["pj_bound_builds_shared"]
        assert row["bidj_ceiling_honored"]
        assert row["bidj_peak_block_bytes"] <= row["bidj_max_block_bytes"]
        assert row["bidj_spill_outputs_match"] and row["bidj_spill_ceiling_honored"]
        assert row["bidj_spill_extensions"] > 0
        assert row["bidj_spill_steps"] < row["bidj_chunked_steps"]
    bounded_measures = set()
    for row in payload["bounded_series"]:
        bounded_measures.add(row["measure"])
        assert row["outputs_match"] and row["ceiling_honored"]
        assert row["bounded_peak_block_bytes"] < row["unbounded_peak_block_bytes"]
        assert row["spill_extensions"] > 0 and row["spill_steps_saved"] > 0
    assert {"ppr", "dht"} <= bounded_measures
    for row in payload["budget_quality"]:
        assert row["bounds_contain_reference"]
        assert row["exact"] == (row["reason"] is None)
        if row["step_budget_fraction"] == 1.0:
            assert row["exact"] and row["recall_at_k"] == 1.0
    assert any(not row["exact"] for row in payload["budget_quality"])
    measures_seen = set()
    for row in payload["measures"]:
        measures_seen.add(row["measure"])
        assert row["nway_answers_match"]
        assert row["nway_walk_cache_hits"] > 0
        if row["measure"] == "ppr":
            assert row["bbj_outputs_match"] and row["idj_outputs_match"]
            assert row["bbj_speedup"] > 1.0
            assert row["idj_resumable_steps"] < row["idj_seed_steps"]
            assert row["nway_bound_cache_hits"] > 0
    assert {"ppr", "simrank"} <= measures_seen
    planner_scenarios = set()
    for row in payload["planner"]:
        planner_scenarios.add(row["scenario"])
        assert row["answers_match_fixed"] and row["answers_match_worst"]
        assert row["auto_steps"] <= row["fixed_steps"]
        assert row["auto_steps"] <= row["worst_steps"]
        if row["scenario"] == "skewed-star":
            assert row["step_reduction_vs_worst"] >= 1.2
            assert row["auto_order"] != row["fixed_order"]
    assert {"skewed-star", "chain"} <= planner_scenarios
    service_clients = set()
    for row in payload["service"]:
        service_clients.add(row["clients"])
        assert row["answers_match"]
        assert row["rejected"] == 0 and row["errors"] == 0
        assert row["warm_walk_hit_rate"] > row["cold_walk_hit_rate"]
        assert row["warm_p99_ms"] >= row["warm_p50_ms"] >= 0.0
    assert {1, 4, 8} <= service_clients
    obs_scenarios = set()
    for row in payload["observability"]:
        obs_scenarios.add(row["scenario"])
        assert row["answers_match"], "tracing must not change answers"
        assert row["est_disabled_overhead_fraction"] < 0.02
        assert row["traced_spans"] > 0 and row["hooks_fired"] >= row["traced_spans"]
    assert {"skewed-star", "chain"} <= obs_scenarios
    assert set(payload["elapsed_s"]) >= {
        "workloads", "bound_cache", "measures", "planner", "service",
        "observability",
    }
    assert all(v >= 0.0 for v in payload["elapsed_s"].values())


@pytest.mark.parametrize(
    "path",
    ["README.md", "docs/BENCHMARKS.md", "docs/ALGORITHMS.md",
     "docs/INVARIANTS.md", "docs/OBSERVABILITY.md", "ROADMAP.md"],
)
def test_doc_files_present(path):
    assert (REPO_ROOT / path).is_file(), f"{path} is part of the front door"


INVARIANTS = REPO_ROOT / "docs" / "INVARIANTS.md"


def test_invariants_doc_rules_match_linter_registry():
    """The rule IDs documented in docs/INVARIANTS.md are exactly the
    linter's registry — a rule cannot be added, renamed, or dropped
    without its contract documentation moving in the same diff."""
    from repro.analysis.rules import RULES

    text = INVARIANTS.read_text(encoding="utf-8")
    documented = set(re.findall(r"^## (RL\d{3}) `([a-z-]+)`", text,
                                re.MULTILINE))
    assert documented == {
        (rule.rule_id, rule.name) for rule in RULES.values()
    }, "docs/INVARIANTS.md sections must mirror repro.analysis.rules.RULES"


def test_invariants_doc_documents_suppression_and_run_commands():
    text = INVARIANTS.read_text(encoding="utf-8")
    assert "repro-lint: disable=" in text
    assert ".repro-lint-baseline" in text
    assert "python -m repro.analysis.lint src tests --strict" in text


def test_readme_mentions_the_linter():
    text = README.read_text(encoding="utf-8")
    assert "repro-lint" in text
    assert "docs/INVARIANTS.md" in text
