"""Unit tests for the benchmark harness and shared workloads."""

import math

import pytest

from repro.bench.harness import (
    SeriesResult,
    format_seconds,
    print_kv_table,
    print_sweep_table,
    speedup,
    time_call,
)
from repro.bench.workloads import (
    link_prediction_sets,
    query_graph_with_edges,
    sample_node_sets,
)
from repro.graph.validation import GraphValidationError


class TestHarness:
    def test_time_call_positive(self):
        elapsed = time_call(lambda: sum(range(1000)), repeats=3)
        assert elapsed > 0

    def test_time_call_validation(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)

    def test_series_result(self):
        series = SeriesResult("PJ")
        series.add(2, 0.5, k=50)
        series.add(3, 1.5)
        assert series.seconds_at(2) == 0.5
        assert series.seconds_at(99) is None
        assert series.runs[0].extra == {"k": 50}

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(None, 2.0) is None
        assert speedup(1.0, 0.0) is None

    def test_format_seconds(self):
        assert format_seconds(None).strip() == "--"
        assert format_seconds(math.inf).strip() == "inf"
        assert "0.1000" in format_seconds(0.1)
        assert "12.500" in format_seconds(12.5)
        assert "250.0" in format_seconds(250.0)

    def test_print_sweep_table(self, capsys):
        a, b = SeriesResult("NL"), SeriesResult("PJ")
        a.add(2, 1.0)
        b.add(2, 0.1)
        b.add(3, 0.2)
        text = print_sweep_table("Fig X", "n", [2, 3], [a, b], note="demo")
        out = capsys.readouterr().out
        assert "Fig X" in out and "NL" in out and "PJ" in out
        assert "--" in text  # NL missing at n=3

    def test_print_kv_table(self, capsys):
        text = print_kv_table("AUC", {"Yeast": 0.9453, "runs": 10})
        assert "0.9453" in text
        assert "runs" in capsys.readouterr().out


class TestWorkloads:
    def test_sample_node_sets_disjoint(self):
        sets = sample_node_sets(range(100), count=3, size=10, seed=1)
        assert len(sets) == 3
        flat = [u for s in sets for u in s]
        assert len(flat) == len(set(flat)) == 30

    def test_sample_node_sets_deterministic(self):
        a = sample_node_sets(range(50), 2, 5, seed=9)
        b = sample_node_sets(range(50), 2, 5, seed=9)
        assert a == b

    def test_sample_node_sets_too_large(self):
        with pytest.raises(GraphValidationError):
            sample_node_sets(range(10), count=3, size=5, seed=0)

    @pytest.mark.parametrize("num_edges", [2, 3, 4, 5, 6])
    def test_query_graph_with_edges(self, num_edges):
        q = query_graph_with_edges(num_edges)
        assert q.num_vertices == 3
        assert q.num_edges == num_edges

    def test_query_graph_with_edges_range(self):
        with pytest.raises(GraphValidationError):
            query_graph_with_edges(7)

    def test_link_prediction_sets_yeast(self):
        graph, left, right = link_prediction_sets("yeast")
        assert graph.num_nodes == 2400
        assert left and right
        assert not (set(left) & set(right))

    def test_link_prediction_sets_unknown(self):
        with pytest.raises(GraphValidationError):
            link_prediction_sets("imdb")
