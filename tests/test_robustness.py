"""Robustness tests: degenerate graph shapes through the full stack.

Walk-based code has two classic failure modes — dangling nodes (walk
mass silently disappears) and disconnected components (targets that are
simply unreachable).  These tests push both through every layer: walk
kernels, bounds, 2-way joins, incremental joins, and n-way joins.
"""

import numpy as np
import pytest

from repro.core.dht import DHTParams, exact_dht_score
from repro.core.nway.nested_loop import NestedLoopJoin
from repro.core.nway.partial_join_inc import PartialJoinIncremental
from repro.core.nway.query_graph import QueryGraph
from repro.core.nway.spec import NWayJoinSpec
from repro.core.two_way.backward import BackwardBasicJoin, BackwardIDJY
from repro.core.two_way.base import make_context
from repro.core.two_way.incremental import IncrementalTwoWayJoin
from repro.graph.digraph import Graph


@pytest.fixture
def dangling_graph():
    """0 -> 1 -> 2 (2 is dangling), plus isolated node 3."""
    return Graph(4, [(0, 1, 1.0), (1, 2, 1.0)])


@pytest.fixture
def two_islands():
    """Two disconnected undirected triangles: {0,1,2} and {3,4,5}."""
    return Graph.from_undirected_edges(
        6,
        [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
         (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0)],
    )


class TestDanglingNodes:
    def test_walk_mass_dies_not_errors(self, dangling_graph, params):
        ctx = make_context(dangling_graph, [0, 1], [2, 3], params=params, d=6)
        result = BackwardBasicJoin(ctx).top_k(10)
        scores = {(p.left, p.right): p.score for p in result}
        # 1 -> 2 is one hop; 0 -> 2 two hops; nothing reaches 3.
        assert scores[(1, 2)] > scores[(0, 2)]
        assert scores[(0, 3)] == pytest.approx(params.zero_score)
        assert scores[(1, 3)] == pytest.approx(params.zero_score)

    def test_exact_oracle_agrees_on_dangling(self, dangling_graph, params):
        assert exact_dht_score(dangling_graph, params, 0, 3) == pytest.approx(
            params.zero_score
        )
        # From the dangling node itself nothing is reachable.
        assert exact_dht_score(dangling_graph, params, 2, 0) == pytest.approx(
            params.zero_score
        )

    def test_pruned_join_agrees(self, dangling_graph, params):
        ctx1 = make_context(dangling_graph, [0, 1], [2, 3], params=params, d=6)
        ctx2 = make_context(dangling_graph, [0, 1], [2, 3], params=params, d=6)
        basic = BackwardBasicJoin(ctx1).top_k(4)
        pruned = BackwardIDJY(ctx2).top_k(4)
        assert np.allclose(
            [p.score for p in basic], [p.score for p in pruned]
        )

    def test_incremental_stream_handles_floor_ties(self, dangling_graph, params):
        # Several pairs tie at the floor score; the stream must still
        # emit every pair exactly once.
        join = IncrementalTwoWayJoin(
            make_context(dangling_graph, [0, 1], [2, 3], params=params, d=6)
        )
        stream = join.top(1)
        while True:
            item = join.next_pair()
            if item is None:
                break
            stream.append(item)
        assert len(stream) == 4
        assert len({(p.left, p.right) for p in stream}) == 4


class TestDisconnectedComponents:
    def test_cross_island_scores_are_floor(self, two_islands, params):
        ctx = make_context(two_islands, [0, 1], [4, 5], params=params, d=8)
        for pair in BackwardBasicJoin(ctx).top_k(4):
            assert pair.score == pytest.approx(params.zero_score)

    def test_nway_join_across_islands(self, two_islands, params):
        # One set per island plus one spanning both: answers exist, and
        # the best answers keep their within-island edges strong.
        spec = NWayJoinSpec(
            graph=two_islands,
            query_graph=QueryGraph.chain(3),
            node_sets=[[0, 3], [1, 4], [2, 5]],
            k=4,
            d=6,
            params=params,
        )
        reference = NestedLoopJoin(spec).run()
        spec2 = NWayJoinSpec(
            graph=two_islands,
            query_graph=QueryGraph.chain(3),
            node_sets=[[0, 3], [1, 4], [2, 5]],
            k=4,
            d=6,
            params=params,
        )
        fast = PartialJoinIncremental(spec2, m=2).run()
        assert np.allclose(
            [a.score for a in fast], [a.score for a in reference]
        )
        # The top answer stays within one island (no floor edge).
        top_nodes = set(reference[0].nodes)
        assert top_nodes <= {0, 1, 2} or top_nodes <= {3, 4, 5}

    def test_dht_e_variant_on_islands(self, two_islands):
        params = DHTParams.dht_e()
        ctx = make_context(two_islands, [0], [2, 4], params=params, d=6)
        result = BackwardBasicJoin(ctx).top_k(2)
        assert result[0].right == 2  # same island wins
        assert result[1].score == pytest.approx(params.zero_score)  # cross island


class TestSingleEdgeQueries:
    def test_nway_reduces_to_two_way(self, two_islands, params):
        # A 2-vertex query graph must reproduce the plain 2-way join.
        from repro.api import multi_way_join, two_way_join

        pairs = two_way_join(two_islands, [0, 1], [2, 5], k=3, params=params)
        answers = multi_way_join(
            two_islands, QueryGraph.chain(2), [[0, 1], [2, 5]], k=3,
            params=params,
        )
        assert np.allclose(
            [p.score for p in pairs], [a.score for a in answers]
        )
        assert [(p.left, p.right) for p in pairs] == [a.nodes for a in answers]
