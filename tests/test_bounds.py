"""Unit tests for the X and Y score upper bounds (Section VI-C)."""

import numpy as np
import pytest

from repro.core.bounds import XBound, YBound
from repro.core.dht import DHTParams
from repro.core.two_way.backward import back_walk
from repro.core.two_way.base import make_context
from repro.walks.engine import WalkEngine


class TestXBound:
    def test_closed_form(self, params):
        # X_l = alpha * lambda^{l+1} / (1 - lambda)  (Lemma 2)
        bound = XBound(params, d=8)
        for l in range(9):
            expected = params.alpha * params.decay ** (l + 1) / (1 - params.decay)
            assert bound.tail(l) == pytest.approx(expected)

    def test_decreasing_in_l(self, params):
        bound = XBound(params, d=8)
        tails = [bound.tail(l) for l in range(9)]
        assert all(b < a for a, b in zip(tails, tails[1:]))

    def test_range_checks(self, params):
        bound = XBound(params, d=4)
        with pytest.raises(ValueError):
            bound.tail(-1)
        with pytest.raises(ValueError):
            bound.tail(5)
        with pytest.raises(ValueError):
            XBound(params, d=0)

    def test_validity(self, params, random_graph):
        # h_d(p, q) <= h_l(p, q) + X_l for every prefix l.
        engine = WalkEngine(random_graph)
        d = 8
        bound = XBound(params, d)
        series = engine.backward_first_hit_series(7, d)
        for p in (0, 3, 12):
            full = params.score_from_series(series[:, p])
            prefixes = params.partial_score_prefixes(series[:, p])
            for l in range(d + 1):
                assert full <= prefixes[l] + bound.tail(l) + 1e-12


class TestYBound:
    @pytest.fixture
    def setup(self, params, random_graph):
        engine = WalkEngine(random_graph)
        sources = [0, 1, 2, 3, 4]
        d = 8
        return engine, sources, d, YBound(engine, params, sources, d)

    def test_tail_zero_at_l_equals_d(self, setup):
        engine, sources, d, bound = setup
        for q in (10, 20, 30):
            assert bound.tail(d, q) == 0.0

    def test_decreasing_in_l(self, setup):
        _, _, d, bound = setup
        for q in (10, 25):
            tails = [bound.tail(l, q) for l in range(d + 1)]
            assert all(b <= a + 1e-15 for a, b in zip(tails, tails[1:]))

    def test_lemma_5_y_never_exceeds_x(self, params, random_graph):
        engine = WalkEngine(random_graph)
        d = 8
        sources = list(range(6))
        y_bound = YBound(engine, params, sources, d)
        x_bound = XBound(params, d)
        for q in range(random_graph.num_nodes):
            for l in range(d + 1):
                assert y_bound.tail(l, q) <= x_bound.tail(l) + 1e-12

    def test_theorem_1_validity(self, params, random_graph):
        # h_d(p, q) <= h_l(p, q) + Y_l(P, q) for all p in P, q, l.
        engine = WalkEngine(random_graph)
        d = 8
        sources = [0, 1, 2, 3, 4, 5]
        bound = YBound(engine, params, sources, d)
        for q in (11, 22, 33):
            series = engine.backward_first_hit_series(q, d)
            for p in sources:
                if p == q:
                    continue
                full = params.score_from_series(series[:, p])
                prefixes = params.partial_score_prefixes(series[:, p])
                for l in range(d + 1):
                    assert full <= prefixes[l] + bound.tail(l, q) + 1e-12

    def test_suffix_sum_construction(self, params, random_graph):
        # Y_l(q) - Y_{l+1}(q) == alpha * lambda^{l+1} * min(mass, 1).
        engine = WalkEngine(random_graph)
        d = 6
        sources = [2, 3]
        bound = YBound(engine, params, sources, d)
        reach = engine.reach_mass_series(sources, d)
        for q in (8, 15):
            for l in range(d):
                step = params.alpha * params.decay ** (l + 1) * min(
                    reach[l, q], 1.0
                )
                assert bound.tail(l, q) - bound.tail(l + 1, q) == pytest.approx(step)

    def test_range_checks(self, setup):
        _, _, d, bound = setup
        with pytest.raises(ValueError):
            bound.tail(d + 1, 0)
        with pytest.raises(ValueError):
            bound.tail(-1, 0)


class TestBoundsTightenPruning:
    def test_y_tighter_at_high_decay(self, random_graph):
        # The Fig 9(c)/10(a) mechanism: at large lambda, X barely decays
        # while Y tracks the actual reachable mass.
        params = DHTParams.dht_lambda(0.8)
        engine = WalkEngine(random_graph)
        d = 12
        sources = [0, 1]
        y_bound = YBound(engine, params, sources, d)
        x_bound = XBound(params, d)
        q = 35
        ratios = [
            y_bound.tail(l, q) / x_bound.tail(l) for l in range(1, 5)
        ]
        assert min(ratios) < 0.9
