"""Unit tests for the F structure and the incremental 2-way join."""

import numpy as np
import pytest

from repro.core.two_way.backward import BackwardBasicJoin, x_bound_factory
from repro.core.two_way.base import make_context, sort_pairs
from repro.core.two_way.incremental import FStructure, IncrementalTwoWayJoin
from repro.graph.validation import GraphValidationError


class TestFStructure:
    def test_insert_and_peek_order(self):
        f = FStructure()
        f.update((0, 1), lower=0.1, upper=0.5, level=1)
        f.update((0, 2), lower=0.2, upper=0.9, level=1)
        f.update((0, 3), lower=0.1, upper=0.7, level=1)
        first, second = f.peek_top_two()
        assert first.pair == (0, 2)
        assert second.pair == (0, 3)

    def test_update_requires_deeper_level(self):
        f = FStructure()
        f.update((0, 1), lower=0.1, upper=0.5, level=2)
        f.update((0, 1), lower=0.4, upper=0.45, level=1)  # shallower: ignored
        assert f.get((0, 1)).upper == 0.5
        f.update((0, 1), lower=0.42, upper=0.44, level=4)  # deeper: applied
        assert f.get((0, 1)).upper == 0.44
        assert f.get((0, 1)).level == 4

    def test_lazy_deletion(self):
        f = FStructure()
        f.update((0, 1), 0.1, 0.9, 1)
        f.update((0, 2), 0.1, 0.8, 1)
        f.remove((0, 1))
        assert (0, 1) not in f
        first, second = f.peek_top_two()
        assert first.pair == (0, 2)
        assert second is None

    def test_update_after_remove_reinserts(self):
        f = FStructure()
        f.update((0, 1), 0.1, 0.9, 2)
        f.remove((0, 1))
        f.update((0, 1), 0.2, 0.7, 1)  # level restriction resets after remove
        assert f.get((0, 1)).upper == 0.7

    def test_tie_break_on_upper(self):
        f = FStructure()
        f.update((5, 1), 0.1, 0.5, 1)
        f.update((2, 9), 0.1, 0.5, 1)
        first, second = f.peek_top_two()
        assert first.pair == (2, 9)
        assert second.pair == (5, 1)

    def test_len_and_contains(self):
        f = FStructure()
        assert len(f) == 0
        f.update((1, 2), 0.0, 1.0, 1)
        assert len(f) == 1
        assert (1, 2) in f

    def test_empty_peek(self):
        assert FStructure().peek_top_two() == (None, None)


class TestIncrementalJoin:
    def full_reference(self, graph, left, right, params, d):
        ctx = make_context(graph, left, right, params=params, d=d)
        return sort_pairs(BackwardBasicJoin(ctx).all_pairs())

    def drain(self, join, prefix):
        stream = list(prefix)
        while True:
            item = join.next_pair()
            if item is None:
                return stream
            stream.append(item)

    @pytest.mark.parametrize("m", [0, 1, 5, 17, 1000])
    def test_stream_equals_sorted_full_join(self, random_graph, params, m):
        left, right = list(range(7)), list(range(25, 33))
        reference = self.full_reference(random_graph, left, right, params, 8)
        join = IncrementalTwoWayJoin(
            make_context(random_graph, left, right, params=params, d=8)
        )
        stream = self.drain(join, join.top(m))
        assert len(stream) == len(reference)
        assert np.allclose(
            [p.score for p in stream], [p.score for p in reference]
        )
        assert {(p.left, p.right) for p in stream} == {
            (p.left, p.right) for p in reference
        }

    def test_stream_on_directed_graph(self, random_digraph, params):
        left, right = list(range(6)), list(range(12, 20))
        reference = self.full_reference(random_digraph, left, right, params, 6)
        join = IncrementalTwoWayJoin(
            make_context(random_digraph, left, right, params=params, d=6)
        )
        stream = self.drain(join, join.top(3))
        assert np.allclose(
            [p.score for p in stream], [p.score for p in reference]
        )

    def test_x_bound_flavour(self, random_graph, params):
        left, right = list(range(5)), list(range(20, 26))
        reference = self.full_reference(random_graph, left, right, params, 8)
        join = IncrementalTwoWayJoin(
            make_context(random_graph, left, right, params=params, d=8),
            bound_factory=x_bound_factory,
        )
        stream = self.drain(join, join.top(4))
        assert np.allclose(
            [p.score for p in stream], [p.score for p in reference]
        )

    def test_emitted_scores_are_exact(self, random_graph, params):
        # Every emitted score must equal the full-depth h_d, not a bound.
        left, right = list(range(5)), list(range(20, 26))
        reference = {
            (p.left, p.right): p.score
            for p in self.full_reference(random_graph, left, right, params, 8)
        }
        join = IncrementalTwoWayJoin(
            make_context(random_graph, left, right, params=params, d=8)
        )
        for pair in self.drain(join, join.top(6)):
            assert pair.score == pytest.approx(reference[(pair.left, pair.right)])

    def test_top_twice_rejected(self, path4, params):
        join = IncrementalTwoWayJoin(make_context(path4, [0], [3], params=params, d=4))
        join.top(1)
        with pytest.raises(GraphValidationError, match="once"):
            join.top(1)

    def test_next_before_top_rejected(self, path4, params):
        join = IncrementalTwoWayJoin(make_context(path4, [0], [3], params=params, d=4))
        with pytest.raises(GraphValidationError, match="top"):
            join.next_pair()

    def test_negative_m_rejected(self, path4, params):
        join = IncrementalTwoWayJoin(make_context(path4, [0], [3], params=params, d=4))
        with pytest.raises(GraphValidationError):
            join.top(-1)

    def test_exhaustion_returns_none_forever(self, path4, params):
        join = IncrementalTwoWayJoin(
            make_context(path4, [0, 1], [2, 3], params=params, d=4)
        )
        stream = self.drain(join, join.top(2))
        assert len(stream) == 4
        assert join.next_pair() is None
        assert join.next_pair() is None

    def test_pairs_remaining(self, path4, params):
        join = IncrementalTwoWayJoin(
            make_context(path4, [0, 1], [2, 3], params=params, d=4)
        )
        join.top(1)
        assert join.pairs_remaining == 3
        join.next_pair()
        assert join.pairs_remaining == 2

    def test_d_equal_one(self, random_graph, params):
        # Degenerate depth: no refinement rounds possible.
        left, right = list(range(4)), list(range(20, 25))
        reference = self.full_reference(random_graph, left, right, params, 1)
        join = IncrementalTwoWayJoin(
            make_context(random_graph, left, right, params=params, d=1)
        )
        stream = self.drain(join, join.top(2))
        assert np.allclose(
            [p.score for p in stream], [p.score for p in reference]
        )
