"""Tests for the concurrent query service: request execution against the
direct-API oracle, admission control, queued-deadline semantics (the
governor/service interaction), stats snapshots, and the ``serve`` /
``bench-service`` CLI subcommands."""

import json
import threading

import numpy as np
import pytest

from repro import api
from repro.core.dht import DHTParams
from repro.core.nway.query_graph import QueryGraph
from repro.exec.budget import BUDGET_REASONS, PartialResult, QueryBudget
from repro.extensions.measures import measure_by_name
from repro.graph.builders import erdos_renyi
from repro.graph.io import write_edge_list, write_node_sets
from repro.service import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    ExplainRequest,
    MultiWayRequest,
    QueryService,
    ServiceStats,
    TwoWayRequest,
)
from repro.service.stats import percentile

LEFT = (0, 1, 2, 3)
RIGHT = (10, 11, 12, 13)
THIRD = (20, 21, 22)


def rows(items):
    """Exact-comparable tuples for ScoredPair / CandidateAnswer lists."""
    out = []
    for item in items:
        if hasattr(item, "nodes"):
            out.append((tuple(item.nodes), item.score, tuple(item.edge_scores)))
        else:
            out.append((item.left, item.right, item.score))
    return out


@pytest.fixture
def graph():
    return erdos_renyi(40, 0.12, np.random.default_rng(11), weighted=True)


@pytest.fixture
def service(graph):
    with QueryService(graph, workers=2, queue_depth=16) as svc:
        yield svc


class TestExecution:
    def test_two_way_matches_direct_api(self, graph, service):
        response = service.query(TwoWayRequest(LEFT, RIGHT, k=5))
        assert response.ok
        assert isinstance(response.result, PartialResult)
        assert response.result.exact
        oracle = api.two_way_join(graph, list(LEFT), list(RIGHT), k=5)
        assert rows(response.result.results) == rows(oracle)

    def test_multi_way_matches_direct_api(self, graph, service):
        request = MultiWayRequest(
            query_edges=((0, 1), (1, 2)),
            node_sets=(LEFT, RIGHT, THIRD),
            k=3,
        )
        response = service.query(request)
        assert response.ok and response.result.exact
        oracle = api.multi_way_join(
            graph,
            QueryGraph(3, [(0, 1), (1, 2)]),
            [list(LEFT), list(RIGHT), list(THIRD)],
            k=3,
        )
        assert rows(response.result.results) == rows(oracle)

    def test_measure_request_matches_direct_api(self, graph, service):
        response = service.query(
            TwoWayRequest(LEFT, RIGHT, k=4, measure="ppr")
        )
        assert response.ok and response.result.exact
        oracle = api.two_way_join(
            graph, list(LEFT), list(RIGHT), k=4, measure=measure_by_name("ppr")
        )
        assert rows(response.result.results) == rows(oracle)

    def test_explain_returns_plan(self, service):
        response = service.query(ExplainRequest(
            query_edges=((0, 1), (1, 2)),
            node_sets=(LEFT, RIGHT, THIRD),
            k=3,
        ))
        assert response.ok
        plan = response.result.to_json()
        assert "edges" in plan or "order" in plan or plan  # shape is stable elsewhere

    def test_query_sync_wrapper_and_ticket(self, service):
        ticket = service.submit(TwoWayRequest(LEFT, RIGHT, k=2))
        response = ticket.result(timeout=30.0)
        assert ticket.done()
        assert response.ok
        assert response.latency_ms >= response.queued_ms >= 0.0

    def test_unknown_request_type_is_error_response(self, service):
        response = service.query(object())
        assert response.status == STATUS_ERROR
        assert "unknown request type" in response.error
        assert response.result is None

    def test_invalid_nodes_are_error_response_not_crash(self, service):
        response = service.query(TwoWayRequest((10**9,), RIGHT, k=2))
        assert response.status == STATUS_ERROR
        follow_up = service.query(TwoWayRequest(LEFT, RIGHT, k=2))
        assert follow_up.ok  # the worker survived

    def test_serve_factory(self, graph):
        with api.serve(graph, workers=1) as svc:
            assert isinstance(svc, QueryService)
            assert svc.workers == 1
            assert svc.query(TwoWayRequest(LEFT, RIGHT, k=1)).ok


class TestCacheSharing:
    def test_cross_query_hits_accumulate(self, service):
        first = service.query(TwoWayRequest(LEFT, RIGHT, k=5))
        after_cold = service.stats()
        second = service.query(TwoWayRequest(LEFT, RIGHT, k=5))
        after_warm = service.stats()
        assert rows(first.result.results) == rows(second.result.results)
        assert after_warm.walk_cache_hits > after_cold.walk_cache_hits
        assert after_warm.walk_cache_hit_rate > 0.0

    def test_tiers_are_per_measure_identity(self, service):
        dht_tier = service.cache_tier(None)
        ppr_tier = service.cache_tier("ppr")
        assert dht_tier is not ppr_tier
        # Same identity from a name and from a fresh equal instance.
        assert service.cache_tier("ppr") is ppr_tier
        assert service.cache_tier(measure_by_name("ppr")) is ppr_tier

    def test_answers_identical_warm_and_cold(self, graph, service):
        request = MultiWayRequest(
            query_edges=((0, 1), (1, 2)),
            node_sets=(LEFT, RIGHT, THIRD),
            k=3,
        )
        cold = service.query(request)
        warm = service.query(request)
        assert rows(cold.result.results) == rows(warm.result.results)


class TestAdmission:
    def _gated(self, graph, **kwargs):
        """A service whose single worker blocks until ``release`` is set."""
        svc = QueryService(graph, workers=1, **kwargs)
        started = threading.Event()
        release = threading.Event()
        original = svc._dispatch

        def blocking(request, budget):
            started.set()
            release.wait(30.0)
            return original(request, budget)

        svc._dispatch = blocking
        return svc, started, release

    def test_in_flight_ceiling_rejects(self, graph):
        svc, started, release = self._gated(
            graph, queue_depth=4, max_in_flight=1
        )
        try:
            first = svc.submit(TwoWayRequest(LEFT, RIGHT, k=1))
            assert started.wait(10.0)
            second = svc.submit(TwoWayRequest(LEFT, RIGHT, k=1))
            response = second.result(timeout=5.0)
            assert response.status == STATUS_REJECTED
            assert "in flight" in response.error
            assert response.result is None
            release.set()
            assert first.result(timeout=30.0).ok
        finally:
            release.set()
            svc.close()

    def test_queue_depth_rejects(self, graph):
        svc, started, release = self._gated(
            graph, queue_depth=1, max_in_flight=10
        )
        try:
            first = svc.submit(TwoWayRequest(LEFT, RIGHT, k=1))
            assert started.wait(10.0)  # worker holds the first request
            second = svc.submit(TwoWayRequest(LEFT, RIGHT, k=1))  # fills queue
            third = svc.submit(TwoWayRequest(LEFT, RIGHT, k=1))
            response = third.result(timeout=5.0)
            assert response.status == STATUS_REJECTED
            assert "queue is full" in response.error
            release.set()
            assert first.result(timeout=30.0).ok
            assert second.result(timeout=30.0).ok
        finally:
            release.set()
            svc.close()

    def test_rejections_show_in_stats(self, graph):
        svc, started, release = self._gated(
            graph, queue_depth=4, max_in_flight=1
        )
        try:
            svc.submit(TwoWayRequest(LEFT, RIGHT, k=1))
            assert started.wait(10.0)
            svc.submit(TwoWayRequest(LEFT, RIGHT, k=1)).result(timeout=5.0)
            release.set()
        finally:
            release.set()
            svc.close()
        stats = svc.stats()
        assert stats.rejected == 1
        assert stats.submitted == 2

    def test_closed_service_rejects(self, graph):
        svc = QueryService(graph, workers=1)
        svc.close()
        response = svc.submit(TwoWayRequest(LEFT, RIGHT, k=1)).result(1.0)
        assert response.status == STATUS_REJECTED
        assert "closed" in response.error
        svc.close()  # idempotent

    def test_validation(self, graph):
        from repro.graph.validation import GraphValidationError

        with pytest.raises(GraphValidationError):
            QueryService(graph, workers=0)
        with pytest.raises(GraphValidationError):
            QueryService(graph, queue_depth=0)
        with pytest.raises(GraphValidationError):
            QueryService(graph, max_in_flight=0)
        with pytest.raises(GraphValidationError):
            QueryService(graph, d=3, epsilon=1e-4)


class TestQueuedDeadline:
    """Satellite: a deadline expiring while the request is still queued
    must come back as a flagged PartialResult counted in budget_stops —
    never a crash, never an unflagged answer."""

    def test_expiry_in_queue_is_flagged_budget_stop(self, graph):
        clock = FakeClock()
        svc = QueryService(graph, workers=1, queue_depth=4, clock=clock)
        started = threading.Event()
        release = threading.Event()
        original = svc._dispatch

        def blocking(request, budget):
            started.set()
            release.wait(30.0)
            return original(request, budget)

        svc._dispatch = blocking
        try:
            stops_before = svc.engine.stats.budget_stops
            blocker = svc.submit(TwoWayRequest(LEFT, RIGHT, k=1))
            assert started.wait(10.0)
            doomed = svc.submit(TwoWayRequest(
                LEFT, RIGHT, k=1, budget=QueryBudget(deadline_ms=50.0)
            ))
            clock.now += 1.0  # 1000 ms in the queue >> the 50 ms deadline
            release.set()
            response = doomed.result(timeout=30.0)
            assert blocker.result(timeout=30.0).ok
        finally:
            release.set()
            svc.close()
        assert response.status == STATUS_OK
        result = response.result
        assert isinstance(result, PartialResult)
        assert not result.exact
        assert result.reason == "deadline"
        assert result.results == []
        assert svc.engine.stats.budget_stops == stops_before + 1
        stats = svc.stats()
        assert stats.partial >= 1
        assert stats.budget_stops >= 1

    def test_default_budget_governs_requests(self, graph):
        with QueryService(
            graph, workers=1, default_budget=QueryBudget(step_budget=1)
        ) as svc:
            response = svc.query(TwoWayRequest(LEFT, RIGHT, k=3))
        assert response.ok
        result = response.result
        assert not result.exact
        assert result.reason in BUDGET_REASONS
        for lower, upper in result.bounds:
            assert lower <= upper

    def test_per_request_budget_overrides_default(self, graph):
        with QueryService(
            graph, workers=1, default_budget=QueryBudget(step_budget=1)
        ) as svc:
            response = svc.query(TwoWayRequest(
                LEFT, RIGHT, k=3, budget=QueryBudget(step_budget=10**9)
            ))
        assert response.ok and response.result.exact


class FakeClock:
    """Monotonic-clock stand-in the tests can advance by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestStats:
    def test_percentile(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_snapshot_counts(self, service):
        for _ in range(3):
            assert service.query(TwoWayRequest(LEFT, RIGHT, k=2)).ok
        stats = service.stats()
        assert isinstance(stats, ServiceStats)
        assert stats.submitted == 3
        assert stats.completed == 3
        assert stats.exact == 3
        assert stats.partial == 0
        assert stats.errors == 0
        assert stats.in_flight == 0
        assert stats.p50_ms > 0.0
        assert stats.p99_ms >= stats.p50_ms
        assert stats.qps > 0.0

    def test_error_responses_counted(self, service):
        service.query(object())
        assert service.stats().errors == 1


@pytest.fixture
def cli_workspace(tmp_path):
    graph = erdos_renyi(30, 0.15, np.random.default_rng(4), weighted=True)
    graph_path = tmp_path / "graph.tsv"
    sets_path = tmp_path / "sets.json"
    requests_path = tmp_path / "requests.json"
    write_edge_list(graph, graph_path)
    write_node_sets(
        {"A": [0, 1, 2, 3], "B": [10, 11, 12], "C": [20, 21, 22]}, sets_path
    )
    mix = [
        {"type": "two-way", "left": "A", "right": "B", "k": 3},
        {"type": "two-way", "left": "A", "right": "B", "k": 3},
        {"type": "multi-way", "shape": "chain",
         "node_sets": ["A", "B", "C"], "k": 2},
        {"type": "two-way", "left": "B", "right": "C", "k": 2,
         "measure": "ppr"},
        {"type": "explain", "shape": "chain",
         "node_sets": ["A", "B", "C"], "k": 2},
    ]
    requests_path.write_text(json.dumps(mix))
    return graph_path, sets_path, requests_path


class TestServeCLI:
    def test_serve_json(self, cli_workspace, capsys):
        from repro.cli import main

        graph_path, sets_path, requests_path = cli_workspace
        code = main([
            "serve", str(graph_path), "--sets", str(sets_path),
            "--requests", str(requests_path), "--workers", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["responses"]) == 5
        assert all(r["status"] == "ok" for r in payload["responses"])
        assert payload["stats"]["completed"] == 5
        assert payload["stats"]["walk_cache_hits"] > 0  # repeated two-way
        kinds = {r["type"] for r in payload["responses"]}
        assert kinds == {"TwoWayRequest", "MultiWayRequest", "ExplainRequest"}
        explain = next(
            r for r in payload["responses"] if r["type"] == "ExplainRequest"
        )
        assert "plan" in explain

    def test_serve_text(self, cli_workspace, capsys):
        from repro.cli import main

        graph_path, sets_path, requests_path = cli_workspace
        code = main([
            "serve", str(graph_path), "--sets", str(sets_path),
            "--requests", str(requests_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# service stats" in out
        assert "walk_cache_hit_rate" in out

    def test_serve_explicit_node_lists_and_budget(self, cli_workspace,
                                                  tmp_path, capsys):
        from repro.cli import main

        graph_path, sets_path, _ = cli_workspace
        requests_path = tmp_path / "explicit.json"
        requests_path.write_text(json.dumps([
            {"type": "two-way", "left": [0, 1], "right": [10, 11], "k": 2,
             "step_budget": 1},
        ]))
        code = main([
            "serve", str(graph_path), "--sets", str(sets_path),
            "--requests", str(requests_path), "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        row = payload["responses"][0]
        assert row["status"] == "ok"
        assert row["exact"] is False
        assert row["reason"] in BUDGET_REASONS

    def test_serve_rejects_bad_requests_file(self, cli_workspace, tmp_path,
                                             capsys):
        from repro.cli import main

        graph_path, sets_path, _ = cli_workspace
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not": "a list"}))
        assert main([
            "serve", str(graph_path), "--sets", str(sets_path),
            "--requests", str(bad),
        ]) == 2
        bad.write_text(json.dumps([{"left": "A"}]))
        assert main([
            "serve", str(graph_path), "--sets", str(sets_path),
            "--requests", str(bad),
        ]) == 2
        bad.write_text(json.dumps([{"type": "sideways"}]))
        assert main([
            "serve", str(graph_path), "--sets", str(sets_path),
            "--requests", str(bad),
        ]) == 2

    def test_serve_unknown_set_name(self, cli_workspace, tmp_path):
        from repro.cli import main

        graph_path, sets_path, _ = cli_workspace
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(
            [{"type": "two-way", "left": "NOPE", "right": "B", "k": 1}]
        ))
        assert main([
            "serve", str(graph_path), "--sets", str(sets_path),
            "--requests", str(bad),
        ]) == 2


class TestBenchServiceCLI:
    def test_warm_beats_cold(self, cli_workspace, capsys):
        from repro.cli import main

        graph_path, sets_path, requests_path = cli_workspace
        code = main([
            "bench-service", str(graph_path), "--sets", str(sets_path),
            "--requests", str(requests_path), "--workers", "2",
            "--runs", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["passes"]) == 2
        assert payload["warm_hit_rate"] > payload["cold_hit_rate"]
        for row in payload["passes"]:
            assert row["completed"] == row["requests"]
            assert row["qps"] > 0.0
            assert row["p99_ms"] >= row["p50_ms"]

    def test_runs_validation(self, cli_workspace):
        from repro.cli import main

        graph_path, sets_path, requests_path = cli_workspace
        assert main([
            "bench-service", str(graph_path), "--sets", str(sets_path),
            "--requests", str(requests_path), "--runs", "1",
        ]) == 2

    def test_text_output(self, cli_workspace, capsys):
        from repro.cli import main

        graph_path, sets_path, requests_path = cli_workspace
        code = main([
            "bench-service", str(graph_path), "--sets", str(sets_path),
            "--requests", str(requests_path), "--runs", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cold walk-hit" in out
