"""Property-based tests (hypothesis) for the concurrent query service.

The invariant, over arbitrary seeded request mixes pushed through a
real worker pool: **every** completed query comes back either exactly
equal to the fixed-plan single-caller answer, or as a flagged
``PartialResult`` whose per-answer intervals contain the exact scores.
No interleaving may produce a silently-wrong result.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.core.dht import DHTParams
from repro.core.nway.query_graph import QueryGraph
from repro.exec.budget import BUDGET_REASONS, PartialResult, QueryBudget
from repro.graph.builders import erdos_renyi
from repro.service import MultiWayRequest, QueryService, TwoWayRequest

GRAPH = erdos_renyi(24, 0.18, np.random.default_rng(3), weighted=True)
PARAMS = DHTParams.dht_lambda(0.2)
DEPTH = PARAMS.steps_for_epsilon(1e-6)
POOLS = [
    (0, 1, 2), (4, 5, 6), (8, 9, 10), (12, 13, 14), (16, 17, 18),
]

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def two_way_requests(draw):
    left = POOLS[draw(st.integers(0, len(POOLS) - 1))]
    right = POOLS[draw(st.integers(0, len(POOLS) - 1))]
    k = draw(st.integers(1, 4))
    algorithm = draw(st.sampled_from(["b-idj-y", "b-bj"]))
    step_budget = draw(st.sampled_from([None, 2, 15, 200]))
    budget = (
        QueryBudget(step_budget=step_budget) if step_budget else None
    )
    return TwoWayRequest(left, right, k=k, algorithm=algorithm, budget=budget)


@st.composite
def multi_way_requests(draw):
    sets = tuple(
        POOLS[draw(st.integers(0, len(POOLS) - 1))] for _ in range(3)
    )
    k = draw(st.integers(1, 3))
    return MultiWayRequest(
        query_edges=((0, 1), (1, 2)), node_sets=sets, k=k, plan="fixed"
    )


@st.composite
def request_mixes(draw):
    return draw(st.lists(
        st.one_of(two_way_requests(), multi_way_requests()),
        min_size=2, max_size=8,
    ))


def _rows(items):
    out = []
    for item in items:
        if hasattr(item, "nodes"):
            out.append((tuple(item.nodes), item.score, tuple(item.edge_scores)))
        else:
            out.append((item.left, item.right, item.score))
    return out


def _single_caller_oracle(request):
    """Ungoverned fixed-plan answer rows and (for 2-way) the score map."""
    if isinstance(request, TwoWayRequest):
        top = api.two_way_join(
            GRAPH, list(request.left), list(request.right), request.k,
            algorithm=request.algorithm, params=PARAMS, d=DEPTH,
        )
        full = api.two_way_join(
            GRAPH, list(request.left), list(request.right),
            len(request.left) * len(request.right),
            algorithm=request.algorithm, params=PARAMS, d=DEPTH,
        )
        return _rows(top), {(p.left, p.right): p.score for p in full}
    query = QueryGraph(len(request.node_sets), request.query_edges)
    top = api.multi_way_join(
        GRAPH, query, [list(nodes) for nodes in request.node_sets],
        request.k, algorithm=request.algorithm, m=request.m,
        params=PARAMS, d=DEPTH, plan="fixed",
    )
    return _rows(top), None


@given(mix=request_mixes())
@SETTINGS
def test_any_interleaving_is_exact_or_soundly_flagged(mix):
    with QueryService(
        GRAPH, workers=4, queue_depth=len(mix), params=PARAMS, d=DEPTH
    ) as service:
        tickets = [service.submit(request) for request in mix]
        responses = [ticket.result(timeout=120.0) for ticket in tickets]

    for request, response in zip(mix, responses):
        assert response.ok, (response.status, response.error)
        result = response.result
        assert isinstance(result, PartialResult)
        expected_rows, score_map = _single_caller_oracle(request)
        if result.exact:
            assert _rows(result.results) == expected_rows
        else:
            # Only a budgeted request may be cut short, and then every
            # reported interval must contain the exact score.
            assert request.budget is not None
            assert result.reason in BUDGET_REASONS
            for item, (lower, upper) in zip(result.results, result.bounds):
                truth = score_map[(item.left, item.right)]
                assert lower - 1e-9 <= truth <= upper + 1e-9


@given(mix=request_mixes(), replays=st.integers(2, 3))
@SETTINGS
def test_replayed_mix_is_deterministic_when_ungoverned(mix, replays):
    """Replaying an ungoverned mix (any cache temperature, any thread
    schedule) returns identical answers every time."""
    ungoverned = [
        request for request in mix
        if getattr(request, "budget", None) is None
    ]
    if not ungoverned:
        return
    outcomes = []
    with QueryService(
        GRAPH, workers=4, queue_depth=len(ungoverned), params=PARAMS, d=DEPTH
    ) as service:
        for _ in range(replays):
            tickets = [service.submit(request) for request in ungoverned]
            outcomes.append([
                _rows(ticket.result(timeout=120.0).result.results)
                for ticket in tickets
            ])
    for later in outcomes[1:]:
        assert later == outcomes[0]
