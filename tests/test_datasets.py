"""Unit tests for the dataset substitutes and split derivations."""

import numpy as np
import pytest

from repro.datasets.dblp import generate_dblp
from repro.datasets.splits import (
    cross_edges,
    enumerate_cross_cliques,
    remove_edge_per_clique,
    remove_random_cross_edges,
)
from repro.datasets.synthetic import (
    community_graph_edges,
    pareto_activity,
    partition_sizes,
    sample_weighted_edges,
)
from repro.datasets.yeast import PARTITION_NAMES, generate_yeast
from repro.datasets.youtube import generate_youtube
from repro.graph.builders import complete_graph
from repro.graph.digraph import Graph
from repro.graph.validation import GraphValidationError


class TestSyntheticPrimitives:
    def test_pareto_activity_normalised(self, rng):
        act = pareto_activity(100, 1.8, rng)
        assert act.sum() == pytest.approx(1.0)
        assert np.all(act > 0)
        # heavy tail: the max dwarfs the median
        assert act.max() > 5 * np.median(act)

    def test_pareto_validation(self, rng):
        with pytest.raises(GraphValidationError):
            pareto_activity(0, 1.8, rng)
        with pytest.raises(GraphValidationError):
            pareto_activity(10, -1.0, rng)

    def test_sample_weighted_edges_distinct(self, rng):
        act = pareto_activity(50, 2.0, rng)
        edges = sample_weighted_edges(range(50), act, 60, rng, weight_mean=2.0)
        keys = [(u, v) for u, v, _ in edges]
        assert len(keys) == len(set(keys))
        assert all(u < v for u, v, _ in edges)
        assert all(w >= 1.0 for _, _, w in edges)

    def test_sample_weighted_edges_tiny_member_set(self, rng):
        act = pareto_activity(5, 2.0, rng)
        assert sample_weighted_edges([3], act, 10, rng) == []

    def test_community_edges_mostly_within(self, rng):
        act = pareto_activity(60, 2.0, rng)
        communities = [list(range(30)), list(range(30, 60))]
        edges = community_graph_edges(
            communities, act, within_degree=6.0, cross_degree=0.5, rng=rng
        )
        within = sum(1 for u, v, _ in edges if (u < 30) == (v < 30))
        cross = len(edges) - within
        assert within > 3 * cross

    def test_partition_sizes_sum(self):
        sizes = partition_sizes(100, [0.5, 0.3, 0.2])
        assert sum(sizes) == 100
        assert sizes[0] > sizes[1] > sizes[2]

    def test_partition_sizes_no_zero(self):
        sizes = partition_sizes(5, [0.96, 0.01, 0.01, 0.01, 0.01])
        assert sum(sizes) == 5
        assert all(s >= 1 for s in sizes)


class TestDBLP:
    @pytest.fixture(scope="class")
    def data(self):
        return generate_dblp(authors_per_area=120, num_labs=3, seed=1)

    def test_scale_and_areas(self, data):
        assert data.graph.num_nodes == 360
        assert set(data.areas) == {"DB", "AI", "SYS"}
        assert all(len(v) == 120 for v in data.areas.values())

    def test_labels_attached(self, data):
        assert data.graph.has_labels
        assert "-" in data.graph.label(0)

    def test_labs_span_areas_with_heavy_edges(self, data):
        for lab in data.labs:
            assert len(lab.members) == 3
            areas = [
                next(a for a, members in data.areas.items() if m in members)
                for m in lab.members
            ]
            assert sorted(areas) == ["AI", "DB", "SYS"]
            for i in range(3):
                for j in range(i + 1, 3):
                    assert data.graph.weight(lab.members[i], lab.members[j]) >= 12.0

    def test_edge_years_cover_undirected_edges(self, data):
        undirected = sum(1 for u, v, _ in data.graph.edges() if u < v)
        assert len(data.edge_years) == undirected
        assert all(2000 <= y <= 2012 for y in data.edge_years.values())

    def test_snapshot_before_removes_recent(self, data):
        snapshot = data.snapshot_before(2010)
        recent = [(u, v) for (u, v), y in data.edge_years.items() if y >= 2010]
        assert recent, "sanity: some edges should be post-cutoff"
        for u, v in recent:
            assert not snapshot.has_edge(u, v)
        old = [(u, v) for (u, v), y in data.edge_years.items() if y < 2010]
        for u, v in old[:50]:
            assert snapshot.has_edge(u, v)

    def test_top_authors_ranked_by_volume(self, data):
        top = data.top_authors("DB", 10)
        assert len(top) == 10
        volumes = [
            sum(data.graph.out_neighbors(u).values()) for u in top
        ]
        assert volumes == sorted(volumes, reverse=True)

    def test_seed_determinism(self):
        a = generate_dblp(authors_per_area=60, seed=9)
        b = generate_dblp(authors_per_area=60, seed=9)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_size_validation(self):
        with pytest.raises(GraphValidationError):
            generate_dblp(authors_per_area=5)


class TestYeast:
    @pytest.fixture(scope="class")
    def data(self):
        return generate_yeast(num_proteins=800, seed=1)

    def test_thirteen_disjoint_covering_partitions(self, data):
        assert set(data.partitions) == set(PARTITION_NAMES)
        seen = []
        for members in data.partitions.values():
            seen.extend(members)
        assert len(seen) == data.graph.num_nodes
        assert len(set(seen)) == data.graph.num_nodes

    def test_largest_pair_is_3u_8d(self, data):
        left, right = data.largest_pair
        sizes = sorted(
            ((len(v), k) for k, v in data.partitions.items()), reverse=True
        )
        assert {sizes[0][1], sizes[1][1]} == {"3-U", "8-D"}
        assert left == data.partitions["3-U"]

    def test_paper_scale_defaults(self):
        data = generate_yeast()
        assert data.graph.num_nodes == 2400
        undirected = data.graph.num_edges // 2
        assert 5000 < undirected < 11000  # ~7.2k target, generative noise

    def test_validation(self):
        with pytest.raises(GraphValidationError):
            generate_yeast(num_proteins=10)


class TestYouTube:
    @pytest.fixture(scope="class")
    def data(self):
        return generate_youtube(num_users=2000, num_groups=10, seed=1)

    def test_scale(self, data):
        assert data.graph.num_nodes == 2000
        # preferential attachment with m=3: ~3 edges per node
        assert 2.0 < data.graph.num_edges / 2 / 2000 < 4.0

    def test_groups_numbered_from_one(self, data):
        assert set(data.groups) == set(range(1, 11))
        assert len(data.group(1)) >= 5

    def test_groups_are_local(self, data):
        # Random-walk grown groups should have far more internal edges
        # than a random node set of the same size would.
        group = data.group(1)
        member_set = set(group)
        internal = sum(
            1
            for u in group
            for v in data.graph.out_neighbors(u)
            if v in member_set
        )
        assert internal >= len(group)  # dense by random-set standards

    def test_validation(self):
        with pytest.raises(GraphValidationError):
            generate_youtube(num_users=10)


class TestSplits:
    @pytest.fixture
    def clustered(self):
        # Two cliques bridged by cross edges: easy to reason about.
        edges = []
        for u in range(5):
            for v in range(u + 1, 5):
                edges.append((u, v, 1.0))
                edges.append((u + 5, v + 5, 1.0))
        edges += [(0, 5, 1.0), (1, 6, 1.0), (2, 7, 1.0), (3, 8, 1.0)]
        return Graph.from_undirected_edges(10, edges)

    def test_cross_edges(self, clustered):
        pairs = cross_edges(clustered, [0, 1, 2, 3, 4], [5, 6, 7, 8, 9])
        assert sorted(pairs) == [(0, 5), (1, 6), (2, 7), (3, 8)]

    def test_remove_random_cross_edges(self, clustered):
        split = remove_random_cross_edges(
            clustered, [0, 1, 2, 3, 4], [5, 6, 7, 8, 9], fraction=0.5, seed=4
        )
        assert len(split.removed_pairs) == 2
        for u, v in split.removed_pairs:
            assert clustered.has_edge(u, v)
            assert not split.test_graph.has_edge(u, v)
            assert not split.test_graph.has_edge(v, u)

    def test_remove_requires_cross_edges(self, clustered):
        with pytest.raises(GraphValidationError, match="no cross edges"):
            remove_random_cross_edges(clustered, [0], [9], seed=1)

    def test_fraction_validation(self, clustered):
        with pytest.raises(GraphValidationError):
            remove_random_cross_edges(clustered, [0], [5], fraction=0.0)

    def test_enumerate_cross_cliques(self):
        g = complete_graph(6)
        cliques = enumerate_cross_cliques(g, [0, 1], [2, 3], [4, 5])
        assert len(cliques) == 8  # 2 * 2 * 2, all connected
        assert all(
            g.has_edge(p, q) and g.has_edge(q, r) and g.has_edge(p, r)
            for p, q, r in cliques
        )

    def test_remove_edge_per_clique_damages_every_clique(self):
        g = complete_graph(6)
        split = remove_edge_per_clique(g, [0, 1], [2, 3], [4, 5], seed=2)
        for p, q, r in split.cliques:
            intact = (
                split.test_graph.has_edge(p, q)
                and split.test_graph.has_edge(q, r)
                and split.test_graph.has_edge(p, r)
            )
            assert not intact

    def test_remove_edge_per_clique_requires_cliques(self, clustered):
        with pytest.raises(GraphValidationError, match="no cross-set"):
            remove_edge_per_clique(clustered, [0], [5], [9], seed=1)
