"""Batched/resumable join paths vs. the seed per-target implementations.

``BackwardIDJ.top_k_reference`` and ``B-BJ`` with ``block_size=1`` are
the seed algorithms kept verbatim; the rewritten batched paths must
return identical top-k sequences (and strictly fewer propagation steps
for the resumable deepening).
"""

import numpy as np
import pytest

from repro.core.two_way.backward import (
    BackwardBasicJoin,
    BackwardIDJX,
    BackwardIDJY,
)
from repro.core.two_way.base import BoundedTopK, kth_largest, make_context
from repro.graph.validation import GraphValidationError
from repro.walks.cache import WalkCache


def assert_same_pairs(got, expected, atol=1e-12):
    assert [(p.left, p.right) for p in got] == [
        (p.left, p.right) for p in expected
    ]
    assert np.allclose(
        [p.score for p in got], [p.score for p in expected], atol=atol
    )


class TestBatchedBBJ:
    @pytest.mark.parametrize("block_size", [2, 3, 16])
    def test_all_pairs_matches_per_target(self, random_graph, params, block_size):
        ctx = make_context(
            random_graph, list(range(10)), list(range(20, 33)), params=params, d=8
        )
        batched = sorted(BackwardBasicJoin(ctx, block_size=block_size).all_pairs())
        single = sorted(BackwardBasicJoin(ctx, block_size=1).all_pairs())
        assert_same_pairs(batched, single)

    def test_all_pairs_matches_on_directed(self, random_digraph, params):
        ctx = make_context(
            random_digraph, list(range(8)), list(range(10, 22)), params=params, d=6
        )
        batched = sorted(BackwardBasicJoin(ctx).all_pairs())
        single = sorted(BackwardBasicJoin(ctx, block_size=1).all_pairs())
        assert_same_pairs(batched, single)

    def test_cached_context_same_results(self, random_graph, params):
        plain = make_context(
            random_graph, list(range(6)), list(range(25, 34)), params=params, d=8
        )
        cached = make_context(
            random_graph, list(range(6)), list(range(25, 34)), params=params, d=8,
            walk_cache=WalkCache(plain.engine, params), engine=plain.engine,
        )
        assert_same_pairs(
            BackwardBasicJoin(cached).top_k(7), BackwardBasicJoin(plain).top_k(7)
        )
        # A second run over the cached context is pure cache hits.
        cached.engine.stats.reset()
        BackwardBasicJoin(cached).all_pairs()
        assert cached.engine.stats.propagation_steps == 0

    def test_invalid_block_size(self, path4, params):
        ctx = make_context(path4, [0], [3], params=params, d=4)
        with pytest.raises(GraphValidationError):
            BackwardBasicJoin(ctx, block_size=0)


@pytest.mark.parametrize("algorithm_cls", [BackwardIDJX, BackwardIDJY])
class TestResumableBIDJ:
    def test_top_k_matches_reference(self, algorithm_cls, random_graph, params):
        left, right = list(range(12)), list(range(25, 40))
        ctx = make_context(random_graph, left, right, params=params, d=8)
        resumable = algorithm_cls(ctx)
        result = resumable.top_k(6)
        reference_algo = algorithm_cls(
            make_context(random_graph, left, right, params=params, d=8)
        )
        reference = reference_algo.top_k_reference(6)
        assert_same_pairs(result, reference)
        assert resumable.pruning_trace == reference_algo.pruning_trace

    def test_strictly_fewer_propagation_steps(
        self, algorithm_cls, random_graph, params
    ):
        left, right = list(range(12)), list(range(25, 40))
        ctx = make_context(random_graph, left, right, params=params, d=8)
        ctx.engine.stats.reset()
        algorithm_cls(ctx).top_k(6)
        resumable_steps = ctx.engine.stats.propagation_steps
        ctx2 = make_context(random_graph, left, right, params=params, d=8)
        ctx2.engine.stats.reset()
        algorithm_cls(ctx2).top_k_reference(6)
        assert resumable_steps < ctx2.engine.stats.propagation_steps

    def test_matches_reference_with_cache(self, algorithm_cls, random_graph, params):
        left, right = list(range(10)), list(range(22, 36))
        plain = make_context(random_graph, left, right, params=params, d=8)
        reference = algorithm_cls(plain).top_k_reference(5)
        cached_ctx = make_context(
            random_graph, left, right, params=params, d=8,
            engine=plain.engine, walk_cache=WalkCache(plain.engine, params),
        )
        assert_same_pairs(algorithm_cls(cached_ctx).top_k(5), reference)
        # Re-running against the warm cache stays correct and cheap.
        cached_ctx.engine.stats.reset()
        rerun_ctx = make_context(
            random_graph, left, right, params=params, d=8,
            engine=plain.engine, walk_cache=cached_ctx.walk_cache,
        )
        assert_same_pairs(algorithm_cls(rerun_ctx).top_k(5), reference)
        assert (
            cached_ctx.engine.stats.propagation_steps
            < len(right) * plain.d
        )

    def test_observer_equivalent_to_reference(
        self, algorithm_cls, random_graph, params
    ):
        class Recorder:
            def __init__(self):
                self.calls = []

            def observe(self, q, level, scores, tail):
                self.calls.append((q, level, round(float(tail), 12)))

        left, right = list(range(8)), list(range(20, 30))
        fast, slow = Recorder(), Recorder()
        ctx = make_context(random_graph, left, right, params=params, d=8)
        algorithm_cls(ctx, observer=fast).top_k(4)
        ctx2 = make_context(random_graph, left, right, params=params, d=8)
        algorithm_cls(ctx2, observer=slow).top_k_reference(4)
        assert fast.calls == slow.calls

    def test_d_one_walks_everything_once(self, algorithm_cls, path4, params):
        ctx = make_context(path4, [0, 1], [2, 3], params=params, d=1)
        result = algorithm_cls(ctx).top_k(10)
        reference = algorithm_cls(
            make_context(path4, [0, 1], [2, 3], params=params, d=1)
        ).top_k_reference(10)
        assert_same_pairs(result, reference)


class TestThresholdHelpers:
    def test_kth_largest_matches_sorted(self, rng):
        values = rng.normal(size=200).tolist()
        for k in (1, 5, 200):
            assert kth_largest(values, k) == sorted(values, reverse=True)[k - 1]

    def test_kth_largest_underfull(self):
        assert kth_largest([1.0, 2.0], 3) == float("-inf")

    def test_bounded_topk_matches_kth_largest(self, rng):
        values = rng.normal(size=5000)
        topk = BoundedTopK(37)
        for chunk in np.array_split(values, 13):
            topk.push(chunk)
        assert topk.kth_largest() == kth_largest(values, 37)
        assert topk.count == values.size

    def test_bounded_topk_underfull(self):
        topk = BoundedTopK(10)
        topk.push(np.arange(4, dtype=np.float64))
        assert topk.kth_largest() == float("-inf")

    def test_bounded_topk_handles_scalars_and_empties(self):
        topk = BoundedTopK(2)
        topk.push(np.array([]))
        topk.push(3.0)
        topk.push(np.array([1.0, 2.0]))
        assert topk.kth_largest() == 2.0

    def test_bounded_topk_rejects_bad_k(self):
        with pytest.raises(GraphValidationError):
            BoundedTopK(0)
